"""Tests for Zolo-PD (the paper's future-work variant)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.zolo import (
    _partial_fraction_weights,
    _zolo_scalar,
    _zolotarev_coefficients,
    zolo_degree,
    zolo_pd,
)
from repro.matrices import generate_matrix, ill_conditioned, polar_report


class TestZolotarevCoefficients:
    @given(st.floats(1e-15, 0.9), st.integers(1, 8))
    def test_coefficients_positive_increasing(self, l, r):
        c, mhat = _zolotarev_coefficients(l, r)
        assert len(c) == 2 * r
        assert np.all(c > 0)
        assert np.all(np.diff(c) > 0)  # c_i increase with i
        assert mhat > 0

    @given(st.floats(1e-15, 0.9), st.integers(1, 8))
    def test_z_fixes_one(self, l, r):
        c, mhat = _zolotarev_coefficients(l, r)
        assert _zolo_scalar(1.0, c, mhat, r) == pytest.approx(1.0)

    @given(st.floats(1e-12, 0.5), st.integers(1, 8))
    def test_z_maps_interval_near_unit(self, l, r):
        """Z maps [l, 1] to a band around 1 and raises the lower bound.

        With the Z(1) = 1 normalization the function *equioscillates*
        about 1 on [l, 1], so values may exceed 1 by the (tiny)
        equioscillation amplitude — Nakatsukasa & Freund note this
        overshoot is harmless for the iteration."""
        c, mhat = _zolotarev_coefficients(l, r)
        xs = np.linspace(l, 1.0, 33)
        ys = [_zolo_scalar(x, c, mhat, r) for x in xs]
        assert all(0 < y <= 1.0 + 0.05 for y in ys)
        assert _zolo_scalar(l, c, mhat, r) > l

    def test_tiny_l_no_overflow(self):
        """l = 1e-16 must not blow up the elliptic integrals."""
        c, mhat = _zolotarev_coefficients(1e-16, 8)
        assert np.all(np.isfinite(c)) and np.isfinite(mhat)

    def test_partial_fractions_reproduce_product(self):
        """1 + sum_j a_j/(x^2+c_odd) == prod (x^2+c_even)/(x^2+c_odd)."""
        l, r = 1e-4, 4
        c, _ = _zolotarev_coefficients(l, r)
        a = _partial_fraction_weights(c, r)
        for x in [l, 0.01, 0.3, 1.0]:
            x2 = x * x
            prod = np.prod([(x2 + c[2 * j + 1]) / (x2 + c[2 * j])
                            for j in range(r)])
            pf = 1.0 + sum(a[j] / (x2 + c[2 * j]) for j in range(r))
            assert pf == pytest.approx(prod, rel=1e-10)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            _zolotarev_coefficients(1.5, 3)


class TestZoloDegree:
    def test_worst_case_needs_degree_eight(self):
        assert zolo_degree(1e-16) == 8

    def test_mild_case_small_degree(self):
        assert zolo_degree(0.5) <= 2

    def test_monotone_in_conditioning(self):
        degs = [zolo_degree(l) for l in [1e-16, 1e-8, 1e-4, 1e-2, 0.5]]
        assert degs == sorted(degs, reverse=True)


class TestZoloPd:
    def test_ill_conditioned_two_ish_iterations(self):
        a = ill_conditioned(96, seed=0)
        r = zolo_pd(a)
        assert r.iterations <= 3
        assert r.degree == 8
        rep = polar_report(a, r.u, r.h)
        assert rep.orthogonality < 1e-13
        assert rep.backward < 1e-13

    def test_fewer_iterations_than_qdwh(self):
        """The whole point: more flops per iteration, fewer iterations,
        more concurrency (r independent QRs per iteration)."""
        from repro import qdwh
        a = ill_conditioned(64, seed=1)
        rz = zolo_pd(a)
        rq = qdwh(a)
        assert rz.iterations < rq.iterations
        assert rz.concurrent_factorizations >= 8

    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    def test_dtypes(self, dtype):
        a = generate_matrix(48, cond=1e10, dtype=dtype, seed=2)
        r = zolo_pd(a)
        assert r.u.dtype == np.dtype(dtype)
        assert polar_report(a, r.u, r.h).within(1e-11)

    def test_rectangular(self):
        a = generate_matrix(60, 32, cond=1e8, seed=3)
        r = zolo_pd(a)
        assert polar_report(a, r.u, r.h).within(1e-12)

    def test_explicit_degree(self):
        a = generate_matrix(32, cond=1e4, seed=4)
        r = zolo_pd(a, degree=3)
        assert r.degree == 3
        assert polar_report(a, r.u, r.h).within(1e-11)

    def test_zero_matrix(self):
        r = zolo_pd(np.zeros((5, 3)))
        assert r.iterations == 0

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            zolo_pd(np.ones((3, 5)))

    def test_well_conditioned_few_iterations(self):
        a = generate_matrix(32, cond=2.0, seed=5)
        r = zolo_pd(a)
        assert r.iterations <= 3
        assert r.degree <= 4
        assert polar_report(a, r.u, r.h).within(1e-12)
