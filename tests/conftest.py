"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property tests snappy but meaningful; numerical examples are
# expensive enough that hypothesis's default deadline misfires.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")

ALL_DTYPES = [np.float32, np.float64, np.complex64, np.complex128]
DOUBLE_DTYPES = [np.float64, np.complex128]


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def runtime():
    """A small numeric runtime on a 2x2 grid."""
    from repro.dist import ProcessGrid
    from repro.runtime import Runtime

    return Runtime(ProcessGrid(2, 2))


def make_runtime(p=2, q=2, numeric=True):
    from repro.dist import ProcessGrid
    from repro.runtime import Runtime

    return Runtime(ProcessGrid(p, q), numeric=numeric)
