"""Tests for the task-timeline capture (repro.obs.timeline)."""

import numpy as np
import pytest

from repro.dist import DistMatrix, ProcessGrid
from repro.machines import summit
from repro.obs import (
    STALL_DEPENDENCY,
    STALL_GATE,
    STALL_LINK,
    TaskEvent,
    TimelineSink,
    TraceSink,
)
from repro.runtime import Runtime, simulate
from repro.runtime.scheduler import forkjoin_config, taskbased_config
from repro.tiled import gemm, geqrf


def build_gemm_graph(n=1024, nb=128, grid=(2, 2)):
    rt = Runtime(ProcessGrid(*grid), numeric=False)
    a = DistMatrix(rt, n, n, nb)
    b = DistMatrix(rt, n, n, nb)
    c = DistMatrix(rt, n, n, nb)
    gemm(rt, 1.0, a, b, 0.0, c)
    return rt.graph


def build_qr_graph(m=1024, n=512, nb=128, grid=(2, 2)):
    rt = Runtime(ProcessGrid(*grid), numeric=False)
    a = DistMatrix(rt, m, n, nb)
    geqrf(rt, a)
    return rt.graph


class TestCapture:
    def test_one_task_event_per_task(self):
        g = build_gemm_graph()
        sink = TimelineSink()
        r = simulate(g, taskbased_config(summit(), 2, 2, use_gpu=True),
                     sink=sink)
        assert len(sink) == len(g) == r.task_count
        assert {t.tid for t in sink.tasks} == {t.tid for t in g.tasks}

    def test_events_well_formed(self):
        g = build_qr_graph()
        sink = TimelineSink()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=True)
        r = simulate(g, cfg, sink=sink)
        for ev in sink.tasks:
            assert isinstance(ev, TaskEvent)
            assert 0.0 <= ev.start <= ev.end <= r.makespan + 1e-12
            assert ev.duration >= 0.0
            assert ev.end == pytest.approx(ev.start + ev.duration)
            assert 0 <= ev.rank < len(r.per_rank_busy)
            assert ev.slot[:3] in ("cpu", "gpu")
            assert ev.kind
        for x in sink.transfers:
            assert x.start <= x.end
            assert x.nbytes > 0
            assert x.leg in ("intra_node", "inter_node", "h2d", "d2h")

    def test_sink_does_not_perturb_schedule(self):
        g = build_qr_graph()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=True)
        r0 = simulate(g, cfg)
        sink = TimelineSink()
        r1 = simulate(g, cfg, sink=sink)
        assert r1.makespan == r0.makespan
        assert r1.per_rank_busy == r0.per_rank_busy

    def test_per_rank_busy_matches_schedule_exactly(self):
        """The 1e-9 honesty criterion: identical addends, identical sums."""
        g = build_qr_graph()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=True)
        sink = TimelineSink()
        r = simulate(g, cfg, sink=sink)
        busy = sink.per_rank_busy()
        for rank, expect in enumerate(r.per_rank_busy):
            assert busy.get(rank, 0.0) == expect

    def test_span_equals_makespan(self):
        g = build_gemm_graph()
        sink = TimelineSink()
        r = simulate(g, taskbased_config(summit(), 2, 2, use_gpu=False),
                     sink=sink)
        assert sink.span == pytest.approx(r.makespan)

    def test_base_sink_is_noop(self):
        g = build_gemm_graph()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=False)
        r0 = simulate(g, cfg)
        r1 = simulate(g, cfg, sink=TraceSink())  # all-no-op callbacks
        assert r1.makespan == r0.makespan


class TestEventKinds:
    def test_barriers_in_forkjoin_mode(self):
        g = build_qr_graph()
        sink = TimelineSink()
        simulate(g, forkjoin_config(summit(), 2, 2, use_gpu=False),
                 sink=sink)
        assert sink.barriers
        for b in sink.barriers:
            assert b.until >= b.time

    def test_no_barriers_in_taskbased_mode(self):
        g = build_qr_graph()
        sink = TimelineSink()
        simulate(g, taskbased_config(summit(), 2, 2, use_gpu=False),
                 sink=sink)
        assert not sink.barriers

    def test_gate_stalls_with_tight_lookahead(self):
        g = build_qr_graph()
        sink = TimelineSink()
        r = simulate(g, taskbased_config(summit(), 2, 2, use_gpu=False,
                                         lookahead=0), sink=sink)
        assert sink.stalls, "lookahead=0 should gate some tasks"
        for s in sink.stalls:
            assert s.cause == STALL_GATE
            assert s.end >= s.start
        # the sink's aggregation reproduces the scheduler's accounting
        assert sink.stall_seconds()[STALL_GATE] == pytest.approx(
            r.stall_seconds[STALL_GATE])

    def test_stall_attribution_totals(self):
        g = build_qr_graph()
        r = simulate(g, taskbased_config(summit(), 2, 2, use_gpu=True))
        st = r.stall_seconds
        assert set(st) == {STALL_DEPENDENCY, STALL_GATE, STALL_LINK}
        assert all(v >= 0.0 for v in st.values())

    def test_transfers_captured(self):
        g = build_gemm_graph()
        sink = TimelineSink()
        r = simulate(g, taskbased_config(summit(), 2, 2, use_gpu=True),
                     sink=sink)
        vol = sink.transfer_bytes()
        comm = r.comm.as_dict()["bytes"]
        # wire transfers in the timeline match the counters exactly
        for leg in ("intra_node", "inter_node"):
            assert vol.get(leg, 0) == comm.get(leg, 0)
        # explicit staging events are a subset of the counters: crossing
        # the CPU-GPU boundary as part of an inter-node hop is charged
        # to the counters but folded into the wire transfer's event
        for leg in ("h2d", "d2h"):
            assert vol.get(leg, 0) <= comm.get(leg, 0)


class TestAggregations:
    def test_sorted_tasks_time_ordered(self):
        g = build_qr_graph()
        sink = TimelineSink()
        simulate(g, taskbased_config(summit(), 2, 2, use_gpu=False),
                 sink=sink)
        starts = [t.start for t in sink.sorted_tasks()]
        assert starts == sorted(starts)

    def test_per_kind_busy_sums_to_total(self):
        g = build_qr_graph()
        sink = TimelineSink()
        r = simulate(g, taskbased_config(summit(), 2, 2, use_gpu=False),
                     sink=sink)
        assert sum(sink.per_kind_busy().values()) == pytest.approx(
            sum(r.per_rank_busy))

    def test_slots_match_config(self):
        g = build_gemm_graph()
        sink = TimelineSink()
        r = simulate(g, taskbased_config(summit(), 2, 2, use_gpu=True),
                     sink=sink)
        for rank, slot in sink.slots():
            assert 0 <= rank < len(r.per_rank_busy)
            assert slot[:3] in ("cpu", "gpu")

    def test_empty_sink(self):
        sink = TimelineSink()
        assert len(sink) == 0
        assert sink.span == 0.0
        assert sink.per_rank_busy() == {}
        assert sink.stall_seconds() == {}
