"""Tests for the tiled LU factorization and the LU-route gecondest."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dist import DistMatrix
from repro.tiled import gecondest_tiled, getrf, getrs_vec

from .conftest import make_runtime


def reconstruct_pa(a, fac):
    """Apply the recorded panel swaps to A (gives L @ U)."""
    pa = a.copy()
    offs = fac.a.col_offsets
    for k in range(fac.a.nt):
        piv = fac.piv[k]
        sub = pa[offs[k]:]
        for i, p in enumerate(piv):
            if p != i:
                sub[[i, p]] = sub[[p, i]]
    return pa


class TestGetrf:
    @given(st.integers(2, 28), st.integers(2, 9), st.booleans())
    def test_plu_reconstruction(self, n, nb, cplx):
        rng = np.random.default_rng(n * 11 + nb)
        a = rng.standard_normal((n, n))
        if cplx:
            a = a + 1j * rng.standard_normal((n, n))
        rt = make_runtime(2, 2)
        da = DistMatrix.from_array(rt, a.copy(), nb)
        fac = getrf(rt, da)
        lu = da.to_array()
        ell = np.tril(lu, -1) + np.eye(n)
        u = np.triu(lu)
        assert np.allclose(ell @ u, reconstruct_pa(a, fac), atol=1e-10)
        assert not fac.singular

    def test_pivoting_engages(self):
        """A matrix needing row swaps (tiny leading pivot)."""
        a = np.array([[1e-14, 1.0], [1.0, 1.0]])
        rt = make_runtime(1, 1)
        da = DistMatrix.from_array(rt, a.copy(), 1)
        fac = getrf(rt, da)
        assert any(p[0] != 0 for p in fac.piv.values())
        lu = da.to_array()
        # With pivoting, |L| entries stay <= 1.
        assert np.abs(np.tril(lu, -1)).max() <= 1.0 + 1e-12

    def test_singular_flagged(self):
        a = np.ones((8, 8))
        rt = make_runtime(1, 1)
        da = DistMatrix.from_array(rt, a, 4)
        fac = getrf(rt, da)
        assert fac.singular

    def test_rejects_rectangular(self, rng):
        rt = make_runtime()
        da = DistMatrix.from_array(rt, rng.standard_normal((6, 4)), 2)
        with pytest.raises(ValueError):
            getrf(rt, da)

    def test_graph_recorded(self):
        rt = make_runtime(2, 2)
        da = DistMatrix.from_array(rt, np.eye(16) * 3, 4)
        getrf(rt, da)
        kinds = rt.graph.counts_by_kind()
        assert kinds["gemm"] > 0 and kinds["trsm"] > 0
        assert rt.graph.validate_topological()


class TestGetrsVec:
    @given(st.integers(2, 24), st.integers(2, 8), st.booleans(),
           st.booleans())
    def test_solves_match_numpy(self, n, nb, cplx, trans):
        rng = np.random.default_rng(n * 5 + nb + trans)
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        if cplx:
            a = a + 1j * rng.standard_normal((n, n))
        b = rng.standard_normal(n)
        if cplx:
            b = b + 1j * rng.standard_normal(n)
        rt = make_runtime(2, 2)
        da = DistMatrix.from_array(rt, a.copy(), nb)
        fac = getrf(rt, da)
        x = getrs_vec(rt, fac, b, conj_trans=trans)
        op = a.conj().T if trans else a
        assert np.allclose(x, np.linalg.solve(op, b), atol=1e-9)

    def test_shape_validated(self, rng):
        rt = make_runtime()
        da = DistMatrix.from_array(rt, np.eye(8), 4)
        fac = getrf(rt, da)
        with pytest.raises(ValueError):
            getrs_vec(rt, fac, np.ones(5))


class TestGecondestTiled:
    @given(st.floats(10.0, 1e12))
    def test_tracks_condition(self, cond):
        from repro.matrices import generate_matrix
        a = generate_matrix(24, cond=cond, seed=int(cond) % 97)
        rt = make_runtime(2, 2)
        da = DistMatrix.from_array(rt, a.copy(), 8)
        rc = gecondest_tiled(rt, da)
        true = 1.0 / np.linalg.cond(a, 1)
        assert true / 20 <= rc.value <= true * 20

    def test_agrees_with_dense_gecondest(self):
        from repro.core.estimators import gecondest
        from repro.matrices import generate_matrix
        a = generate_matrix(32, cond=1e6, seed=3)
        rt = make_runtime(2, 2)
        da = DistMatrix.from_array(rt, a.copy(), 8)
        rc = gecondest_tiled(rt, da)
        assert rc.value == pytest.approx(gecondest(a), rel=2.0)

    def test_qr_and_lu_routes_agree(self):
        """Section 6.3: both condition-estimation routes exist; they
        must agree on the same matrix."""
        from repro.matrices import generate_matrix
        from repro.tiled import geqrf, trcondest_tiled
        a = generate_matrix(32, cond=1e7, seed=4)
        rt1 = make_runtime(2, 2)
        d1 = DistMatrix.from_array(rt1, a.copy(), 8)
        lu_rc = gecondest_tiled(rt1, d1).value
        rt2 = make_runtime(2, 2)
        d2 = DistMatrix.from_array(rt2, a.copy(), 8)
        qr_rc = trcondest_tiled(rt2, geqrf(rt2, d2)).value
        assert qr_rc / 30 <= lu_rc <= qr_rc * 30

    def test_singular_returns_zero(self):
        rt = make_runtime()
        da = DistMatrix.from_array(rt, np.ones((8, 8)), 4)
        assert gecondest_tiled(rt, da).value == 0.0

    def test_symbolic_mode_rejected(self):
        rt = make_runtime(numeric=False)
        da = DistMatrix(rt, 16, 16, 4)
        with pytest.raises(RuntimeError):
            gecondest_tiled(rt, da)
