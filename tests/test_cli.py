"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def matrix_file(tmp_path, rng):
    p = tmp_path / "a.npy"
    np.save(p, rng.standard_normal((48, 32)))
    return str(p)


class TestPolarCommand:
    def test_basic(self, matrix_file, capsys):
        assert main(["polar", matrix_file]) == 0
        out = capsys.readouterr().out
        assert "orthogonality" in out and "backward" in out

    def test_saves_factors(self, matrix_file, tmp_path, capsys):
        out_path = str(tmp_path / "factors.npz")
        main(["polar", matrix_file, "--output", out_path])
        data = np.load(out_path)
        a = np.load(matrix_file)
        assert np.allclose(data["u"] @ data["h"], a, atol=1e-10)

    def test_method_choice(self, matrix_file, capsys):
        main(["polar", matrix_file, "--method", "svd"])
        assert "method=svd" in capsys.readouterr().out

    def test_rejects_vector_file(self, tmp_path):
        p = tmp_path / "v.npy"
        np.save(p, np.ones(5))
        with pytest.raises(SystemExit):
            main(["polar", str(p)])


class TestSimulateCommand:
    def test_basic(self, capsys):
        assert main(["simulate", "--machine", "summit", "--nodes", "1",
                     "--n", "5000", "--impl", "slate_cpu",
                     "--max-tiles", "6"]) == 0
        out = capsys.readouterr().out
        assert "Tflop/s" in out and "3 QR + 3 Cholesky" in out

    def test_chrome_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        main(["simulate", "--n", "5000", "--max-tiles", "6",
              "--trace", trace])
        data = json.load(open(trace))
        assert len(data["traceEvents"]) > 100
        ev = data["traceEvents"][0]
        assert {"name", "ph", "ts", "dur", "pid"} <= set(ev)

    def test_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--machine", "fugaku"])


class TestSweepCommand:
    def test_prints_series(self, capsys):
        assert main(["sweep", "--nodes", "1", "--sizes", "4000", "8000",
                     "--max-tiles", "6"]) == 0
        out = capsys.readouterr().out
        assert "slate_gpu" in out and "scalapack" in out
        assert "4000" in out


class TestMemoryCommand:
    def test_frontier_ceiling(self, capsys):
        assert main(["memory", "--machine", "frontier",
                     "--nodes", "16"]) == 0
        out = capsys.readouterr().out
        assert "175000" in out

    def test_cpu_flag(self, capsys):
        assert main(["memory", "--machine", "summit", "--nodes", "1",
                     "--cpu"]) == 0
        assert "CPU" in capsys.readouterr().out
