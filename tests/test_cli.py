"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def matrix_file(tmp_path, rng):
    p = tmp_path / "a.npy"
    np.save(p, rng.standard_normal((48, 32)))
    return str(p)


class TestPolarCommand:
    def test_basic(self, matrix_file, capsys):
        assert main(["polar", matrix_file]) == 0
        out = capsys.readouterr().out
        assert "orthogonality" in out and "backward" in out

    def test_saves_factors(self, matrix_file, tmp_path, capsys):
        out_path = str(tmp_path / "factors.npz")
        main(["polar", matrix_file, "--output", out_path])
        data = np.load(out_path)
        a = np.load(matrix_file)
        assert np.allclose(data["u"] @ data["h"], a, atol=1e-10)

    def test_method_choice(self, matrix_file, capsys):
        main(["polar", matrix_file, "--method", "svd"])
        assert "method=svd" in capsys.readouterr().out

    def test_rejects_vector_file(self, tmp_path):
        p = tmp_path / "v.npy"
        np.save(p, np.ones(5))
        with pytest.raises(SystemExit):
            main(["polar", str(p)])


class TestSimulateCommand:
    def test_basic(self, capsys):
        assert main(["simulate", "--machine", "summit", "--nodes", "1",
                     "--n", "5000", "--impl", "slate_cpu",
                     "--max-tiles", "6"]) == 0
        out = capsys.readouterr().out
        assert "Tflop/s" in out and "3 QR + 3 Cholesky" in out

    def test_chrome_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        main(["simulate", "--n", "5000", "--max-tiles", "6",
              "--trace", trace])
        data = json.load(open(trace))
        assert len(data["traceEvents"]) > 100
        ev = data["traceEvents"][0]
        assert {"name", "ph", "ts", "dur", "pid"} <= set(ev)

    def test_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--machine", "fugaku"])


class TestSweepCommand:
    def test_prints_series(self, capsys):
        assert main(["sweep", "--nodes", "1", "--sizes", "4000", "8000",
                     "--max-tiles", "6"]) == 0
        out = capsys.readouterr().out
        assert "slate_gpu" in out and "scalapack" in out
        assert "4000" in out


class TestMemoryCommand:
    def test_frontier_ceiling(self, capsys):
        assert main(["memory", "--machine", "frontier",
                     "--nodes", "16"]) == 0
        out = capsys.readouterr().out
        assert "175000" in out

    def test_cpu_flag(self, capsys):
        assert main(["memory", "--machine", "summit", "--nodes", "1",
                     "--cpu"]) == 0
        assert "CPU" in capsys.readouterr().out


class TestTraceCommand:
    def test_empty_dag_prints_empty_gantt(self, capsys):
        # Zero-task run (n=0): must not crash, must say so.
        assert main(["trace", "--machine", "summit", "--nodes", "1",
                     "--n", "0"]) == 0
        out = capsys.readouterr().out
        assert "makespan:  0.000" in out
        assert "gantt: empty timeline" in out

    def test_empty_dag_chrome_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "empty.json")
        assert main(["trace", "--machine", "summit", "--nodes", "1",
                     "--n", "0", "--chrome-trace", trace]) == 0
        data = json.load(open(trace))
        # Only process-name metadata survives; no task/fault events.
        assert all(e["ph"] == "M" for e in data["traceEvents"])

    def test_nonempty_dag_has_gantt(self, capsys):
        assert main(["trace", "--n", "4000", "--max-tiles", "6"]) == 0
        out = capsys.readouterr().out
        assert "tasks" in out and "gantt: empty" not in out


class TestPolarCheckpoint:
    def test_resume_matches_uninterrupted(self, matrix_file, tmp_path,
                                          capsys):
        ref = str(tmp_path / "ref.npz")
        res = str(tmp_path / "res.npz")
        ck = str(tmp_path / "ck")
        assert main(["polar", matrix_file, "--output", ref]) == 0
        # Interrupt after two iterations, then resume from disk.
        assert main(["polar", matrix_file, "--checkpoint-dir", ck,
                     "--max-iter", "2"]) == 0
        assert "iterations=2" in capsys.readouterr().out
        assert main(["polar", matrix_file, "--checkpoint-dir", ck,
                     "--output", res]) == 0
        a, b = np.load(ref), np.load(res)
        assert np.array_equal(a["u"], b["u"])
        assert np.array_equal(a["h"], b["h"])

    def test_checkpoint_requires_qdwh(self, matrix_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["polar", matrix_file, "--method", "svd",
                  "--checkpoint-dir", str(tmp_path / "ck")])


class TestFaultsCommand:
    ARGS = ["--machine", "summit", "--nodes", "1", "--n", "4000",
            "--max-tiles", "6"]

    def test_crash_run(self, capsys):
        assert main(["faults", *self.ARGS, "--crash", "1@2.0"]) == 0
        out = capsys.readouterr().out
        assert "fault-free makespan" in out
        assert "faulty makespan" in out
        assert "replayed" in out
        assert "checkpoint interval" in out.lower() or "mttf" in out.lower()

    def test_no_faults_is_baseline_only(self, capsys):
        assert main(["faults", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "fault-free makespan" in out
        assert "faulty makespan" not in out

    def test_emit_plan_simulate_roundtrip(self, tmp_path, capsys):
        plan = str(tmp_path / "plan.json")
        assert main(["faults", *self.ARGS, "--crash", "1@2.0",
                     "--straggler", "0@3", "--emit-plan", plan]) == 0
        out1 = capsys.readouterr().out
        rec1 = [l for l in out1.splitlines() if "recovery:" in l]
        assert main(["simulate", "--machine", "summit", "--nodes", "1",
                     "--n", "4000", "--max-tiles", "6",
                     "--fault-plan", plan]) == 0
        out2 = capsys.readouterr().out
        rec2 = [l for l in out2.splitlines() if "recovery:" in l]
        # Same plan file -> bit-identical recovery summary line.
        assert rec1 and rec1 == rec2
        assert "replayed" in out2

    def test_mttf_draws_plan(self, capsys):
        assert main(["faults", *self.ARGS, "--mttf", "30",
                     "--fault-seed", "11"]) == 0
        assert "fault-free makespan" in capsys.readouterr().out


class TestLiveFaultsCommand:
    def test_live_smoke_passes(self, capsys):
        assert main(["faults", "--live", "--live-n", "64",
                     "--live-nb", "16", "--workers", "2",
                     "--cond", "1e8", "--fault-seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "recovery" in out
        assert "leaked" not in out.lower() or "0" in out

    def test_live_explicit_plan(self, tmp_path, capsys):
        from repro.resilience import plan_from_spec

        plan = str(tmp_path / "plan.json")
        plan_from_spec(seed=7, transient_p=0.2, stall_p=0.05,
                       stall_seconds=0.02).to_json(plan)
        assert main(["faults", "--live", "--fault-plan", plan,
                     "--live-n", "64", "--live-nb", "16",
                     "--workers", "2", "--cond", "1e4"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "transient_failures" in out

    def test_live_rejects_crash_plans(self, tmp_path):
        from repro.resilience import plan_from_spec

        plan = str(tmp_path / "plan.json")
        plan_from_spec(seed=7, crash=("1@2.0",)).to_json(plan)
        with pytest.raises(SystemExit):
            main(["faults", "--live", "--fault-plan", plan])


class TestPolarLiveFaults:
    def test_threads_with_fault_plan(self, matrix_file, tmp_path,
                                     capsys):
        from repro.resilience import plan_from_spec

        plan = str(tmp_path / "plan.json")
        plan_from_spec(seed=7, transient_p=0.3).to_json(plan)
        assert main(["polar", matrix_file, "--backend", "threads",
                     "--nb", "16", "--workers", "2",
                     "--fault-plan", plan, "--retries", "3",
                     "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "recovery" in out
        assert "transient_failures" in out

    def test_dense_backend_rejects_live_flags(self, matrix_file):
        with pytest.raises(SystemExit):
            main(["polar", matrix_file, "--retries", "3"])
        with pytest.raises(SystemExit):
            main(["polar", matrix_file, "--backend", "dense",
                  "--task-timeout", "1.0"])

    def test_threads_checkpoint_resume(self, matrix_file, tmp_path,
                                       capsys):
        ref = str(tmp_path / "ref.npz")
        res = str(tmp_path / "res.npz")
        ck = str(tmp_path / "ck")
        assert main(["polar", matrix_file, "--backend", "threads",
                     "--nb", "16", "--workers", "1", "--no-baseline",
                     "--output", ref]) == 0
        assert main(["polar", matrix_file, "--backend", "threads",
                     "--nb", "16", "--workers", "1", "--no-baseline",
                     "--checkpoint-dir", ck, "--max-iter", "2"]) == 0
        assert "iterations=2" in capsys.readouterr().out
        assert main(["polar", matrix_file, "--backend", "threads",
                     "--nb", "16", "--workers", "1", "--no-baseline",
                     "--checkpoint-dir", ck, "--output", res]) == 0
        a, b = np.load(ref), np.load(res)
        assert np.array_equal(a["u"], b["u"])
        assert np.array_equal(a["h"], b["h"])


class TestPolarObservability:
    def test_threads_prints_executor_stats(self, matrix_file, capsys):
        assert main(["polar", matrix_file, "--backend", "threads",
                     "--nb", "16", "--workers", "2",
                     "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "executor:" in out
        assert "cpu" in out
        assert "in-flight after close 0" in out

    def test_critical_path_flag(self, matrix_file, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        assert main(["polar", matrix_file, "--backend", "threads",
                     "--nb", "16", "--workers", "2", "--no-baseline",
                     "--critical-path", "--chrome-trace", trace]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "lane thr" in out

    def test_critical_path_requires_threads(self, matrix_file):
        with pytest.raises(SystemExit):
            main(["polar", matrix_file, "--backend", "eager",
                  "--critical-path"])


class TestBenchCommand:
    def test_smoke_suite_writes_versioned_json(self, tmp_path, capsys):
        out = str(tmp_path / "bench")
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--out-dir", out]) == 0
        text = capsys.readouterr().out
        assert "critical path [" in text
        qdwh = json.load(open(f"{out}/BENCH_qdwh.json"))
        scaling = json.load(open(f"{out}/BENCH_scaling.json"))
        assert qdwh["schema"].startswith("repro-bench/")
        assert qdwh["topic"] == "qdwh"
        assert scaling["topic"] == "scaling"
        assert scaling["series"]
        for rec in qdwh["cells"].values():
            assert rec["makespan_s"] > 0.0
            assert rec["converged"]
        fault = [r for r in qdwh["cells"].values() if r["fault_cell"]]
        # One fault cell per parallel backend.
        assert sorted(r["backend"] for r in fault) == \
            ["processes", "threads"]
        for rec in fault:
            assert "overhead_vs_clean" in rec
        # Self-compare of a fresh run must pass the regression gate.
        assert main(["bench", "--compare", f"{out}/BENCH_qdwh.json",
                     f"{out}/BENCH_qdwh.json"]) == 0
