"""Documentation integrity: the docs must track the code.

These tests keep DESIGN.md / EXPERIMENTS.md / README.md honest — every
referenced benchmark file exists, every experiment id has a bench, and
the public API listed in docs/api.md actually imports.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parents[1]


def read(name):
    return (ROOT / name).read_text()


class TestExperimentsFile:
    def test_referenced_benchmarks_exist(self):
        text = read("EXPERIMENTS.md")
        for fname in set(re.findall(r"`(test_[a-z0-9_]+\.py)", text)):
            assert (ROOT / "benchmarks" / fname).exists(), fname

    def test_every_figure_has_a_row(self):
        text = read("EXPERIMENTS.md")
        for fig in ("Fig 1a", "Fig 1b", "Fig 2a", "Fig 2b", "Fig 3a",
                    "Fig 3b", "Fig 4", "Fig 5", "Fig 6"):
            assert fig in text, fig

    def test_ablations_and_extensions_present(self):
        text = read("EXPERIMENTS.md")
        for eid in ("A1", "A2", "A3", "A4", "X1", "X2", "RW1"):
            assert f"| {eid} " in text, eid


class TestDesignFile:
    def test_module_map_matches_tree(self):
        text = read("DESIGN.md")
        for pkg in ("core", "matrices", "dist", "tiled", "runtime",
                    "comm", "machines", "perf", "bench"):
            assert (ROOT / "src" / "repro" / pkg).is_dir(), pkg
            assert pkg + "/" in text or f"repro.{pkg}" in text, pkg

    def test_paper_identity_check_recorded(self):
        assert "No title collision" in read("DESIGN.md")


class TestReadme:
    def test_examples_table_matches_directory(self):
        text = read("README.md")
        for p in (ROOT / "examples").glob("*.py"):
            assert p.name in text, p.name

    def test_install_commands_present(self):
        text = read("README.md")
        assert "pip install -e ." in text
        assert "pytest benchmarks/ --benchmark-only" in text


class TestApiDoc:
    def test_documented_symbols_import(self):
        import repro

        text = read("docs/api.md")
        # Top-level symbols named in backticked call signatures.
        for sym in ("qdwh", "polar", "zolo_pd", "tiled_qdwh",
                    "generate_matrix", "polar_report", "norm2est",
                    "simulate_qdwh", "summit", "frontier"):
            assert f"`{sym}(" in text or f"`{sym}`" in text or \
                sym in text, sym
            assert hasattr(repro, sym), sym

    def test_cli_verbs_documented_and_wired(self):
        from repro.cli import build_parser

        text = read("docs/api.md")
        sub = build_parser()._subparsers._group_actions[0].choices
        for verb in sub:
            assert f"repro {verb}" in text, verb
