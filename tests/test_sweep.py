"""Unit tests for the figure-sweep drivers."""

import pytest

from repro.machines import frontier, summit
from repro.perf.sweep import (
    FRONTIER_SIZES,
    SUMMIT_SIZES,
    figure_series,
    scaling_series,
    speedup_table,
)

MT = 6


class TestDefaultSizes:
    def test_respect_memory_model(self):
        from repro.perf.memory import max_feasible_n
        for table, machine, rpn in ((SUMMIT_SIZES, summit(), 2),
                                    (FRONTIER_SIZES, frontier(), 8)):
            for nodes, sizes in table.items():
                cap = max_feasible_n(machine, nodes, ranks_per_node=rpn,
                                     use_gpu=True)
                assert max(sizes) <= cap, (machine.name, nodes)

    def test_sizes_increase_with_nodes(self):
        for table in (SUMMIT_SIZES, FRONTIER_SIZES):
            maxima = [max(table[k]) for k in sorted(table)]
            assert maxima == sorted(maxima)


class TestDrivers:
    def test_figure_series_defaults(self):
        out = figure_series(summit(), 1, ("slate_cpu",),
                            sizes=(8000,), max_tiles=MT)
        assert out["slate_cpu"][0].n == 8000

    def test_figure_series_uses_table_when_sizes_none(self):
        out = figure_series(frontier(), 1, ("slate_cpu",), None,
                            max_tiles=MT)
        assert [p.n for p in out["slate_cpu"]] == list(FRONTIER_SIZES[1])

    def test_scaling_series_keys(self):
        out = scaling_series(summit(), [1],
                             sizes_per_nodes={1: (8000,)}, max_tiles=MT)
        assert set(out) == {1}

    def test_speedup_positive(self):
        rows = speedup_table(summit(), [1], sizes={1: (10000,)},
                             max_tiles=MT)
        assert rows[0]["speedup"] > 1.0
