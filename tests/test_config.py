"""Unit tests for repro.config."""

import numpy as np
import pytest

from repro import config


class TestCheckDtype:
    def test_accepts_all_four_standard_types(self):
        for dt in (np.float32, np.float64, np.complex64, np.complex128):
            assert config.check_dtype(dt) == np.dtype(dt)

    def test_accepts_string_names(self):
        assert config.check_dtype("float64") == np.dtype(np.float64)

    @pytest.mark.parametrize("bad", [np.int32, np.int64, np.float16, bool])
    def test_rejects_unsupported(self, bad):
        with pytest.raises(TypeError):
            config.check_dtype(bad)


class TestRealDtype:
    def test_real_types_map_to_themselves(self):
        assert config.real_dtype(np.float32) == np.dtype(np.float32)
        assert config.real_dtype(np.float64) == np.dtype(np.float64)

    def test_complex_types_map_to_real_base(self):
        assert config.real_dtype(np.complex64) == np.dtype(np.float32)
        assert config.real_dtype(np.complex128) == np.dtype(np.float64)


class TestEps:
    def test_eps_single_vs_double(self):
        assert config.eps(np.float32) == pytest.approx(2 ** -23)
        assert config.eps(np.float64) == pytest.approx(2 ** -52)

    def test_complex_uses_real_base_eps(self):
        assert config.eps(np.complex64) == config.eps(np.float32)
        assert config.eps(np.complex128) == config.eps(np.float64)


class TestTolerances:
    def test_inner_tolerance_is_cuberoot_of_5eps(self):
        tol = config.qdwh_inner_tolerance(np.float64)
        assert tol == pytest.approx((5 * 2 ** -52) ** (1 / 3))

    def test_weight_tolerance_is_5eps(self):
        assert config.qdwh_weight_tolerance(np.float64) == 5 * 2 ** -52

    def test_single_precision_tolerances_looser(self):
        assert (config.qdwh_inner_tolerance(np.float32)
                > config.qdwh_inner_tolerance(np.float64))

    def test_is_complex(self):
        assert config.is_complex(np.complex128)
        assert not config.is_complex(np.float64)
