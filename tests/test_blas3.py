"""Tiled BLAS-3 vs numpy (property-based equivalence)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dist import DistMatrix
from repro.tiled import (
    add,
    copy,
    gemm,
    herk,
    scale,
    set_diag_add,
    set_identity,
    set_zero,
    transpose_conj,
)
from repro.tiled.blas3 import mirror_lower

from .conftest import make_runtime

dims = st.integers(1, 30)
tiles = st.integers(1, 9)
ops = st.sampled_from(["N", "C"])


def randc(rng, m, n, cplx=False):
    a = rng.standard_normal((m, n))
    if cplx:
        a = a + 1j * rng.standard_normal((m, n))
    return a


class TestGemm:
    @given(dims, dims, dims, tiles, ops, ops, st.booleans())
    def test_matches_numpy(self, m, n, k, nb, opa, opb, cplx):
        rng = np.random.default_rng(m * 31 + n * 7 + k + nb)
        rt = make_runtime(2, 2)
        A = randc(rng, m, k, cplx) if opa == "N" else randc(rng, k, m, cplx)
        B = randc(rng, k, n, cplx) if opb == "N" else randc(rng, n, k, cplx)
        C = randc(rng, m, n, cplx)
        dA = DistMatrix.from_array(rt, A, nb)
        dB = DistMatrix.from_array(rt, B, nb)
        dC = DistMatrix.from_array(rt, C, nb)
        gemm(rt, 1.5, dA, dB, -0.5, dC, opa=opa, opb=opb)
        oa = A if opa == "N" else A.conj().T
        ob = B if opb == "N" else B.conj().T
        ref = 1.5 * (oa @ ob) - 0.5 * C
        assert np.allclose(dC.to_array(), ref, atol=1e-10)

    def test_beta_zero_overwrites_garbage(self, rng):
        rt = make_runtime()
        A = rng.standard_normal((8, 8))
        dA = DistMatrix.from_array(rt, A, 4)
        dC = DistMatrix.from_array(rt, np.full((8, 8), np.nan), 4)
        gemm(rt, 1.0, dA, dA, 0.0, dC)
        assert np.allclose(dC.to_array(), A @ A)

    def test_shape_mismatch_rejected(self, rng):
        rt = make_runtime()
        dA = DistMatrix.from_array(rt, rng.standard_normal((4, 6)), 2)
        dB = DistMatrix.from_array(rt, rng.standard_normal((4, 6)), 2)
        dC = DistMatrix.from_array(rt, rng.standard_normal((4, 6)), 2)
        with pytest.raises(ValueError):
            gemm(rt, 1, dA, dB, 0, dC)

    def test_bad_op_flag(self, rng):
        rt = make_runtime()
        d = DistMatrix.from_array(rt, rng.standard_normal((4, 4)), 2)
        with pytest.raises(ValueError):
            gemm(rt, 1, d, d, 0, d, opa="T")


class TestHerk:
    @given(dims, dims, tiles, st.booleans())
    def test_lower_triangle_matches(self, n, k, nb, cplx):
        rng = np.random.default_rng(n * 13 + k + nb)
        rt = make_runtime(2, 2)
        A = randc(rng, k, n, cplx)
        C0 = np.eye(n, dtype=A.dtype)
        dA = DistMatrix.from_array(rt, A, nb)
        dC = DistMatrix.from_array(rt, C0, nb)
        herk(rt, 2.0, dA, 1.0, dC, opa="C")
        ref = np.eye(n) + 2.0 * (A.conj().T @ A)
        got = dC.to_array()
        assert np.allclose(np.tril(got), np.tril(ref), atol=1e-10)

    def test_mirror_completes_hermitian(self, rng):
        rt = make_runtime(2, 2)
        A = rng.standard_normal((12, 20))
        dA = DistMatrix.from_array(rt, A, 4)
        dC = DistMatrix.from_array(rt, np.zeros((12, 12)), 4)
        herk(rt, 1.0, dA, 0.0, dC)
        mirror_lower(rt, dC)
        assert np.allclose(dC.to_array(), A @ A.T, atol=1e-10)

    def test_rejects_nonsquare_c(self, rng):
        rt = make_runtime()
        dA = DistMatrix.from_array(rt, rng.standard_normal((4, 6)), 2)
        dC = DistMatrix.from_array(rt, rng.standard_normal((4, 6)), 2)
        with pytest.raises(ValueError):
            herk(rt, 1, dA, 0, dC)


class TestElementwise:
    @given(dims, dims, tiles, st.booleans())
    def test_add(self, m, n, nb, cplx):
        rng = np.random.default_rng(m + n * 5 + nb)
        rt = make_runtime(2, 2)
        A, B = randc(rng, m, n, cplx), randc(rng, m, n, cplx)
        dA = DistMatrix.from_array(rt, A, nb)
        dB = DistMatrix.from_array(rt, B, nb)
        add(rt, 0.5, dA, 2.0, dB)
        assert np.allclose(dB.to_array(), 0.5 * A + 2.0 * B)

    def test_scale(self, rng):
        rt = make_runtime()
        A = rng.standard_normal((9, 7))
        dA = DistMatrix.from_array(rt, A, 4)
        scale(rt, -3.0, dA)
        assert np.allclose(dA.to_array(), -3.0 * A)

    def test_copy_with_offset_builds_stack(self, rng):
        """The [A; I] construction pattern from Algorithm 1."""
        rt = make_runtime()
        A = rng.standard_normal((8, 8))
        dA = DistMatrix.from_array(rt, A, 4)
        w = DistMatrix(rt, 16, 8, 4)
        copy(rt, dA, w, dst_row_offset=0)
        set_identity(rt, w, row_offset=dA.mt)
        ref = np.vstack([A, np.eye(8)])
        assert np.allclose(w.to_array(), ref)

    def test_copy_ragged_tilings(self, rng):
        rt = make_runtime()
        A = rng.standard_normal((10, 7))
        dA = DistMatrix.from_array(rt, A, 4)
        w = DistMatrix(rt, 17, 7, 4,
                       row_heights=dA.row_heights + dA.col_widths,
                       col_widths=dA.col_widths)
        copy(rt, dA, w, dst_row_offset=0)
        assert np.allclose(w.to_array()[:10], A)

    def test_copy_mismatch_rejected(self, rng):
        rt = make_runtime()
        dA = DistMatrix.from_array(rt, rng.standard_normal((8, 8)), 4)
        w = DistMatrix(rt, 8, 8, 2)
        with pytest.raises(ValueError):
            copy(rt, dA, w)

    def test_set_zero_and_diag_add(self):
        rt = make_runtime()
        d = DistMatrix.from_array(rt, np.ones((6, 6)), 2)
        set_zero(rt, d)
        set_diag_add(rt, d, 5.0)
        assert np.allclose(d.to_array(), 5.0 * np.eye(6))

    @given(dims, dims, tiles, st.booleans())
    def test_transpose_conj(self, m, n, nb, cplx):
        rng = np.random.default_rng(m * 3 + n + nb)
        rt = make_runtime(2, 3)
        A = randc(rng, m, n, cplx)
        dA = DistMatrix.from_array(rt, A, nb)
        dAt = transpose_conj(rt, dA)
        assert np.allclose(dAt.to_array(), A.conj().T)
