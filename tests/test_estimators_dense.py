"""Tests for the dense norm/condition estimators (Sections 6.2-6.3)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.estimators import (
    drive_estimator,
    gecondest,
    norm2est,
    one_norm_estimator,
    trcondest,
)
from repro.matrices import generate_matrix


class TestNorm2est:
    @given(st.integers(2, 40), st.integers(2, 40))
    def test_factor_of_five(self, m, n):
        """The paper deems factor-5 accuracy 'entirely satisfactory';
        in practice the estimate is far tighter."""
        rng = np.random.default_rng(m * 100 + n)
        a = rng.standard_normal((m, n))
        true = np.linalg.norm(a, 2)
        est = norm2est(a)
        assert true / 5 <= est <= true * 1.5

    def test_typically_within_a_quarter(self):
        """Gaussian matrices have flat spectra — the hardest case for
        power iteration at tol=0.1; even there the estimate stays well
        inside the factor-5 budget."""
        rng = np.random.default_rng(0)
        for _ in range(10):
            a = rng.standard_normal((50, 50))
            est = norm2est(a)
            true = np.linalg.norm(a, 2)
            assert abs(est - true) / true < 0.25

    def test_exact_for_rank_one(self):
        u = np.array([[3.0], [4.0]])
        v = np.array([[1.0, 2.0]])
        a = u @ v
        assert norm2est(a) == pytest.approx(np.linalg.norm(a, 2), rel=1e-6)

    def test_zero_matrix(self):
        assert norm2est(np.zeros((5, 3))) == 0.0

    def test_empty(self):
        assert norm2est(np.zeros((0, 0))) == 0.0

    def test_complex(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((20, 20)) + 1j * rng.standard_normal((20, 20))
        a = a.astype(np.complex128)
        est = norm2est(a)
        assert est == pytest.approx(np.linalg.norm(a, 2), rel=0.15)

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            norm2est(np.ones(5))

    def test_ill_conditioned_input(self):
        a = generate_matrix(40, cond=1e16, seed=9)
        est = norm2est(a)
        assert est == pytest.approx(np.linalg.norm(a, 2), rel=0.2)


class TestOneNormEstimator:
    def test_reverse_communication_identity_op(self):
        """Estimating ||I||_1 through the protocol returns ~1."""
        est = drive_estimator(10, lambda v: v, lambda v: v)
        assert est == pytest.approx(1.0, rel=0.5)

    def test_known_matrix(self):
        rng = np.random.default_rng(3)
        b = rng.standard_normal((30, 30))
        est = drive_estimator(30, lambda v: b @ v, lambda v: b.T @ v)
        true = np.linalg.norm(b, 1)
        assert true / 3 <= est <= true * 1.001

    def test_diagonal_exact(self):
        d = np.diag([1.0, 5.0, 2.0])
        est = drive_estimator(3, lambda v: d @ v, lambda v: d @ v)
        assert est == pytest.approx(5.0, rel=0.35)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            gen = one_norm_estimator(0)
            next(gen)


class TestCondest:
    @given(st.floats(1.0, 1e12))
    def test_gecondest_tracks_true_rcond(self, cond):
        a = generate_matrix(24, cond=cond, seed=11)
        rcond = gecondest(a)
        true = 1.0 / np.linalg.cond(a, 1)
        assert true / 20 <= rcond <= true * 20 + 1e-18

    def test_gecondest_identity(self):
        """rcond_1(I) = 1 exactly."""
        assert gecondest(np.eye(10)) == pytest.approx(1.0)

    def test_gecondest_singular(self):
        a = np.ones((5, 5))
        assert gecondest(a) == pytest.approx(0.0, abs=1e-12)

    def test_gecondest_rejects_rectangular(self):
        with pytest.raises(ValueError):
            gecondest(np.ones((4, 3)))

    def test_trcondest_on_r_factor(self):
        a = generate_matrix(30, cond=1e8, seed=13)
        r = np.linalg.qr(a, mode="r")
        rcond = trcondest(r)
        assert rcond == pytest.approx(1e-8, rel=0.999)
        assert rcond > 1e-11

    def test_trcondest_zero_diag(self):
        r = np.triu(np.ones((4, 4)))
        r[2, 2] = 0.0
        assert trcondest(r) == 0.0

    def test_trcondest_lower(self):
        ell = np.tril(np.random.default_rng(5).standard_normal((10, 10)))
        ell += 10 * np.eye(10)
        rc = trcondest(ell, lower=True)
        true = 1.0 / np.linalg.cond(ell, 1)
        assert true / 10 <= rc <= true * 10

    def test_trcondest_rejects_rectangular(self):
        with pytest.raises(ValueError):
            trcondest(np.ones((4, 3)))
