"""Tests for the machine models (rates, durations, rank layout)."""

import pytest

from repro.machines import frontier, summit
from repro.machines.machine import CpuModel, GpuModel, MachineModel
from repro.runtime.task import TaskKind


class TestDeviceRates:
    def test_saturation_curve_monotone(self):
        gpu = summit().gpu
        rates = [gpu.rate(TaskKind.GEMM, nb) for nb in (64, 128, 320, 1024)]
        assert rates == sorted(rates)
        assert rates[-1] < gpu.peak_gflops  # never exceeds peak

    def test_half_rate_at_nb_half(self):
        gpu = GpuModel(name="x", peak_gflops=1000.0, nb_half=100)
        full = 1000.0 * gpu.kind_factors[TaskKind.GEMM]
        assert gpu.rate(TaskKind.GEMM, 100) == pytest.approx(full / 2)

    def test_panel_kinds_slower_than_gemm(self):
        cpu = summit().cpu
        assert (cpu.rate(TaskKind.GEQRT, 192)
                < cpu.rate(TaskKind.GEMM, 192))

    def test_duration_includes_overhead(self):
        gpu = summit().gpu
        assert gpu.duration(TaskKind.GEMM, 0.0, 320) == gpu.kernel_overhead
        d = gpu.duration(TaskKind.GEMM, 1e9, 320)
        assert d > gpu.kernel_overhead

    def test_cpu_beats_gpu_on_elementwise_per_byte_sanity(self):
        """GPU elementwise runs at HBM speed, much faster than one core
        but far below GPU flop peak."""
        m = summit()
        g = m.gpu.rate(TaskKind.COPY, 320)
        c = m.cpu.rate(TaskKind.COPY, 320)
        assert c < g < 0.05 * m.gpu.peak_gflops


class TestMachineLayout:
    def test_summit_composition(self):
        m = summit()
        assert m.cores_per_node == 42  # 2 reserved for OS
        assert m.gpus_per_node == 6
        assert not m.network.nic_on_gpu

    def test_frontier_composition(self):
        m = frontier()
        assert m.cores_per_node == 56  # 8 reserved
        assert m.gpus_per_node == 8    # GCDs
        assert m.network.nic_on_gpu

    def test_rank_resources_slate_summit(self):
        m = summit()
        r = m.rank_resources(2, use_gpu=True)
        assert r.cores == 21 and r.gpus == 3

    def test_rank_resources_frontier(self):
        m = frontier()
        r = m.rank_resources(8, use_gpu=True)
        assert r.cores == 7 and r.gpus == 1

    def test_too_many_ranks_per_node(self):
        with pytest.raises(ValueError):
            summit().ranks(1, 100)

    def test_gpu_starved_layout_rejected(self):
        with pytest.raises(ValueError):
            summit().rank_resources(42, use_gpu=True)

    def test_node_of_rank(self):
        m = summit()
        assert m.node_of_rank(0, 2) == 0
        assert m.node_of_rank(3, 2) == 1


class TestTaskDuration:
    def test_fine_task_matches_device_duration(self):
        m = summit()
        d = m.task_duration(TaskKind.GEMM, 1e9, 320, 1.0, on_gpu=True)
        assert d == pytest.approx(m.gpu.duration(TaskKind.GEMM, 1e9, 320))

    def test_coarse_panel_blended_below_pure_panel(self):
        """A coarse GEQRT must cost far less than pricing all its flops
        at panel rates (most of it is trailing-update work)."""
        m = summit()
        flops = 1e12
        blended = m.task_duration(TaskKind.GEQRT, flops, 320, 10.0,
                                  on_gpu=True, host_cores=21, gang=3)
        pure_panel = flops / (m.cpu.rate(TaskKind.GEQRT, 320) * 1e9)
        assert blended < pure_panel / 5

    def test_gang_speedup(self):
        m = summit()
        one = m.task_duration(TaskKind.GEMM, 1e12, 320, 8.0, True, gang=1)
        three = m.task_duration(TaskKind.GEMM, 1e12, 320, 8.0, True, gang=3)
        assert three == pytest.approx(
            (one - m.gpu.kernel_overhead) / 3 + m.gpu.kernel_overhead)

    def test_gang_capped_by_coarse_squared(self):
        """Gang parallelism can't exceed the number of real kernels."""
        m = summit()
        d2 = m.task_duration(TaskKind.GEMM, 1e12, 320, 1.5, True, gang=100)
        d_cap = m.task_duration(TaskKind.GEMM, 1e12, 320, 1.5, True,
                                gang=2)  # 1.5^2 = 2.25
        assert d2 == pytest.approx(d_cap, rel=0.2)

    def test_zero_flops_is_overhead(self):
        m = frontier()
        assert (m.task_duration(TaskKind.SET, 0.0, 320, 1.0, False)
                == m.cpu.kernel_overhead)
