"""Tests for the per-iteration QDWH telemetry (repro.obs.qdwh_log)."""

import math

import numpy as np
import pytest

from repro import flops as F
from repro.core.params import dynamical_weights, parameter_schedule
from repro.core.polar import polar
from repro.core.qdwh_dense import qdwh
from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.matrices import generate_matrix
from repro.obs import IterationLog
from repro.runtime import Runtime


@pytest.fixture
def ill_conditioned():
    return generate_matrix(96, cond=1e12, seed=7)


class TestDenseTelemetry:
    def test_default_off_matches_baseline(self, ill_conditioned):
        base = qdwh(ill_conditioned)
        res = qdwh(ill_conditioned, iter_log=None)
        assert res.iterations == base.iterations
        np.testing.assert_array_equal(res.u, base.u)

    def test_record_count_matches_iterations(self, ill_conditioned):
        log = IterationLog()
        res = qdwh(ill_conditioned, iter_log=log)
        assert len(log) == res.iterations
        assert [r.k for r in log] == list(range(1, res.iterations + 1))
        assert log.m == log.n == 96

    def test_weights_follow_recurrence(self, ill_conditioned):
        """Each logged row satisfies the dynamical-weight recurrence."""
        log = IterationLog()
        qdwh(ill_conditioned, iter_log=log)
        for r in log:
            a, b, c, l_next = dynamical_weights(r.L)
            assert r.a == pytest.approx(a)
            assert r.b == pytest.approx(b)
            assert r.c == pytest.approx(c)
            assert r.L_next == pytest.approx(l_next)

    def test_l_trajectory_chained_and_increasing(self, ill_conditioned):
        log = IterationLog()
        qdwh(ill_conditioned, iter_log=log)
        recs = log.records
        for prev, cur in zip(recs, recs[1:]):
            assert cur.L == pytest.approx(prev.L_next)
            assert cur.L >= prev.L
        assert recs[-1].L_next == pytest.approx(1.0, abs=1e-8)

    def test_variant_switches_at_c_threshold(self, ill_conditioned):
        """QR exactly while c > 100, Cholesky after — never interleaved."""
        log = IterationLog()
        qdwh(ill_conditioned, iter_log=log)
        for r in log:
            assert r.variant == ("qr" if r.c > 100.0 else "chol")
        variants = [r.variant for r in log]
        assert variants == sorted(variants, reverse=True)  # qr* then chol*
        assert log.it_qr > 0 and log.it_chol > 0
        assert log.it_qr + log.it_chol == len(log)

    def test_conv_recorded_and_decreasing_at_end(self, ill_conditioned):
        log = IterationLog()
        qdwh(ill_conditioned, iter_log=log)
        assert all(math.isfinite(r.conv) for r in log.records)
        assert log.records[-1].conv < log.records[0].conv

    def test_flops_accounting(self, ill_conditioned):
        log = IterationLog()
        qdwh(ill_conditioned, iter_log=log)
        expect = (log.it_qr * F.qdwh_qr_iteration(96, 96)
                  + log.it_chol * F.qdwh_chol_iteration(96, 96))
        assert log.total_flops == pytest.approx(expect)
        running = 0.0
        for r in log:
            running += r.flops
            assert r.flops_total == pytest.approx(running)

    def test_cond_est_from_lower_bound(self):
        log = IterationLog()
        log.m = log.n = 8
        log.record(variant="qr", a=3.0, b=1.0, c=3.0, L=1e-3, L_next=0.5)
        assert log.records[0].cond_est == pytest.approx(1e3)

    def test_matches_parameter_schedule(self, ill_conditioned):
        """The logged schedule is the data-independent one from params."""
        log = IterationLog()
        qdwh(ill_conditioned, iter_log=log)
        sched = parameter_schedule(log.records[0].L)
        # the measured loop may run one extra iteration past the
        # schedule's L-based cutoff (it stops on the conv criterion)
        assert abs(len(sched) - len(log)) <= 1
        for r, p in zip(log, sched):
            assert r.a == pytest.approx(p.a)
            assert r.variant == ("qr" if p.use_qr else "chol")

    def test_table_renders(self, ill_conditioned):
        log = IterationLog()
        qdwh(ill_conditioned, iter_log=log)
        table = log.table()
        lines = table.splitlines()
        assert lines[0].startswith("QDWH iterations (96 x 96)")
        assert len(lines) == 3 + len(log)
        assert "qr" in table and "chol" in table

    def test_as_dicts_json_friendly(self, ill_conditioned):
        log = IterationLog()
        qdwh(ill_conditioned, iter_log=log)
        rows = log.as_dicts()
        assert len(rows) == len(log)
        assert {"k", "variant", "a", "b", "c", "L", "L_next", "conv",
                "cond_est", "flops", "flops_total"} <= set(rows[0])


class TestPolarForwarding:
    def test_polar_fills_log(self, ill_conditioned):
        log = IterationLog()
        res = polar(ill_conditioned, iter_log=log)
        assert len(log) == res.iterations

    def test_polar_rejects_log_for_baselines(self, ill_conditioned):
        with pytest.raises(ValueError, match="qdwh"):
            polar(ill_conditioned, method="svd", iter_log=IterationLog())

    def test_polar_without_log_unchanged(self, ill_conditioned):
        res = polar(ill_conditioned)
        assert res.iterations > 0


class TestTiledTelemetry:
    def test_symbolic_records_schedule(self):
        rt = Runtime(ProcessGrid(2, 2), numeric=False)
        a = DistMatrix(rt, 1024, 1024, 128)
        log = IterationLog()
        res = tiled_qdwh(rt, a, cond_est=1e16, iter_log=log)
        assert len(log) == res.it_qr + res.it_chol
        assert log.it_qr == res.it_qr
        assert log.it_chol == res.it_chol
        # symbolic runs have no measured convergence
        assert all(math.isnan(r.conv) for r in log.records)

    def test_numeric_matches_dense_weights(self):
        n, nb = 96, 32
        a = generate_matrix(n, cond=1e10, seed=3)
        rt = Runtime(ProcessGrid(1, 1), numeric=True)
        da = DistMatrix.from_array(rt, a, nb)
        tlog = IterationLog()
        tiled_qdwh(rt, da, cond_est=1e10, iter_log=tlog)
        dlog = IterationLog()
        qdwh(a, cond_est=1e10, iter_log=dlog)
        for tr, dr in zip(tlog, dlog):
            assert tr.a == pytest.approx(dr.a)
            assert tr.variant == dr.variant
