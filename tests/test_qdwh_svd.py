"""Tests for the SVD-via-polar application (Higham-Papadimitriou)."""

import numpy as np
import pytest

from repro.core.qdwh_svd import qdwh_partial_svd, qdwh_svd
from repro.matrices import generate_matrix, ill_conditioned


def svd_errors(a, r):
    recon = (r.u * r.s[None, :]) @ r.vh
    rel = np.linalg.norm(recon - a) / np.linalg.norm(a)
    orth_u = np.linalg.norm(r.u.conj().T @ r.u - np.eye(r.u.shape[1]))
    orth_v = np.linalg.norm(r.vh @ r.vh.conj().T - np.eye(r.vh.shape[0]))
    return rel, orth_u, orth_v


class TestQdwhSvd:
    def test_reconstruction_square(self):
        a = generate_matrix(48, cond=1e8, seed=0)
        r = qdwh_svd(a, eig_min_block=12)
        rel, ou, ov = svd_errors(a, r)
        assert rel < 1e-11 and ou < 1e-10 and ov < 1e-10

    def test_singular_values_match_lapack(self):
        a = generate_matrix(40, cond=1e6, seed=1)
        r = qdwh_svd(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(r.s, s_ref, rtol=1e-9, atol=1e-13)

    def test_descending_order(self):
        a = generate_matrix(32, cond=1e4, seed=2)
        r = qdwh_svd(a)
        assert np.all(np.diff(r.s) <= 1e-14)

    def test_rectangular_complex(self):
        a = generate_matrix(50, 24, cond=1e5, dtype=np.complex128, seed=3)
        r = qdwh_svd(a, use_qdwh_eig=False)
        rel, ou, ov = svd_errors(a, r)
        assert rel < 1e-11 and ou < 1e-10 and ov < 1e-10

    def test_lapack_eig_backend(self):
        a = generate_matrix(32, cond=100, seed=4)
        r1 = qdwh_svd(a, use_qdwh_eig=True, eig_min_block=8)
        r2 = qdwh_svd(a, use_qdwh_eig=False)
        assert np.allclose(r1.s, r2.s, rtol=1e-9)

    def test_ill_conditioned_small_values_clamped(self):
        a = ill_conditioned(32, seed=5)
        r = qdwh_svd(a, use_qdwh_eig=False)
        assert np.all(r.s >= 0)

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            qdwh_svd(np.ones((3, 8)))


class TestPartialSvd:
    def test_top_values_only(self):
        sigma = np.array([10.0, 5.0, 2.0, 0.1, 0.01])
        a = generate_matrix(12, 5, sigma=sigma, seed=6)
        r = qdwh_partial_svd(a, threshold=1.0)
        assert np.allclose(np.sort(r.s)[::-1], [10.0, 5.0, 2.0], atol=1e-9)
        recon = (r.u * r.s[None, :]) @ r.vh
        # Rank-3 truncation error equals the discarded tail energy.
        tail = np.linalg.norm(a - recon)
        assert tail == pytest.approx(np.sqrt(0.1 ** 2 + 0.01 ** 2), rel=1e-5)

    def test_threshold_above_all(self):
        a = generate_matrix(10, 4, cond=10, seed=7)
        r = qdwh_partial_svd(a, threshold=100.0)
        assert r.s.size == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            qdwh_partial_svd(np.eye(4), threshold=-1.0)
