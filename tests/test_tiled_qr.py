"""Tiled QR factorization tests (tree and flat panels)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dist import DistMatrix
from repro.tiled import geqrf, qr_explicit

from .conftest import make_runtime


def check_qr(A, nb, panel, grid=(2, 2)):
    rt = make_runtime(*grid)
    dW = DistMatrix.from_array(rt, A.copy(), nb)
    fac, dQ = qr_explicit(rt, dW, panel=panel)
    Q = dQ.to_array()
    n = A.shape[1]
    R = np.triu(dW.to_array()[:n, :n])
    recon = np.abs(Q @ R - A).max()
    orth = np.abs(Q.conj().T @ Q - np.eye(n)).max()
    return recon, orth, R


class TestQRCorrectness:
    @given(st.integers(4, 40), st.integers(2, 20), st.integers(2, 11),
           st.sampled_from(["tree", "flat"]))
    def test_reconstruction_and_orthogonality(self, m, n, nb, panel):
        if m < n:
            m, n = n, m
        rng = np.random.default_rng(m * 41 + n * 3 + nb)
        A = rng.standard_normal((m, n))
        recon, orth, _ = check_qr(A, nb, panel)
        assert recon < 1e-12 * max(m, n)
        assert orth < 1e-13 * max(m, n)

    @pytest.mark.parametrize("panel", ["tree", "flat"])
    @pytest.mark.parametrize("dtype", [np.float32, np.complex64,
                                       np.complex128])
    def test_dtypes(self, panel, dtype, rng):
        A = rng.standard_normal((24, 16)).astype(dtype)
        if np.issubdtype(dtype, np.complexfloating):
            A = A + 1j * rng.standard_normal((24, 16)).astype(A.real.dtype)
            A = A.astype(dtype)
        single = dtype in (np.float32, np.complex64)
        tol = 1e-4 if single else 1e-12
        recon, orth, _ = check_qr(A, 8, panel)
        assert recon < tol
        assert orth < tol

    def test_r_diag_real_sign_consistent_with_lapack(self, rng):
        """R from the tiled QR matches |R| from LAPACK (signs are a
        convention; magnitudes must agree)."""
        A = rng.standard_normal((20, 12))
        _, _, R = check_qr(A, 4, "tree")
        r_ref = np.linalg.qr(A, mode="r")
        assert np.allclose(np.abs(np.diag(R)), np.abs(np.diag(r_ref)),
                           atol=1e-10)

    def test_single_tile(self, rng):
        A = rng.standard_normal((6, 4))
        recon, orth, _ = check_qr(A, 8, "tree", grid=(1, 1))
        assert recon < 1e-13 and orth < 1e-13

    def test_stacked_identity_structure(self, rng):
        """QR of [A; I] — exactly the QDWH iteration's workspace."""
        rt = make_runtime()
        A = rng.standard_normal((12, 12))
        W = np.vstack([A, np.eye(12)])
        dW = DistMatrix.from_array(rt, W, 4)
        fac, dQ = qr_explicit(rt, dW)
        Q = dQ.to_array()
        R = np.triu(dW.to_array()[:12, :12])
        assert np.abs(Q @ R - W).max() < 1e-12

    def test_rejects_wide(self, rng):
        rt = make_runtime()
        d = DistMatrix.from_array(rt, rng.standard_normal((4, 8)), 2)
        with pytest.raises(ValueError):
            geqrf(rt, d)

    def test_rejects_unknown_panel(self, rng):
        rt = make_runtime()
        d = DistMatrix.from_array(rt, rng.standard_normal((8, 4)), 2)
        with pytest.raises(ValueError):
            geqrf(rt, d, panel="butterfly")


class TestQRGraphShape:
    def test_tree_panel_has_log_depth_combines(self):
        """8 block rows combine in 3 rounds (pairs 4+2+1 = 7 TTQRTs)."""
        rt = make_runtime(1, 1, numeric=False)
        d = DistMatrix(rt, 64, 8, 8)
        geqrf(rt, d, panel="tree")
        counts = rt.graph.counts_by_kind()
        assert counts["geqrt"] == 8
        assert counts["tpqrt"] == 7  # tree combines

    def test_flat_panel_chain(self):
        rt = make_runtime(1, 1, numeric=False)
        d = DistMatrix(rt, 64, 8, 8)
        geqrf(rt, d, panel="flat")
        counts = rt.graph.counts_by_kind()
        assert counts["geqrt"] == 1
        assert counts["tpqrt"] == 7

    def test_tree_critical_path_shorter(self):
        """The communication-avoiding panel's whole point."""
        def crit(panel):
            rt = make_runtime(1, 1, numeric=False)
            d = DistMatrix(rt, 32 * 16, 32, 32)
            geqrf(rt, d, panel=panel)
            return rt.graph.critical_path_seconds(lambda t: 1.0)

        assert crit("tree") < crit("flat")

    def test_phases_advance_per_panel(self):
        rt = make_runtime(1, 1, numeric=False)
        d = DistMatrix(rt, 32, 16, 8)
        p0 = rt.phase
        geqrf(rt, d)
        assert rt.phase - p0 >= 2  # one per panel step
