"""Unit tests for the flop-count formulas, including the paper's
Section 4 complexity model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import flops as F


class TestBlas3Counts:
    def test_gemm(self):
        assert F.gemm(10, 20, 30) == 2 * 10 * 20 * 30

    def test_herk_half_of_gemm(self):
        assert F.herk(10, 30) == F.gemm(10, 10, 30) / 2

    def test_trsm(self):
        assert F.trsm(8, 4) == 8 * 8 * 4


class TestFactorizationCounts:
    def test_geqrf_square(self):
        n = 100
        assert F.geqrf(n, n) == pytest.approx(4 / 3 * n ** 3)

    def test_geqrf_tall(self):
        # 2n x n: 2 n^2 (2n - n/3) = 10/3 n^3.
        n = 60
        assert F.geqrf(2 * n, n) == pytest.approx(10 / 3 * n ** 3)

    def test_potrf(self):
        assert F.potrf(30) == pytest.approx(30 ** 3 / 3)

    def test_orgqr_stacked(self):
        # Explicit economy Q of a 2n x n factorization: 10/3 n^3.
        n = 50
        assert F.orgqr(2 * n, n, n) == pytest.approx(10 / 3 * n ** 3)


class TestQdwhModel:
    def test_qr_iteration_is_26_thirds(self):
        """Paper: one QR-based iteration costs (8 + 2/3) n^3 (square)."""
        n = 80
        assert F.qdwh_qr_iteration(n, n) == pytest.approx(
            (8 + 2 / 3) * n ** 3)

    def test_chol_iteration_is_13_thirds(self):
        """Paper: one Cholesky-based iteration costs (4 + 1/3) n^3."""
        n = 80
        assert F.qdwh_chol_iteration(n, n) == pytest.approx(
            (4 + 1 / 3) * n ** 3)

    @given(st.integers(8, 512), st.integers(0, 4), st.integers(0, 4))
    def test_total_matches_paper_formula_square(self, n, iq, ic):
        assert F.qdwh_total(n, iq, ic) == pytest.approx(
            F.qdwh_paper_formula(n, iq, ic))

    def test_worst_case_total(self):
        """kappa=1e16 -> 3 QR + 3 Chol -> (4/3 + 26 + 13 + 2) n^3."""
        n = 100
        expected = (4 / 3 + 3 * 26 / 3 + 3 * 13 / 3 + 2) * n ** 3
        assert F.qdwh_total(n, 3, 3) == pytest.approx(expected)

    def test_rectangular_total_larger_than_square(self):
        assert F.qdwh_total(100, 3, 3, m=200) > F.qdwh_total(100, 3, 3)


class TestTileKernels:
    @given(st.integers(1, 64), st.integers(1, 64))
    def test_tile_counts_positive(self, mb, nb):
        assert F.tile_geqrt(mb + nb, nb) > 0
        assert F.tile_tpqrt(mb, nb) > 0
        assert F.tile_unmqr(mb, nb, nb) > 0
        assert F.tile_tpmqrt(mb, nb, nb) > 0
        assert F.tile_ttqrt(nb) > 0
        assert F.tile_ttmqrt(nb, nb) > 0
