"""Tests for the network model, collectives, and counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comm import (
    CommCounters,
    NetworkModel,
    TransferPath,
    allreduce_time,
    barrier_time,
    bcast_time,
    reduce_time,
)


class TestNetworkModel:
    def test_local_is_free(self):
        net = NetworkModel()
        assert net.transfer_time(10 ** 9, TransferPath.LOCAL) == 0.0

    @given(st.integers(0, 10 ** 9))
    def test_alpha_beta_structure(self, nbytes):
        net = NetworkModel(inter_latency=1e-6, inter_bandwidth=1e10)
        t = net.transfer_time(nbytes, TransferPath.INTER_NODE)
        assert t == pytest.approx(1e-6 + nbytes / 1e10)

    def test_intra_faster_than_inter(self):
        net = NetworkModel()
        big = 10 ** 8
        assert (net.transfer_time(big, TransferPath.INTRA_NODE)
                < net.transfer_time(big, TransferPath.INTER_NODE))

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1, TransferPath.INTER_NODE)

    def test_gpu_staging_penalty_summit_style(self):
        """NIC on CPU: inter-node GPU->GPU pays D2H + wire + H2D."""
        net = NetworkModel(nic_on_gpu=False)
        nbytes = 10 ** 7
        plain = net.remote_gpu_transfer_time(nbytes, same_node=False,
                                             src_on_gpu=False,
                                             dst_on_gpu=False)
        staged = net.remote_gpu_transfer_time(nbytes, same_node=False,
                                              src_on_gpu=True,
                                              dst_on_gpu=True)
        assert staged > plain
        expected_extra = 2 * net.transfer_time(nbytes, TransferPath.H2D)
        assert staged - plain == pytest.approx(expected_extra)

    def test_gpu_aware_mpi_frontier_style(self):
        """NIC on GPU: no staging penalty (the Frontier advantage)."""
        net = NetworkModel(nic_on_gpu=True)
        nbytes = 10 ** 7
        plain = net.remote_gpu_transfer_time(nbytes, same_node=False,
                                             src_on_gpu=False,
                                             dst_on_gpu=False)
        direct = net.remote_gpu_transfer_time(nbytes, same_node=False,
                                              src_on_gpu=True,
                                              dst_on_gpu=True)
        assert direct == pytest.approx(plain)

    def test_intra_node_never_staged(self):
        net = NetworkModel(nic_on_gpu=False)
        t = net.remote_gpu_transfer_time(10 ** 6, same_node=True,
                                         src_on_gpu=True, dst_on_gpu=True)
        assert t == pytest.approx(
            net.transfer_time(10 ** 6, TransferPath.INTRA_NODE))


class TestCollectives:
    @given(st.integers(1, 4096), st.integers(0, 10 ** 7))
    def test_bcast_log_scaling(self, ranks, nbytes):
        import math
        net = NetworkModel()
        t = bcast_time(net, nbytes, ranks)
        steps = max(0, math.ceil(math.log2(ranks)))
        assert t == pytest.approx(
            steps * net.transfer_time(nbytes, TransferPath.INTER_NODE))

    def test_reduce_equals_bcast(self):
        net = NetworkModel()
        assert reduce_time(net, 1024, 64) == bcast_time(net, 1024, 64)

    def test_allreduce_single_rank_free(self):
        assert allreduce_time(NetworkModel(), 8, 1) == 0.0

    def test_allreduce_latency_dominated_for_scalars(self):
        net = NetworkModel()
        t = allreduce_time(net, 8, 1024)
        assert t == pytest.approx(10 * net.inter_latency
                                  + 16 / net.inter_bandwidth)

    def test_barrier(self):
        net = NetworkModel(inter_latency=2e-6)
        assert barrier_time(net, 16) == pytest.approx(4 * 2e-6)
        assert barrier_time(net, 1) == 0.0

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            bcast_time(NetworkModel(), 8, 0)


class TestCommCounters:
    def test_record_and_totals(self):
        c = CommCounters()
        c.record(TransferPath.INTER_NODE, 100)
        c.record(TransferPath.INTER_NODE, 50)
        c.record(TransferPath.H2D, 10)
        assert c.total_messages == 3
        assert c.total_bytes == 160
        assert c.inter_node_bytes == 150
        assert c.staging_bytes == 10

    def test_local_not_counted(self):
        c = CommCounters()
        c.record(TransferPath.LOCAL, 1000)
        assert c.total_messages == 0

    def test_merge(self):
        a, b = CommCounters(), CommCounters()
        a.record(TransferPath.D2H, 5)
        b.record(TransferPath.D2H, 7)
        m = a.merged(b)
        assert m.bytes[TransferPath.D2H] == 12

    def test_as_dict_drops_zeros(self):
        c = CommCounters()
        c.record(TransferPath.INTRA_NODE, 9)
        d = c.as_dict()
        assert d["bytes"] == {"intra_node": 9}
