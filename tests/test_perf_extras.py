"""Tests for the auxiliary performance models: SVD-polar baseline,
profiling reports, the Aurora model, and dtype-aware simulation."""

import numpy as np
import pytest

from repro.machines import aurora, frontier, summit
from repro.perf.model import simulate_qdwh
from repro.perf.report import profile_report
from repro.perf.svd_model import simulate_svd_polar


class TestSvdPolarModel:
    def test_flop_model(self):
        p = simulate_svd_polar(summit(), 1, 10_000)
        n3 = 10_000.0 ** 3
        assert p.model_flops == pytest.approx((8 / 3 + 4 + 4) * n3)

    def test_level2_dominates_at_scale(self):
        small = simulate_svd_polar(summit(), 1, 20_000)
        big = simulate_svd_polar(summit(), 8, 120_000)
        assert big.level2_share > small.level2_share
        assert big.level2_share > 0.9

    def test_qdwh_advantage_grows_with_nodes(self):
        ratios = []
        for nodes, n in ((1, 40_000), (4, 80_000)):
            svd = simulate_svd_polar(summit(), nodes, n)
            q = simulate_qdwh(summit(), nodes, n, "scalapack",
                              max_tiles=8)
            ratios.append(svd.makespan / q.makespan)
        assert ratios[1] > ratios[0]
        assert ratios[1] > 2.0

    def test_gpu_variant(self):
        cpu = simulate_svd_polar(summit(), 1, 30_000, use_gpu=False)
        gpu = simulate_svd_polar(summit(), 1, 30_000, use_gpu=True)
        # GPUs accelerate the Level-3 phases but not the Level-2 wall.
        assert gpu.makespan < cpu.makespan
        assert gpu.level2_seconds == pytest.approx(cpu.level2_seconds)


class TestAuroraModel:
    def test_composition(self):
        m = aurora()
        assert m.cores_per_node == 96
        assert m.gpus_per_node == 12
        assert m.network.nic_on_gpu

    def test_simulates(self):
        p = simulate_qdwh(aurora(), 1, 20_000, "slate_gpu", max_tiles=8)
        assert p.tflops > 0

    def test_exascale_machines_beat_summit(self):
        pts = {m().name: simulate_qdwh(m(), 2, 40_000, "slate_gpu",
                                       max_tiles=8).tflops
               for m in (summit, frontier, aurora)}
        assert pts["frontier"] > pts["summit"]
        assert pts["aurora"] > pts["summit"]


class TestDtypeAwareSimulation:
    def test_complex_is_about_4x(self):
        d = simulate_qdwh(summit(), 1, 20_000, "slate_gpu", max_tiles=8)
        z = simulate_qdwh(summit(), 1, 20_000, "slate_gpu", max_tiles=8,
                          dtype=np.complex128)
        assert 3.0 < z.makespan / d.makespan < 4.5
        assert z.model_flops == pytest.approx(4 * d.model_flops)

    def test_deterministic(self):
        a = simulate_qdwh(summit(), 1, 15_000, "slate_cpu", max_tiles=8)
        b = simulate_qdwh(summit(), 1, 15_000, "slate_cpu", max_tiles=8)
        assert a.makespan == b.makespan


class TestProfileReport:
    def test_sections_present(self):
        p = simulate_qdwh(summit(), 1, 15_000, "slate_gpu", max_tiles=8)
        text = profile_report(p)
        for needle in ("kernel busy time", "rank utilization",
                       "communication volume", "critical path",
                       "Tflop/s"):
            assert needle in text

    def test_single_rank_no_comm_section_crash(self):
        from repro.dist import ProcessGrid
        from repro.machines import summit as sm
        # max_tiles small + 1 node, 2 ranks still has intra traffic;
        # just ensure the report renders for any configuration.
        p = simulate_qdwh(sm(), 1, 8_000, "slate_cpu", max_tiles=4)
        assert "===" in profile_report(p)
