"""Tiled Cholesky / posv tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dist import DistMatrix
from repro.tiled import posv, potrf, trsm_lower

from .conftest import make_runtime


def spd(rng, n, cplx=False):
    a = rng.standard_normal((n, n))
    if cplx:
        a = a + 1j * rng.standard_normal((n, n))
    return a @ a.conj().T + n * np.eye(n)


class TestPotrf:
    @given(st.integers(1, 30), st.integers(1, 9), st.booleans())
    def test_matches_numpy(self, n, nb, cplx):
        rng = np.random.default_rng(n * 11 + nb)
        rt = make_runtime(2, 2)
        S = spd(rng, n, cplx)
        dS = DistMatrix.from_array(rt, S, nb)
        potrf(rt, dS)
        L = np.tril(dS.to_array())
        assert np.allclose(L @ L.conj().T, S, atol=1e-9)

    def test_matches_lapack_factor(self, rng):
        rt = make_runtime()
        S = spd(rng, 16)
        dS = DistMatrix.from_array(rt, S, 4)
        potrf(rt, dS)
        assert np.allclose(np.tril(dS.to_array()), np.linalg.cholesky(S),
                           atol=1e-10)

    def test_rejects_rectangular(self, rng):
        rt = make_runtime()
        d = DistMatrix.from_array(rt, rng.standard_normal((6, 4)), 2)
        with pytest.raises(ValueError):
            potrf(rt, d)

    def test_rejects_nonsquare_tiles(self, rng):
        rt = make_runtime()
        d = DistMatrix(rt, 8, 8, 4, row_heights=(5, 3), col_widths=(4, 4))
        with pytest.raises(ValueError):
            potrf(rt, d)

    def test_not_spd_raises(self, rng):
        rt = make_runtime()
        d = DistMatrix.from_array(rt, -np.eye(8), 4)
        with pytest.raises(np.linalg.LinAlgError):
            potrf(rt, d)


class TestTrsm:
    @given(st.integers(2, 24), st.integers(1, 20), st.integers(2, 7),
           st.booleans())
    def test_forward_backward_solve(self, n, nrhs, nb, conj):
        rng = np.random.default_rng(n + nrhs * 3 + nb)
        rt = make_runtime(2, 2)
        L = np.tril(rng.standard_normal((n, n))) + n * np.eye(n)
        B = rng.standard_normal((n, nrhs))
        dL = DistMatrix.from_array(rt, L, nb)
        dB = DistMatrix.from_array(rt, B, nb)
        trsm_lower(rt, dL, dB, conj_trans=conj)
        op = L.conj().T if conj else L
        assert np.allclose(dB.to_array(), np.linalg.solve(op, B),
                           atol=1e-9)

    def test_shape_mismatch(self, rng):
        rt = make_runtime()
        dL = DistMatrix.from_array(rt, np.eye(8), 4)
        dB = DistMatrix.from_array(rt, rng.standard_normal((6, 2)), 4)
        with pytest.raises(ValueError):
            trsm_lower(rt, dL, dB, conj_trans=False)


class TestPosv:
    @given(st.integers(2, 24), st.integers(1, 16), st.integers(2, 7),
           st.booleans())
    def test_spd_solve(self, n, nrhs, nb, cplx):
        rng = np.random.default_rng(n * 7 + nrhs + nb)
        rt = make_runtime(2, 2)
        S = spd(rng, n, cplx)
        B = rng.standard_normal((n, nrhs))
        if cplx:
            B = B + 1j * rng.standard_normal((n, nrhs))
        dS = DistMatrix.from_array(rt, S, nb)
        dB = DistMatrix.from_array(rt, B, nb)
        posv(rt, dS, dB)
        assert np.allclose(dB.to_array(), np.linalg.solve(S, B),
                           atol=1e-8)

    def test_qdwh_chol_iteration_shape(self, rng):
        """The exact pattern from Algorithm 1: Z X = A^H with A m x n."""
        from repro.tiled import herk, set_identity, transpose_conj
        rt = make_runtime(2, 2)
        A = rng.standard_normal((20, 12)) * 0.3
        dA = DistMatrix.from_array(rt, A, 4)
        z = DistMatrix(rt, 12, 12, 4)
        set_identity(rt, z, row_offset=0)
        herk(rt, 2.0, dA, 1.0, z, opa="C")
        rhs = transpose_conj(rt, dA)
        posv(rt, z, rhs)
        Z = np.eye(12) + 2.0 * A.T @ A
        assert np.allclose(rhs.to_array(), np.linalg.solve(Z, A.T),
                           atol=1e-10)
