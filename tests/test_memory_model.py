"""Tests for the QDWH memory-footprint model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import frontier, summit
from repro.perf.memory import (
    max_feasible_n,
    qdwh_footprint,
    qdwh_workspace_elements,
    round_down_to,
)


class TestWorkspaceElements:
    def test_square_overhead_is_ten_x(self):
        """~(7 mn + 3 n^2) -> 10x the input for square matrices."""
        n = 10_000
        elems = qdwh_workspace_elements(n, n, nb=0)
        assert elems == pytest.approx(10 * n * n, rel=1e-6)

    @given(st.integers(100, 100000), st.integers(50, 100000))
    def test_monotone_in_both_dims(self, m, n):
        if m < n:
            m, n = n, m
        assert (qdwh_workspace_elements(m + 100, n)
                > qdwh_workspace_elements(m, n))

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            qdwh_workspace_elements(10, 20)


class TestFootprint:
    def test_paper_frontier_ceiling(self):
        """The paper's only footprint datum: n = 175k fits on 16
        Frontier nodes, and the limit is right there."""
        fr = frontier()
        fits = qdwh_footprint(fr, 16, 175_000, ranks_per_node=8,
                              use_gpu=True)
        assert fits.fits
        too_big = qdwh_footprint(fr, 16, 185_000, ranks_per_node=8,
                                 use_gpu=True)
        assert not too_big.fits

    def test_max_feasible_n_consistency(self):
        fr = frontier()
        nmax = max_feasible_n(fr, 16, ranks_per_node=8, use_gpu=True)
        assert qdwh_footprint(fr, 16, nmax, ranks_per_node=8,
                              use_gpu=True).fits
        assert not qdwh_footprint(fr, 16, nmax + 1000, ranks_per_node=8,
                                  use_gpu=True).fits
        assert round_down_to(nmax) == 175_000

    def test_more_nodes_more_capacity(self):
        sm = summit()
        n1 = max_feasible_n(sm, 1, ranks_per_node=2, use_gpu=True)
        n8 = max_feasible_n(sm, 8, ranks_per_node=2, use_gpu=True)
        assert n8 > 2 * n1

    def test_device_resident_stricter(self):
        sm = summit()
        n = 30_000
        host = qdwh_footprint(sm, 1, n, ranks_per_node=2, use_gpu=True)
        dev = qdwh_footprint(sm, 1, n, ranks_per_node=2, use_gpu=True,
                             device_resident=True)
        assert host.fits and not dev.fits  # 96 GiB HBM << 512 GiB DRAM

    def test_overhead_factor(self):
        sm = summit()
        fp = qdwh_footprint(sm, 1, 10_000, ranks_per_node=2,
                            use_gpu=False)
        assert 30 < fp.overhead_factor < 40  # 10x algorithmic * 3.5x runtime

    def test_rectangular(self):
        sm = summit()
        fp = qdwh_footprint(sm, 1, 5_000, m=20_000, ranks_per_node=2,
                            use_gpu=False)
        assert fp.m == 20_000 and fp.total_bytes > 0

    def test_round_down(self):
        assert round_down_to(177_342) == 175_000
        assert round_down_to(3_000) == 3_000
