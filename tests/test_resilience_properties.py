"""Property-based tests: seeded fault plans preserve schedule validity.

For any deterministic fault plan the simulator must (1) still complete
every task, (2) never start a task before some execution of each of
its dependencies has finished, (3) be bit-reproducible for the same
plan, and (4) not get meaningfully *faster* than the fault-free run.

On (4): exact monotonicity does not hold.  Injecting a fault perturbs
dispatch order, and list scheduling is subject to Graham's timing
anomalies — empirically, a crash that consolidates work onto fewer
ranks can cut communication enough to shave up to ~0.8% off the
makespan, and even a single transient retry can reorder dispatch for
a ~0.1% win.  The property therefore allows a small documented
anomaly margin instead of asserting ``makespan >= fault_free``.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.grid import ProcessGrid
from repro.machines import summit
from repro.obs import TimelineSink
from repro.perf.model import build_qdwh_graph
from repro.resilience import (
    FaultPlan,
    LinkDegradation,
    RankCrash,
    StragglerSlot,
    TransientFaults,
)
from repro.runtime.scheduler import simulate, taskbased_config

RANKS = 4
#: Graham-anomaly allowance (worst observed ≈ 0.992 over 1000+ seeded
#: trials; see module docstring).
ANOMALY_MARGIN = 0.97

_GRAPH = None
_CFG = None
_BASE = None


def _case():
    """Build the shared QDWH graph lazily (once per test session)."""
    global _GRAPH, _CFG, _BASE
    if _GRAPH is None:
        _GRAPH, _, _ = build_qdwh_graph(
            2000, 500, ProcessGrid.near_square(RANKS), cond=1e10)
        _CFG = taskbased_config(summit(), 2, 2, use_gpu=True)
        _BASE = simulate(_GRAPH, _CFG)
    return _GRAPH, _CFG, _BASE


@st.composite
def fault_plans(draw):
    """A seeded fault plan mixing the four fault classes."""
    _, _, base = _case()
    horizon = base.makespan
    times = st.floats(0.0, 1.5 * horizon, allow_nan=False)

    crashes = ()
    if draw(st.booleans()):
        crashes = (RankCrash(rank=draw(st.integers(0, RANKS - 1)),
                             time=draw(times)),)

    transient = None
    if draw(st.booleans()):
        # Probability kept small enough that exhausting 8 attempts is
        # astronomically unlikely (p^8 <= 1e-16 per task).
        transient = TransientFaults(
            probability=draw(st.floats(1e-4, 0.01)), max_attempts=8)

    stragglers = tuple(
        StragglerSlot(rank=draw(st.integers(0, RANKS - 1)),
                      factor=draw(st.floats(1.0, 6.0)),
                      start=(s0 := draw(times)),
                      end=s0 + draw(st.floats(0.0, horizon)))
        for _ in range(draw(st.integers(0, 2))))

    links = tuple(
        LinkDegradation(src=draw(st.none() | st.integers(0, RANKS - 1)),
                        alpha_factor=draw(st.floats(1.0, 4.0)),
                        beta_factor=draw(st.floats(1.0, 6.0)),
                        start=(s0 := draw(times)),
                        end=s0 + draw(st.floats(0.0, horizon)))
        for _ in range(draw(st.integers(0, 2))))

    return FaultPlan(seed=draw(st.integers(0, 2 ** 16)),
                     crashes=crashes, transient=transient,
                     stragglers=stragglers, links=links,
                     speculation=draw(st.booleans()),
                     crash_detect_delay=draw(st.floats(0.0, 0.01)))


@given(plan=fault_plans())
@settings(deadline=None)
def test_fault_plans_preserve_schedule_validity(plan):
    g, cfg, base = _case()
    sink = TimelineSink()
    r = simulate(g, cfg, sink=sink, faults=plan)

    # 1. Everything still completes, exactly once per logical task.
    assert r.task_count == base.task_count
    assert {ev.tid for ev in sink.tasks} == set(range(base.task_count))

    # 2. Event-level causality: a task execution may only start after
    # some execution of each dependency has ended.  (Final finish
    # times are the wrong thing to check — a consumer can legitimately
    # finish before its producer's post-crash *re*-execution.)
    ends = {}
    for ev in sink.tasks:
        ends.setdefault(ev.tid, []).append(ev.end)
    tol = 1e-9
    for ev in sink.tasks:
        for dep in g.tasks[ev.tid].deps:
            assert any(e <= ev.start + tol for e in ends[dep]), (
                f"task {ev.tid} started at {ev.start} before any "
                f"execution of dep {dep} finished")

    # 3. Makespan sanity: finite, spans the timeline, and no more
    # than the anomaly margin below the fault-free run.
    assert math.isfinite(r.makespan)
    assert r.makespan == pytest.approx(
        max(ev.end for ev in sink.tasks), rel=1e-9)
    assert r.makespan >= ANOMALY_MARGIN * base.makespan

    # 4. Recovery accounting is consistent with the plan.
    rec = r.recovery
    assert rec is not None
    # Every crash before the end of the run is observed; a marker
    # landing after the last completion may or may not still be
    # drained from the event queue.
    assert (sum(1 for c in plan.crashes if c.time < r.makespan)
            <= rec.crashes <= len(plan.crashes))
    if not plan.crashes:
        assert rec.replayed_tasks == 0 and rec.lost_tiles == 0
    if plan.transient is None:
        assert rec.transient_failures == 0
    if not plan.speculation:
        assert rec.speculative_duplicates == 0

    # 5. Same plan, same schedule — the injection is fully seeded.
    r2 = simulate(g, cfg, faults=plan)
    assert r2.makespan == r.makespan
    assert r2.recovery.as_dict() == rec.as_dict()
    assert r2.comm.as_dict() == r.comm.as_dict()
