"""End-to-end integration tests across modules.

These exercise the full stacks a downstream user would run: the tiled
polar decomposition feeding the EVD/SVD applications, the perf model
driving the same algorithm code path as the numerics, and cross-checks
between every polar method.
"""

import numpy as np
import pytest

from repro import (
    DistMatrix,
    ProcessGrid,
    Runtime,
    polar,
    qdwh,
    tiled_qdwh,
)
from repro.core.qdwh_eig import qdwh_eigh
from repro.core.qdwh_svd import qdwh_svd
from repro.matrices import generate_matrix, ill_conditioned, polar_report


def tiled_polar_fn(a: np.ndarray):
    """A qdwh-compatible polar function backed by the tiled substrate."""
    rt = Runtime(ProcessGrid(2, 2))
    nb = max(8, a.shape[1] // 4)
    da = DistMatrix.from_array(rt, a, nb)
    res = tiled_qdwh(rt, da)

    class _R:
        u = res.u.to_array()
        h = res.h.to_array()
        iterations = res.iterations

    return _R()


class TestTiledApplications:
    def test_svd_on_tiled_polar(self):
        """Full QDWH-SVD with the distributed polar underneath."""
        a = generate_matrix(96, 64, cond=1e6, seed=0)
        r = qdwh_svd(a, polar_fn=tiled_polar_fn, use_qdwh_eig=False)
        recon = (r.u * r.s[None, :]) @ r.vh
        assert np.linalg.norm(recon - a) / np.linalg.norm(a) < 1e-11

    def test_eigh_on_tiled_polar(self):
        rng = np.random.default_rng(1)
        b = rng.standard_normal((64, 64))
        h = b + b.T
        r = qdwh_eigh(h, min_block=16, polar_fn=tiled_polar_fn)
        assert np.allclose(r.w, np.linalg.eigvalsh(h), atol=1e-9)


class TestCrossMethodConsistency:
    @pytest.mark.parametrize("cond", [10.0, 1e6, 1e12])
    def test_all_polar_methods_same_factors(self, cond):
        a = generate_matrix(48, cond=cond, seed=int(np.log10(cond)))
        results = {m: polar(a, method=m)
                   for m in ("qdwh", "svd", "newton_scaled", "zolo")}
        ref = results["svd"]
        # The unitary factor's condition number is ~1/sigma_min, so
        # cross-method agreement degrades with kappa.
        tol = max(1e-9, 100 * np.finfo(float).eps * cond)
        for name, r in results.items():
            assert np.allclose(r.u, ref.u, atol=tol), name
            assert np.allclose(r.h, ref.h, atol=tol * np.abs(a).max()), name

    def test_dense_tiled_and_mixed_agree_on_wellcond(self):
        from repro import qdwh_mixed_precision
        a = generate_matrix(64, cond=100.0, seed=9)
        d = qdwh(a)
        t = tiled_polar_fn(a)
        m = qdwh_mixed_precision(a)
        assert np.allclose(d.u, t.u, atol=1e-9)
        assert np.allclose(d.u, m.u, atol=1e-4)  # f32-limited


class TestNumericSymbolicContract:
    def test_perf_point_reuses_algorithm_code(self):
        """The perf model must run the same tiled_qdwh code path: same
        iteration split as the real numeric run at the same kappa."""
        from repro import simulate_qdwh, summit
        a = ill_conditioned(96, seed=3)
        numeric = qdwh(a)
        point = simulate_qdwh(summit(), 1, 96 * 200, "slate_gpu",
                              max_tiles=8)
        assert (point.it_qr, point.it_chol) == (numeric.it_qr,
                                                numeric.it_chol)

    def test_simulated_time_positive_and_finite(self):
        from repro import simulate_qdwh, summit
        p = simulate_qdwh(summit(), 1, 5000, "slate_cpu", max_tiles=8)
        assert 0 < p.makespan < 1e7
        assert np.isfinite(p.tflops)


class TestFailureInjection:
    def test_singular_matrix_full_pipeline(self):
        """Exactly singular input: estimators return 0, QDWH falls back
        to the worst-case schedule, factors remain valid."""
        rng = np.random.default_rng(4)
        b = rng.standard_normal((60, 3))
        a = b @ rng.standard_normal((3, 40))
        r = qdwh(a)
        rep = polar_report(a, r.u, r.h)
        assert rep.orthogonality < 1e-11
        assert rep.backward < 1e-11

    def test_extreme_scaling_robust(self):
        a = generate_matrix(32, cond=1e8, seed=5)
        for scale in (1e-150, 1e150):
            r = qdwh(scale * a)
            rep = polar_report(scale * a, r.u, r.h)
            assert rep.orthogonality < 1e-12
            assert rep.backward < 1e-12

    def test_nearly_rank_one(self):
        u = np.ones((50, 1)) / np.sqrt(50)
        v = np.ones((1, 30)) / np.sqrt(30)
        a = u @ v + 1e-14 * np.random.default_rng(6).standard_normal((50, 30))
        r = qdwh(a)
        assert polar_report(a, r.u, r.h).orthogonality < 1e-11
