"""Tests for the trace exporters and shared aggregates (repro.obs.export)."""

import json

import pytest

from repro.dist import DistMatrix, ProcessGrid
from repro.machines import summit
from repro.obs import TimelineSink, chrome_trace, write_chrome_trace
from repro.obs.export import (
    GPU_TID_BASE,
    _kind_symbols,
    _slot_tid,
    ascii_gantt,
    gantt_and_legend,
    kernel_breakdown,
    rank_utilization,
)
from repro.obs.timeline import TaskEvent, TransferEvent
from repro.runtime import Runtime, simulate
from repro.runtime.scheduler import forkjoin_config, taskbased_config
from repro.tiled import geqrf


def captured_run(use_gpu=True, forkjoin=False, lookahead=None):
    rt = Runtime(ProcessGrid(2, 2), numeric=False)
    a = DistMatrix(rt, 1024, 512, 128)
    geqrf(rt, a)
    if forkjoin:
        cfg = forkjoin_config(summit(), 2, 2, use_gpu=use_gpu)
    else:
        cfg = taskbased_config(summit(), 2, 2, use_gpu=use_gpu,
                               lookahead=lookahead)
    sink = TimelineSink()
    result = simulate(rt.graph, cfg, sink=sink)
    return sink, result


class TestChromeTrace:
    def test_schema(self):
        sink, _ = captured_run()
        doc = chrome_trace(sink)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "M", "C")
            assert "pid" in ev and "name" in ev
            if ev["ph"] == "X":
                assert ev["ts"] >= 0.0
                assert ev["dur"] >= 0.0
                assert "tid" in ev
            if ev["ph"] == "C":
                assert "args" in ev

    def test_task_events_complete(self):
        sink, result = captured_run()
        doc = chrome_trace(sink)
        tasks = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e.get("cat") not in ("barrier",
                                                            "stall")]
        assert len(tasks) == result.task_count

    def test_per_pid_durations_match_per_rank_busy(self):
        """The acceptance criterion: summed dur/1e6 == per_rank_busy."""
        sink, result = captured_run()
        doc = chrome_trace(sink)
        busy = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X" and ev.get("cat") not in ("barrier", "stall"):
                busy[ev["pid"]] = busy.get(ev["pid"], 0.0) + ev["dur"] / 1e6
        for rank, expect in enumerate(result.per_rank_busy):
            assert busy.get(rank, 0.0) == pytest.approx(expect, abs=1e-9)

    def test_process_and_thread_metadata(self):
        sink, _ = captured_run()
        doc = chrome_trace(sink)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        procs = {e["pid"] for e in meta if e["name"] == "process_name"}
        assert {t.rank for t in sink.tasks} <= procs
        sched_pid = max(procs)
        threads = {(e["pid"], e["tid"]) for e in meta
                   if e["name"] == "thread_name"
                   and e["pid"] != sched_pid}
        assert len(threads) == len(sink.slots())

    def test_scheduler_rows_named_when_populated(self):
        """Perfetto labels for the barrier/stall/fault tracks appear
        exactly when those streams carry events."""
        sink, _ = captured_run(use_gpu=False, forkjoin=True)
        assert sink.barriers
        doc = chrome_trace(sink)
        procs = {e["pid"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        sched_pid = max(procs)
        names = {e["tid"]: e["args"]["name"]
                 for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"
                 and e["pid"] == sched_pid}
        assert names[0] == "barriers"
        if sink.stalls:
            assert names.get(1) == "stalls"
        assert 2 not in names  # no faults in this run
        assert 3 not in names

    def test_fault_track_named(self):
        from repro.obs.timeline import FaultEvent

        sink = TimelineSink()
        sink.on_task(TaskEvent(tid=0, kind="gemm", rank=0, slot="cpu0",
                               phase=0, flops=1.0, start=0.0, end=1.0,
                               duration=1.0))
        sink.on_fault(FaultEvent(kind="retry", time=0.5, rank=0, tid=0))
        doc = chrome_trace(sink)
        rows = [e for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "thread_name"
                and e["pid"] == 1]
        assert {"name": "faults / health"} in [e["args"] for e in rows]

    def test_measured_cpu_exported(self):
        sink = TimelineSink()
        sink.on_task(TaskEvent(tid=0, kind="gemm", rank=0, slot="thr0",
                               phase=0, flops=1.0, start=0.0, end=1.0,
                               duration=1.0, measured=True, cpu=0.25))
        sink.on_task(TaskEvent(tid=1, kind="gemm", rank=0, slot="thr0",
                               phase=0, flops=1.0, start=1.0, end=2.0,
                               duration=1.0, measured=True))
        doc = chrome_trace(sink)
        tasks = {e["args"]["tid"]: e for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert tasks[0]["args"]["cpu_ms"] == pytest.approx(250.0)
        assert "cpu_ms" not in tasks[1]["args"]  # payload-less: no cpu

    def test_counter_events_balance(self):
        """In-flight counters rise and fall back to zero."""
        sink, _ = captured_run()
        assert sink.transfers, "expected transfers in a 4-rank run"
        doc = chrome_trace(sink)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all(v >= 0 for e in counters for v in e["args"].values())
        assert all(v == 0 for v in counters[-1]["args"].values())

    def test_barrier_events_in_forkjoin(self):
        sink, _ = captured_run(use_gpu=False, forkjoin=True)
        doc = chrome_trace(sink)
        assert [e for e in doc["traceEvents"] if e.get("cat") == "barrier"]

    def test_json_round_trip(self, tmp_path):
        sink, _ = captured_run()
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(sink, path) == path
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]
        assert doc == json.loads(json.dumps(chrome_trace(sink)))

    def test_slot_tid_mapping(self):
        assert _slot_tid("cpu0") == 0
        assert _slot_tid("cpu17") == 17
        assert _slot_tid("gpu0") == GPU_TID_BASE
        assert _slot_tid("gpu5") == GPU_TID_BASE + 5
        # Threaded-backend worker lanes map like cpu slots.
        assert _slot_tid("thr0") == 0
        assert _slot_tid("thr3") == 3
        # Custom labels get a deterministic (non-hash) fallback tid.
        assert _slot_tid("weird") == _slot_tid("weird")
        assert 0 <= _slot_tid("weird") < GPU_TID_BASE

    def test_empty_timeline(self):
        doc = chrome_trace(TimelineSink())
        tasks = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert tasks == []


class TestAsciiGantt:
    def test_golden_small_timeline(self):
        """A hand-built two-rank timeline renders deterministically."""
        sink = TimelineSink()
        for tid, (rank, kind, beg, dur) in enumerate([
                (0, "geqrt", 0.0, 4.0),
                (0, "gemm", 4.0, 4.0),
                (1, "gemm", 0.0, 8.0)]):
            sink.on_task(TaskEvent(
                tid=tid, kind=kind, rank=rank, slot="cpu0", phase=0,
                flops=1.0, start=beg, end=beg + dur, duration=dur))
        out = ascii_gantt(sink, width=8)
        lines = out.splitlines()
        assert lines[0] == "gantt: 8 s captured span, 2 of 2 ranks, 3 tasks"
        assert lines[1] == "r0   |eeeegggg| 100.0%"
        assert lines[2] == "r1   |gggggggg| 100.0%"
        assert lines[3] == "legend: g=gemm  e=geqrt  .=idle"

    def test_idle_buckets_render_dots(self):
        sink = TimelineSink()
        sink.on_task(TaskEvent(tid=0, kind="gemm", rank=0, slot="cpu0",
                               phase=0, flops=1.0, start=6.0, end=8.0,
                               duration=2.0))
        out = ascii_gantt(sink, width=8)
        assert "|......gg|" in out.replace(" ", " ")

    def test_renders_real_run(self):
        sink, result = captured_run()
        out = ascii_gantt(sink, width=40)
        lines = out.splitlines()
        # header + one strip per rank + legend (+ optional stalls line)
        n_ranks = len({t.rank for t in sink.tasks})
        assert len(lines) in (2 + n_ranks, 3 + n_ranks)
        assert lines[0].startswith("gantt:")
        assert any(line.startswith("legend:") for line in lines)

    def test_utilization_margin_bounded(self):
        sink, _ = captured_run()
        for line in ascii_gantt(sink, width=40).splitlines():
            if line.startswith("r") and "|" in line:
                pct = float(line.rsplit("|", 1)[1].rstrip("%"))
                assert 0.0 <= pct <= 100.0 + 1e-9

    def test_empty_timeline(self):
        assert ascii_gantt(TimelineSink()) == "gantt: empty timeline\n"
        assert gantt_and_legend(TimelineSink()) is None

    def test_kind_symbols_distinct(self):
        kinds = ["gemm", "geqrt", "gemv", "tpqrt", "tpmqrt", "trsm"]
        symbols = _kind_symbols(kinds)
        assert len(set(symbols.values())) == len(kinds)


class TestAggregates:
    def test_kernel_breakdown_from_sink_and_result(self):
        sink, result = captured_run()
        from_sink = kernel_breakdown(sink)
        from_result = kernel_breakdown(result)
        assert {k for k, _, _ in from_sink} == {k for k, _, _ in from_result}
        assert sum(s for _, _, s in from_sink) == pytest.approx(1.0)

    def test_rank_utilization_normalized_bounded(self):
        _, result = captured_run()
        util = rank_utilization(result)
        assert 0.0 < util["min"] <= util["mean"] <= util["max"] <= 1.0

    def test_rank_utilization_legacy_scale(self):
        _, result = captured_run()
        norm = rank_utilization(result, normalize=True)
        legacy = rank_utilization(result, normalize=False)
        assert result.slots_per_rank > 1
        assert legacy["mean"] == pytest.approx(
            norm["mean"] * result.slots_per_rank)

    def test_transfer_volume_in_timeline(self):
        sink, result = captured_run()
        vol = sink.transfer_bytes()
        assert sum(vol.values()) > 0
