"""Tests for tile redistribution between layouts."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dist import DistMatrix, ProcessGrid, redistribute
from repro.runtime import Runtime

from .conftest import make_runtime


class TestRedistribute:
    @given(st.integers(1, 40), st.integers(1, 40),
           st.integers(1, 13), st.integers(1, 13))
    def test_roundtrip_any_tilings(self, m, n, nb1, nb2):
        rng = np.random.default_rng(m * 100 + n + nb1 * 7 + nb2)
        a = rng.standard_normal((m, n))
        rt = make_runtime(2, 2)
        src = DistMatrix.from_array(rt, a, nb1)
        dst = DistMatrix(rt, m, n, nb2)
        redistribute(rt, src, dst)
        assert np.array_equal(dst.to_array(), a)

    def test_across_grids(self, rng):
        a = rng.standard_normal((24, 18))
        rt = Runtime(ProcessGrid(3, 2))
        src = DistMatrix.from_array(rt, a, 8)
        from repro.dist import BlockCyclic
        dst = DistMatrix(rt, 24, 18, 5,
                         layout=BlockCyclic(ProcessGrid(3, 2), 1, 1))
        redistribute(rt, src, dst)
        assert np.array_equal(dst.to_array(), a)

    def test_custom_partitions(self, rng):
        a = rng.standard_normal((10, 10))
        rt = make_runtime()
        src = DistMatrix.from_array(rt, a, 4)
        dst = DistMatrix(rt, 10, 10, 4, row_heights=(3, 3, 4),
                         col_widths=(5, 5))
        redistribute(rt, src, dst)
        assert np.array_equal(dst.to_array(), a)

    def test_shape_mismatch(self, rng):
        rt = make_runtime()
        src = DistMatrix.from_array(rt, rng.standard_normal((4, 4)), 2)
        dst = DistMatrix(rt, 4, 6, 2)
        with pytest.raises(ValueError):
            redistribute(rt, src, dst)

    def test_dtype_mismatch(self, rng):
        rt = make_runtime()
        src = DistMatrix.from_array(rt, rng.standard_normal((4, 4)), 2)
        dst = DistMatrix(rt, 4, 4, 2, np.complex128)
        with pytest.raises(ValueError):
            redistribute(rt, src, dst)

    def test_comm_modeled(self):
        """Retiling generates real traffic in the simulator."""
        from repro.machines import summit
        from repro.runtime import simulate
        from repro.runtime.scheduler import taskbased_config

        rt = make_runtime(2, 2, numeric=False)
        src = DistMatrix(rt, 4096, 4096, 64)
        dst = DistMatrix(rt, 4096, 4096, 320)
        redistribute(rt, src, dst)
        r = simulate(rt.graph, taskbased_config(summit(), 2, 2,
                                                use_gpu=False))
        assert r.comm.total_bytes > 0
