"""Live fault tolerance on the threaded backend.

Covers the full recovery stack: FaultPlan live-fault serialization,
executor-level retry/timeout/speculation/corruption handling,
tiled_qdwh's numerical health guards (Cholesky→QR fallback, dense
degradation, estimator defaults), and checkpoint/restart under
``backend="threads"``.  Faulty runs are always compared against a
fault-free baseline — recovery must be invisible in the numerics.
"""

import json
import math
import warnings

import numpy as np
import pytest

from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.matrices import generate_matrix, polar_report
from repro.obs.timeline import (
    FAULT_CORRUPTION,
    FAULT_HEALTH,
    FAULT_RETRY,
    FAULT_STALL,
    TimelineSink,
)
from repro.resilience import (
    CheckpointPolicy,
    FaultPlan,
    QdwhCheckpointer,
    TileCorruption,
    TransientFaults,
    WorkerStall,
    plan_from_spec,
)
from repro.resilience.live import (
    InjectedTransientError,
    LiveFaultInjector,
    RecoveryPolicy,
    TileAccessor,
)
from repro.runtime import Runtime
from repro.tiled.blas3 import gemm


def _rt(plan=None, recovery=None, sink=None):
    return Runtime(ProcessGrid(1, 1), faults=plan, recovery=recovery,
                   sink=sink)


def _quiet_qdwh(rt, d, **kw):
    """tiled_qdwh with health-guard RuntimeWarnings silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return tiled_qdwh(rt, d, **kw)


class TestLivePlanSerialization:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=9,
            transient=TransientFaults(probability=0.2, max_attempts=5),
            stalls=(WorkerStall(probability=0.1, seconds=0.5,
                                kinds=("GEMM",)),),
            corruptions=(TileCorruption(probability=0.05, value="inf",
                                        max_events=2),))
        path = str(tmp_path / "plan.json")
        plan.to_json(path)
        back = FaultPlan.from_json(path)
        assert back == plan
        assert back.stalls[0].kinds == ("gemm",)  # normalized lowercase
        assert back.live_faults and not back.empty

    def test_live_faults_property(self):
        assert not FaultPlan(seed=1).live_faults
        assert FaultPlan(stalls=(WorkerStall(probability=0.1),)).live_faults
        assert FaultPlan(
            corruptions=(TileCorruption(probability=0.1),)).live_faults
        # Zero-probability live specs do not activate the live path.
        assert not FaultPlan(
            stalls=(WorkerStall(probability=0.0),)).live_faults

    def test_plan_from_spec_live_fields(self):
        plan = plan_from_spec(seed=3, stall_p=0.2, stall_seconds=0.1,
                              corrupt_p=0.05)
        assert len(plan.stalls) == 1
        assert plan.stalls[0].seconds == 0.1
        assert len(plan.corruptions) == 1
        assert plan.corruptions[0].max_events == 1
        assert not plan.empty

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerStall(probability=1.5)
        with pytest.raises(ValueError):
            WorkerStall(probability=0.1, seconds=-1.0)
        with pytest.raises(ValueError):
            TileCorruption(probability=0.1, value="zero")
        with pytest.raises(ValueError):
            TileCorruption(probability=0.1, max_events=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(task_timeout=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(straggler_factor=0.5)


class TestInjectorDeterminism:
    def test_same_plan_same_draws(self):
        plan = FaultPlan(seed=5,
                         transient=TransientFaults(probability=0.3),
                         stalls=(WorkerStall(probability=0.2,
                                             seconds=0.01),))
        a = LiveFaultInjector(plan)
        b = LiveFaultInjector(plan)
        for tid in range(50):
            assert (a.transient_fires(tid, 0)
                    == b.transient_fires(tid, 0))
            assert (a.stall_seconds(tid, "gemm", 0)
                    == b.stall_seconds(tid, "gemm", 0))

    def test_final_allowed_attempt_never_fails(self):
        plan = FaultPlan(seed=5, transient=TransientFaults(
            probability=1.0, max_attempts=4))
        inj = LiveFaultInjector(plan)
        for tid in range(20):
            assert inj.transient_fires(tid, 0)
            assert inj.transient_fires(tid, 2)
            assert not inj.transient_fires(tid, 3)

    def test_corruption_budget(self):
        plan = FaultPlan(seed=5, corruptions=(TileCorruption(
            probability=1.0, max_events=2),))
        inj = LiveFaultInjector(plan)
        fired = [inj.corruption_for(t, "gemm", 0, 4) for t in range(10)]
        assert sum(f is not None for f in fired) == 2


def _gemm_workload(rt, n=64, nb=16, seed=0):
    """c = a @ b on the runtime; returns (c, expected ndarray)."""
    rng = np.random.default_rng(seed)
    am, bm = rng.standard_normal((n, n)), rng.standard_normal((n, n))
    a = DistMatrix.from_array(rt, am, nb, name="a")
    b = DistMatrix.from_array(rt, bm, nb, name="b")
    c = DistMatrix.from_array(rt, np.zeros((n, n)), nb, name="c")
    gemm(rt, 1.0, a, b, 0.0, c)
    return c, am @ bm


class TestExecutorRecovery:
    def test_transient_retry_recovers(self):
        plan = FaultPlan(seed=2, transient=TransientFaults(
            probability=0.5, max_attempts=4))
        rt = _rt(plan, RecoveryPolicy(max_retries=3, backoff=1e-4))
        rt.enable_deferred(workers=2)
        c, want = _gemm_workload(rt)
        assert np.allclose(c.to_array(), want)
        rec = rt.exec_stats.recovery
        assert rec.transient_failures > 0
        assert rec.retried_tasks > 0
        assert rt.executor.inflight_attempts == 0
        rt.close()

    def test_retry_exhaustion_raises(self):
        # max_attempts=10 keeps the transient firing past the policy's
        # single retry, so the failure must surface.
        plan = FaultPlan(seed=2, transient=TransientFaults(
            probability=1.0, max_attempts=10))
        rt = _rt(plan, RecoveryPolicy(max_retries=1, backoff=1e-4))
        rt.enable_deferred(workers=2)
        c, _ = _gemm_workload(rt)
        with pytest.raises(InjectedTransientError):
            rt.sync()
        assert rt.executor.inflight_attempts == 0
        rt.abandon_pending()
        rt.close()

    def test_corruption_detected_and_repaired(self):
        plan = FaultPlan(seed=4, corruptions=(TileCorruption(
            probability=1.0, max_events=2, kinds=("gemm",)),))
        sink = TimelineSink()
        rt = _rt(plan, sink=sink)  # default policy: scrub_writes on
        rt.enable_deferred(workers=2)
        c, want = _gemm_workload(rt)
        assert np.allclose(c.to_array(), want)  # NaN never escapes
        rec = rt.exec_stats.recovery
        assert rec.corrupted_tiles == 2
        assert rec.retried_tasks >= 2
        assert any(f.kind == FAULT_CORRUPTION for f in sink.faults)
        rt.close()

    def test_stall_speculation_and_timeout(self):
        plan = FaultPlan(seed=6, stalls=(WorkerStall(
            probability=0.3, seconds=0.4),))
        sink = TimelineSink()
        pol = RecoveryPolicy(task_timeout=0.1, min_straggler_seconds=0.05,
                             min_samples=3, poll_interval=0.01)
        rt = _rt(plan, pol, sink=sink)
        rt.enable_deferred(workers=2)
        c, want = _gemm_workload(rt, n=48)
        assert np.allclose(c.to_array(), want)
        rec = rt.exec_stats.recovery
        assert rec.injected_stalls > 0
        assert rec.timeouts > 0
        # A stalled original loses to its backup: the winner's write is
        # the only one that lands (checked by the numeric equality
        # above); the loser reports itself without touching tiles.
        assert rec.speculative_duplicates >= rec.speculation_wins
        assert any(f.kind == FAULT_STALL for f in sink.faults)
        assert rt.executor.inflight_attempts == 0
        rt.close()

    def test_workers1_faulty_bit_identical_to_fault_free(self):
        plan = FaultPlan(seed=8, transient=TransientFaults(
            probability=0.4, max_attempts=4))
        rt1 = _rt(plan, RecoveryPolicy(max_retries=3, backoff=1e-4))
        rt1.enable_deferred(workers=1)
        c1, _ = _gemm_workload(rt1)
        out1 = c1.to_array()
        rt1.close()
        rt2 = Runtime(ProcessGrid(1, 1))
        rt2.enable_deferred(workers=1)
        c2, _ = _gemm_workload(rt2)
        # Retried tasks re-run the identical payload on restored
        # inputs, so recovery is bitwise invisible.
        assert np.array_equal(out1, c2.to_array())
        rt2.close()

    def test_retry_events_in_sink(self):
        plan = FaultPlan(seed=2, transient=TransientFaults(
            probability=0.5, max_attempts=4))
        sink = TimelineSink()
        rt = _rt(plan, RecoveryPolicy(max_retries=3, backoff=1e-4),
                 sink=sink)
        rt.enable_deferred(workers=2)
        c, want = _gemm_workload(rt)
        assert np.allclose(c.to_array(), want)
        kinds = sink.fault_counts()
        assert kinds.get(FAULT_RETRY, 0) > 0
        assert kinds.get("transient", 0) > 0
        rt.close()


class TestQdwhUnderLiveFaults:
    N, NB, COND, SEED = 96, 32, 1e8, 11

    def _baseline(self, a):
        rt = Runtime(ProcessGrid(1, 1))
        d = DistMatrix.from_array(rt, a.copy(), self.NB)
        res = tiled_qdwh(rt, d)
        out = (d.to_array(), res.h.to_array(), res.iterations)
        rt.close()
        return out

    def test_faulty_qdwh_matches_fault_free(self):
        a = generate_matrix(self.N, cond=self.COND, seed=self.SEED)
        u0, h0, it0 = self._baseline(a)
        plan = FaultPlan(
            seed=self.SEED,
            transient=TransientFaults(probability=0.15, max_attempts=4),
            stalls=(WorkerStall(probability=0.05, seconds=0.05),),
            corruptions=(TileCorruption(probability=0.5, max_events=1),))
        rt = _rt(plan, RecoveryPolicy(max_retries=3, backoff=1e-4,
                                      min_straggler_seconds=0.02,
                                      min_samples=3,
                                      scrub_writes=True))
        d = DistMatrix.from_array(rt, a.copy(), self.NB)
        res = tiled_qdwh(rt, d, backend="threads", workers=4)
        assert res.converged and not res.degraded
        assert res.iterations == it0
        rep = polar_report(a, d.to_array(), res.h.to_array())
        eps = np.finfo(np.float64).eps
        assert rep.backward < 100.0 * eps * math.sqrt(self.COND)
        rec = rt.exec_stats.recovery
        assert rec.transient_failures >= 3
        assert rec.injected_stalls >= 1
        assert rec.corrupted_tiles >= 1
        assert rt.executor.inflight_attempts == 0
        rt.close()


class TestCholeskyFallback:
    @pytest.mark.parametrize("backend,workers",
                             [("eager", None), ("threads", 2)])
    def test_posv_breakdown_falls_back_to_qr(self, monkeypatch, backend,
                                             workers):
        import repro.tiled.cholesky as chol

        orig = chol.kernels.potrf_kernel
        state = {"calls": 0}

        def breaking(*args, **kw):
            state["calls"] += 1
            if state["calls"] == 1:
                raise np.linalg.LinAlgError("forced breakdown")
            return orig(*args, **kw)

        monkeypatch.setattr(chol.kernels, "potrf_kernel", breaking)
        a = generate_matrix(64, cond=1e6, seed=3)
        rt = Runtime(ProcessGrid(1, 1))
        d = DistMatrix.from_array(rt, a.copy(), 16)
        res = _quiet_qdwh(rt, d, backend=backend, workers=workers)
        assert res.converged and not res.degraded
        assert any("Cholesky breakdown" in m for m in res.health_log)
        # The broken-down step reran as QR; later steps still use chol.
        assert res.it_qr >= 1 and res.it_chol >= 1
        rep = polar_report(a, d.to_array(), res.h.to_array())
        assert rep.orthogonality < 5e-13
        assert rep.backward < 1e-10
        rt.close()

    def test_fallback_matches_health_event_count(self, monkeypatch):
        import repro.tiled.cholesky as chol

        orig = chol.kernels.potrf_kernel
        state = {"calls": 0}

        def breaking(*args, **kw):
            state["calls"] += 1
            if state["calls"] == 1:
                raise np.linalg.LinAlgError("boom")
            return orig(*args, **kw)

        monkeypatch.setattr(chol.kernels, "potrf_kernel", breaking)
        sink = TimelineSink()
        rt = Runtime(ProcessGrid(1, 1), sink=sink)
        d = DistMatrix.from_array(rt, generate_matrix(48, cond=1e4,
                                                      seed=1), 16)
        res = _quiet_qdwh(rt, d)
        assert res.converged
        assert sink.fault_counts().get(FAULT_HEALTH, 0) == \
            len(res.health_log) == 1
        rt.close()


class TestHealthGuards:
    def test_nan_slips_past_scrub_degrades_to_dense(self):
        # scrub_writes off: the injected NaN reaches the convergence
        # norm and the algorithm-level guard must catch it.
        a = generate_matrix(64, cond=1e4, seed=5)
        plan = FaultPlan(seed=7, corruptions=(TileCorruption(
            probability=1.0, max_events=1, kinds=("gemm", "add")),))
        rt = _rt(plan, RecoveryPolicy(scrub_writes=False))
        d = DistMatrix.from_array(rt, a.copy(), 16)
        res = _quiet_qdwh(rt, d, backend="threads", workers=2)
        assert res.degraded and res.converged
        assert any("health check failed" in m for m in res.health_log)
        rep = polar_report(a, d.to_array(), res.h.to_array())
        assert rep.orthogonality < 5e-13
        assert rep.backward < 1e-10
        assert rt.exec_stats.recovery.health_events >= 1
        rt.close()

    def test_garbage_cond_est_uses_conservative_default(self):
        a = generate_matrix(48, cond=1e4, seed=2)
        rt = Runtime(ProcessGrid(1, 1))
        d = DistMatrix.from_array(rt, a.copy(), 16)
        res = _quiet_qdwh(rt, d, cond_est=float("nan"))
        assert res.converged and not res.degraded
        assert any("cond_est" in m for m in res.health_log)
        rep = polar_report(a, d.to_array(), res.h.to_array())
        assert rep.backward < 1e-10
        rt.close()

    def test_health_guard_warns(self):
        a = generate_matrix(32, cond=1e2, seed=2)
        rt = Runtime(ProcessGrid(1, 1))
        d = DistMatrix.from_array(rt, a.copy(), 16)
        with pytest.warns(RuntimeWarning, match="cond_est"):
            tiled_qdwh(rt, d, cond_est=-3.0)
        rt.close()

    def test_small_max_iter_keeps_partial_result(self):
        # A deliberately tiny budget (interrupt workflows) must NOT
        # trigger the dense fallback.
        a = generate_matrix(48, cond=1e8, seed=2)
        rt = Runtime(ProcessGrid(1, 1))
        d = DistMatrix.from_array(rt, a.copy(), 16)
        res = tiled_qdwh(rt, d, max_iter=2)
        assert not res.converged and not res.degraded
        assert res.iterations == 2
        rt.close()


class TestThreadsCheckpoint:
    def _factors(self, a, nb=16, **kw):
        rt = Runtime(ProcessGrid(1, 1))
        d = DistMatrix.from_array(rt, a.copy(), nb)
        res = tiled_qdwh(rt, d, **kw)
        out = (d.to_array(), res.h.to_array(), res)
        rt.close()
        return out

    def test_threads_resume_bit_identical(self, tmp_path):
        a = generate_matrix(64, cond=1e6, seed=3)
        ck = str(tmp_path / "ck")
        u0, h0, _ = self._factors(a)  # uninterrupted eager reference
        # Interrupt after 2 iterations on the threaded backend, then
        # resume.  workers=1 keeps the bit-identity contract.
        _, _, part = self._factors(
            a, backend="threads", workers=1, max_iter=2,
            checkpoint=QdwhCheckpointer(ck))
        assert not part.converged
        u1, h1, res = self._factors(
            a, backend="threads", workers=1,
            checkpoint=QdwhCheckpointer(ck))
        assert res.converged
        assert np.array_equal(u0, u1)
        assert np.array_equal(h0, h1)
        # Convergence clears the checkpoint directory.
        assert QdwhCheckpointer(ck).load() is None

    def test_threads_resume_multiworker(self, tmp_path):
        a = generate_matrix(64, cond=1e6, seed=4)
        ck = str(tmp_path / "ck")
        u0, h0, _ = self._factors(a)
        self._factors(a, backend="threads", workers=4, max_iter=2,
                      checkpoint=QdwhCheckpointer(ck))
        u1, h1, res = self._factors(a, backend="threads", workers=4,
                                    checkpoint=QdwhCheckpointer(ck))
        assert res.converged
        assert np.allclose(u0, u1, atol=1e-12)
        assert np.allclose(h0, h1, atol=1e-12)

    def test_stale_fingerprint_ignored(self, tmp_path):
        ck = str(tmp_path / "ck")
        a = generate_matrix(48, cond=1e4, seed=1)
        b = generate_matrix(48, cond=1e4, seed=2)  # same shape/dtype
        self._factors(a, max_iter=1, checkpoint=QdwhCheckpointer(ck))
        assert QdwhCheckpointer(ck).load() is not None
        u_b, h_b, res = self._factors(b, checkpoint=QdwhCheckpointer(ck))
        u_ref, h_ref, _ = self._factors(b)
        # The stale state (from a) was ignored, not resumed.
        assert res.converged
        assert np.array_equal(u_b, u_ref)
        assert np.array_equal(h_b, h_ref)

    def test_checkpoint_interval_policy(self, tmp_path):
        a = generate_matrix(48, cond=1e4, seed=1)
        ck = QdwhCheckpointer(str(tmp_path / "ck"),
                              CheckpointPolicy(every=2))
        self._factors(a, max_iter=3, checkpoint=ck)
        state = QdwhCheckpointer(str(tmp_path / "ck")).load()
        assert state is not None and state["it"] == 2

    def test_checkpoint_under_live_faults(self, tmp_path):
        # The full stack at once: faults + recovery + checkpoint.
        a = generate_matrix(64, cond=1e6, seed=9)
        ck = str(tmp_path / "ck")
        u0, h0, _ = self._factors(a)
        plan = FaultPlan(seed=9, transient=TransientFaults(
            probability=0.2, max_attempts=4))
        rt = _rt(plan, RecoveryPolicy(max_retries=3, backoff=1e-4))
        d = DistMatrix.from_array(rt, a.copy(), 16)
        res = tiled_qdwh(rt, d, backend="threads", workers=2,
                         max_iter=2, checkpoint=QdwhCheckpointer(ck))
        assert not res.converged
        rt.close()
        u1, h1, res2 = self._factors(a, backend="threads", workers=2,
                                     checkpoint=QdwhCheckpointer(ck))
        assert res2.converged
        assert np.allclose(u0, u1, atol=1e-12)
        assert np.allclose(h0, h1, atol=1e-12)


class TestAcceptanceScenario:
    def test_seeded_plan_n256_kappa1e16(self, tmp_path):
        """The PR's acceptance gate: n=256 at kappa=1e16 under a seeded
        plan with transients, stalls, and a NaN corruption converges on
        threads(4) with berr at the condition-scaled tolerance, and the
        recovery shows up in both RecoveryStats and the chrome trace."""
        n, nb, cond, seed = 256, 64, 1e16, 11
        a = generate_matrix(n, cond=cond, seed=seed)

        rt0 = Runtime(ProcessGrid(1, 1))
        d0 = DistMatrix.from_array(rt0, a.copy(), nb)
        res0 = tiled_qdwh(rt0, d0)
        rep0 = polar_report(a, d0.to_array(), res0.h.to_array())
        rt0.close()

        plan = FaultPlan(
            seed=seed,
            transient=TransientFaults(probability=0.1, max_attempts=4),
            stalls=(WorkerStall(probability=0.05, seconds=0.05),),
            corruptions=(TileCorruption(probability=0.5, max_events=1),))
        sink = TimelineSink()
        rt = _rt(plan, RecoveryPolicy(max_retries=3, backoff=1e-4,
                                      min_straggler_seconds=0.02,
                                      min_samples=3, scrub_writes=True),
                 sink=sink)
        d = DistMatrix.from_array(rt, a.copy(), nb)
        res = tiled_qdwh(rt, d, backend="threads", workers=4)
        rep = polar_report(a, d.to_array(), res.h.to_array())
        rec = rt.exec_stats.recovery
        leaked = rt.executor.inflight_attempts
        rt.close()

        assert res.converged
        eps = np.finfo(np.float64).eps
        tol = max(100.0 * eps * math.sqrt(cond), 10.0 * rep0.backward)
        assert rep.backward <= tol
        assert rec.transient_failures >= 3
        assert rec.retried_tasks >= 3
        assert rec.injected_stalls >= 1
        assert rec.corrupted_tiles >= 1
        assert leaked == 0

        # Retries and speculation are visible in the exported trace.
        from repro.obs.export import write_chrome_trace

        counts = sink.fault_counts()
        assert counts.get(FAULT_RETRY, 0) >= 3
        assert counts.get(FAULT_STALL, 0) >= 1
        assert counts.get(FAULT_CORRUPTION, 0) >= 1
        path = str(tmp_path / "trace.json")
        write_chrome_trace(sink, path)
        blob = json.load(open(path))
        fault_names = {ev.get("name", "") for ev in blob["traceEvents"]
                       if ev.get("cat") == "fault"}
        for kind in (FAULT_RETRY, FAULT_STALL, FAULT_CORRUPTION):
            assert any(name.startswith(kind) for name in fault_names)
