"""Tests for the multi-process distributed runtime.

Three layers, tested at three granularities:

* :class:`DynamicScheduler` — pure bookkeeping, unit-tested with
  hand-built task lists (dependency counting, locality placement,
  steal-on-idle, worker removal for crash recovery).
* :class:`SharedTileStore` — shm segment lifecycle: pin/migrate,
  refcounts, evacuation of live results at close, and the
  ``/dev/shm`` scan that grounds the leak gates.
* :class:`ProcessExecutor` end to end via ``tiled_qdwh
  (backend="processes")`` — bit-identity with the eager backend,
  real SIGKILL crash recovery, and the zero-leak invariants.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.matrices import generate_matrix, polar_report
from repro.runtime import Runtime
from repro.runtime.distributed import (
    DynamicScheduler,
    SharedTileStore,
    scan_segments,
)
from repro.runtime.task import Task, TaskKind


def _task(tid, deps=(), reads=(), writes=()):
    return Task(tid=tid, kind=TaskKind.GEMM, reads=tuple(reads),
                writes=tuple(writes), rank=0, phase=0, deps=tuple(deps))


def _sched(tasks, worker_ok=None, pipeline_depth=2):
    ok = worker_ok if worker_ok is not None \
        else {t.tid: True for t in tasks}
    return DynamicScheduler(tasks, 0, len(tasks), ok,
                            pipeline_depth=pipeline_depth)


class TestDynamicScheduler:
    def test_dependency_counting_releases_successors(self):
        tasks = [_task(0), _task(1, deps=(0,)), _task(2, deps=(0, 1))]
        s = _sched(tasks)
        s.add_worker(0)
        assert s.next_for(0) == 0
        assert s.next_for(0) is None        # 1 and 2 still blocked
        assert s.on_done(0, 0) == [1]
        assert s.next_for(0) == 1
        assert s.on_done(1, 0) == [2]
        assert s.next_for(0) == 2
        s.on_done(2, 0)
        assert s.pending == 0

    def test_driver_tasks_never_reach_workers(self):
        tasks = [_task(0), _task(1)]
        s = _sched(tasks, worker_ok={0: True, 1: False})
        s.add_worker(0)
        assert s.next_driver() == 1
        assert s.next_for(0) == 0
        assert s.next_driver() is None

    def test_locality_prefers_resident_tiles(self):
        warm = (1, 0, 0)
        tasks = [_task(0, reads=[warm]), _task(1, reads=[warm]),
                 _task(2, reads=[(2, 5, 5)])]
        s = _sched(tasks, pipeline_depth=4)
        s.add_worker(0)
        s.add_worker(1)
        # Worker 1 already touched the warm tile this window.
        s.workers[1].resident.add(warm)
        s.assign_ready()
        # Both warm-tile tasks landed on worker 1's plan queue.
        assert list(s.workers[1].queue)[:2] == [0, 1]

    def test_steal_takes_back_of_longest_queue(self):
        tasks = [_task(i) for i in range(6)]
        s = _sched(tasks, pipeline_depth=8)
        w0 = s.add_worker(0)
        s.add_worker(1)
        s.assign_ready()
        # Force the imbalance: pile everything on worker 0's queue.
        s.workers[1].queue.clear()
        w0.queue.clear()
        w0.queue.extend([0, 1, 2, 3, 4, 5])
        got = s.next_for(1)
        assert got == 5                     # stolen from the back
        assert s.workers[1].steals == 1
        assert s.next_for(0) == 0           # owner still drains FIFO

    def test_pipeline_depth_caps_inflight(self):
        tasks = [_task(i) for i in range(4)]
        s = _sched(tasks, pipeline_depth=2)
        s.add_worker(0)
        assert s.next_for(0) is not None
        assert s.next_for(0) is not None
        assert s.next_for(0) is None        # cap reached
        s.on_done(0, 0)
        assert s.next_for(0) is not None

    def test_remove_worker_returns_held_work_for_replay(self):
        tasks = [_task(i) for i in range(5)]
        s = _sched(tasks, pipeline_depth=2)
        s.add_worker(0)
        a, b = s.next_for(0), s.next_for(0)
        s.assign_ready()                    # rest queue on worker 0
        queued, inflight = s.remove_worker(0)
        assert inflight == sorted([a, b])
        assert set(queued) == {2, 3, 4} - {a, b}
        # Requeued work flows to a survivor.
        s.requeue(queued + inflight)
        s.add_worker(1)
        seen = {s.next_for(1), s.next_for(1)}
        assert seen <= set(range(5))
        # A dead worker never receives work again.
        assert s.next_for(0) is None
        assert s.remove_worker(0) == ([], [])

    def test_out_of_window_deps_are_external(self):
        tasks = [_task(0), _task(1, deps=(0,)), _task(2, deps=(0, 1))]
        s = DynamicScheduler(tasks, 1, 3, {1: True, 2: True})
        s.add_worker(0)
        # dep 0 predates the window: task 1 is born ready.
        assert s.next_for(0) == 1


class TestSharedTileStore:
    def _mat(self, rt, n=8, nb=4):
        a = np.arange(n * n, dtype=np.float64).reshape(n, n)
        return a, DistMatrix.from_array(rt, a, nb)

    def test_pin_is_idempotent_and_scannable(self):
        rt = Runtime(ProcessGrid(1, 1))
        _, d = self._mat(rt)
        store = SharedTileStore()
        arr = store.pin_tile(d, 0, 0, (4, 4), np.float64)
        assert d._tiles[(0, 0)] is arr
        assert store.pin_tile(d, 0, 0, (4, 4), np.float64) is arr
        assert len(store.live_segments()) == 1
        assert scan_segments(store.prefix) == store.live_segments()
        store.close()
        rt.close()

    def test_driver_replaced_tile_migrates_back(self):
        rt = Runtime(ProcessGrid(1, 1))
        _, d = self._mat(rt)
        store = SharedTileStore()
        arr = store.pin_tile(d, 0, 0, (4, 4), np.float64)
        fresh = np.full((4, 4), 7.0)
        d._tiles[(0, 0)] = fresh            # heap array, not the segment
        again = store.pin_tile(d, 0, 0, (4, 4), np.float64)
        assert again is arr                 # same segment reused
        assert np.array_equal(arr, fresh)
        assert len(store.live_segments()) == 1
        store.close()
        rt.close()

    def test_refcounts_pin_segments_past_release(self):
        rt = Runtime(ProcessGrid(1, 1))
        _, d = self._mat(rt)
        store = SharedTileStore()
        store.pin_tile(d, 0, 0, (4, 4), np.float64)
        name = store.segment_of((d.mat_id, 0, 0))
        assert store.refcount(name) == 1
        store.incref(name)
        store.decref(name)
        assert store.refcount(name) == 1
        store.decref(name)
        assert store.refcount(name) == 0
        assert scan_segments(store.prefix) == []
        store.close()
        rt.close()

    def test_close_unlinks_everything_and_is_idempotent(self):
        rt = Runtime(ProcessGrid(1, 1))
        _, d = self._mat(rt)
        store = SharedTileStore()
        for i in range(2):
            for j in range(2):
                store.pin_tile(d, i, j, (4, 4), np.float64)
        assert len(scan_segments(store.prefix)) == 4
        store.close()
        assert scan_segments(store.prefix) == []
        assert store.closed
        store.close()                       # idempotent
        rt.close()

    def test_close_evacuates_live_results(self):
        # Results outlive the store: after close() the matrix's tiles
        # must be private copies, not views over unmapped segments
        # (reading a stale view would segfault, not raise).
        rt = Runtime(ProcessGrid(1, 1))
        a, d = self._mat(rt)
        store = SharedTileStore()
        for i in range(2):
            for j in range(2):
                store.pin_tile(
                    d, i, j, (d.tile_rows(i), d.tile_cols(j)),
                    np.float64)
        store.close()
        assert np.array_equal(d.to_array(), a)
        rt.close()


def _run_eager(a, nb):
    rt = Runtime(ProcessGrid(1, 1))
    d = DistMatrix.from_array(rt, a.copy(), nb)
    res = tiled_qdwh(rt, d)
    u, h = res.u.to_array(), res.h.to_array()
    rt.close()
    return u, h, res


def _run_processes(a, nb, workers, faults=None, recovery=None):
    rt = Runtime(ProcessGrid(1, 1), faults=faults, recovery=recovery)
    d = DistMatrix.from_array(rt, a.copy(), nb)
    res = tiled_qdwh(rt, d, backend="processes", workers=workers)
    u, h = res.u.to_array(), res.h.to_array()
    ex = rt._executor
    leaked = ex.inflight_attempts
    prefix = ex.store.prefix
    stats = rt.exec_stats
    rt.close()
    return u, h, res, stats, leaked, scan_segments(prefix)


class TestProcessesBackend:
    N, NB = 96, 32

    def test_single_worker_bit_identical_to_eager(self):
        a = generate_matrix(self.N, cond=1e8, seed=3)
        u0, h0, res0 = _run_eager(a, self.NB)
        u1, h1, res1, _, leaked, shm = _run_processes(a, self.NB, 1)
        assert res1.iterations == res0.iterations
        assert np.array_equal(u1, u0)
        assert np.array_equal(h1, h0)
        assert leaked == 0 and shm == []

    def test_multi_worker_matches_eager(self):
        a = generate_matrix(self.N, cond=1e8, seed=3)
        u0, h0, _ = _run_eager(a, self.NB)
        u, h, res, stats, leaked, shm = _run_processes(a, self.NB, 2)
        assert res.converged
        assert np.array_equal(u, u0)
        assert np.array_equal(h, h0)
        assert leaked == 0 and shm == []
        assert stats.comm_messages > 0
        assert stats.comm_bytes > 0

    def test_results_survive_runtime_close(self):
        # The factors are read *after* rt.close() above; also verify a
        # fresh read of every tile works (evacuation, not luck).
        a = generate_matrix(64, cond=1e4, seed=11)
        u, h, _, _, _, _ = _run_processes(a, 32, 2)
        rep = polar_report(a, u, h)
        assert rep.orthogonality < 1e-12


class TestCrashRecovery:
    def test_sigkilled_worker_is_replayed_to_convergence(self):
        from repro.resilience import plan_from_spec
        from repro.resilience.live import RecoveryPolicy

        n, nb, workers = 128, 32, 3
        a = generate_matrix(n, cond=1e8, seed=5)
        u0, h0, _ = _run_eager(a, nb)
        plan = plan_from_spec(seed=5, crash=("1@0.05",))
        pol = RecoveryPolicy(max_retries=3)
        u, h, res, stats, leaked, shm = _run_processes(
            a, nb, workers, faults=plan, recovery=pol)
        rec = stats.recovery
        assert rec.crashes == 1
        assert rec.dead_ranks
        assert rec.replayed_tasks >= 0
        assert res.converged
        # Recovery must be numerically invisible: bit-identical replay.
        assert np.array_equal(u, u0)
        assert np.array_equal(h, h0)
        # The zero-leak invariants CI gates on.
        assert leaked == 0
        assert shm == []

    def test_crash_only_plan_forces_recovery_on(self):
        # A plan with only crashes has no live in-payload faults, so
        # LiveFaultInjector.active is False — the executor must still
        # honour it (read the plan directly) instead of dropping it.
        from repro.resilience import plan_from_spec

        a = generate_matrix(96, cond=1e4, seed=9)
        plan = plan_from_spec(seed=9, crash=("0@0.02",))
        u, h, res, stats, leaked, shm = _run_processes(
            a, 32, 2, faults=plan)
        assert stats.recovery.crashes == 1
        assert res.converged and leaked == 0 and shm == []


class TestRuntimeLifecycle:
    def test_close_is_idempotent(self):
        rt = Runtime(ProcessGrid(1, 1), deferred=True, workers=1)
        a = generate_matrix(48, cond=1e2, seed=1)
        d = DistMatrix.from_array(rt, a, 24)
        tiled_qdwh(rt, d, backend="processes", workers=1)
        rt.close()
        rt.close()

    def test_context_manager_closes(self):
        with Runtime(ProcessGrid(1, 1), deferred=True, workers=1) as rt:
            a = generate_matrix(48, cond=1e2, seed=1)
            d = DistMatrix.from_array(rt, a, 24)
            res = tiled_qdwh(rt, d, backend="processes", workers=1)
            ex = rt._executor
            prefix = ex.store.prefix
        assert res.converged
        assert rt._closed
        assert scan_segments(prefix) == []

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            Runtime(ProcessGrid(1, 1), backend="carrier-pigeon")


class TestWorkerDeathByHand:
    def test_external_sigkill_mid_run_recovers(self):
        # Not via the injector: kill a live worker process from the
        # test, exactly what the OOM killer would do.
        from repro.resilience.live import RecoveryPolicy

        n, nb, workers = 128, 32, 2
        a = generate_matrix(n, cond=1e4, seed=13)
        rt = Runtime(ProcessGrid(1, 1), deferred=True, workers=workers,
                     recovery=RecoveryPolicy(max_retries=2))
        d = DistMatrix.from_array(rt, a.copy(), nb)

        killed = {"done": False}

        def killer():
            deadline = time.time() + 10.0
            while time.time() < deadline and not killed["done"]:
                ex = rt._executor
                pool = getattr(ex, "_pool", None) if ex else None
                if pool:
                    for w in list(pool.values()):
                        if w.proc.is_alive():
                            os.kill(w.pid, signal.SIGKILL)
                            killed["done"] = True
                            return
                time.sleep(0.005)

        import threading
        t = threading.Thread(target=killer)
        t.start()
        res = tiled_qdwh(rt, d, backend="processes", workers=workers)
        t.join(timeout=10.0)
        u, h = res.u.to_array(), res.h.to_array()
        leaked = rt._executor.inflight_attempts
        prefix = rt._executor.store.prefix
        rec = rt.exec_stats.recovery
        rt.close()

        assert res.converged
        assert killed["done"]
        assert rec.crashes >= 1
        rep = polar_report(a, u, h)
        assert rep.orthogonality < 1e-12
        assert rep.backward < 1e-10
        assert leaked == 0
        assert scan_segments(prefix) == []
