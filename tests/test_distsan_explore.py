"""DistSan explorer: clean scheduler passes, every mutant dies."""

import pytest

from repro.analysis.dist.explore import (ModelShmStore, Scenario, _task,
                                         builtin_scenarios, explore)
from repro.analysis.dist.mutants import MUTANTS, mutant_gate
from repro.runtime.distributed.scheduling import DynamicScheduler


class TestCleanScheduler:
    @pytest.mark.parametrize("scenario", builtin_scenarios(),
                             ids=lambda s: s.name)
    def test_no_findings_on_real_scheduler(self, scenario):
        rep = explore(scenario, max_schedules=150)
        assert rep.findings == []
        assert rep.schedules >= 1
        assert rep.steps > 0

    def test_exploration_is_deterministic(self):
        sc = builtin_scenarios()[1]
        a = explore(sc, max_schedules=60)
        b = explore(sc, max_schedules=60)
        assert (a.schedules, a.steps, a.findings) == \
            (b.schedules, b.steps, b.findings)

    def test_small_scenarios_are_exhausted(self):
        chain = builtin_scenarios()[0]
        rep = explore(chain, max_schedules=400)
        assert not rep.truncated

    def test_bound_zero_runs_only_default_schedule(self):
        rep = explore(builtin_scenarios()[0], preemption_bound=0)
        assert rep.schedules == 1
        assert rep.findings == []

    def test_higher_bound_explores_more(self):
        sc = builtin_scenarios()[1]
        low = explore(sc, preemption_bound=1, max_schedules=10_000)
        high = explore(sc, preemption_bound=2, max_schedules=10_000)
        assert high.schedules > low.schedules


class TestMutantGate:
    @pytest.mark.parametrize("mutant", MUTANTS, ids=lambda m: m.name)
    def test_each_mutant_is_killed(self, mutant):
        killed_by = None
        for sc in builtin_scenarios():
            rep = explore(sc, scheduler=mutant.scheduler,
                          store=mutant.store, max_schedules=600,
                          stop_on_finding=True)
            if rep.findings:
                killed_by = rep.findings[0].invariant
                break
        assert killed_by is not None, f"mutant {mutant.name} survived"

    def test_gate_passes_end_to_end(self):
        gate = mutant_gate(max_schedules=600)
        assert gate.survivors == []
        assert gate.clean_findings == []
        assert gate.ok

    def test_finding_carries_replayable_schedule(self):
        from repro.analysis.dist.mutants import LostWakeupScheduler

        chain = builtin_scenarios()[0]
        rep = explore(chain, scheduler=LostWakeupScheduler,
                      stop_on_finding=True)
        f = rep.findings[0]
        assert f.invariant == "task-lost"
        assert f.trace                       # actions leading to it
        assert f.scenario == "chain"


class TestModelDetails:
    def test_driver_tasks_never_counted_as_shm(self):
        tasks = (_task(0), _task(1, deps=[0]))
        sc = Scenario("d", tasks, {0: True, 1: False})
        rep = explore(sc)
        assert rep.findings == []

    def test_crashing_every_worker_is_not_a_finding(self):
        # Fault budget can strand the run (all workers dead, no
        # respawn); that is the scenario's fault, not the scheduler's.
        tasks = tuple(_task(i) for i in range(3))
        sc = Scenario("strand", tasks, {t.tid: True for t in tasks},
                      workers=1, max_crashes=1, max_spawns=0)
        rep = explore(sc, max_schedules=200)
        assert rep.findings == []

    def test_store_model_balances_on_clean_run(self):
        store = ModelShmStore()
        store.pin((1, 0, 0))
        store.on_dispatch([(1, 0, 0)])
        store.on_release([(1, 0, 0)])
        store.check_step()
        store.check_final()

    def test_scenarios_cover_required_shapes(self):
        names = {s.name for s in builtin_scenarios()}
        assert {"chain", "diamond", "wide", "stealable",
                "mixed-driver", "crashy"} <= names
        crashy = next(s for s in builtin_scenarios()
                      if s.name == "crashy")
        assert crashy.max_crashes > 0

    def test_real_scheduler_is_the_system_under_test(self):
        # The explorer must drive the production class, not a model.
        rep = explore(builtin_scenarios()[0],
                      scheduler=DynamicScheduler, max_schedules=5)
        assert rep.findings == []
