"""Tests for process grids and the 2D block-cyclic layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dist import BlockCyclic, ProcessGrid


class TestProcessGrid:
    @given(st.integers(1, 16), st.integers(1, 16))
    def test_rank_coords_roundtrip(self, p, q):
        g = ProcessGrid(p, q)
        for rank in g.ranks():
            r, c = g.coords(rank)
            assert g.rank(r, c) == rank

    def test_column_major_numbering(self):
        g = ProcessGrid(2, 3)
        assert g.rank(0, 0) == 0
        assert g.rank(1, 0) == 1
        assert g.rank(0, 1) == 2

    def test_row_and_col_communicators(self):
        g = ProcessGrid(2, 3)
        assert g.row_ranks(0) == (0, 2, 4)
        assert g.col_ranks(1) == (2, 3)

    def test_bounds_checked(self):
        g = ProcessGrid(2, 2)
        with pytest.raises(IndexError):
            g.rank(2, 0)
        with pytest.raises(IndexError):
            g.coords(4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ProcessGrid(0, 3)

    @given(st.integers(1, 2048))
    def test_near_square_factorization(self, size):
        g = ProcessGrid.near_square(size)
        assert g.size == size
        assert g.p <= g.q
        # p is the largest divisor <= sqrt(size).
        assert g.p * g.q == size
        for d in range(g.p + 1, int(size ** 0.5) + 1):
            assert size % d != 0

    def test_near_square_examples(self):
        assert ProcessGrid.near_square(42).p == 6  # 6 x 7 (Summit node)
        assert ProcessGrid.near_square(64).p == 8


class TestBlockCyclic:
    @given(st.integers(1, 6), st.integers(1, 6),
           st.integers(1, 20), st.integers(1, 20))
    def test_owner_in_grid(self, p, q, mt, nt):
        lay = BlockCyclic(ProcessGrid(p, q))
        for i in range(mt):
            for j in range(nt):
                assert 0 <= lay.owner(i, j) < p * q

    @given(st.integers(1, 5), st.integers(1, 5),
           st.integers(1, 15), st.integers(1, 15))
    def test_tiles_partition_exactly(self, p, q, mt, nt):
        """Every tile is owned by exactly one rank, and tiles_of_rank
        enumerates the partition."""
        lay = BlockCyclic(ProcessGrid(p, q))
        seen = {}
        for rank in lay.grid.ranks():
            for t in lay.tiles_of_rank(rank, mt, nt):
                assert t not in seen
                seen[t] = rank
        assert len(seen) == mt * nt
        for (i, j), rank in seen.items():
            assert lay.owner(i, j) == rank

    @given(st.integers(1, 5), st.integers(1, 5),
           st.integers(1, 15), st.integers(1, 15))
    def test_local_tile_count_consistent(self, p, q, mt, nt):
        lay = BlockCyclic(ProcessGrid(p, q))
        total = sum(lay.local_tile_count(r, mt, nt)
                    for r in lay.grid.ranks())
        assert total == mt * nt

    def test_cyclic_pattern(self):
        lay = BlockCyclic(ProcessGrid(2, 2))
        assert lay.owner(0, 0) == lay.owner(2, 0) == lay.owner(0, 2)
        assert lay.owner(0, 0) != lay.owner(1, 0)

    def test_balance_for_large_grids(self):
        lay = BlockCyclic(ProcessGrid(4, 4))
        assert lay.load_imbalance(64, 64) == pytest.approx(1.0)

    def test_imbalance_for_tiny_matrices(self):
        lay = BlockCyclic(ProcessGrid(4, 4))
        assert lay.load_imbalance(2, 2) > 1.0

    @given(st.integers(0, 7), st.integers(0, 7))
    def test_shifted_matches_submatrix_ownership(self, di, dj):
        """A view starting at tile (di, dj) must keep parent owners."""
        lay = BlockCyclic(ProcessGrid(3, 2))
        sub = lay.shifted(di, dj)
        for i in range(5):
            for j in range(5):
                assert sub.owner(i, j) == lay.owner(i + di, j + dj)

    def test_negative_index_rejected(self):
        lay = BlockCyclic(ProcessGrid(2, 2))
        with pytest.raises(IndexError):
            lay.owner(-1, 0)
