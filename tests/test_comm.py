"""Comm-layer isolation tests (repro.runtime.distributed.comm).

Both transports behind the one ``Comm``/``Listener`` interface:
round-trips, counters that match wire bytes exactly, refused double
binds, and — the property the executor's crash recovery leans on — a
dropped connection surfacing as a *retryable* error well under the
5 s timeout budget instead of a hang.
"""

import threading
import time

import pytest

from repro.comm.counters import CommCounters
from repro.comm.network import TransferPath
from repro.runtime.distributed.comm import (
    CODEC_PICKLE,
    DEFAULT_TIMEOUT,
    AddressInUseError,
    CommClosedError,
    CommError,
    CommTimeoutError,
    connect,
    decode_frame,
    encode_frame,
    listen,
    register_transport,
)

TRANSPORT_ADDRESSES = [
    pytest.param("inproc://test-{}", id="inproc"),
    pytest.param("tcp://127.0.0.1:0", id="tcp"),
]

_uniq = iter(range(10 ** 6))


class _Box:
    """Module-level so pickle can resolve it; not msgpack-safe."""

    def __init__(self, v):
        self.v = v

    def __eq__(self, other):
        return isinstance(other, _Box) and other.v == self.v


def _pair(address_tpl, counters=None):
    """A connected (server_comm, client_comm, listener) triple."""
    address = address_tpl.format(next(_uniq))
    lst = listen(address, counters=counters)
    out = {}

    def _accept():
        out["server"] = lst.accept(timeout=5.0)

    t = threading.Thread(target=_accept)
    t.start()
    client = connect(lst.address, timeout=5.0, counters=counters)
    t.join(timeout=5.0)
    assert "server" in out, "accept did not complete"
    return out["server"], client, lst


@pytest.mark.parametrize("address", TRANSPORT_ADDRESSES)
class TestRoundTrip:
    def test_messages_round_trip_both_directions(self, address):
        server, client, lst = _pair(address)
        try:
            msgs = [{"op": "task", "tid": 7, "attempt": 0},
                    [1, 2.5, "three", None, b"bytes"],
                    ("tuples", "pickle", {"nested": [True, False]})]
            for m in msgs:
                client.send(m)
                assert server.recv(timeout=5.0) == m
                server.send(m)
                assert client.recv(timeout=5.0) == m
        finally:
            client.close()
            server.close()
            lst.close()

    def test_counters_match_wire_bytes_exactly(self, address):
        counters = CommCounters()
        server, client, lst = _pair(address, counters=counters)
        try:
            sent = [client.send({"op": "hello", "wid": i})
                    for i in range(5)]
            for _ in sent:
                server.recv(timeout=5.0)
            # Sender- and receiver-side accounting both see each frame.
            assert client.sent_messages == 5
            assert server.received_messages == 5
            assert client.sent_bytes == sum(sent)
            assert server.received_bytes == sum(sent)
            # The shared CommCounters sees both halves, on INTRA_NODE.
            assert counters.messages[TransferPath.INTRA_NODE] == 10
            assert counters.bytes[TransferPath.INTRA_NODE] == 2 * sum(sent)
        finally:
            client.close()
            server.close()
            lst.close()

    def test_double_bind_is_refused(self, address):
        lst = listen(address.format(next(_uniq)))
        try:
            with pytest.raises(AddressInUseError):
                listen(lst.address)
        finally:
            lst.close()
        # The address is reusable once the first listener is gone.
        lst2 = listen(lst.address)
        lst2.close()

    def test_dropped_connection_is_retryable_and_prompt(self, address):
        server, client, lst = _pair(address)
        try:
            client.close()
            t0 = time.perf_counter()
            with pytest.raises(CommClosedError) as err:
                server.recv(timeout=5.0)
            assert time.perf_counter() - t0 < 5.0
            assert err.value.retryable
        finally:
            server.close()
            lst.close()

    def test_recv_timeout_is_retryable(self, address):
        server, client, lst = _pair(address)
        try:
            t0 = time.perf_counter()
            with pytest.raises(CommTimeoutError) as err:
                server.recv(timeout=0.05)
            assert 0.04 <= time.perf_counter() - t0 < 2.0
            assert err.value.retryable
        finally:
            client.close()
            server.close()
            lst.close()

    def test_send_on_closed_comm_raises(self, address):
        server, client, lst = _pair(address)
        client.close()
        server.close()
        lst.close()
        with pytest.raises(CommClosedError):
            client.send({"op": "task"})
        with pytest.raises(CommClosedError):
            server.recv(timeout=0.5)


class TestFraming:
    def test_frame_round_trip(self):
        msg = {"op": "done", "tid": 3, "t0": 1.25, "side": [None, b"x"]}
        frame = encode_frame(msg)
        length = int.from_bytes(frame[:8], "big")
        codec = frame[8]
        assert length == len(frame) - 9
        assert decode_frame(codec, frame[9:]) == msg

    def test_pickle_fallback_for_rich_objects(self):
        frame = encode_frame(_Box(41))
        assert frame[8] == CODEC_PICKLE
        assert decode_frame(frame[8], frame[9:]) == _Box(41)

    def test_unknown_codec_rejected(self):
        with pytest.raises(CommError):
            decode_frame(250, b"junk")


class TestSchemeRegistry:
    def test_unknown_scheme_and_missing_scheme(self):
        with pytest.raises(CommError, match="unknown comm scheme"):
            listen("carrier-pigeon://roost")
        with pytest.raises(CommError, match="no scheme"):
            connect("localhost:1234")

    def test_register_transport_dispatches(self):
        seen = {}

        def fake_listen(rest, counters, path):
            seen["listen"] = rest
            return None

        def fake_connect(rest, timeout, counters, path):
            seen["connect"] = (rest, timeout)
            return None

        from repro.runtime.distributed import comm as comm_mod
        register_transport("fake", fake_listen, fake_connect)
        try:
            listen("fake://somewhere")
            connect("fake://elsewhere", timeout=1.5)
            assert seen == {"listen": "somewhere",
                            "connect": ("elsewhere", 1.5)}
        finally:
            comm_mod._TRANSPORTS.pop("fake", None)

    def test_default_timeout_contract(self):
        assert DEFAULT_TIMEOUT == 5.0


class TestTcpSpecifics:
    def test_port_zero_resolves_to_concrete_port(self):
        lst = listen("tcp://127.0.0.1:0")
        try:
            assert not lst.address.endswith(":0")
        finally:
            lst.close()

    def test_peer_process_death_equivalent_reset(self):
        # Closing the raw socket out from under the peer (what a
        # SIGKILLed worker does to its parent) surfaces promptly as a
        # retryable CommError, never a hang.
        server, client, lst = _pair("tcp://127.0.0.1:0")
        try:
            client._sock.close()
            t0 = time.perf_counter()
            with pytest.raises(CommError) as err:
                server.recv(timeout=5.0)
            assert time.perf_counter() - t0 < 5.0
            assert err.value.retryable
        finally:
            server.close()
            lst.close()
