"""Smoke tests: every example script runs to completion.

Each example sets its own (modest) problem sizes; here we execute the
fast ones in-process and verify the slow ones at least import and
expose a main().
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def load_module(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


FAST = [
    "quickstart",
    "aerospace_attitude",
    "procrustes_factor_analysis",
]
SLOW = [
    "svd_via_polar",
    "distributed_qdwh",
    "performance_campaign",
    "spectrum_slicing",
]


@pytest.mark.parametrize("name", FAST)
def test_fast_examples_run(name, capsys, monkeypatch):
    mod = load_module(name)
    if name == "quickstart":
        mod.main(128)  # smaller than the script default
    else:
        mod.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


@pytest.mark.parametrize("name", SLOW)
def test_slow_examples_importable(name):
    mod = load_module(name)
    assert callable(mod.main)


def test_all_examples_accounted_for():
    on_disk = {p.stem for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST) | set(SLOW)
