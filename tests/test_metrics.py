"""Tests for the accuracy metrics (Section 7.2's error measures)."""

import numpy as np
import pytest

from repro.matrices import (
    backward_error,
    hermitian_error,
    orthogonality_error,
    polar_report,
    positive_semidefinite_defect,
)
from repro.matrices.generator import random_unitary


class TestOrthogonalityError:
    def test_exact_unitary_is_zero(self):
        q = random_unitary(20, seed=0)
        assert orthogonality_error(q) < 1e-14

    def test_scaled_unitary_is_not(self):
        q = 2.0 * random_unitary(10, seed=1)
        # ||I - 4 I||_F / sqrt(n) = 3
        assert orthogonality_error(q) == pytest.approx(3.0)

    def test_rectangular(self):
        q = random_unitary(8, m=20, seed=2)
        assert orthogonality_error(q) < 1e-14


class TestBackwardError:
    def test_exact_factorization_zero(self, rng):
        a = rng.standard_normal((15, 15))
        import scipy.linalg as sla
        u, h = sla.polar(a)
        assert backward_error(a, u, h) < 1e-14

    def test_zero_matrix(self):
        a = np.zeros((4, 4))
        u = np.eye(4)
        assert backward_error(a, u, np.zeros((4, 4))) == 0.0

    def test_scale_invariance(self, rng):
        a = rng.standard_normal((10, 10))
        u = np.eye(10)
        h = a.copy()
        e1 = backward_error(a, u, h + 0.01)
        e2 = backward_error(1000 * a, u, 1000 * (h + 0.01))
        assert e1 == pytest.approx(e2)


class TestHermitianChecks:
    def test_hermitian_error_zero_for_hermitian(self, rng):
        a = rng.standard_normal((12, 12))
        h = a + a.T
        assert hermitian_error(h) == 0.0

    def test_hermitian_error_positive_for_skew(self, rng):
        a = rng.standard_normal((12, 12))
        k = a - a.T
        assert hermitian_error(k) > 0.1

    def test_psd_defect_zero_for_psd(self, rng):
        b = rng.standard_normal((10, 10))
        h = b.T @ b
        assert positive_semidefinite_defect(h) < 1e-12

    def test_psd_defect_positive_for_indefinite(self):
        h = np.diag([1.0, -0.5])
        assert positive_semidefinite_defect(h) == pytest.approx(0.5)


class TestPolarReport:
    def test_report_on_exact_decomposition(self, rng):
        import scipy.linalg as sla
        a = rng.standard_normal((20, 12))
        u, h = sla.polar(a)
        rep = polar_report(a, u, h)
        assert rep.n == 12 and rep.m == 20
        assert rep.within(1e-12)

    def test_within_fails_on_garbage(self, rng):
        a = rng.standard_normal((8, 8))
        rep = polar_report(a, a, a)
        assert not rep.within(1e-12)
