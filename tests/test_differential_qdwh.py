"""Differential tests: tiled QDWH vs dense QDWH vs SVD ground truth.

Hypothesis drives random problem shapes (rectangular m >= n), all four
supported dtypes, and condition numbers spanning well-conditioned to
the paper's worst case (kappa = 1e16), and checks every execution path
of the tiled implementation — eager, threads x 1 worker, threads x 4
workers, plus the multi-process backend on fixed problems — against
the dense reference driver and an SVD-built ground truth.  The invariants are the paper's accuracy metrics: backward
error ||A - U_p H|| / ||A|| and orthogonality ||U_p^H U_p - I||, both
at the roundoff level of the dtype.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import qdwh
from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix
from repro.matrices import generate_matrix, polar_report

from .conftest import ALL_DTYPES, make_runtime

CONDS = [1e0, 1e8, 1e16]

#: Orthogonality ||U^H U - I|| is condition-independent: a few hundred
#: ulps at these sizes, like the direct tiled-QDWH tests assert.
ORTH_TOL = {np.float32: 5e-5, np.complex64: 5e-5,
            np.float64: 5e-13, np.complex128: 5e-13}
#: Backward error ||A - U H|| / ||A|| carries a slowly growing
#: kappa-dependent constant (observed ~1e4-1e5 ulps at kappa = 1/eps),
#: so its budget is wider while still far below any algorithmic
#: failure mode.
BERR_TOL = {np.float32: 1e-3, np.complex64: 1e-3,
            np.float64: 1e-10, np.complex128: 1e-10}


def _berr_tol(dtype, cond):
    # The tiled driver seeds its scaling interval from norm *estimates*
    # (norm2est / condest), so at extreme kappa the backward error picks
    # up an O(eps * sqrt(kappa)) term the exact-norm dense path avoids
    # (observed ~30 eps sqrt(kappa) at kappa = 1/eps on small
    # rectangular problems).  Budget 100x that; at moderate kappa the
    # flat per-dtype floor dominates.
    eps = float(np.finfo(np.dtype(dtype)).eps)
    return max(BERR_TOL[dtype], 100.0 * eps * float(np.sqrt(cond)))


def _svd_polar(a):
    """Ground-truth polar factors from the SVD: U_p = U V^H,
    H = V diag(s) V^H."""
    u, s, vh = np.linalg.svd(a, full_matrices=False)
    return u @ vh, (vh.conj().T * s) @ vh


def _run_tiled(a, nb, backend, workers=None):
    rt = make_runtime(2, 2)
    da = DistMatrix.from_array(rt, a.copy(), nb)
    res = tiled_qdwh(rt, da, backend=backend, workers=workers)
    u, h = res.u.to_array(), res.h.to_array()
    rt.close()
    return u, h


@st.composite
def problems(draw):
    n = draw(st.integers(8, 32))
    m = n + draw(st.integers(0, 16))
    nb = draw(st.sampled_from([8, 16]))
    dtype = draw(st.sampled_from(ALL_DTYPES))
    cond = draw(st.sampled_from(CONDS))
    seed = draw(st.integers(0, 2 ** 16))
    return m, n, nb, dtype, cond, seed


class TestDifferential:
    @given(problems())
    @settings(max_examples=10)
    def test_all_paths_match_ground_truth(self, prob):
        m, n, nb, dtype, cond, seed = prob
        eps = float(np.finfo(np.dtype(dtype)).eps)
        # Cap kappa near 1/eps so single-precision problems are
        # numerically (not just nominally) that ill-conditioned.
        cond = min(cond, 0.1 / eps)
        a = generate_matrix(m, n, cond=cond, dtype=dtype, seed=seed)
        orth_tol, berr_tol = ORTH_TOL[dtype], _berr_tol(dtype, cond)

        u_ref, h_ref = _svd_polar(a)
        ref = polar_report(a, u_ref, h_ref)
        assert ref.orthogonality < orth_tol and ref.backward < berr_tol

        dres = qdwh(a)
        rep = polar_report(a, dres.u, dres.h)
        assert rep.orthogonality < orth_tol, "dense qdwh orthogonality"
        assert rep.backward < berr_tol, "dense qdwh backward error"

        for backend, workers in (("eager", None), ("threads", 1),
                                 ("threads", 4)):
            u, h = _run_tiled(a, nb, backend, workers)
            assert u.dtype == np.dtype(dtype)
            rep = polar_report(a, u, h)
            label = f"{backend} x{workers or 1}"
            assert rep.orthogonality < orth_tol, f"{label} orthogonality"
            assert rep.backward < berr_tol, f"{label} backward error"
            assert rep.h_hermitian < berr_tol, f"{label} H not Hermitian"

    @given(st.integers(8, 24), st.integers(0, 12),
           st.sampled_from([np.float64, np.complex128]),
           st.integers(0, 2 ** 16))
    @settings(max_examples=10)
    def test_well_conditioned_factors_agree_elementwise(
            self, n, extra, dtype, seed):
        # kappa = 1: the polar factors themselves are well-conditioned
        # functions of A, so every implementation must agree with the
        # SVD ground truth elementwise (not just in the residuals).
        a = generate_matrix(n + extra, n, cond=1.0, dtype=dtype,
                            seed=seed)
        u_ref, h_ref = _svd_polar(a)
        for backend, workers in (("eager", None), ("threads", 4)):
            u, h = _run_tiled(a, 8, backend, workers)
            assert np.allclose(u, u_ref, atol=1e-10)
            assert np.allclose(h, h_ref, atol=1e-10)

    @given(st.integers(24, 48), st.sampled_from([1e0, 1e8, 1e16]),
           st.integers(0, 2 ** 16))
    @settings(max_examples=5, deadline=None)
    def test_fault_injected_threads_matches_fault_free(self, n, cond,
                                                       seed):
        # Live faults (transients, a stall, one corruption) on
        # threads x 4 with recovery enabled must land within the same
        # kappa-scaled budget as the fault-free run: recovery is
        # required to be numerically invisible.
        from repro.resilience import (FaultPlan, TileCorruption,
                                      TransientFaults, WorkerStall)
        from repro.resilience.live import RecoveryPolicy

        a = generate_matrix(n, cond=cond, dtype=np.float64, seed=seed)
        u0, h0 = _run_tiled(a, 16, "threads", 4)
        rep0 = polar_report(a, u0, h0)

        plan = FaultPlan(
            seed=seed,
            transient=TransientFaults(probability=0.2, max_attempts=4),
            stalls=(WorkerStall(probability=0.05, seconds=0.02),),
            corruptions=(TileCorruption(probability=0.5, max_events=1),))
        rt = make_runtime(2, 2)
        rt.fault_plan = plan  # make_runtime has no faults parameter
        rt.recovery_policy = RecoveryPolicy(max_retries=3, backoff=1e-4,
                                            scrub_writes=True)
        da = DistMatrix.from_array(rt, a.copy(), 16)
        res = tiled_qdwh(rt, da, backend="threads", workers=4)
        u, h = res.u.to_array(), res.h.to_array()
        rec = rt.exec_stats.recovery
        rt.close()

        assert res.converged and not res.degraded
        assert rec.transient_failures > 0
        rep = polar_report(a, u, h)
        berr_tol = _berr_tol(np.float64, cond)
        assert rep.orthogonality < ORTH_TOL[np.float64]
        assert rep.backward < berr_tol
        assert rep0.backward < berr_tol

    @pytest.mark.parametrize("cond", [1e0, 1e8])
    def test_processes_backend_bit_identical_to_eager(self, cond):
        # The distributed backend replays the same recorded graph with
        # the same kernels on shared-memory tiles, so it owes exact
        # bit-identity with eager — at any worker count, not just 1.
        a = generate_matrix(72, 48, cond=cond, dtype=np.float64, seed=21)
        u0, h0 = _run_tiled(a, 16, "eager")
        for workers in (1, 2):
            u, h = _run_tiled(a, 16, "processes", workers)
            label = f"processes x{workers}"
            assert np.array_equal(u, u0), f"{label} U differs from eager"
            assert np.array_equal(h, h0), f"{label} H differs from eager"
        rep = polar_report(a, u0, h0)
        assert rep.orthogonality < ORTH_TOL[np.float64]
        assert rep.backward < _berr_tol(np.float64, cond)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_worst_case_kappa_all_dtypes_threads(self, dtype):
        # The paper's headline workload (kappa at the dtype's limit)
        # through the threaded backend specifically.
        eps = float(np.finfo(np.dtype(dtype)).eps)
        cond = min(1e16, 0.1 / eps)
        a = generate_matrix(64, cond=cond, dtype=dtype, seed=7)
        u, h = _run_tiled(a, 16, "threads", 4)
        rep = polar_report(a, u, h)
        assert rep.orthogonality < ORTH_TOL[dtype]
        assert rep.backward < _berr_tol(dtype, cond)
