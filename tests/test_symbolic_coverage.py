"""Symbolic-mode coverage: graph shapes across dtypes, grids, and ops.

Symbolic runs are cheap, so these sweep wider parameter ranges than the
numeric tests can afford.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.runtime import Runtime


def symbolic_graph(n=96, nb=32, grid=(2, 2), dtype=np.float64,
                   cond=1e16, m=None):
    rt = Runtime(ProcessGrid(*grid), numeric=False)
    a = DistMatrix(rt, m if m else n, n, nb, dtype)
    res = tiled_qdwh(rt, a, cond_est=cond)
    return rt.graph, res


class TestGraphInvariance:
    @pytest.mark.parametrize("real,cplx", [(np.float32, np.complex64),
                                           (np.float64, np.complex128)])
    def test_complexification_does_not_change_task_structure(self, real,
                                                             cplx):
        """Contribution #2: one code path for all four types — within a
        precision class the DAG is identical, only bytes change.
        (Across precisions the *iteration count* legitimately differs:
        single precision converges in fewer QDWH steps.)"""
        gr, rr = symbolic_graph(dtype=real)
        gc, rc = symbolic_graph(dtype=cplx)
        assert gc.counts_by_kind() == gr.counts_by_kind()
        assert (rc.it_qr, rc.it_chol) == (rr.it_qr, rr.it_chol)
        # Matrix tiles double in size; scalar pseudo-tiles don't.
        br = sum(gr.tile_bytes.values())
        bc = sum(gc.tile_bytes.values())
        assert bc == pytest.approx(2 * br, rel=0.02)

    def test_single_precision_needs_fewer_iterations(self):
        _, r32 = symbolic_graph(dtype=np.float32)
        _, r64 = symbolic_graph(dtype=np.float64)
        assert (r32.it_qr + r32.it_chol) < (r64.it_qr + r64.it_chol)

    @given(st.sampled_from([(1, 1), (1, 4), (2, 2), (4, 1), (2, 3)]))
    def test_grid_does_not_change_task_structure(self, grid):
        """Block-cyclic distribution moves ownership, not the DAG."""
        gref, _ = symbolic_graph(grid=(2, 2))
        gg, _ = symbolic_graph(grid=grid)
        assert gg.counts_by_kind() == gref.counts_by_kind()
        assert len(gg) == len(gref)

    def test_rank_assignment_follows_grid(self):
        g, _ = symbolic_graph(grid=(2, 3))
        ranks = {t.rank for t in g.tasks}
        assert ranks <= set(range(6))
        assert len(ranks) == 6  # everyone gets work

    @given(st.integers(1, 4))
    def test_rectangular_adds_rows_monotonically(self, factor):
        n = 64
        g1, _ = symbolic_graph(n=n, m=n)
        g2, _ = symbolic_graph(n=n, m=factor * n)
        assert len(g2) >= len(g1)
        assert g2.total_flops() >= g1.total_flops()

    def test_condition_controls_iteration_mix(self):
        g_ill, r_ill = symbolic_graph(cond=1e16)
        g_well, r_well = symbolic_graph(cond=2.0)
        assert r_ill.it_qr > r_well.it_qr
        # QR-heavy schedules have far more reflector-apply tasks.
        assert (g_ill.counts_by_kind()["tpmqrt"]
                > g_well.counts_by_kind().get("tpmqrt", 0))

    def test_phases_and_ops_monotone_in_program_order(self):
        g, _ = symbolic_graph()
        phases = [t.phase for t in g.tasks]
        ops = [t.op for t in g.tasks]
        assert phases == sorted(phases)
        assert ops == sorted(ops)

    def test_every_task_owned_by_output_tile_owner(self):
        """Owner-computes: each task's rank owns one of its writes
        (reductions/scalars are pinned to rank 0)."""
        g, _ = symbolic_graph(grid=(2, 2))
        owners = g.tile_owner
        violations = 0
        for t in g.tasks:
            owned = [owners.get(w) for w in t.writes if w in owners]
            if owned and t.rank not in owned:
                violations += 1
        # Scalars/aux buffers aren't in the owner map; among tasks that
        # write owned tiles, owner-computes must hold universally.
        assert violations == 0


class TestSymbolicScaling:
    def test_task_count_scales_cubically(self):
        g1, _ = symbolic_graph(n=64, nb=32)   # 2x2 tiles
        g2, _ = symbolic_graph(n=128, nb=32)  # 4x4 tiles
        # Dominant kernels scale ~t^3 = 8x; whole graph somewhere
        # between quadratic and cubic.
        assert 3.5 * len(g1) < len(g2) < 12 * len(g1)

    def test_flops_scale_cubically(self):
        g1, _ = symbolic_graph(n=64, nb=32)
        g2, _ = symbolic_graph(n=128, nb=32)
        assert g2.total_flops() == pytest.approx(8 * g1.total_flops(),
                                                 rel=0.25)
