"""Tests for the acceptance-matrix validation module and trace extras."""

import pytest

from repro.validation import CheckResult, ValidationReport, validate_all


class TestValidationReport:
    def test_all_pass(self):
        r = ValidationReport(checks=[
            CheckResult("a", True, "1", "1", 0.1),
            CheckResult("b", True, "2", "2", 0.1),
        ])
        assert r.passed
        assert "2/2 claims reproduced" in r.summary()

    def test_one_fail(self):
        r = ValidationReport(checks=[
            CheckResult("a", True, "1", "1", 0.1),
            CheckResult("b", False, "0", "2", 0.1),
        ])
        assert not r.passed
        assert "FAIL" in r.summary()


class TestValidateAll:
    def test_full_matrix_reproduces(self):
        """The headline test of the whole repository: every claim in
        the acceptance matrix passes at reduced resolution."""
        rep = validate_all(n_numeric=128, max_tiles=8)
        assert rep.passed, "\n" + rep.summary()
        assert len(rep.checks) >= 9

    def test_check_captures_exceptions(self):
        from repro.validation import _check
        rep = ValidationReport()
        _check(rep, "boom", "no crash", lambda: 1 / 0)
        assert not rep.checks[0].passed
        assert "error" in rep.checks[0].measured


class TestAsciiGantt:
    def test_renders(self):
        from repro.dist import DistMatrix, ProcessGrid
        from repro.machines import summit
        from repro.runtime import Runtime, simulate
        from repro.runtime.scheduler import taskbased_config
        from repro.runtime.trace import ascii_gantt
        from repro.tiled import geqrf

        rt = Runtime(ProcessGrid(2, 2), numeric=False)
        a = DistMatrix(rt, 512, 256, 64)
        geqrf(rt, a)
        r = simulate(rt.graph, taskbased_config(summit(), 2, 2,
                                                use_gpu=False),
                     keep_trace=True)
        chart = ascii_gantt(r, width=40)
        lines = chart.splitlines()
        assert lines[0].startswith("gantt")
        assert len(lines) == 5  # header + 4 ranks
        assert all(len(ln) == len(lines[1]) for ln in lines[1:])
        # Some panel/update letters must appear.
        body = "".join(lines[1:])
        assert any(ch in body for ch in "gtu")

    def test_requires_trace(self):
        from repro.dist import DistMatrix, ProcessGrid
        from repro.machines import summit
        from repro.runtime import Runtime, simulate
        from repro.runtime.scheduler import taskbased_config
        from repro.runtime.trace import ascii_gantt
        from repro.tiled import set_zero

        rt = Runtime(ProcessGrid(1, 1), numeric=False)
        a = DistMatrix(rt, 64, 64, 32)
        set_zero(rt, a)
        r = simulate(rt.graph, taskbased_config(summit(), 1, 1,
                                                use_gpu=False))
        with pytest.raises(ValueError):
            ascii_gantt(r)
