"""Tests for the resilience subsystem (faults, recovery, checkpoints)."""

import json
import math
import os

import numpy as np
import pytest

from repro.comm.counters import CommCounters
from repro.comm.network import TransferPath
from repro.core.qdwh_dense import qdwh
from repro.dist.grid import ProcessGrid
from repro.machines import summit
from repro.obs import TimelineSink, chrome_trace, get_registry, reset_metrics
from repro.perf.model import build_qdwh_graph, simulate_qdwh
from repro.resilience import (
    AllRanksDead,
    CheckpointPolicy,
    FaultPlan,
    FaultToleranceExceeded,
    LinkDegradation,
    QdwhCheckpointer,
    RankCrash,
    StragglerSlot,
    TransientFaults,
    checkpoint_write_cost,
    expected_overhead,
    lineage_replay_set,
    optimal_interval,
    plan_from_spec,
    recovery_overhead_curve,
)
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import forkjoin_config, simulate, taskbased_config
from repro.runtime.task import Task, TaskKind


# ---------------------------------------------------------------------------
# Fault-plan model
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransientFaults(probability=1.5)
        with pytest.raises(ValueError):
            TransientFaults(probability=0.1, max_attempts=0)
        with pytest.raises(ValueError):
            StragglerSlot(rank=0, factor=0.5)
        with pytest.raises(ValueError):
            LinkDegradation(beta_factor=0.9)
        with pytest.raises(ValueError):
            RankCrash(rank=0, time=-1.0)
        with pytest.raises(ValueError):  # same rank cannot die twice
            FaultPlan(crashes=(RankCrash(0, 1.0), RankCrash(0, 2.0)))

    def test_empty(self):
        assert FaultPlan().empty
        assert FaultPlan(transient=TransientFaults(probability=0.0)).empty
        assert not FaultPlan(crashes=(RankCrash(0, 1.0),)).empty

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            seed=42,
            crashes=(RankCrash(1, 3.5),),
            transient=TransientFaults(probability=0.01, max_attempts=6),
            links=(LinkDegradation(src=0, dst=1, beta_factor=2.0,
                                   start=1.0, end=4.0),
                   LinkDegradation(alpha_factor=1.5)),
            stragglers=(StragglerSlot(rank=2, factor=3.0, start=0.5),),
            speculation=False,
            crash_detect_delay=0.25)
        path = str(tmp_path / "plan.json")
        plan.to_json(path)
        back = FaultPlan.from_json(path)
        assert back == plan
        # Infinite windows serialize as null, not "Infinity".
        with open(path) as fh:
            assert json.load(fh)["stragglers"][0]["end"] is None

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 1, "crahses": []})

    def test_task_rng_is_dispatch_order_independent(self):
        plan = FaultPlan(seed=7)
        a = [plan.task_rng(tid, 0).random() for tid in range(50)]
        b = [plan.task_rng(tid, 0).random() for tid in reversed(range(50))]
        assert a == list(reversed(b))
        # Distinct streams per task and per attempt epoch.
        assert len({round(v, 12) for v in a}) == 50
        assert plan.task_rng(3, 0).random() != plan.task_rng(3, 1).random()

    def test_poisson_crashes_deterministic_and_spares_one(self):
        p1 = FaultPlan.poisson_crashes(mttf=1.0, horizon=1e6, ranks=4,
                                       seed=5)
        p2 = FaultPlan.poisson_crashes(mttf=1.0, horizon=1e6, ranks=4,
                                       seed=5)
        assert p1 == p2
        # A huge horizon with tiny MTTF would kill everyone; one rank
        # must be spared so recovery has somewhere to go.
        assert len(p1.crashes) == 3

    def test_plan_from_spec(self):
        plan = plan_from_spec(seed=2, crash=["1@3.5"], transient_p=0.02,
                              straggler=["0@4"], link_factor=2.0)
        assert plan.crashes == (RankCrash(1, 3.5),)
        assert plan.transient.probability == 0.02
        assert plan.stragglers[0].factor == 4.0
        assert plan.links[0].beta_factor == 2.0
        with pytest.raises(ValueError, match="bad crash spec"):
            plan_from_spec(crash=["nope"])


class TestLineageReplay:
    def _chain(self, n):
        """t0 -> t1 -> ... -> t{n-1}, each writing its own tile."""
        tasks = []
        for i in range(n):
            tasks.append(Task(
                tid=i, kind=TaskKind.GEMM,
                reads=((0, i - 1, 0),) if i else (),
                writes=((0, i, 0),), rank=0, phase=0, op=0,
                flops=1.0, tile_dim=64,
                deps=(i - 1,) if i else ()))
        return tasks

    def test_chain_replay_transitive(self):
        tasks = self._chain(5)
        done = [True, True, True, False, False]
        # t2's output is lost; t3 (pending) needs it -> replay {2}.
        assert lineage_replay_set(tasks, done, {2}) == {2}
        # t1 and t2 both lost -> t2 needs t1 transitively.
        assert lineage_replay_set(tasks, done, {1, 2}) == {1, 2}

    def test_dead_results_not_replayed(self):
        tasks = self._chain(5)
        done = [True] * 5
        # Everything finished: lost outputs are never consumed again.
        assert lineage_replay_set(tasks, done, {1, 2}) == set()


# ---------------------------------------------------------------------------
# Scheduler integration
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def qdwh_case():
    """A small QDWH graph on 4 summit ranks plus its fault-free result."""
    g, _, _ = build_qdwh_graph(2000, 500, ProcessGrid.near_square(4),
                               cond=1e10)
    cfg = taskbased_config(summit(), 2, 2, use_gpu=True)
    base = simulate(g, cfg)
    return g, cfg, base


class TestSchedulerFaults:
    #: Fault-free makespans captured before the resilience subsystem
    #: landed; the scheduler must keep reproducing them bit for bit.
    GOLDEN = {
        "slate_gpu": 3.356953655066028,
        "slate_cpu": 9.04020211617723,
        "scalapack": 9.137895137113198,
    }

    @pytest.mark.parametrize("impl", sorted(GOLDEN))
    def test_fault_free_bit_identical_to_pre_resilience(self, impl):
        pt = simulate_qdwh(summit(), 1, 4000, impl, cond=1e12, max_tiles=6)
        assert pt.makespan == self.GOLDEN[impl]
        assert pt.schedule.recovery is None

    def test_empty_plan_matches_no_plan(self, qdwh_case):
        g, cfg, base = qdwh_case
        r = simulate(g, cfg, faults=FaultPlan())
        assert r.makespan == base.makespan
        assert r.recovery is not None and r.recovery.crashes == 0

    def test_crash_recovers_and_costs_time(self, qdwh_case):
        g, cfg, base = qdwh_case
        plan = FaultPlan(seed=1, crashes=(
            RankCrash(rank=1, time=0.5 * base.makespan),))
        sink = TimelineSink()
        r = simulate(g, cfg, sink=sink, faults=plan)
        assert r.task_count == base.task_count
        assert r.makespan > base.makespan
        rec = r.recovery
        assert rec.crashes == 1 and rec.dead_ranks == (1,)
        assert rec.replayed_tasks > 0
        assert rec.reexecution_seconds > 0.0
        counts = sink.fault_counts()
        assert counts["crash"] == 1
        assert counts["replay"] == rec.replayed_tasks
        # No surviving task executed on the dead rank after the crash.
        for ev in sink.tasks:
            if ev.rank == 1:
                assert ev.start < plan.crashes[0].time + 1e-12
        # Busy time counts exactly the executions that completed —
        # revoked in-flight work must not inflate utilization.
        assert sum(r.per_kind_busy.values()) == pytest.approx(
            sum(ev.duration for ev in sink.tasks))

    def test_crash_with_forkjoin_barriers(self, qdwh_case):
        """Crash replay under lookahead=0, where most pending tasks sit
        parked: a replayed producer's completion used to re-append a
        still-parked consumer, and the window release then dispatched
        it twice (phantom slot occupancy, double-counted busy time)."""
        g, _, _ = qdwh_case
        cfg = forkjoin_config(summit(), 2, 2)
        base = simulate(g, cfg)
        plan = FaultPlan(seed=1, crashes=(
            RankCrash(rank=1, time=0.5 * base.makespan),))
        sink = TimelineSink()
        r = simulate(g, cfg, sink=sink, faults=plan)
        assert r.task_count == base.task_count
        rec = r.recovery
        assert rec.crashes == 1 and rec.replayed_tasks > 0
        # Graham timing anomalies allow a sub-percent win (see
        # test_resilience_properties.ANOMALY_MARGIN); double dispatch
        # showed up as a far larger perturbation.
        assert r.makespan >= 0.97 * base.makespan
        # Each logical task completes, and busy time matches the trace
        # exactly (a double dispatch would count one of them twice).
        assert {ev.tid for ev in sink.tasks} == set(range(len(g)))
        assert sum(r.per_kind_busy.values()) == pytest.approx(
            sum(ev.duration for ev in sink.tasks))
        # Determinism survives the parked/replay interaction.
        r2 = simulate(g, cfg, faults=plan)
        assert r2.makespan == r.makespan
        assert r2.recovery.as_dict() == rec.as_dict()

    def test_replay_rearm_of_parked_task_dispatches_once(self):
        """Deterministic trigger of the parked double dispatch: t2 is
        parked outside the lookahead window when a crash loses its
        producer t0's output; the replayed t0 completes while t2 is
        *still* parked (t1 keeps the window shut), which used to append
        t2 to the parked list a second time and execute it twice when
        the window opened."""
        g = TaskGraph()
        g.register_tile((0, 0, 0), 8 * 512 * 512)
        # t0 (rank 1, phase 0): quick producer of tile X.
        g.add(Task(tid=0, kind=TaskKind.GEMM, reads=(),
                   writes=((0, 0, 0),), rank=1, phase=0, flops=1e9,
                   tile_dim=512))
        # t1 (rank 0, phase 0): long task holding phase 0 open.
        g.add(Task(tid=1, kind=TaskKind.GEMM, reads=(),
                   writes=((0, 1, 0),), rank=0, phase=0, flops=1e13,
                   tile_dim=512))
        # t2 (rank 0, phase 1): consumer of X, parked by lookahead=0.
        g.add(Task(tid=2, kind=TaskKind.GEMM, reads=((0, 0, 0),),
                   writes=((0, 2, 0),), rank=0, phase=1, flops=1e9,
                   tile_dim=512))
        cfg = taskbased_config(summit(), 1, 2, use_gpu=False, lookahead=0)
        base = simulate(g, cfg, keep_trace=True)
        f0, f1 = base.finish_times[0], base.finish_times[1]
        assert f0 < f1
        # Crash rank 1 after t0 finished but with plenty of t1 left, so
        # the replayed t0 completes while t2 is still parked.
        plan = FaultPlan(crashes=(RankCrash(rank=1,
                                            time=0.5 * (f0 + f1)),))
        sink = TimelineSink()
        r = simulate(g, cfg, sink=sink, faults=plan)
        assert r.recovery.replayed_tasks == 1
        # t2 executed exactly once, and busy time matches the trace.
        assert sorted(ev.tid for ev in sink.tasks) == [0, 0, 1, 2]
        assert sum(r.per_kind_busy.values()) == pytest.approx(
            sum(ev.duration for ev in sink.tasks))

    def test_useless_duplicate_is_not_launched(self):
        """A duplicate that cannot start before the original finishes
        must not launch: it used to move the busy backup slot's free
        time *backwards* (letting later tasks overlap occupied time)
        and still count toward speculation stats and recovery bytes."""
        g = TaskGraph()
        g.register_tile((9, 0, 0), 1 << 20, owner=0)
        # coarse > 1 forces ganged mode: one aggregated CPU slot per
        # rank, so rank 1's slot stays busy far past the straggled
        # task's finish and the would-be duplicate is useless.
        g.add(Task(tid=0, kind=TaskKind.GEMM, reads=(),
                   writes=((0, 0, 0),), rank=1, phase=0, flops=1e12,
                   tile_dim=512, coarse=2.0))
        g.add(Task(tid=1, kind=TaskKind.GEMM, reads=((9, 0, 0),),
                   writes=((0, 1, 0),), rank=0, phase=0, flops=1e9,
                   tile_dim=512, coarse=2.0))
        g.add(Task(tid=2, kind=TaskKind.GEMM, reads=(),
                   writes=((0, 2, 0),), rank=1, phase=0, flops=1e10,
                   tile_dim=512, coarse=2.0))
        cfg = taskbased_config(summit(), 1, 2, use_gpu=False)
        plan = FaultPlan(seed=0, stragglers=(
            StragglerSlot(rank=0, factor=10.0),))
        sink = TimelineSink()
        r = simulate(g, cfg, sink=sink, faults=plan)
        rec = r.recovery
        assert rec.speculative_duplicates == 0
        assert rec.speculation_wins == 0
        assert rec.recovery_bytes == 0
        # Rank 1's single slot runs its two tasks back to back.
        ev = {e.tid: e for e in sink.tasks}
        assert ev[2].start >= ev[0].end - 1e-9

    def test_crash_is_deterministic(self, qdwh_case):
        g, cfg, base = qdwh_case
        plan = FaultPlan(seed=9, crashes=(RankCrash(rank=2, time=0.4),))
        r1 = simulate(g, cfg, faults=plan)
        r2 = simulate(g, cfg, faults=plan)
        assert r1.makespan == r2.makespan
        assert r1.recovery.as_dict() == r2.recovery.as_dict()

    def test_late_crash_is_free(self, qdwh_case):
        g, cfg, base = qdwh_case
        plan = FaultPlan(crashes=(
            RankCrash(rank=0, time=base.makespan + 10.0),))
        r = simulate(g, cfg, faults=plan)
        assert r.makespan == base.makespan
        assert r.recovery.replayed_tasks == 0

    def test_transients_retry_and_slow_down(self, qdwh_case):
        g, cfg, base = qdwh_case
        plan = FaultPlan(seed=3, transient=TransientFaults(
            probability=0.05, max_attempts=12))
        r = simulate(g, cfg, faults=plan)
        assert r.recovery.transient_failures > 0
        assert r.recovery.retried_tasks > 0
        assert r.makespan > base.makespan

    def test_transient_budget_exhaustion_raises(self, qdwh_case):
        g, cfg, _ = qdwh_case
        plan = FaultPlan(seed=0, transient=TransientFaults(
            probability=0.9, max_attempts=2))
        with pytest.raises(FaultToleranceExceeded):
            simulate(g, cfg, faults=plan)

    def test_straggler_triggers_speculation(self, qdwh_case):
        g, cfg, base = qdwh_case
        plan = FaultPlan(seed=4, stragglers=(
            StragglerSlot(rank=0, factor=10.0),))
        r = simulate(g, cfg, faults=plan)
        rec = r.recovery
        assert rec.speculative_duplicates > 0
        assert 0 < rec.speculation_wins <= rec.speculative_duplicates
        assert rec.recovery_bytes > 0
        # Without mitigation the same straggler hurts more.
        r_nospec = simulate(g, cfg, faults=FaultPlan(
            seed=4, stragglers=(StragglerSlot(rank=0, factor=10.0),),
            speculation=False))
        assert r_nospec.recovery.speculative_duplicates == 0
        assert r.makespan < r_nospec.makespan

    def test_link_degradation_slows_transfers(self, qdwh_case):
        g, cfg, base = qdwh_case
        plan = FaultPlan(links=(LinkDegradation(beta_factor=8.0,
                                                alpha_factor=4.0),),
                         speculation=False)
        r = simulate(g, cfg, faults=plan)
        assert r.recovery.degraded_transfers > 0
        assert r.makespan > base.makespan
        # No replays or duplicates: task-side work is untouched (the
        # traffic mix may shift slightly as relay selection re-times).
        assert r.recovery.replayed_tasks == 0
        assert r.recovery.speculative_duplicates == 0

    def test_all_ranks_dead_rejected(self, qdwh_case):
        g, cfg, _ = qdwh_case
        plan = FaultPlan(crashes=tuple(
            RankCrash(rank=r, time=0.1 * (r + 1)) for r in range(4)))
        with pytest.raises(AllRanksDead):
            simulate(g, cfg, faults=plan)

    def test_crash_rank_out_of_range_rejected(self, qdwh_case):
        g, cfg, _ = qdwh_case
        with pytest.raises(ValueError, match="only 4 ranks"):
            simulate(g, cfg, faults=FaultPlan(
                crashes=(RankCrash(rank=99, time=1.0),)))

    def test_fault_events_reach_chrome_trace(self, qdwh_case):
        g, cfg, base = qdwh_case
        sink = TimelineSink()
        simulate(g, cfg, sink=sink, faults=FaultPlan(
            seed=1, crashes=(RankCrash(rank=1, time=0.5),)))
        doc = chrome_trace(sink)
        inst = [e for e in doc["traceEvents"]
                if e.get("cat") == "fault"]
        assert inst and all(e["ph"] == "i" for e in inst)
        assert any(e["args"]["kind"] == "crash" for e in inst)

    def test_recovery_metrics_published(self, qdwh_case):
        g, cfg, _ = qdwh_case
        reset_metrics()
        try:
            simulate(g, cfg, faults=FaultPlan(
                seed=1, crashes=(RankCrash(rank=1, time=0.5),)))
            snap = get_registry().snapshot()
            assert snap["counters"]["resilience.crashes"] == 1
            assert snap["counters"]["resilience.tasks_replayed"] > 0
        finally:
            reset_metrics()


# ---------------------------------------------------------------------------
# Idempotent comm publishing (satellite)
# ---------------------------------------------------------------------------

class TestIdempotentPublish:
    def test_republishing_same_totals_is_noop(self):
        reset_metrics()
        try:
            reg = get_registry()
            c = CommCounters()
            c.record(TransferPath.INTER_NODE, 100)
            c.publish(reg)
            c.publish(reg)  # double publish must not double-count
            snap = reg.snapshot()["counters"]
            assert snap["comm.bytes.inter_node"] == 100
            assert snap["comm.messages.inter_node"] == 1
        finally:
            reset_metrics()

    def test_growth_publishes_exactly_the_delta(self):
        reset_metrics()
        try:
            reg = get_registry()
            c = CommCounters()
            c.record(TransferPath.H2D, 10)
            c.publish(reg)
            c.record(TransferPath.H2D, 5)
            c.publish(reg)
            snap = reg.snapshot()["counters"]
            assert snap["comm.bytes.h2d"] == 15
            assert snap["comm.messages.h2d"] == 2
        finally:
            reset_metrics()

    def test_distinct_prefixes_are_independent(self):
        reset_metrics()
        try:
            reg = get_registry()
            c = CommCounters()
            c.record(TransferPath.D2H, 7)
            c.publish(reg)
            c.publish(reg, prefix="other")
            snap = reg.snapshot()["counters"]
            assert snap["comm.bytes.d2h"] == 7
            assert snap["other.bytes.d2h"] == 7
        finally:
            reset_metrics()

    def test_collected_registry_does_not_alias_new_one(self):
        """Published-totals bookkeeping is keyed by a weak reference:
        a dead registry whose address gets reused must not make the
        first publish to the new registry under-report."""
        import gc

        from repro.obs.metrics import Registry

        c = CommCounters()
        c.record(TransferPath.INTER_NODE, 100)
        reg1 = Registry()
        c.publish(reg1)
        assert reg1.snapshot()["counters"]["comm.bytes.inter_node"] == 100
        del reg1
        gc.collect()
        reg2 = Registry()
        c.publish(reg2)
        snap = reg2.snapshot()["counters"]
        assert snap["comm.bytes.inter_node"] == 100
        assert snap["comm.messages.inter_node"] == 1


# ---------------------------------------------------------------------------
# Checkpoint policy & cost model
# ---------------------------------------------------------------------------

class TestCheckpointPolicy:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(every=0)

    def test_due(self):
        p = CheckpointPolicy(every=3)
        assert [i for i in range(1, 10) if p.due(i)] == [3, 6, 9]

    def test_young_daly_matches_formula(self):
        mttf, cost, it = 3600.0, 10.0, 30.0
        tau = optimal_interval(mttf, cost)
        assert tau == pytest.approx(math.sqrt(2 * 10 * 3600))
        pol = CheckpointPolicy.young_daly(mttf, cost, it)
        assert pol.every == max(1, round(tau / it))

    def test_expected_overhead_minimized_at_optimum(self):
        mttf, cost = 1000.0, 5.0
        tau = optimal_interval(mttf, cost)
        best = expected_overhead(mttf, cost)
        assert best == pytest.approx(math.sqrt(2 * cost / mttf))
        for factor in (0.5, 0.8, 1.25, 2.0):
            assert expected_overhead(mttf, cost, tau * factor) >= best

    def test_write_cost_and_curve(self):
        cost = checkpoint_write_cost(10_000, 10_000)
        assert cost > 0.5  # latency floor
        rows = recovery_overhead_curve(100.0, cost, [50.0, 500.0])
        assert len(rows) == 2
        # Longer MTTF -> longer interval, lower overhead.
        assert rows[1]["interval"] > rows[0]["interval"]
        assert rows[1]["overhead"] < rows[0]["overhead"]
        assert all(r["expected_makespan"] > 100.0 for r in rows)


class TestQdwhCheckpointer:
    def test_save_load_roundtrip_exact(self, tmp_path, rng):
        ck = QdwhCheckpointer(str(tmp_path))
        ak = rng.standard_normal((8, 6))
        ck.save(ak=ak, li=0.25, conv=1e-3, it=2, it_qr=1, it_chol=1,
                alpha=3.0, l0=1e-8, conv_history=[0.5, 1e-3],
                weight_history=[(1.0, 2.0, 3.0), (4.0, 5.0, 6.0)])
        state = ck.load()
        assert np.array_equal(state["ak"], ak)
        assert state["li"] == 0.25 and state["it"] == 2
        assert isinstance(state["it"], int)
        assert state["weight_history"] == [(1.0, 2.0, 3.0),
                                           (4.0, 5.0, 6.0)]

    def test_retention_and_clear(self, tmp_path, rng):
        ck = QdwhCheckpointer(str(tmp_path), keep=2)
        ak = rng.standard_normal((4, 4))
        for it in range(1, 5):
            ck.save(ak=ak, li=0.1, conv=1.0, it=it, it_qr=it, it_chol=0,
                    alpha=1.0, l0=0.1, conv_history=[],
                    weight_history=[])
        files = sorted(f for f in os.listdir(tmp_path)
                       if f.endswith(".npz"))
        assert files == ["qdwh_ckpt_it003.npz", "qdwh_ckpt_it004.npz"]
        assert ck.load()["it"] == 4
        ck.clear()
        assert ck.load() is None

    def test_empty_directory_loads_none(self, tmp_path):
        assert QdwhCheckpointer(str(tmp_path)).load() is None


class TestQdwhCheckpointResume:
    def test_resume_is_bit_identical(self, tmp_path, rng):
        a = rng.standard_normal((40, 24))
        ref = qdwh(a)
        ck = QdwhCheckpointer(str(tmp_path))
        partial = qdwh(a, max_iter=2, checkpoint=ck)
        assert partial.iterations == 2
        resumed = qdwh(a, checkpoint=QdwhCheckpointer(str(tmp_path)))
        assert resumed.iterations == ref.iterations
        assert np.array_equal(resumed.u, ref.u)
        assert np.array_equal(resumed.h, ref.h)
        assert resumed.conv_history == ref.conv_history
        assert resumed.weight_history == ref.weight_history

    @pytest.mark.parametrize("dtype", [np.float32, np.complex128])
    def test_resume_roundtrips_dtypes(self, tmp_path, rng, dtype):
        a = rng.standard_normal((20, 12)).astype(dtype)
        if np.iscomplexobj(a):
            a = a + 1j * rng.standard_normal((20, 12))
        ref = qdwh(a)
        qdwh(a, max_iter=1, checkpoint=QdwhCheckpointer(str(tmp_path)))
        resumed = qdwh(a, checkpoint=QdwhCheckpointer(str(tmp_path)))
        assert resumed.u.dtype == ref.u.dtype
        assert np.array_equal(resumed.u, ref.u)
        assert np.array_equal(resumed.h, ref.h)

    def test_stale_checkpoint_for_other_problem_ignored(self, tmp_path,
                                                        rng):
        a = rng.standard_normal((16, 10))
        qdwh(a, max_iter=1, checkpoint=QdwhCheckpointer(str(tmp_path)))
        b = rng.standard_normal((12, 8))  # different shape: stale
        ref = qdwh(b)
        res = qdwh(b, checkpoint=QdwhCheckpointer(str(tmp_path),
                                                  keep=5))
        assert np.array_equal(res.u, ref.u)

    def test_same_shape_different_matrix_not_resumed(self, tmp_path,
                                                     rng):
        """Shape and dtype match; only the content fingerprint can tell
        the checkpoint belongs to another problem.  Resuming from it
        would silently return the wrong factors for ``b``."""
        a = rng.standard_normal((16, 10))
        qdwh(a, max_iter=1, checkpoint=QdwhCheckpointer(str(tmp_path)))
        b = rng.standard_normal((16, 10))
        ref = qdwh(b)
        res = qdwh(b, checkpoint=QdwhCheckpointer(str(tmp_path),
                                                  keep=5))
        assert res.iterations == ref.iterations
        assert np.array_equal(res.u, ref.u)
        assert np.array_equal(res.h, ref.h)

    def test_converged_run_clears_checkpoints(self, tmp_path, rng):
        """A finished run's checkpoints are spent: leaving them behind
        would make a rerun resume from the converged state."""
        a = rng.standard_normal((16, 10))
        ck = QdwhCheckpointer(str(tmp_path))
        res = qdwh(a, checkpoint=ck)
        assert res.converged
        assert ck.load() is None
        # And the rerun really does recompute from scratch.
        rerun = qdwh(a, checkpoint=QdwhCheckpointer(str(tmp_path)))
        assert rerun.iterations == res.iterations
        assert np.array_equal(rerun.u, res.u)
