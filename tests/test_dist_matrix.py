"""Tests for the tiled DistMatrix container."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dist import DistMatrix, ProcessGrid
from repro.runtime import Runtime

from .conftest import make_runtime


class TestGeometry:
    @given(st.integers(1, 100), st.integers(1, 100), st.integers(1, 40))
    def test_tiling_covers_matrix(self, m, n, nb):
        rt = make_runtime()
        a = DistMatrix(rt, m, n, nb)
        assert sum(a.tile_rows(i) for i in range(a.mt)) == m
        assert sum(a.tile_cols(j) for j in range(a.nt)) == n

    def test_custom_partitions(self):
        rt = make_runtime()
        a = DistMatrix(rt, 10, 6, 4, row_heights=(4, 4, 2),
                       col_widths=(4, 2))
        assert a.mt == 3 and a.nt == 2
        assert a.tile_rows(2) == 2
        assert a.row_offsets == (0, 4, 8)

    def test_bad_partition_rejected(self):
        rt = make_runtime()
        with pytest.raises(ValueError):
            DistMatrix(rt, 10, 6, 4, row_heights=(4, 4))  # sums to 8

    def test_bad_dims_rejected(self):
        rt = make_runtime()
        with pytest.raises(ValueError):
            DistMatrix(rt, -1, 5, 4)
        with pytest.raises(ValueError):
            DistMatrix(rt, 5, 5, 0)

    def test_ref_bounds(self):
        rt = make_runtime()
        a = DistMatrix(rt, 8, 8, 4)
        with pytest.raises(IndexError):
            a.ref(2, 0)

    def test_owner_follows_layout(self):
        rt = make_runtime(2, 3)
        a = DistMatrix(rt, 40, 40, 8)
        for i in range(a.mt):
            for j in range(a.nt):
                assert a.owner(i, j) == a.layout.owner(i, j)

    def test_unique_matrix_ids(self):
        rt = make_runtime()
        a = DistMatrix(rt, 4, 4, 2)
        b = DistMatrix(rt, 4, 4, 2)
        assert a.mat_id != b.mat_id


class TestRoundTrip:
    @given(st.integers(1, 60), st.integers(1, 60), st.integers(1, 17))
    def test_from_to_array(self, m, n, nb):
        rng = np.random.default_rng(m * 1000 + n * 17 + nb)
        arr = rng.standard_normal((m, n))
        rt = make_runtime()
        d = DistMatrix.from_array(rt, arr, nb)
        assert np.array_equal(d.to_array(), arr)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64,
                                       np.complex64, np.complex128])
    def test_dtype_preserved(self, dtype, rng):
        arr = rng.standard_normal((10, 8)).astype(dtype)
        rt = make_runtime()
        d = DistMatrix.from_array(rt, arr, 4)
        assert d.dtype == np.dtype(dtype)
        assert d.to_array().dtype == np.dtype(dtype)

    def test_lazy_zero_tiles(self):
        rt = make_runtime()
        d = DistMatrix(rt, 8, 8, 4)
        assert np.array_equal(d.tile(0, 0), np.zeros((4, 4)))

    def test_set_tile_shape_checked(self):
        rt = make_runtime()
        d = DistMatrix(rt, 8, 8, 4)
        with pytest.raises(ValueError):
            d.set_tile(0, 0, np.zeros((3, 4)))


class TestSymbolicMode:
    def test_no_data_access(self):
        rt = make_runtime(numeric=False)
        d = DistMatrix(rt, 16, 16, 4)
        with pytest.raises(RuntimeError):
            d.tile(0, 0)
        with pytest.raises(RuntimeError):
            d.to_array()

    def test_metadata_still_available(self):
        rt = make_runtime(numeric=False)
        d = DistMatrix(rt, 16, 12, 4)
        assert d.mt == 4 and d.nt == 3
        assert d.tile_nbytes(0, 0) == 4 * 4 * 8

    def test_tile_bytes_registered(self):
        rt = make_runtime(numeric=False)
        d = DistMatrix(rt, 10, 10, 4)
        assert rt.graph.tile_bytes[d.ref(0, 0)] == 4 * 4 * 8
        assert rt.graph.tile_bytes[d.ref(2, 2)] == 2 * 2 * 8

    def test_like(self):
        rt = make_runtime()
        d = DistMatrix(rt, 12, 8, 4, np.complex64)
        e = d.like(n=4)
        assert e.shape == (12, 4)
        assert e.dtype == np.dtype(np.complex64)
        assert e.nb == 4
