"""DistSan happens-before checker: synthetic traces + a real run."""

import numpy as np
import pytest

from repro.analysis.dist import audit_refcounts, check_frames, check_hb
from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.matrices import generate_matrix
from repro.runtime import Runtime
from repro.runtime.distributed.events import (EV_COMPLETE, EV_DECREF,
                                              EV_DISPATCH, EV_DRIVER,
                                              EV_INCREF, EV_PIN, EV_UNLINK,
                                              DistTraceRecorder)
from repro.runtime.task import Task, TaskKind

REF = (7, 0, 0)


def _task(tid, deps=(), reads=(), writes=()):
    return Task(tid=tid, kind=TaskKind.GEMM, reads=tuple(reads),
                writes=tuple(writes), rank=0, phase=0, deps=tuple(deps))


def _recorder_with_pin():
    rec = DistTraceRecorder()
    rec.record(EV_PIN, segment="seg1", refs=1, ref=REF)
    return rec


class TestSyntheticTraces:
    def test_ordered_chain_is_clean(self):
        # t1 writes REF; t2 (dep on t1) reads it.  The executor
        # dispatches t2 only after t1's reply: ordered.
        tasks = [_task(0, writes=[REF]), _task(1, deps=[0], reads=[REF])]
        rec = _recorder_with_pin()
        rec.record(EV_DISPATCH, tid=0, wid=0, attempt=0)
        rec.record(EV_COMPLETE, tid=0, wid=0, attempt=0)
        rec.record(EV_DISPATCH, tid=1, wid=1, attempt=0)
        rec.record(EV_COMPLETE, tid=1, wid=1, attempt=0)
        assert check_hb(rec, tasks) == []

    def test_unordered_writes_are_a_race(self):
        # Both dispatched before either reply: nothing orders the two
        # worker-side writes to one shared tile.
        tasks = [_task(0, writes=[REF]), _task(1, writes=[REF])]
        rec = _recorder_with_pin()
        rec.record(EV_DISPATCH, tid=0, wid=0, attempt=0)
        rec.record(EV_DISPATCH, tid=1, wid=1, attempt=0)
        rec.record(EV_COMPLETE, tid=0, wid=0, attempt=0)
        rec.record(EV_COMPLETE, tid=1, wid=1, attempt=0)
        findings = check_hb(rec, tasks)
        assert [f.kind for f in findings] == ["race-write-write"]
        assert findings[0].ref == REF
        assert findings[0].segment == "seg1"

    def test_unordered_write_read_is_a_race(self):
        tasks = [_task(0, writes=[REF]), _task(1, reads=[REF])]
        rec = _recorder_with_pin()
        rec.record(EV_DISPATCH, tid=0, wid=0, attempt=0)
        rec.record(EV_DISPATCH, tid=1, wid=1, attempt=0)
        rec.record(EV_COMPLETE, tid=0, wid=0, attempt=0)
        rec.record(EV_COMPLETE, tid=1, wid=1, attempt=0)
        kinds = {f.kind for f in check_hb(rec, tasks)}
        assert kinds == {"race-write-read"}

    def test_same_worker_program_order_orders_accesses(self):
        # Both attempts on ONE worker: its sequential recv loop
        # orders them even with overlapping (pipelined) dispatches.
        tasks = [_task(0, writes=[REF]), _task(1, writes=[REF])]
        rec = _recorder_with_pin()
        rec.record(EV_DISPATCH, tid=0, wid=0, attempt=0)
        rec.record(EV_DISPATCH, tid=1, wid=0, attempt=0)
        rec.record(EV_COMPLETE, tid=0, wid=0, attempt=0)
        rec.record(EV_COMPLETE, tid=1, wid=0, attempt=0)
        assert check_hb(rec, tasks) == []

    def test_unshared_tiles_are_ignored(self):
        other = (8, 1, 1)   # never pinned into shm
        tasks = [_task(0, writes=[other]), _task(1, writes=[other])]
        rec = _recorder_with_pin()
        rec.record(EV_DISPATCH, tid=0, wid=0, attempt=0)
        rec.record(EV_DISPATCH, tid=1, wid=1, attempt=0)
        rec.record(EV_COMPLETE, tid=0, wid=0, attempt=0)
        rec.record(EV_COMPLETE, tid=1, wid=1, attempt=0)
        assert check_hb(rec, tasks) == []

    def test_failed_attempt_writes_are_discarded(self):
        from repro.runtime.distributed.events import EV_FAIL

        tasks = [_task(0, writes=[REF]), _task(1, writes=[REF])]
        rec = _recorder_with_pin()
        rec.record(EV_DISPATCH, tid=0, wid=0, attempt=0)
        rec.record(EV_DISPATCH, tid=1, wid=1, attempt=0)
        rec.record(EV_FAIL, tid=0, wid=0, attempt=0)
        rec.record(EV_COMPLETE, tid=1, wid=1, attempt=0)
        # t0's attempt failed: its write was discarded/restored, so
        # only t1's write stands — no pair to race.
        assert check_hb(rec, tasks) == []

    def test_driver_task_vs_concurrent_worker_write_races(self):
        tasks = [_task(0, writes=[REF]), _task(1, reads=[REF])]
        rec = _recorder_with_pin()
        rec.record(EV_DISPATCH, tid=0, wid=0, attempt=0)
        rec.record(EV_DRIVER, tid=1, attempt=0)   # driver read, no HB
        rec.record(EV_COMPLETE, tid=0, wid=0, attempt=0)
        # The driver's read node precedes the worker's write node in
        # graph order, so the pair reports as read-then-write.
        kinds = {f.kind for f in check_hb(rec, tasks)}
        assert kinds == {"race-read-write"}

    def test_leaked_segment_reported(self):
        rec = _recorder_with_pin()
        rec.leaked = ["seg1"]
        findings = check_hb(rec, [])
        assert [f.kind for f in findings] == ["leak"]


class TestRefcountAudit:
    def test_balanced_lifecycle_is_clean(self):
        rec = _recorder_with_pin()
        rec.record(EV_INCREF, segment="seg1", refs=2)
        rec.record(EV_DECREF, segment="seg1", refs=1)
        rec.record(EV_DECREF, segment="seg1", refs=0)
        rec.record(EV_UNLINK, segment="seg1", refs=0)
        assert audit_refcounts(rec) == []

    def test_never_unlinked_is_a_leak(self):
        rec = _recorder_with_pin()
        findings = audit_refcounts(rec)
        assert [f.kind for f in findings] == ["refcount-leak"]

    def test_store_replay_disagreement_is_flagged(self):
        rec = _recorder_with_pin()
        rec.record(EV_INCREF, segment="seg1", refs=3)   # replay says 2
        findings = audit_refcounts(rec)
        assert [f.kind for f in findings if f.kind == "refcount-skew"]

    def test_double_unlink_and_unknown_segment(self):
        rec = _recorder_with_pin()
        rec.record(EV_UNLINK, segment="seg1", refs=0)
        rec.record(EV_UNLINK, segment="seg1", refs=0)
        rec.record(EV_DECREF, segment="ghost", refs=0)
        kinds = {f.kind for f in audit_refcounts(rec)}
        assert "refcount-double-unlink" in kinds
        assert "refcount-unknown" in kinds


class TestRecordedRun:
    def test_processes_qdwh_run_is_clean(self):
        a = generate_matrix(48, cond=1e6, dtype=np.float64, seed=3)
        rt = Runtime(ProcessGrid(2, 2))
        rec = DistTraceRecorder()
        rt.dist_recorder = rec
        da = DistMatrix.from_array(rt, a.copy(), 16)
        res = tiled_qdwh(rt, da, backend="processes", workers=2)
        rt.sync()
        u = res.u.to_array()
        tasks = list(rt.graph.tasks)
        rt.close()

        # The run itself must be correct...
        np.testing.assert_allclose(u @ u.T.conj(), np.eye(48),
                                   atol=1e-8)
        # ...and the recorded trace must pass every checker.
        assert rec.events, "recorder saw no events"
        assert rec.frames, "recorder saw no frames"
        assert check_hb(rec, tasks) == []
        assert audit_refcounts(rec) == []
        assert check_frames(rec) == []

    def test_recorder_off_by_default(self):
        rt = Runtime(ProcessGrid(1, 1))
        assert rt.dist_recorder is None
        rt.close()
