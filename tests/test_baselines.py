"""Tests for the baseline polar-decomposition algorithms."""

import numpy as np
import pytest

from repro import polar, polar_dwh, polar_newton, polar_newton_scaled, polar_svd
from repro.matrices import generate_matrix, ill_conditioned, polar_report


class TestPolarSvd:
    def test_accuracy_square(self):
        a = ill_conditioned(64, seed=0)
        r = polar_svd(a)
        assert polar_report(a, r.u, r.h).within(1e-12)

    def test_accuracy_rectangular_complex(self):
        a = generate_matrix(50, 30, cond=1e6, dtype=np.complex128, seed=1)
        r = polar_svd(a)
        assert polar_report(a, r.u, r.h).within(1e-12)

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            polar_svd(np.ones((3, 5)))


class TestNewton:
    def test_well_conditioned_converges(self):
        a = generate_matrix(32, cond=10.0, seed=2)
        r = polar_newton(a)
        assert r.converged
        assert polar_report(a, r.u, r.h).within(1e-10)

    def test_iteration_count_grows_with_condition(self):
        fast = polar_newton(generate_matrix(32, cond=2.0, seed=3))
        slow = polar_newton(generate_matrix(32, cond=1e8, seed=3))
        assert slow.iterations > fast.iterations

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            polar_newton(np.ones((6, 4)))


class TestScaledNewton:
    def test_ill_conditioned_converges_quickly(self):
        a = ill_conditioned(48, seed=4)
        r = polar_newton_scaled(a)
        assert r.converged
        assert r.iterations <= 12
        assert polar_report(a, r.u, r.h).orthogonality < 1e-12

    def test_scaling_beats_unscaled(self):
        a = generate_matrix(32, cond=1e10, seed=5)
        scaled = polar_newton_scaled(a)
        unscaled = polar_newton(a)
        assert scaled.iterations < unscaled.iterations

    def test_complex(self):
        a = generate_matrix(24, cond=1e6, dtype=np.complex128, seed=6)
        r = polar_newton_scaled(a)
        assert polar_report(a, r.u, r.h).within(1e-10)


class TestDwh:
    def test_converges_like_qdwh_moderate_condition(self):
        """DWH uses the same weights as QDWH; ~6 iterations worst case."""
        a = generate_matrix(48, cond=1e4, seed=7)
        r = polar_dwh(a)
        assert r.converged
        assert r.iterations <= 8
        rep = polar_report(a, r.u, r.h)
        assert rep.orthogonality < 1e-12
        # DWH's backward error grows ~ kappa * eps (the inversion).
        assert rep.backward < 1e-10

    def test_instability_on_severe_condition_motivates_qdwh(self):
        """The explicit inversion of I + c X^H X (condition kappa^2)
        destroys the small singular directions — DWH converges to *an*
        orthogonal matrix but not the right one.  This is precisely the
        instability the inverse-free QDWH reformulation fixes
        (Section 3 / Nakatsukasa et al.)."""
        from repro import qdwh
        a = generate_matrix(48, cond=1e12, seed=7)
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            r_dwh = polar_dwh(a)
        r_qdwh = qdwh(a)
        be_dwh = polar_report(a, r_dwh.u, r_dwh.h).backward
        be_qdwh = polar_report(a, r_qdwh.u, r_qdwh.h).backward
        assert be_qdwh < 1e-13
        assert be_dwh > 1e3 * be_qdwh  # orders of magnitude worse

    def test_rectangular(self):
        a = generate_matrix(40, 24, cond=1e4, seed=8)
        r = polar_dwh(a)
        assert polar_report(a, r.u, r.h).within(1e-10)

    def test_zero_matrix(self):
        r = polar_dwh(np.zeros((5, 3)))
        assert r.iterations == 0
        assert np.allclose(r.u.T @ r.u, np.eye(3))


class TestPolarDispatch:
    @pytest.mark.parametrize("method", ["qdwh", "svd", "newton",
                                        "newton_scaled", "dwh", "zolo"])
    def test_all_methods_agree_on_u(self, method):
        a = generate_matrix(24, cond=100.0, seed=9)
        r = polar(a, method=method)
        ref = polar(a, method="svd")
        assert np.allclose(r.u, ref.u, atol=1e-8)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            polar(np.eye(3), method="cayley")

    def test_kwargs_forwarded(self):
        a = generate_matrix(16, cond=10, seed=10)
        r = polar(a, method="qdwh", cond_est=10.0)
        assert r.l0 == pytest.approx(0.1 / 4.0)  # sqrt(16) deflation
