"""Tests for mixed-precision QDWH (future-work item, Section 8)."""

import numpy as np
import pytest

from repro.core.mixed_precision import newton_schulz_polish, qdwh_mixed_precision
from repro.matrices import generate_matrix, ill_conditioned
from repro.matrices.metrics import backward_error, orthogonality_error


class TestNewtonSchulzPolish:
    def test_restores_orthogonality(self):
        from repro.matrices.generator import random_unitary
        q = random_unitary(32, seed=0)
        noisy = (q + 1e-6 * np.random.default_rng(1).standard_normal((32, 32)))
        polished, steps, hist = newton_schulz_polish(noisy)
        assert orthogonality_error(polished) < 1e-13
        assert 1 <= steps <= 4
        assert hist[-1] < hist[0]

    def test_already_orthogonal_no_steps(self):
        from repro.matrices.generator import random_unitary
        q = random_unitary(16, seed=2)
        _, steps, _ = newton_schulz_polish(q)
        assert steps == 0

    def test_quadratic_convergence(self):
        from repro.matrices.generator import random_unitary
        q = random_unitary(24, seed=3)
        noisy = q + 1e-4 * np.random.default_rng(4).standard_normal((24, 24))
        _, _, hist = newton_schulz_polish(noisy, max_steps=3, tol=0)
        # Each step roughly squares the residual.
        assert hist[1] < 10 * hist[0] ** 2 * 24
        assert hist[2] < 10 * hist[1] ** 2 * 24


class TestMixedPrecisionQdwh:
    def test_orthogonality_reaches_double(self):
        a = ill_conditioned(96, seed=0)
        r = qdwh_mixed_precision(a)
        assert r.u.dtype == np.dtype(np.float64)
        assert orthogonality_error(r.u) < 1e-12

    def test_backward_error_at_single_level(self):
        """The documented accuracy contract: backward error floors at
        ~n * eps(float32) — it must be far better than nothing but is
        not expected to reach 1e-15."""
        a = ill_conditioned(96, seed=1)
        r = qdwh_mixed_precision(a)
        be = backward_error(a, r.u, r.h)
        assert be < 5e-5
        assert r.refinement_steps <= 4

    def test_well_conditioned_backward_error_good(self):
        """For well-conditioned A the polar factor is well-conditioned
        too, so the f32 phase loses much less."""
        a = generate_matrix(64, cond=5.0, seed=2)
        r = qdwh_mixed_precision(a)
        assert backward_error(a, r.u, r.h) < 1e-5
        assert orthogonality_error(r.u) < 1e-12

    def test_complex(self):
        a = generate_matrix(48, cond=1e4, dtype=np.complex128, seed=3)
        r = qdwh_mixed_precision(a)
        assert r.u.dtype == np.dtype(np.complex128)
        assert orthogonality_error(r.u) < 1e-12
        # Hermitian H with exactly real diagonal.
        assert np.allclose(r.h, r.h.conj().T)
        assert np.all(np.isreal(np.diagonal(r.h)))

    def test_iteration_counts_reported(self):
        a = ill_conditioned(64, seed=4)
        r = qdwh_mixed_precision(a)
        assert r.it_qr + r.it_chol == r.iterations
        assert r.iterations >= 4  # f32 worst case is ~5

    def test_rejects_single_precision_input(self):
        with pytest.raises(TypeError):
            qdwh_mixed_precision(np.eye(4, dtype=np.float32))

    def test_zero_matrix(self):
        r = qdwh_mixed_precision(np.zeros((4, 4)))
        assert np.allclose(r.h, 0)

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            qdwh_mixed_precision(np.ones((3, 5)))
