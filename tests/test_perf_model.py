"""Tests for the performance model (the simulated benchmark campaign)."""

import pytest

from repro.machines import frontier, summit
from repro.perf.model import IMPLEMENTATIONS, simulate_custom, simulate_qdwh
from repro.perf.sweep import (
    figure_series,
    scaling_series,
    speedup_table,
    tile_size_sweep,
)

MT = 8  # tiny grids: keep the test suite fast


class TestSimulateQdwh:
    def test_basic_point(self):
        p = simulate_qdwh(summit(), 1, 20000, "slate_gpu", max_tiles=MT)
        assert p.makespan > 0
        assert p.tflops > 0
        assert (p.it_qr, p.it_chol) == (3, 3)
        assert p.nb == 320
        assert p.nb_sim >= p.nb

    def test_granularity_coarsening(self):
        p = simulate_qdwh(summit(), 1, 100000, "slate_gpu", max_tiles=MT)
        assert p.nb_sim == pytest.approx(100000 / MT, rel=0.01)
        small = simulate_qdwh(summit(), 1, 2000, "slate_gpu", max_tiles=MT)
        assert small.nb_sim == 320  # no coarsening needed

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError):
            simulate_qdwh(summit(), 1, 1000, "magma")

    def test_model_flops_match_formula(self):
        import repro.flops as F
        p = simulate_qdwh(summit(), 1, 30000, "slate_cpu", max_tiles=MT)
        assert p.model_flops == F.qdwh_total(30000, p.it_qr, p.it_chol)

    def test_settings_table_complete(self):
        for mach in ("summit", "frontier"):
            for impl in ("slate_gpu", "slate_cpu", "scalapack"):
                assert "ranks_per_node" in IMPLEMENTATIONS[mach][impl]


class TestPaperShapes:
    """The qualitative claims of Figs. 2-6, at test-sized sweeps."""

    def test_gpu_beats_cpu_beats_nothing(self):
        g = simulate_qdwh(summit(), 1, 40000, "slate_gpu", max_tiles=MT)
        c = simulate_qdwh(summit(), 1, 40000, "slate_cpu", max_tiles=MT)
        s = simulate_qdwh(summit(), 1, 40000, "scalapack", max_tiles=MT)
        assert g.tflops > 5 * c.tflops
        assert g.tflops > 5 * s.tflops

    def test_slate_cpu_similar_to_scalapack(self):
        """Fig 2: 'SLATE's CPU performance is similar to ScaLAPACK'."""
        c = simulate_qdwh(summit(), 1, 40000, "slate_cpu", max_tiles=MT)
        s = simulate_qdwh(summit(), 1, 40000, "scalapack", max_tiles=MT)
        assert 0.7 < s.tflops / c.tflops <= 1.05

    def test_gpu_tflops_grow_with_n(self):
        """'performance grows as the matrix size increases'."""
        t = [simulate_qdwh(summit(), 1, n, "slate_gpu", max_tiles=MT).tflops
             for n in (10000, 40000, 80000)]
        assert t[0] < t[1] < t[2]

    def test_headline_speedup_regime(self):
        """Abstract: 'up to an 18-fold performance speedup'."""
        g = simulate_qdwh(summit(), 1, 80000, "slate_gpu", max_tiles=MT)
        s = simulate_qdwh(summit(), 1, 80000, "scalapack", max_tiles=MT)
        assert 10 < g.tflops / s.tflops < 30

    def test_weak_scaling_across_nodes(self):
        """Fig 4: good weak scalability at the largest size per node
        count."""
        t1 = simulate_qdwh(summit(), 1, 50000, "slate_gpu", max_tiles=MT)
        t4 = simulate_qdwh(summit(), 4, 100000, "slate_gpu", max_tiles=MT)
        assert t4.tflops > 2.2 * t1.tflops

    def test_frontier_regime(self):
        """Fig 5: ~180 Tflop/s on 16 nodes at n=175k (we accept a wide
        band; EXPERIMENTS.md records the precise measured value)."""
        p = simulate_qdwh(frontier(), 16, 175000, "slate_gpu",
                          max_tiles=12)
        assert 100 < p.tflops < 280

    def test_gpu_aware_mpi_matters_on_frontier_topology(self):
        """A2 ablation: putting Frontier's NICs on the CPUs (i.e.
        forcing staged transfers) must not speed it up."""
        import dataclasses
        fr = frontier()
        staged_net = dataclasses.replace(fr.network, nic_on_gpu=False)
        staged = dataclasses.replace(fr, network=staged_net)
        direct = simulate_qdwh(fr, 2, 40000, "slate_gpu", max_tiles=MT)
        nodirect = simulate_qdwh(staged, 2, 40000, "slate_gpu",
                                 max_tiles=MT)
        assert nodirect.tflops <= direct.tflops * 1.001


class TestSweeps:
    def test_figure_series_structure(self):
        out = figure_series(summit(), 1, ("slate_gpu", "scalapack"),
                            sizes=(10000, 20000), max_tiles=MT)
        assert set(out) == {"slate_gpu", "scalapack"}
        assert [p.n for p in out["slate_gpu"]] == [10000, 20000]

    def test_scaling_series(self):
        out = scaling_series(summit(), [1, 4],
                             sizes_per_nodes={1: (20000,), 4: (40000,)},
                             max_tiles=MT)
        assert out[4][0].nodes == 4

    def test_speedup_table(self):
        rows = speedup_table(summit(), [1],
                             sizes={1: (20000, 40000)}, max_tiles=MT)
        assert rows[0]["speedup"] > 5
        assert rows[0]["at_n"] in (20000, 40000)

    def test_tile_size_sweep_interior_optimum(self):
        """E10: neither the smallest nor the largest nb wins on GPU."""
        pts = tile_size_sweep(summit(), 2560, "slate_gpu",
                              nbs=(64, 192, 320, 640, 1280), max_tiles=64)
        perf = [p.tflops for p in pts]
        best = perf.index(max(perf))
        assert 0 < best < len(perf) - 1

    def test_custom_config_ablation(self):
        p = simulate_custom(summit(), 1, 20000, ranks_per_node=2,
                            use_gpu=True, lookahead=1, max_tiles=MT)
        assert p.makespan > 0
        assert "la=1" in p.impl
