"""Tests for the QDWH dynamical-weight recurrence (core.params)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import (
    QdwhParams,
    dynamical_weights,
    parameter_schedule,
    predict_iterations,
)


class TestDynamicalWeights:
    @given(st.floats(1e-17, 1.0, exclude_max=False))
    def test_weights_satisfy_constraints(self, L):
        """a > 0, b >= 0, c = a + b - 1, and L_next in (L, 1]."""
        a, b, c, L_next = dynamical_weights(L)
        assert a > 0
        assert b >= 0
        assert c == pytest.approx(a + b - 1.0)
        assert 0 < L_next <= 1.0
        assert L_next >= L * 0.999  # monotone non-decreasing lower bound

    def test_at_l_equal_one_weights_are_halleys(self):
        """L = 1 gives the classical Halley weights (a,b,c)=(3,1,3)."""
        a, b, c, L_next = dynamical_weights(1.0)
        assert a == pytest.approx(3.0)
        assert b == pytest.approx(1.0)
        assert c == pytest.approx(3.0)
        assert L_next == pytest.approx(1.0)

    @given(st.floats(1e-16, 0.99))
    def test_map_fixes_one(self, L):
        """The rational map sends x=1 to 1 for every weight choice."""
        a, b, c, _ = dynamical_weights(L)
        assert (1 * (a + b) / (1 + c)) == pytest.approx(1.0, rel=1e-12)

    @given(st.floats(1e-10, 0.9))
    def test_map_contracts_interval_toward_one(self, L):
        """The weighted Halley map sends [L, 1] into [L_next, 1]: the
        new lower bound really bounds the whole mapped spectrum (the
        map equioscillates, so monotonicity does NOT hold — only the
        range inclusion does)."""
        a, b, c, l_next = dynamical_weights(L)
        p = QdwhParams(a=a, b=b, c=c, L=L, L_next=l_next)
        xs = np.linspace(L, 1.0, 41)
        ys = [p.mapped(x) for x in xs]
        assert all(0 < y <= 1.0 + 1e-12 for y in ys)
        assert min(ys) >= l_next - 1e-9

    def test_invalid_l_is_clamped(self):
        # Values outside (0, 1] are clamped rather than exploding.
        a, b, c, L_next = dynamical_weights(0.0)
        assert np.isfinite(a) and np.isfinite(L_next)
        a, b, c, L_next = dynamical_weights(1.5)
        assert a == pytest.approx(3.0)


class TestParameterSchedule:
    def test_worst_case_double_is_six_iterations(self):
        """l0 ~ 1e-17 (kappa=1e16 with sqrt(n) deflation): 6 its."""
        sch = parameter_schedule(1e-17)
        assert len(sch) == 6

    def test_schedule_ends_converged(self):
        sch = parameter_schedule(1e-8)
        assert abs(sch[-1].L_next - 1.0) < 5 * np.finfo(np.float64).eps

    def test_qr_iterations_come_first(self):
        """use_qr is a prefix property: once c <= 100 it stays there."""
        sch = parameter_schedule(1e-17)
        flags = [p.use_qr for p in sch]
        assert flags == sorted(flags, reverse=True)

    def test_well_conditioned_needs_no_qr(self):
        sch = parameter_schedule(0.5)
        assert all(not p.use_qr for p in sch)
        assert len(sch) <= 3

    def test_l0_one_gives_empty_schedule(self):
        assert parameter_schedule(1.0) == []

    def test_invalid_l0_handled(self):
        sch = parameter_schedule(float("nan"))
        assert 1 <= len(sch) <= 30

    @given(st.floats(1e-18, 0.999))
    def test_schedule_bounded_and_monotone(self, l0):
        sch = parameter_schedule(l0)
        assert len(sch) <= 30
        ls = [p.L for p in sch] + [sch[-1].L_next] if sch else []
        assert all(ls[i] <= ls[i + 1] + 1e-12 for i in range(len(ls) - 1))


class TestPredictIterations:
    def test_paper_worst_case_split(self):
        """kappa = 1e16 at realistic n: 3 QR + 3 Cholesky (Section 4)."""
        assert predict_iterations(1e16, n=10000) == (3, 3)
        assert predict_iterations(1e16, n=100000) == (3, 3)

    def test_idealized_estimate_differs(self):
        """With the exact l0 = 1/kappa the split shifts to 2 QR."""
        it_qr, it_chol = predict_iterations(1e16)
        assert it_qr + it_chol == 6
        assert it_qr == 2

    def test_well_conditioned_no_qr(self):
        it_qr, it_chol = predict_iterations(2.0)
        assert it_qr == 0
        assert it_chol <= 4

    def test_perfectly_conditioned(self):
        assert predict_iterations(1.0) == (0, 0)

    def test_rejects_cond_below_one(self):
        with pytest.raises(ValueError):
            predict_iterations(0.5)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            predict_iterations(10.0, n=0)

    @given(st.floats(1.0, 1e16))
    def test_total_iterations_bounded_by_theory(self, cond):
        it_qr, it_chol = predict_iterations(cond, n=4096)
        assert it_qr + it_chol <= 7  # 6 + margin for the sqrt(n) shift


class TestScheduleTable:
    def test_renders_paper_schedule(self):
        from repro.core.params import schedule_table
        table = schedule_table(1e-17)
        lines = table.strip().splitlines()
        assert len(lines) == 2 + 6  # header + rule + six iterations
        assert table.count("QR") == 3
        assert table.count("Chol") == 3

    def test_converged_start_is_empty(self):
        from repro.core.params import schedule_table
        assert schedule_table(1.0).count("|") <= 6  # header only
