"""Tiled norms, norm2est (Algorithm 2), trcondest, gemmA tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dist import DistMatrix
from repro.tiled import (
    column_abs_sums,
    gemm_a,
    gemv_owner_c,
    geqrf,
    norm2est_tiled,
    norm_fro,
    norm_inf,
    norm_max,
    norm_one,
    trcondest_tiled,
)
from repro.tiled.estimators import _vector, trsv_upper

from .conftest import make_runtime


class TestTiledNorms:
    @given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 9))
    def test_all_norms_match_numpy(self, m, n, nb):
        rng = np.random.default_rng(m * 17 + n + nb)
        A = rng.standard_normal((m, n))
        rt = make_runtime(2, 2)
        dA = DistMatrix.from_array(rt, A, nb)
        assert norm_one(rt, dA).value == pytest.approx(
            np.linalg.norm(A, 1))
        assert norm_inf(rt, dA).value == pytest.approx(
            np.linalg.norm(A, np.inf))
        assert norm_fro(rt, dA).value == pytest.approx(
            np.linalg.norm(A, "fro"))
        assert norm_max(rt, dA).value == pytest.approx(np.abs(A).max())

    def test_complex(self, rng):
        A = rng.standard_normal((12, 9)) + 1j * rng.standard_normal((12, 9))
        rt = make_runtime(2, 2)
        dA = DistMatrix.from_array(rt, A, 4)
        assert norm_fro(rt, dA).value == pytest.approx(np.linalg.norm(A))

    def test_column_abs_sums(self, rng):
        A = rng.standard_normal((14, 10))
        rt = make_runtime(2, 2)
        dA = DistMatrix.from_array(rt, A, 4)
        x = _vector(rt, dA, of_cols=True)
        column_abs_sums(rt, dA, x)
        assert np.allclose(x.to_array().ravel(), np.sum(np.abs(A), axis=0))

    def test_symbolic_scalar_raises(self):
        rt = make_runtime(numeric=False)
        dA = DistMatrix(rt, 8, 8, 4)
        res = norm_fro(rt, dA)
        with pytest.raises(RuntimeError):
            _ = res.value


class TestGemmA:
    @given(st.integers(1, 25), st.integers(1, 25), st.integers(1, 8),
           st.booleans())
    def test_gemm_a_matches_dense(self, m, n, nb, conj):
        rng = np.random.default_rng(m + n * 29 + nb)
        A = rng.standard_normal((m, n))
        rt = make_runtime(2, 2)
        dA = DistMatrix.from_array(rt, A, nb)
        x = _vector(rt, dA, of_cols=not conj)
        y = _vector(rt, dA, of_cols=conj)
        xv = rng.standard_normal((x.m, 1))
        for i in range(x.mt):
            x.tile(i, 0)[...] = xv[x.row_offsets[i]:x.row_offsets[i]
                                   + x.tile_rows(i)]
        gemm_a(rt, dA, x, y, conj_a=conj)
        ref = (A.conj().T if conj else A) @ xv
        assert np.allclose(y.to_array(), ref, atol=1e-11)

    def test_owner_c_variant_identical_numerics(self, rng):
        A = rng.standard_normal((18, 14))
        rt = make_runtime(2, 2)
        dA = DistMatrix.from_array(rt, A, 4)
        x = _vector(rt, dA, of_cols=True)
        for i in range(x.mt):
            x.tile(i, 0)[...] = 1.0
        y1 = _vector(rt, dA, of_cols=False)
        y2 = _vector(rt, dA, of_cols=False)
        gemm_a(rt, dA, x, y1)
        gemv_owner_c(rt, dA, x, y2)
        assert np.allclose(y1.to_array(), y2.to_array())

    def test_gemm_a_moves_less_data(self):
        """The point of gemmA: with A large, computing at A's owners
        moves O(n) vector bytes instead of O(n^2) matrix bytes."""
        from repro.machines import summit
        from repro.runtime.scheduler import taskbased_config, simulate

        def comm_bytes(use_gemma):
            rt = make_runtime(2, 2, numeric=False)
            dA = DistMatrix(rt, 4096, 4096, 256)
            x = _vector(rt, dA, of_cols=True)
            y = _vector(rt, dA, of_cols=False)
            (gemm_a if use_gemma else gemv_owner_c)(rt, dA, x, y)
            cfg = taskbased_config(summit(), 2, 2, use_gpu=False)
            return simulate(rt.graph, cfg).comm.total_bytes

        assert comm_bytes(True) < comm_bytes(False) / 3

    def test_shape_validation(self, rng):
        rt = make_runtime()
        dA = DistMatrix.from_array(rt, rng.standard_normal((8, 6)), 4)
        bad = DistMatrix(rt, 5, 1, 4, col_widths=(1,))
        y = _vector(rt, dA, of_cols=False)
        with pytest.raises(ValueError):
            gemm_a(rt, dA, bad, y)


class TestNorm2estTiled:
    @given(st.integers(3, 30), st.integers(2, 9))
    def test_matches_dense_estimator_regime(self, n, nb):
        rng = np.random.default_rng(n * 3 + nb)
        A = rng.standard_normal((n, n))
        rt = make_runtime(2, 2)
        dA = DistMatrix.from_array(rt, A, nb)
        est = norm2est_tiled(rt, dA).value
        true = np.linalg.norm(A, 2)
        assert true / 5 <= est <= true * 1.5

    def test_agrees_with_dense_implementation(self, rng):
        from repro.core.estimators import norm2est
        A = rng.standard_normal((24, 16))
        rt = make_runtime(2, 2)
        dA = DistMatrix.from_array(rt, A, 4)
        assert norm2est_tiled(rt, dA).value == pytest.approx(
            norm2est(A), rel=1e-10)

    def test_symbolic_emits_fixed_sweeps(self):
        rt = make_runtime(numeric=False)
        dA = DistMatrix(rt, 64, 64, 16)
        norm2est_tiled(rt, dA, sweeps=3)
        kinds = rt.graph.counts_by_kind()
        # 3 sweeps x 2 products x 16 tiles + column sums.
        assert kinds["gemv"] == 3 * 2 * 16

    def test_zero_matrix(self):
        rt = make_runtime()
        dA = DistMatrix(rt, 8, 8, 4)  # lazily zero
        assert norm2est_tiled(rt, dA).value == 0.0


class TestTrsvAndTrcondest:
    def test_trsv_solves_against_r(self, rng):
        A = rng.standard_normal((20, 12))
        rt = make_runtime(2, 2)
        dA = DistMatrix.from_array(rt, A.copy(), 4)
        fac = geqrf(rt, dA)
        r_ref = np.linalg.qr(A, mode="r")
        b = rng.standard_normal(12)
        x = _vector(rt, fac.a, of_cols=True)
        for i in range(x.mt):
            x.tile(i, 0)[...] = b[x.row_offsets[i]:x.row_offsets[i]
                                  + x.tile_rows(i), None]
        trsv_upper(rt, fac, x, conj_trans=False)
        got = x.to_array().ravel()
        # R's sign convention may differ from LAPACK's; check residual.
        from repro.tiled.estimators import _r_block
        R = np.zeros((12, 12))
        for k in range(fac.a.nt):
            for j in range(k, fac.a.nt):
                blk = _r_block(fac, k, j)
                R[fac.a.col_offsets[k]:fac.a.col_offsets[k] + blk.shape[0],
                  fac.a.col_offsets[j]:fac.a.col_offsets[j] + blk.shape[1]] = blk
        assert np.allclose(R @ got, b, atol=1e-9)

    @given(st.floats(10.0, 1e10))
    def test_trcondest_tracks_condition(self, cond):
        from repro.matrices import generate_matrix
        A = generate_matrix(24, cond=cond, seed=int(cond) % 1000)
        rt = make_runtime(2, 2)
        dA = DistMatrix.from_array(rt, A.copy(), 8)
        fac = geqrf(rt, dA)
        rc = trcondest_tiled(rt, fac)
        true = 1.0 / np.linalg.cond(A, 1)
        assert true / 30 <= rc.value <= true * 30

    def test_trcondest_symbolic_emits_solves(self):
        rt = make_runtime(numeric=False)
        dA = DistMatrix(rt, 32, 32, 8)
        fac = geqrf(rt, dA)
        before = len(rt.graph)
        trcondest_tiled(rt, fac, cycles=2)
        assert len(rt.graph) > before
