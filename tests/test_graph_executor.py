"""Tests for dependency inference (TaskGraph) and the Runtime executor."""

import pytest

from repro.dist import ProcessGrid
from repro.runtime import Runtime, TaskGraph, TaskKind
from repro.runtime.task import Task


def mk(tid, reads=(), writes=(), phase=0, rank=0, flops=1.0):
    return Task(tid=tid, kind=TaskKind.GEMM, reads=tuple(reads),
                writes=tuple(writes), rank=rank, phase=phase, flops=flops)


T0 = (0, 0, 0)
T1 = (0, 0, 1)
T2 = (0, 1, 0)


class TestDependencyInference:
    def test_read_after_write(self):
        g = TaskGraph()
        g.add(mk(0, writes=[T0]))
        t = g.add(mk(1, reads=[T0]))
        assert t.deps == (0,)

    def test_write_after_write(self):
        g = TaskGraph()
        g.add(mk(0, writes=[T0]))
        t = g.add(mk(1, writes=[T0]))
        assert t.deps == (0,)

    def test_write_after_read(self):
        g = TaskGraph()
        g.add(mk(0, writes=[T0]))
        g.add(mk(1, reads=[T0]))
        g.add(mk(2, reads=[T0]))
        t = g.add(mk(3, writes=[T0]))
        # WAR on both readers (the writer is subsumed transitively but
        # still listed through the WAW edge).
        assert set(t.deps) >= {1, 2}

    def test_independent_tiles_no_edge(self):
        g = TaskGraph()
        g.add(mk(0, writes=[T0]))
        t = g.add(mk(1, writes=[T1]))
        assert t.deps == ()

    def test_readers_reset_after_write(self):
        g = TaskGraph()
        g.add(mk(0, writes=[T0]))
        g.add(mk(1, reads=[T0]))
        g.add(mk(2, writes=[T0]))          # WAR on 1
        t = g.add(mk(3, writes=[T0]))      # only WAW on 2, not on 1
        assert t.deps == (2,)

    def test_rmw_single_dep(self):
        g = TaskGraph()
        g.add(mk(0, writes=[T0]))
        t = g.add(mk(1, reads=[T0], writes=[T0]))
        assert t.deps == (0,)
        t2 = g.add(mk(2, reads=[T0], writes=[T0]))
        assert t2.deps == (1,)

    def test_chain_is_sequential(self):
        """gemm accumulation chains serialize through the output tile."""
        g = TaskGraph()
        for k in range(5):
            g.add(mk(k, reads=[T1, T2], writes=[T0]))
        for k in range(1, 5):
            assert g.tasks[k].deps == (k - 1,)

    def test_topological_by_construction(self):
        g = TaskGraph()
        g.add(mk(0, writes=[T0]))
        g.add(mk(1, reads=[T0], writes=[T1]))
        g.add(mk(2, reads=[T1]))
        assert g.validate_topological()

    def test_successors_inverse_of_deps(self):
        g = TaskGraph()
        g.add(mk(0, writes=[T0]))
        g.add(mk(1, reads=[T0]))
        g.add(mk(2, reads=[T0]))
        succ = g.successors()
        assert sorted(succ[0]) == [1, 2]

    def test_critical_path(self):
        g = TaskGraph()
        g.add(mk(0, writes=[T0], flops=3))
        g.add(mk(1, reads=[T0], writes=[T1], flops=2))
        g.add(mk(2, writes=[T2], flops=4))  # independent
        assert g.critical_path_seconds(lambda t: t.flops) == 5.0

    def test_counts_by_kind(self):
        g = TaskGraph()
        g.add(mk(0, writes=[T0]))
        assert g.counts_by_kind() == {"gemm": 1}


class TestRuntime:
    def test_phases_and_ops_monotone(self):
        rt = Runtime(ProcessGrid(1, 1))
        p0 = rt.phase
        rt.advance_phase()
        assert rt.phase == p0 + 1
        op1 = rt.begin_op()
        op2 = rt.begin_op()
        assert op2 == op1 + 1

    def test_numeric_executes_fn(self):
        rt = Runtime(ProcessGrid(1, 1))
        hits = []
        rt.submit(TaskKind.SET, writes=[rt.new_scalar_ref()],
                  fn=lambda: hits.append(1))
        assert hits == [1]

    def test_symbolic_skips_fn(self):
        rt = Runtime(ProcessGrid(1, 1), numeric=False)
        hits = []
        rt.submit(TaskKind.SET, writes=[rt.new_scalar_ref()],
                  fn=lambda: hits.append(1))
        assert hits == []
        assert len(rt.graph) == 1

    def test_tile_dim_hint_overrides(self):
        rt = Runtime(ProcessGrid(1, 1), numeric=False, tile_dim_hint=320)
        t = rt.submit(TaskKind.GEMM, tile_dim=64)
        assert t.tile_dim == 320

    def test_coarse_hint_attached(self):
        rt = Runtime(ProcessGrid(1, 1), numeric=False)
        rt.coarse_hint = 4.0
        t = rt.submit(TaskKind.GEMM)
        assert t.coarse == 4.0

    def test_task_ids_sequential(self):
        rt = Runtime(ProcessGrid(1, 1), numeric=False)
        t0 = rt.submit(TaskKind.SET)
        t1 = rt.submit(TaskKind.SET)
        assert (t0.tid, t1.tid) == (0, 1)

    def test_scalar_refs_unique(self):
        rt = Runtime(ProcessGrid(1, 1))
        assert rt.new_scalar_ref() != rt.new_scalar_ref()


class TestFlopsScale:
    def test_scale_applied(self):
        rt = Runtime(ProcessGrid(1, 1), numeric=False)
        rt.flops_scale = 4.0
        t = rt.submit(TaskKind.GEMM, flops=100.0)
        assert t.flops == 400.0

    def test_default_is_identity(self):
        rt = Runtime(ProcessGrid(1, 1), numeric=False)
        t = rt.submit(TaskKind.GEMM, flops=100.0)
        assert t.flops == 100.0

    def test_op_index_recorded(self):
        rt = Runtime(ProcessGrid(1, 1), numeric=False)
        t0 = rt.submit(TaskKind.SET)
        rt.begin_op()
        t1 = rt.submit(TaskKind.SET)
        assert t1.op == t0.op + 1
