"""Tests for the threaded execution backend.

Covers :class:`repro.runtime.parallel.ParallelExecutor` (dependency
order, lookahead gating, ordering-violation detection, measured
timeline events, stats), :meth:`repro.runtime.graph.TaskGraph.validate`
(structural invariants), the determinism contract of the backend
(workers=1 bit-identical to eager; workers=4 reproducible to O(eps)),
and the single-publication rule for kernel-invocation metrics.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix
from repro.matrices import generate_matrix
from repro.obs import get_registry
from repro.obs.timeline import TimelineSink
from repro.runtime import (
    GraphValidationError,
    OrderingViolationError,
    ParallelExecutor,
    TaskGraph,
    TaskKind,
)
from repro.runtime.task import Task

from .conftest import make_runtime


def _task(tid, reads=(), writes=(), phase=0, kind=TaskKind.GEMM):
    return Task(tid=tid, kind=kind,
                reads=tuple((0, r, 0) for r in reads),
                writes=tuple((0, w, 0) for w in writes),
                rank=0, phase=phase)


def _graph(specs):
    """Graph from (reads, writes[, phase]) tuples via dependency
    inference — valid by construction."""
    g = TaskGraph()
    tiles = set()
    for spec in specs:
        tiles |= set(spec[0]) | set(spec[1])
    for t in tiles:
        g.register_tile((0, t, 0), 64, owner=0)
    for tid, spec in enumerate(specs):
        phase = spec[2] if len(spec) > 2 else 0
        g.add(_task(tid, reads=spec[0], writes=spec[1], phase=phase))
    return g


class TestGraphValidate:
    def test_valid_by_construction(self):
        g = _graph([((), (0,)), ((0,), (1,)), ((0, 1), (2,)), ((), (0,))])
        assert g.validate() == []

    def test_tid_position_mismatch(self):
        g = TaskGraph()
        g.add(_task(0, writes=(0,)))
        g.tasks[0].tid = 5
        probs = g.validate(raise_on_error=False)
        assert any("tid" in p for p in probs)

    def test_forward_edge(self):
        g = _graph([((), (0,)), ((0,), (1,))])
        g.tasks[0].deps = (1,)
        probs = g.validate(raise_on_error=False)
        assert any("forward" in p for p in probs)

    def test_cycle_reported(self):
        g = _graph([((), (0,)), ((0,), (1,))])
        g.tasks[0].deps = (1,)  # 0 -> 1 -> 0
        probs = g.validate(raise_on_error=False)
        assert any("cycle" in p for p in probs)

    def test_self_dependency(self):
        g = _graph([((), (0,))])
        g.tasks[0].deps = (0,)
        probs = g.validate(raise_on_error=False)
        assert any("itself" in p for p in probs)

    def test_out_of_range_dep(self):
        g = _graph([((), (0,))])
        g.tasks[0].deps = (7,)
        probs = g.validate(raise_on_error=False)
        assert any("out-of-range" in p for p in probs)

    def test_missing_raw_edge(self):
        g = _graph([((), (0,)), ((0,), (1,))])
        g.tasks[1].deps = ()  # strip the read-after-write edge
        probs = g.validate(raise_on_error=False)
        assert any("last writer" in p for p in probs)

    def test_concurrent_writers(self):
        g = _graph([((), (0,)), ((), (0,))])
        g.tasks[1].deps = ()  # strip the write-after-write edge
        probs = g.validate(raise_on_error=False)
        assert any("concurrent writers" in p for p in probs)

    def test_missing_war_edge(self):
        g = _graph([((), (0,)), ((0,), (1,)), ((), (0,))])
        g.tasks[2].deps = ()  # strip write-after-read (and WAW)
        probs = g.validate(raise_on_error=False)
        assert any("reader" in p for p in probs)

    def test_raises_with_problem_list(self):
        g = _graph([((), (0,)), ((0,), (1,))])
        g.tasks[1].deps = ()
        with pytest.raises(GraphValidationError) as ei:
            g.validate()
        assert ei.value.problems

    def test_window_limits_checks(self):
        g = _graph([((), (0,)), ((0,), (1,))])
        g.tasks[1].deps = ()
        assert g.validate(1) == []  # the bad task is outside the window


class TestParallelExecutor:
    def test_rejects_invalid_graph(self):
        g = _graph([((), (0,)), ((0,), (1,))])
        g.tasks[1].deps = ()
        with pytest.raises(GraphValidationError):
            ParallelExecutor(g)

    def test_dependency_order_diamond(self):
        # 0 writes t0; 1 and 2 read t0; 3 reads both results.
        g = _graph([((), (0,)), ((0,), (1,)), ((0,), (2,)), ((1, 2), (3,))])
        order = []
        lock = threading.Lock()

        def mk(tid):
            def fn():
                with lock:
                    order.append(tid)
            return fn

        with ParallelExecutor(g, {t: mk(t) for t in range(4)},
                              workers=4) as ex:
            ex.run()
        assert order.index(0) < order.index(1)
        assert order.index(0) < order.index(2)
        assert order.index(3) == 3

    def test_single_worker_program_order(self):
        # Independent tasks: a 1-thread pool must still follow tid order.
        g = _graph([((), (i,)) for i in range(8)])
        order = []
        fns = {t: (lambda t=t: order.append(t)) for t in range(8)}
        with ParallelExecutor(g, fns, workers=1) as ex:
            ex.run()
        assert order == list(range(8))

    def test_lookahead_gates_phases(self):
        # Two dataflow-independent tasks in consecutive phases: with
        # lookahead=0 the phase-1 task must wait out phase 0.
        g = _graph([((), (0,), 0), ((), (1,), 1)])
        fns = {0: lambda: time.sleep(0.05), 1: lambda: None}
        sink = TimelineSink()
        with ParallelExecutor(g, fns, workers=2, lookahead=0,
                              sink=sink) as ex:
            ex.run()
        ev = {e.tid: e for e in sink.tasks}
        assert ev[1].start >= ev[0].end

    def test_no_lookahead_overlaps_phases(self):
        g = _graph([((), (0,), 0), ((), (1,), 1)])
        fns = {0: lambda: time.sleep(0.05), 1: lambda: time.sleep(0.05)}
        sink = TimelineSink()
        with ParallelExecutor(g, fns, workers=2, sink=sink) as ex:
            ex.run()
        ev = {e.tid: e for e in sink.tasks}
        # Both start before either finishes (true concurrency).
        assert ev[1].start < max(ev[0].end, ev[1].end)

    def test_detects_missing_raw_edge_at_runtime(self):
        # Reader whose RAW edge was stripped races its writer; the
        # epoch assertion fires whichever thread wins.
        g = _graph([((), (0,)), ((0,), (1,))])
        g.tasks[1].deps = ()
        fns = {0: lambda: time.sleep(0.1), 1: lambda: None}
        with ParallelExecutor(g, fns, workers=2, validate=False) as ex, \
                pytest.raises(OrderingViolationError):
            ex.run()

    def test_detects_concurrent_writers_at_runtime(self):
        g = _graph([((), (0,)), ((), (0,))])
        g.tasks[1].deps = ()
        fns = {0: lambda: time.sleep(0.1), 1: lambda: None}
        with ParallelExecutor(g, fns, workers=2, validate=False) as ex, \
                pytest.raises(OrderingViolationError):
            ex.run()

    def test_payload_exception_propagates(self):
        g = _graph([((), (0,))])

        def boom():
            raise ZeroDivisionError("payload failure")

        with ParallelExecutor(g, {0: boom}) as ex, \
                pytest.raises(ZeroDivisionError):
            ex.run()

    def test_measured_sink_events(self):
        from repro.obs.export import chrome_trace
        g = _graph([((), (0,)), ((0,), (1,)), ((1,), (2,))])
        sink = TimelineSink()
        fns = {t: (lambda: None) for t in range(3)}
        with ParallelExecutor(g, fns, workers=2, sink=sink) as ex:
            ex.run()
        assert len(sink.tasks) == 3
        assert all(e.measured for e in sink.tasks)
        assert all(e.end >= e.start >= 0.0 for e in sink.tasks)
        assert all(e.slot.startswith("thr") for e in sink.tasks)
        xs = [e for e in chrome_trace(sink)["traceEvents"]
              if e.get("ph") == "X"]
        assert len(xs) == 3
        assert all(e["args"]["measured"] for e in xs)

    def test_windowed_execution_and_stats(self):
        g = _graph([((), (0,)), ((0,), (1,)), ((1,), (2,)), ((2,), (3,))])
        done = []
        fns = {t: (lambda t=t: done.append(t)) for t in range(4)}
        with ParallelExecutor(g, fns, workers=2) as ex:
            ex.run(0, 2)
            assert done == [0, 1]
            ex.run(2, 4)
        assert done == [0, 1, 2, 3]
        assert ex.stats.windows == 2
        assert ex.stats.tasks_run == 4
        assert ex.stats.workers == 2
        assert ex.stats.wall_seconds > 0.0
        assert 0.0 <= ex.stats.utilization <= 1.0

    def test_payloadless_tasks_are_noops(self):
        # Replaying a graph with no payloads (symbolic/eager history)
        # completes and publishes no kernel metrics.
        g = _graph([((), (0,)), ((0,), (1,))])
        before = get_registry().counter(
            "kernel.invocations.gemm").value
        with ParallelExecutor(g, {}, workers=2) as ex:
            ex.run()
        after = get_registry().counter("kernel.invocations.gemm").value
        assert after == before
        assert ex.stats.tasks_run == 2


def _run_qdwh(a, nb=16, backend="eager", workers=None):
    rt = make_runtime(1, 1)
    if backend == "threads":
        rt.enable_deferred(workers=workers)
    da = DistMatrix.from_array(rt, a.copy(), nb)
    res = tiled_qdwh(rt, da, backend=backend, workers=workers)
    u, h = res.u.to_array(), res.h.to_array()
    rt.close()
    return u, h


class TestDeterminism:
    def test_workers1_bit_identical_to_eager(self):
        a = generate_matrix(64, 48, cond=1e8, seed=11)
        ue, he = _run_qdwh(a)
        u1, h1 = _run_qdwh(a, backend="threads", workers=1)
        assert np.array_equal(ue, u1)
        assert np.array_equal(he, h1)

    def test_workers4_run_to_run_reproducible(self):
        # Multi-worker runs may permute floating-point reduction order
        # (dict-insertion order in the combine closures); run-to-run
        # scatter must stay at the roundoff level, 10 * eps * ||A||.
        a = generate_matrix(48, cond=10.0, seed=12)
        tol = 10 * np.finfo(np.float64).eps * np.linalg.norm(a)
        runs = [_run_qdwh(a, backend="threads", workers=4)
                for _ in range(5)]
        u0, h0 = runs[0]
        for u, h in runs[1:]:
            assert np.max(np.abs(u - u0)) <= tol
            assert np.max(np.abs(h - h0)) <= tol


class TestKernelCounterSinglePath:
    """Kernel invocation counters are published from exactly one
    execution path (eager submit or the executor), never both."""

    def _count_all(self):
        snap = get_registry().snapshot()["counters"]
        return sum(v for k, v in snap.items()
                   if k.startswith("kernel.invocations."))

    def _submit_work(self, rt):
        hits = []
        tiles = [(90, i, 0) for i in range(4)]
        rt.register_tiles(tiles, 64)
        for i, ref in enumerate(tiles):
            rt.submit(TaskKind.GEMM, reads=(), writes=(ref,), rank=0,
                      fn=lambda i=i: hits.append(i))
        return hits

    def test_eager_counts_once_per_payload(self):
        rt = make_runtime(1, 1)
        before = self._count_all()
        hits = self._submit_work(rt)
        assert len(hits) == 4
        assert self._count_all() - before == 4

    def test_deferred_counts_once_per_payload(self):
        rt = make_runtime(1, 1)
        rt.enable_deferred(workers=2)
        before = self._count_all()
        hits = self._submit_work(rt)
        assert hits == []  # recorded, not run
        rt.sync()
        assert len(hits) == 4
        assert self._count_all() - before == 4
        rt.sync()  # idempotent: nothing pending, nothing recounted
        assert self._count_all() - before == 4
        rt.close()

    def test_symbolic_counts_nothing(self):
        rt = make_runtime(1, 1, numeric=False)
        before = self._count_all()
        self._submit_work(rt)
        assert self._count_all() - before == 0

    def test_eager_equals_deferred_for_same_program(self):
        # workers=1 replays the exact eager program (bit-identical
        # dataflow), so the kernel census must match exactly.
        a = generate_matrix(32, cond=100.0, seed=13)
        before = self._count_all()
        _run_qdwh(a, nb=16)
        eager_delta = self._count_all() - before
        before = self._count_all()
        _run_qdwh(a, nb=16, backend="threads", workers=1)
        deferred_delta = self._count_all() - before
        assert eager_delta > 0
        assert deferred_delta == eager_delta


class TestRuntimeDeferred:
    def test_deferred_requires_numeric(self):
        from repro.dist import ProcessGrid
        from repro.runtime import Runtime
        with pytest.raises(ValueError):
            Runtime(ProcessGrid(1, 1), numeric=False, deferred=True)

    def test_backend_validation(self):
        rt = make_runtime(1, 1)
        da = DistMatrix.from_array(rt, np.eye(8), 4)
        with pytest.raises(ValueError):
            tiled_qdwh(rt, da, backend="cuda")
        rt_s = make_runtime(1, 1, numeric=False)
        da_s = DistMatrix(rt_s, 8, 8, 4)
        with pytest.raises(ValueError):
            tiled_qdwh(rt_s, da_s, backend="threads", cond_est=1e4)

    def test_scalar_reads_sync(self):
        from repro.tiled.norms import norm_fro
        rt = make_runtime(1, 1)
        rt.enable_deferred(workers=2)
        a = generate_matrix(24, cond=10.0, seed=14)
        da = DistMatrix.from_array(rt, a, 8)
        nrm = norm_fro(rt, da)
        assert nrm.value == pytest.approx(np.linalg.norm(a))
        rt.close()

    def test_exec_stats_exposed(self):
        a = generate_matrix(32, cond=100.0, seed=15)
        rt = make_runtime(1, 1)
        rt.enable_deferred(workers=2)
        da = DistMatrix.from_array(rt, a, 16)
        tiled_qdwh(rt, da, backend="threads", workers=2)
        stats = rt.exec_stats
        assert stats is not None
        assert stats.tasks_run == len(rt.graph)
        assert stats.windows >= 1
        assert stats.per_kind_seconds
        rt.close()

    def test_measured_timeline_through_runtime(self):
        from repro.dist import ProcessGrid
        from repro.runtime import Runtime
        sink = TimelineSink()
        rt = Runtime(ProcessGrid(1, 1), deferred=True, workers=2,
                     sink=sink)
        a = generate_matrix(24, cond=10.0, seed=16)
        da = DistMatrix.from_array(rt, a, 8)
        res = tiled_qdwh(rt, da, backend="threads", workers=2)
        res.u.to_array()
        assert len(sink.tasks) == len(rt.graph)
        assert all(e.measured for e in sink.tasks)
        rt.close()
