"""Direct unit tests of the single-tile numeric kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tiled import kernels


def rand(rng, m, n, cplx=False):
    a = rng.standard_normal((m, n))
    if cplx:
        a = a + 1j * rng.standard_normal((m, n))
    return a


class TestBuildT:
    @given(st.integers(1, 12), st.integers(1, 12), st.booleans())
    def test_block_reflector_reproduces_q(self, m, k, cplx):
        """Q = I - V T V^H must equal the product of the elementary
        reflectors scipy's raw QR returns."""
        if m < k:
            m, k = k, m
        rng = np.random.default_rng(m * 13 + k)
        a = rand(rng, m, k, cplx)
        import scipy.linalg as sla
        (qr_raw, tau), _ = sla.qr(a, mode="raw")
        v = np.tril(qr_raw, -1)
        v[np.diag_indices(min(m, k))] = 1.0
        v = v[:, :k]
        t = kernels.build_t(v, tau)
        q_blocked = np.eye(m) - v @ t @ v.conj().T
        # Elementary product: H1 H2 ... Hk.
        q_elem = np.eye(m, dtype=a.dtype)
        for i in range(k):
            h = np.eye(m, dtype=a.dtype) - tau[i] * np.outer(
                v[:, i], v[:, i].conj())
            q_elem = q_elem @ h
        assert np.allclose(q_blocked, q_elem, atol=1e-12)

    def test_t_upper_triangular(self, rng):
        a = rand(rng, 10, 6)
        tile, t = kernels.geqrt_kernel(a)
        assert np.allclose(t, np.triu(t))


class TestGeqrtApply:
    @given(st.integers(2, 16), st.integers(1, 16), st.booleans())
    def test_factor_apply_roundtrip(self, m, n, cplx):
        if m < n:
            m, n = n, m
        rng = np.random.default_rng(m + 31 * n)
        a = rand(rng, m, n, cplx)
        tile, t = kernels.geqrt_kernel(a.copy())
        r = np.triu(tile)[:n]
        # Apply Q to [R; extra zeros...]: Q @ [R; 0] must give back A.
        c = np.zeros((m, n), dtype=a.dtype)
        c[:n] = r
        back = kernels.apply_q_kernel(tile, t, c, conj_trans=False)
        assert np.allclose(back, a, atol=1e-11)

    def test_qh_q_is_identity(self, rng):
        a = rand(rng, 12, 8)
        tile, t = kernels.geqrt_kernel(a)
        c = rng.standard_normal((12, 5))
        fwd = kernels.apply_q_kernel(tile, t, c, conj_trans=False)
        back = kernels.apply_q_kernel(tile, t, fwd, conj_trans=True)
        assert np.allclose(back, c, atol=1e-12)


class TestTpqrt:
    @given(st.integers(1, 10), st.integers(1, 12), st.booleans())
    def test_couple_reconstructs(self, kdim, mb, cplx):
        rng = np.random.default_rng(kdim * 7 + mb)
        r_top = np.triu(rand(rng, kdim, kdim, cplx))
        a_bot = rand(rng, mb, kdim, cplx)
        r_new, v_top, v_bot, t = kernels.tpqrt_kernel(r_top, a_bot)
        assert np.allclose(r_new, np.triu(r_new))
        # Q^H [R; A] = [R_new; 0]: apply to the stack and check.
        top, bot = kernels.tpmqrt_kernel(v_top, v_bot, t,
                                         r_top.copy(), a_bot.copy(),
                                         conj_trans=True)
        assert np.allclose(top, r_new, atol=1e-11)
        assert np.allclose(bot, 0, atol=1e-11)

    def test_apply_is_unitary(self, rng):
        r_top = np.triu(rand(rng, 6, 6))
        a_bot = rand(rng, 9, 6)
        _, v_top, v_bot, t = kernels.tpqrt_kernel(r_top, a_bot)
        c_top = rand(rng, 6, 4)
        c_bot = rand(rng, 9, 4)
        t1, b1 = kernels.tpmqrt_kernel(v_top, v_bot, t, c_top, c_bot,
                                       conj_trans=True)
        t2, b2 = kernels.tpmqrt_kernel(v_top, v_bot, t, t1, b1,
                                       conj_trans=False)
        assert np.allclose(t2, c_top, atol=1e-12)
        assert np.allclose(b2, c_bot, atol=1e-12)


class TestTrsmKernel:
    @given(st.integers(1, 12), st.integers(1, 10),
           st.booleans(), st.booleans(), st.booleans())
    def test_all_variants(self, n, nrhs, lower, conj, left):
        rng = np.random.default_rng(n * 3 + nrhs)
        tri = rand(rng, n, n, conj) + (n + 2) * np.eye(n)
        tri = np.tril(tri) if lower else np.triu(tri)
        b = rand(rng, n if left else nrhs, nrhs if left else n, conj)
        x = kernels.trsm_kernel(tri, b, lower=lower, conj_trans=conj,
                                side_left=left)
        op = tri.conj().T if conj else tri
        if left:
            assert np.allclose(op @ x, b, atol=1e-10)
        else:
            assert np.allclose(x @ op, b, atol=1e-10)


class TestPotrfKernel:
    def test_cholesky(self, rng):
        b = rand(rng, 8, 8)
        s = b @ b.T + 8 * np.eye(8)
        ell = kernels.potrf_kernel(s)
        assert np.allclose(ell @ ell.T, s)
