"""Tests for executed-critical-path analysis (repro.obs.critical_path)."""

import numpy as np
import pytest

from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.matrices import generate_matrix
from repro.obs import TimelineSink
from repro.obs.critical_path import (
    BLOCKED_DEPENDENCY,
    BLOCKED_START,
    BLOCKED_WORKER,
    critical_path,
    occupancy,
    slack,
)
from repro.obs.timeline import TaskEvent
from repro.runtime import Runtime
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Task, TaskKind


def _graph(spec):
    """Build a graph from (kind, reads, writes) rows; tiles are ints."""
    g = TaskGraph()
    for tid, (kind, reads, writes) in enumerate(spec):
        g.add(Task(tid=tid, kind=kind,
                   reads=tuple((0, r, 0) for r in reads),
                   writes=tuple((0, w, 0) for w in writes),
                   rank=0, phase=0))
    return g


def _event(tid, start, end, slot="thr0", kind="gemm"):
    return TaskEvent(tid=tid, kind=kind, rank=0, slot=slot, phase=0,
                     flops=0.0, start=start, end=end,
                     duration=end - start, measured=True)


class TestHandBuiltChain:
    """A diamond with a known longest chain: t0 -> t1 -> t3."""

    def _diamond(self):
        # t0 writes A; t1: A->B (slow); t2: A->C (fast); t3: B,C -> D.
        g = _graph([
            (TaskKind.SET, (), (0,)),
            (TaskKind.GEMM, (0,), (1,)),
            (TaskKind.GEMM, (0,), (2,)),
            (TaskKind.GEMM, (1, 2), (3,)),
        ])
        events = [
            _event(0, 0.0, 1.0, slot="thr0", kind="set"),
            _event(1, 1.0, 4.0, slot="thr0"),
            _event(2, 1.0, 2.0, slot="thr1"),
            _event(3, 4.0, 5.0, slot="thr0"),
        ]
        return g, events

    def test_longest_chain_and_reconciliation(self):
        g, events = self._diamond()
        rep = critical_path(g, events)
        assert [s.tid for s in rep.segments] == [0, 1, 3]
        assert rep.makespan == pytest.approx(5.0)
        assert rep.task_seconds == pytest.approx(5.0)
        assert rep.wait_seconds == pytest.approx(0.0)
        assert rep.total == pytest.approx(rep.makespan)
        assert rep.reconciliation == pytest.approx(0.0)

    def test_blocker_attribution(self):
        g, events = self._diamond()
        rep = critical_path(g, events)
        causes = {s.tid: s.blocked_by for s in rep.segments}
        assert causes[0] == BLOCKED_START
        assert causes[1] == BLOCKED_DEPENDENCY
        assert causes[3] == BLOCKED_DEPENDENCY
        assert rep.segments[1].blocker == 0
        assert rep.segments[2].blocker == 1

    def test_dependency_wait_gap(self):
        g, events = self._diamond()
        # Delay t1's start past t0's end: the 0.5 s gap is chain wait.
        events[1] = _event(1, 1.5, 4.5, slot="thr0")
        events[3] = _event(3, 4.5, 5.5, slot="thr0")
        rep = critical_path(g, events)
        assert rep.wait_seconds == pytest.approx(0.5)
        assert rep.wait_by_cause[BLOCKED_DEPENDENCY] == pytest.approx(0.5)
        assert rep.total == pytest.approx(rep.makespan)

    def test_worker_contention_on_chain(self):
        # Two independent tasks serialized on one lane: the second is
        # blocked by the lane, not by any dependency.
        g = _graph([
            (TaskKind.GEMM, (), (0,)),
            (TaskKind.GEMM, (), (1,)),
        ])
        events = [_event(0, 0.0, 2.0), _event(1, 2.0, 5.0)]
        rep = critical_path(g, events)
        assert [s.tid for s in rep.segments] == [0, 1]
        assert rep.segments[1].blocked_by == BLOCKED_WORKER
        assert rep.reconciliation == pytest.approx(0.0)

    def test_per_kind_breakdown(self):
        g, events = self._diamond()
        rep = critical_path(g, events)
        # Chain is t0 (set, 1 s) + t1/t3 (gemm, 3 + 1 s); the event
        # kinds drive the breakdown.
        events_by_tid = {e.tid: e for e in events}
        expect_gemm = sum(events_by_tid[t].duration for t in (1, 3))
        assert rep.per_kind["gemm"] == pytest.approx(expect_gemm)
        assert sum(rep.per_kind.values()) == pytest.approx(rep.task_seconds)

    def test_empty_timeline(self):
        g, _ = self._diamond()
        rep = critical_path(g, [])
        assert rep.segments == []
        assert rep.makespan == 0.0
        assert rep.reconciliation == 0.0
        assert "empty" in rep.format()

    def test_format_renders(self):
        g, events = self._diamond()
        out = critical_path(g, events).format()
        assert "critical path:" in out
        assert "chain time by kernel kind" in out


class TestSlack:
    def test_diamond_slack(self):
        g = _graph([
            (TaskKind.SET, (), (0,)),
            (TaskKind.GEMM, (0,), (1,)),
            (TaskKind.GEMM, (0,), (2,)),
            (TaskKind.GEMM, (1, 2), (3,)),
        ])
        events = [
            _event(0, 0.0, 1.0),
            _event(1, 1.0, 4.0, slot="thr0"),
            _event(2, 1.0, 2.0, slot="thr1"),
            _event(3, 4.0, 5.0),
        ]
        sl = slack(g, events)
        # t0, t1, t3 carry the dependency critical path; only the fast
        # branch t2 can slip (by the 3 - 1 = 2 s duration difference).
        assert sl[0] == pytest.approx(0.0)
        assert sl[1] == pytest.approx(0.0)
        assert sl[3] == pytest.approx(0.0)
        assert sl[2] == pytest.approx(2.0)

    def test_eventless_tasks_are_instantaneous(self):
        g = _graph([
            (TaskKind.SET, (), (0,)),
            (TaskKind.GEMM, (0,), (1,)),
        ])
        sl = slack(g, [_event(1, 0.0, 1.0)])
        assert set(sl) == {1}
        assert sl[1] == pytest.approx(0.0)


class TestOccupancy:
    def test_lane_attribution(self):
        events = [
            _event(0, 0.0, 2.0, slot="thr0"),
            _event(1, 3.0, 4.0, slot="thr0"),
            _event(2, 0.0, 1.0, slot="thr1"),
        ]
        lanes = {l.slot: l for l in occupancy(events)}
        # Global span is 4 s; idle is charged against it per lane.
        assert lanes["thr0"].busy_seconds == pytest.approx(3.0)
        assert lanes["thr0"].idle_seconds == pytest.approx(1.0)
        assert lanes["thr0"].utilization == pytest.approx(0.75)
        assert lanes["thr1"].busy_seconds == pytest.approx(1.0)
        assert lanes["thr1"].idle_seconds == pytest.approx(3.0)
        assert lanes["thr0"].tasks == 2

    def test_empty(self):
        assert occupancy([]) == []


class TestMeasuredRun:
    """The acceptance invariant: chain totals reconcile with the
    measured makespan on a real threads(4) run."""

    @pytest.fixture(scope="class")
    def run(self):
        sink = TimelineSink()
        rt = Runtime(ProcessGrid(1, 1), deferred=True, workers=4,
                     sink=sink, sanitize=None)
        a = generate_matrix(96, cond=1e4, dtype=np.float64, seed=0)
        d = DistMatrix.from_array(rt, a, 32, name="A")
        tiled_qdwh(rt, d, backend="threads", workers=4)
        graph = rt.graph
        rt.close()
        return graph, sink

    def test_reconciles_within_one_percent(self, run):
        graph, sink = run
        rep = critical_path(graph, sink.tasks)
        assert rep.segments
        assert rep.makespan > 0.0
        assert rep.reconciliation < 0.01

    def test_chain_is_a_valid_executed_chain(self, run):
        graph, sink = run
        rep = critical_path(graph, sink.tasks)
        for prev, cur in zip(rep.segments, rep.segments[1:]):
            assert cur.blocker == prev.tid
            assert cur.start >= prev.end - 1e-9

    def test_slack_covers_all_measured_tasks(self, run):
        graph, sink = run
        sl = slack(graph, sink.tasks)
        assert set(sl) == {e.tid for e in sink.tasks}
        assert all(v >= 0.0 for v in sl.values())

    def test_occupancy_lanes_bounded_by_workers(self, run):
        _, sink = run
        lanes = occupancy(sink.tasks)
        assert 1 <= len(lanes) <= 4
        assert sum(l.tasks for l in lanes) == len(sink.tasks)
        span = max(e.end for e in sink.tasks) - min(
            e.start for e in sink.tasks)
        for lane in lanes:
            assert lane.busy_seconds + lane.idle_seconds == pytest.approx(
                span)
