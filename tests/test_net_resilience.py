"""Property and unit tests for the network-resilience primitives.

Covers the pure, deterministic layer under ChaosComm/ReliableComm:

* :class:`BackoffSchedule` — hypothesis properties: every realised
  delay sits inside the jitter band of its nominal
  ``min(base * factor**k, max_delay)`` (after the monotone clamp),
  sequences are monotone non-decreasing, the cumulative sleep never
  exceeds the deadline, and identical ``(seed, key)`` streams are
  bit-identical.
* :class:`NetFaultPlan` — hypothesis round-trip: ``as_dict`` /
  ``from_dict`` (and the JSON file form) reproduce the plan exactly,
  including the per-frame RNG draws that decide which frames are
  dropped/corrupted — a replayed plan injects the *same* faults.
* :class:`PhiAccrualDetector` — suspicion grows with silence, and
  ``suspicion_latency(phi_dead)`` quantifies the acceptance criterion
  that a heartbeat-detected hang is recovered measurably faster than
  a representative ``task_timeout``.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.live import RecoveryPolicy
from repro.resilience.net import (BackoffSchedule, ConnectionCut,
                                  FrameCorrupt, FrameDelay, FrameDrop,
                                  FrameDuplicate, LinkStall, NetFaultPlan,
                                  NetPartition, PhiAccrualDetector,
                                  default_chaos_plan)

# ----------------------------------------------------------------------
# BackoffSchedule
# ----------------------------------------------------------------------

schedules = st.builds(
    BackoffSchedule,
    base=st.floats(min_value=1e-4, max_value=0.05),
    factor=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=0.05, max_value=1.0),
    jitter=st.floats(min_value=0.0, max_value=0.9),
    deadline=st.floats(min_value=0.01, max_value=5.0),
)


class TestBackoffSchedule:
    @given(sched=schedules, seed=st.integers(0, 2**31), key=st.integers(0, 64))
    @settings(max_examples=200, deadline=None)
    def test_delays_inside_jitter_band(self, sched, seed, key):
        delays = sched.delays(seed, key)
        prev = 0.0
        for k, d in enumerate(delays):
            nominal = min(sched.base * sched.factor ** k, sched.max_delay)
            hi = nominal * (1.0 + sched.jitter)
            lo = min(nominal * (1.0 - sched.jitter), prev) \
                if prev else nominal * (1.0 - sched.jitter)
            # The monotone clamp can only *raise* a draw, and never
            # above the previous delay — which itself sat under its
            # own band's ceiling <= this one's (factor >= 1).
            assert lo - 1e-12 <= d <= hi + 1e-12, \
                f"delay[{k}]={d} outside [{lo}, {hi}]"
            prev = d

    @given(sched=schedules, seed=st.integers(0, 2**31), key=st.integers(0, 64))
    @settings(max_examples=200, deadline=None)
    def test_monotone_and_deadline_budgeted(self, sched, seed, key):
        delays = sched.delays(seed, key)
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        assert sum(delays) <= sched.deadline + 1e-12

    @given(sched=schedules, seed=st.integers(0, 2**31), key=st.integers(0, 64))
    @settings(max_examples=100, deadline=None)
    def test_deterministic_per_stream(self, sched, seed, key):
        assert sched.delays(seed, key) == sched.delays(seed, key)

    def test_distinct_keys_get_distinct_jitter(self):
        sched = BackoffSchedule(jitter=0.3, deadline=10.0)
        assert sched.delays(0, key=0) != sched.delays(0, key=1)

    def test_zero_jitter_is_pure_exponential(self):
        sched = BackoffSchedule(base=0.01, factor=2.0, max_delay=0.08,
                                jitter=0.0, deadline=10.0)
        delays = sched.delays(7, 3)
        expect = [0.01, 0.02, 0.04, 0.08, 0.08]
        assert delays[:5] == pytest.approx(expect)

    @pytest.mark.parametrize("kwargs", [
        {"base": 0.0}, {"base": -1.0}, {"factor": 0.5},
        {"base": 0.5, "max_delay": 0.1}, {"jitter": 1.0},
        {"jitter": -0.1}, {"deadline": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BackoffSchedule(**kwargs)


# ----------------------------------------------------------------------
# NetFaultPlan serialization round-trip
# ----------------------------------------------------------------------

probability = st.floats(min_value=0.0, max_value=1.0)
window_start = st.floats(min_value=0.0, max_value=2.0)
window_end = st.one_of(st.just(math.inf),
                       st.floats(min_value=2.0, max_value=5.0))

plans = st.builds(
    NetFaultPlan,
    seed=st.integers(0, 2**31),
    drops=st.lists(st.builds(
        FrameDrop, probability=probability,
        max_events=st.one_of(st.none(), st.integers(1, 100))),
        max_size=3).map(tuple),
    duplicates=st.lists(st.builds(FrameDuplicate, probability=probability),
                        max_size=3).map(tuple),
    delays=st.lists(st.builds(
        FrameDelay, probability=probability,
        seconds=st.floats(min_value=1e-4, max_value=0.05),
        min_seconds=st.just(0.0)),
        max_size=3).map(tuple),
    corrupts=st.lists(st.builds(
        FrameCorrupt, probability=probability,
        max_events=st.integers(1, 10)),
        max_size=3).map(tuple),
    stalls=st.lists(st.builds(
        LinkStall, wid=st.integers(0, 7),
        direction=st.sampled_from(["w2d", "d2w"]),
        start=window_start, end=window_end),
        max_size=2).map(tuple),
    partitions=st.lists(st.builds(
        NetPartition,
        wids=st.lists(st.integers(0, 7), min_size=1, max_size=3,
                      unique=True).map(tuple),
        start=window_start, end=window_end),
        max_size=2).map(tuple),
    cuts=st.lists(st.builds(
        ConnectionCut, wid=st.integers(0, 7),
        after_frames=st.integers(1, 500)),
        max_size=2, unique_by=lambda c: c.wid).map(tuple),
)


class TestNetFaultPlanRoundTrip:
    @given(plan=plans)
    @settings(max_examples=200, deadline=None)
    def test_dict_round_trip_is_identity(self, plan):
        assert NetFaultPlan.from_dict(plan.as_dict()) == plan

    @given(plan=plans)
    @settings(max_examples=100, deadline=None)
    def test_json_text_round_trip_is_identity(self, plan):
        text = json.dumps(plan.as_dict())
        assert NetFaultPlan.from_dict(json.loads(text)) == plan

    @given(plan=plans, salt=st.integers(0, 1000), index=st.integers(0, 5000))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_frame_rng(self, plan, salt, index):
        # The property that makes replay-under-chaos possible: a plan
        # shipped through JSON injects the exact same faults, frame
        # for frame.
        back = NetFaultPlan.from_dict(plan.as_dict())
        draws = [plan.frame_rng(salt, index).random() for _ in range(3)]
        again = [back.frame_rng(salt, index).random() for _ in range(3)]
        assert draws == again

    def test_json_file_round_trip(self, tmp_path):
        plan = default_chaos_plan(seed=42)
        path = plan.to_json(str(tmp_path / "net.json"))
        assert NetFaultPlan.from_json(path) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown net-plan keys"):
            NetFaultPlan.from_dict({"seed": 0, "jams": []})

    def test_duplicate_cut_wid_rejected(self):
        with pytest.raises(ValueError, match="cut more than once"):
            NetFaultPlan(cuts=(ConnectionCut(wid=1, after_frames=5),
                               ConnectionCut(wid=1, after_frames=9)))

    def test_empty_property(self):
        assert NetFaultPlan().empty
        assert NetFaultPlan(drops=(FrameDrop(probability=0.0),)).empty
        assert not default_chaos_plan().empty


# ----------------------------------------------------------------------
# PhiAccrualDetector
# ----------------------------------------------------------------------

class TestPhiAccrual:
    def test_phi_zero_before_first_beat(self):
        det = PhiAccrualDetector(0.05)
        assert det.phi(now=100.0) == 0.0

    def test_phi_grows_with_silence(self):
        det = PhiAccrualDetector(0.05)
        t = 0.0
        for _ in range(20):
            det.beat(now=t)
            t += 0.05
        quiet = det.phi(now=t + 0.1)
        quieter = det.phi(now=t + 0.3)
        assert 0.0 < quiet < quieter

    def test_on_time_beats_never_suspected(self):
        det = PhiAccrualDetector(0.05)
        t = 0.0
        for _ in range(50):
            det.beat(now=t)
            assert det.phi(now=t + 0.05) < 1.0
            t += 0.05

    def test_suspicion_latency_inverts_phi(self):
        det = PhiAccrualDetector(0.05)
        t = 0.0
        for _ in range(20):
            det.beat(now=t)
            t += 0.05
        latency = det.suspicion_latency(8.0)
        # phi at exactly last_beat + latency crosses the threshold.
        assert det.phi(now=(t - 0.05) + latency) == pytest.approx(
            8.0, abs=1e-6)

    def test_hang_detected_well_before_task_timeout(self):
        """The acceptance criterion: with the default policy, a hung
        worker is declared dead (phi >= phi_dead, then SIGKILL +
        replay) in well under a representative task timeout — the
        heartbeat path recovers hangs measurably faster than the
        timeout-of-last-resort ever could."""
        pol = RecoveryPolicy(task_timeout=30.0)
        det = PhiAccrualDetector(pol.heartbeat_interval)
        t = 0.0
        for _ in range(30):          # steady heartbeats, then a hang
            det.beat(now=t)
            t += pol.heartbeat_interval
        latency = det.suspicion_latency(pol.phi_dead)
        assert latency < 1.0                       # sub-second verdict
        assert latency < pol.task_timeout / 10.0   # >=10x faster
        # ... but not hair-triggered: a couple of late beats on a
        # loaded CI machine must not read as death.
        assert latency > 3.0 * pol.heartbeat_interval

    def test_jittery_beats_widen_the_window(self):
        steady = PhiAccrualDetector(0.05, min_std=1e-6)
        noisy = PhiAccrualDetector(0.05, min_std=1e-6)
        t_s = t_n = 0.0
        rng_offsets = [0.0, 0.02, -0.01, 0.03, 0.0, 0.04, -0.02, 0.01]
        for i in range(40):
            steady.beat(now=t_s)
            t_s += 0.05
            noisy.beat(now=t_n)
            t_n += 0.05 + rng_offsets[i % len(rng_offsets)]
        assert noisy.suspicion_latency(8.0) > steady.suspicion_latency(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhiAccrualDetector(0.0)
