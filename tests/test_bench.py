"""Tests for the perf-trajectory harness (repro.obs.bench)."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchCell,
    BenchRun,
    compare_bench,
    default_suite,
    env_fingerprint,
    load_bench,
    smoke_suite,
    write_bench,
)


def _doc(cells, env=None):
    return {
        "schema": BENCH_SCHEMA,
        "topic": "qdwh",
        "suite": "test",
        "repeats": 3,
        "warmup": 1,
        "seed": 0,
        "created_unix": 0,
        "env": env or {"cpu_count": 8, "platform": "test", "machine": "x",
                       "omp_num_threads": "1"},
        "cells": cells,
    }


def _cell(makespan, spread=0.0, **over):
    rec = {"n": 96, "nb": 32, "dtype": "float64", "cond": 1e4,
           "backend": "threads", "workers": 4, "fault_cell": False,
           "repeats_s": [makespan] * 3, "makespan_s": makespan,
           "min_s": makespan, "max_s": makespan, "rel_spread": spread,
           "iterations": 5, "converged": True}
    rec.update(over)
    return rec


class TestSuites:
    def test_smoke_is_strict_subset_of_default(self):
        smoke = {c.key for c in smoke_suite().cells}
        full = {c.key for c in default_suite().cells}
        assert smoke < full

    def test_cells_are_unique(self):
        for suite in (smoke_suite(), default_suite()):
            keys = [c.key for c in suite.cells]
            assert len(keys) == len(set(keys))

    def test_fault_cell_has_clean_counterpart(self):
        for suite in (smoke_suite(), default_suite()):
            keys = {c.key for c in suite.cells}
            faults = [c for c in suite.cells if c.fault_cell]
            assert faults
            for c in faults:
                assert c.clean_key in keys

    def test_cell_key_format(self):
        c = BenchCell(96, 32, "float64", 1e4, "threads", 4)
        assert c.key == "qdwh-n96-nb32-float64-k10000-threads-w4"
        f = BenchCell(96, 32, "float64", 1e4, "threads", 4,
                      fault_cell=True)
        assert f.key.endswith("-faultplan")
        assert f.clean_key == c.key


class TestPersistence:
    def test_round_trip_and_schema(self, tmp_path):
        run = BenchRun(qdwh=_doc({"k": _cell(0.1)}),
                       scaling=dict(_doc({}), topic="scaling", series=[]))
        paths = write_bench(run, out_dir=str(tmp_path))
        assert [p.split("/")[-1] for p in paths] == [
            "BENCH_qdwh.json", "BENCH_scaling.json"]
        doc = load_bench(paths[0])
        assert doc == run.qdwh
        assert doc["schema"] == BENCH_SCHEMA

    def test_deterministic_serialization(self, tmp_path):
        run = BenchRun(qdwh=_doc({"b": _cell(0.2), "a": _cell(0.1)}),
                       scaling=dict(_doc({}), topic="scaling", series=[]))
        p1 = write_bench(run, out_dir=str(tmp_path / "one"))[0]
        run2 = BenchRun(qdwh=_doc({"a": _cell(0.1), "b": _cell(0.2)}),
                        scaling=dict(_doc({}), topic="scaling", series=[]))
        p2 = write_bench(run2, out_dir=str(tmp_path / "two"))[0]
        assert open(p1).read() == open(p2).read()

    def test_load_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text(json.dumps({"schema": "something-else/9"}))
        with pytest.raises(ValueError, match="not a repro bench"):
            load_bench(str(p))

    def test_env_fingerprint_fields(self):
        env = env_fingerprint()
        assert set(env) >= {"git_sha", "cpu_count", "omp_num_threads",
                            "python", "numpy", "platform", "machine",
                            "calib_s"}
        assert env["cpu_count"] >= 1
        assert env["calib_s"] > 0.0


class TestCompare:
    def test_identical_docs_ok(self):
        doc = _doc({"k": _cell(0.1)})
        rep = compare_bench(doc, doc)
        assert rep.ok
        assert [d.verdict for d in rep.deltas] == ["noise"]

    def test_injected_slowdown_is_regression(self):
        old = _doc({"k": _cell(0.1)})
        new = _doc({"k": _cell(0.15)})  # +50% > 25% threshold
        rep = compare_bench(old, new)
        assert not rep.ok
        assert rep.deltas[0].verdict == "regression"
        assert rep.deltas[0].delta == pytest.approx(0.5)

    def test_speedup_is_improvement(self):
        rep = compare_bench(_doc({"k": _cell(0.2)}),
                            _doc({"k": _cell(0.1)}))
        assert rep.ok
        assert rep.deltas[0].verdict == "improvement"

    def test_noise_boundary_around_threshold(self):
        # Zero spread: the gate is exactly the 25% threshold.
        just_under = compare_bench(_doc({"k": _cell(1.0)}),
                                   _doc({"k": _cell(1.24)}))
        just_over = compare_bench(_doc({"k": _cell(1.0)}),
                                  _doc({"k": _cell(1.26)}))
        assert just_under.deltas[0].verdict == "noise"
        assert just_under.ok
        assert just_over.deltas[0].verdict == "regression"
        assert not just_over.ok

    def test_repeat_spread_widens_gate(self):
        # 15% spread -> noise = 3 x 0.15 = 45% > threshold: a 40%
        # slowdown classifies as noise instead of regression.
        old = _doc({"k": _cell(1.0, spread=0.15)})
        new = _doc({"k": _cell(1.4, spread=0.0)})
        rep = compare_bench(old, new)
        assert rep.deltas[0].verdict == "noise"
        assert rep.deltas[0].gate == pytest.approx(0.45)
        # The same delta with tight repeats is a regression.
        assert not compare_bench(_doc({"k": _cell(1.0)}),
                                 _doc({"k": _cell(1.4)})).ok

    def test_env_mismatch_doubles_gate(self):
        old = _doc({"k": _cell(1.0)})
        new_env = {"cpu_count": 4, "platform": "other", "machine": "y",
                   "omp_num_threads": "1"}
        new = _doc({"k": _cell(1.4)}, env=new_env)
        rep = compare_bench(old, new)
        assert rep.env_changed
        assert rep.deltas[0].verdict == "noise"  # gate 2 x 25% = 50%
        big = _doc({"k": _cell(1.6)}, env=new_env)
        assert not compare_bench(old, big).ok

    def test_calibration_drift_excuses_uniform_slowdown(self):
        # The host got 1.6x slower (calibration says so): a +50% cell
        # normalizes to well within the gate.
        env_old = {"cpu_count": 8, "platform": "test", "machine": "x",
                   "omp_num_threads": "1", "calib_s": 0.010}
        env_new = dict(env_old, calib_s=0.016)
        rep = compare_bench(_doc({"k": _cell(1.0)}, env=env_old),
                            _doc({"k": _cell(1.5)}, env=env_new))
        assert not rep.env_changed
        assert rep.drift == pytest.approx(1.6)
        assert rep.deltas[0].verdict == "noise"
        assert rep.ok
        assert "normalized" in rep.format()

    def test_calibration_is_one_sided(self):
        # A *faster* host never inflates deltas into regressions.
        env_old = {"cpu_count": 8, "platform": "test", "machine": "x",
                   "omp_num_threads": "1", "calib_s": 0.016}
        env_new = dict(env_old, calib_s=0.008)
        rep = compare_bench(_doc({"k": _cell(1.0)}, env=env_old),
                            _doc({"k": _cell(1.0)}, env=env_new))
        assert rep.drift == 1.0
        assert rep.deltas[0].verdict == "noise"
        # A genuine slowdown on the slower host still gates: the
        # drift divisor is clamped at 4x.
        env_far = dict(env_old, calib_s=0.16)
        rep = compare_bench(_doc({"k": _cell(1.0)}, env=env_old),
                            _doc({"k": _cell(8.0)}, env=env_far))
        assert rep.drift == 4.0
        assert rep.deltas[0].verdict == "regression"

    def test_no_overlap_fails(self):
        rep = compare_bench(_doc({"a": _cell(0.1)}),
                            _doc({"b": _cell(0.1)}))
        assert not rep.ok
        assert rep.deltas == []
        assert rep.missing == ["a"] and rep.added == ["b"]
        assert "no overlapping cells" in rep.format()

    def test_missing_and_added_cells_reported(self):
        old = _doc({"a": _cell(0.1), "b": _cell(0.1)})
        new = _doc({"a": _cell(0.1), "c": _cell(0.1)})
        rep = compare_bench(old, new)
        assert rep.ok  # overlap ("a") is clean; coverage drift is noted
        assert rep.missing == ["b"] and rep.added == ["c"]

    def test_format_mentions_verdicts(self):
        rep = compare_bench(_doc({"k": _cell(0.1)}),
                            _doc({"k": _cell(0.2)}))
        out = rep.format()
        assert "regression" in out and "FAIL" in out


class TestCompareCli:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_repeat_run_exits_zero(self, tmp_path, capsys):
        doc = _doc({"k": _cell(0.1)})
        old = self._write(tmp_path, "old.json", doc)
        new = self._write(tmp_path, "new.json", copy.deepcopy(doc))
        assert main(["bench", "--compare", old, new]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _doc({"k": _cell(0.1)}))
        new = self._write(tmp_path, "new.json", _doc({"k": _cell(0.2)}))
        assert main(["bench", "--compare", old, new]) == 1
        assert "regression" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _doc({"k": _cell(1.0)}))
        new = self._write(tmp_path, "new.json", _doc({"k": _cell(1.3)}))
        assert main(["bench", "--compare", old, new]) == 1
        assert main(["bench", "--compare", old, new,
                     "--threshold", "0.5"]) == 0
