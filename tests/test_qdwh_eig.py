"""Tests for the QDWH-based spectral divide-and-conquer eigensolver."""

import numpy as np
import pytest

from repro.core.qdwh_eig import qdwh_eigh, qdwh_partial_eigh, spectral_gap_check
from repro.matrices.generator import random_unitary


def hermitian_with_spectrum(w, dtype=np.float64, seed=0):
    n = len(w)
    q = random_unitary(n, dtype, seed=seed)
    return (q * np.asarray(w)[None, :]) @ q.conj().T


class TestQdwhEigh:
    def test_known_spectrum_recovered(self):
        w = np.linspace(-5, 7, 40)
        a = hermitian_with_spectrum(w, seed=1)
        r = qdwh_eigh(a, min_block=8)
        assert np.allclose(r.w, w, atol=1e-10)
        assert r.polar_calls >= 1

    def test_eigenvectors_valid(self):
        w = np.linspace(-3, 3, 32)
        a = hermitian_with_spectrum(w, seed=2)
        r = qdwh_eigh(a, min_block=8)
        assert np.linalg.norm(a @ r.v - r.v * r.w) < 1e-10
        assert np.linalg.norm(r.v.conj().T @ r.v - np.eye(32)) < 1e-10

    def test_complex_hermitian(self):
        w = np.linspace(-2, 5, 24)
        a = hermitian_with_spectrum(w, dtype=np.complex128, seed=3)
        r = qdwh_eigh(a, min_block=8)
        assert np.allclose(r.w, w, atol=1e-10)

    def test_matches_lapack(self, rng):
        b = rng.standard_normal((48, 48))
        a = b + b.T
        r = qdwh_eigh(a, min_block=12)
        assert np.allclose(r.w, np.linalg.eigvalsh(a), atol=1e-9)

    def test_clustered_spectrum_falls_back(self):
        """All eigenvalues equal: the split can't separate; dense
        fallback must still give the right answer."""
        a = 3.0 * np.eye(20)
        r = qdwh_eigh(a, min_block=4)
        assert np.allclose(r.w, 3.0)

    def test_small_matrix_direct(self):
        a = np.diag([1.0, 2.0])
        r = qdwh_eigh(a)
        assert np.allclose(r.w, [1.0, 2.0])
        assert r.polar_calls == 0

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            qdwh_eigh(np.ones((4, 3)))

    def test_uses_hermitian_part_only(self, rng):
        b = rng.standard_normal((16, 16))
        sym = 0.5 * (b + b.T)
        r1 = qdwh_eigh(b, min_block=4)
        r2 = qdwh_eigh(sym, min_block=4)
        assert np.allclose(r1.w, r2.w, atol=1e-10)


class TestPartialEigh:
    def test_above_threshold(self):
        w = np.array([-4.0, -1.0, 0.5, 2.0, 3.0, 6.0])
        a = hermitian_with_spectrum(w, seed=4)
        r = qdwh_partial_eigh(a, sigma=1.0, side="above")
        assert np.allclose(np.sort(r.w), [2.0, 3.0, 6.0], atol=1e-10)
        assert np.linalg.norm(a @ r.v - r.v * r.w) < 1e-10

    def test_below_threshold(self):
        w = np.array([-4.0, -1.0, 0.5, 2.0, 3.0, 6.0])
        a = hermitian_with_spectrum(w, seed=5)
        r = qdwh_partial_eigh(a, sigma=0.0, side="below")
        assert np.allclose(np.sort(r.w), [-4.0, -1.0], atol=1e-10)

    def test_nothing_above(self):
        a = hermitian_with_spectrum([-3.0, -2.0, -1.0], seed=6)
        r = qdwh_partial_eigh(a, sigma=10.0, side="above")
        assert r.w.size == 0

    def test_large_subspace_recurses(self):
        w = np.linspace(-1, 9, 50)
        a = hermitian_with_spectrum(w, seed=7)
        r = qdwh_partial_eigh(a, sigma=0.0, side="above", min_block=8)
        expect = w[w > 0.0]
        assert np.allclose(np.sort(r.w), expect, atol=1e-9)
        assert r.polar_calls >= 2

    def test_rejects_bad_side(self):
        with pytest.raises(ValueError):
            qdwh_partial_eigh(np.eye(4), 0.5, side="left")


class TestGapCheck:
    def test_gap_detected(self):
        assert spectral_gap_check(np.array([1.0, 2.0]), 1.5)

    def test_no_gap(self):
        assert not spectral_gap_check(np.array([1.0, 1.0 + 1e-15]), 1.0)
