"""Tests for the metrics registry (repro.obs.metrics) and the
CommCounters round-trip/merge/publish surface."""

import json

import pytest

from repro.comm.counters import CommCounters
from repro.comm.network import TransferPath
from repro.dist import DistMatrix, ProcessGrid
from repro.machines import summit
from repro.obs import TimelineSink, get_registry, reset_metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from repro.runtime import Runtime, simulate
from repro.runtime.scheduler import taskbased_config
from repro.tiled import geqrf


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        c.reset()
        assert c.value == 0.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge("x")
        g.set(2)
        g.set(-7.5)
        assert g.value == -7.5

    def test_histogram_buckets(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        d = h.as_dict()
        assert d["buckets"] == {"le_1": 2, "le_10": 1, "le_inf": 1}
        assert d["sum"] == pytest.approx(106.5)
        assert d["count"] == 4

    def test_histogram_quantile_interpolates(self):
        h = Histogram("x", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        # One observation <= 1, two in (1, 2], one in (2, 4].
        assert h.quantile(0.0) == pytest.approx(0.0)
        assert h.quantile(0.25) == pytest.approx(1.0)
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(0.75) == pytest.approx(2.0)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_histogram_quantile_overflow_clamps(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        h.observe(1000.0)
        assert h.quantile(0.99) == pytest.approx(10.0)

    def test_histogram_quantile_empty_and_bounds(self):
        h = Histogram("x", buckets=(1.0,))
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_summary(self):
        h = Histogram("x", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 50.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == pytest.approx(105.5)
        assert s["mean"] == pytest.approx(105.5 / 4)
        assert set(s) == {"count", "sum", "mean", "p50", "p95", "p99"}
        assert s["p50"] <= s["p95"] <= s["p99"]

    def test_histogram_as_dict_has_quantiles(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        h.observe(5.0)
        d = h.as_dict()
        assert {"p50", "p95", "p99"} <= set(d)
        assert json.loads(json.dumps(d)) == d

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", buckets=())

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create(self):
        reg = Registry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_cross_type_name_conflict(self):
        reg = Registry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")
        with pytest.raises(ValueError):
            reg.histogram("a")

    def test_snapshot_is_json_friendly(self):
        reg = Registry()
        reg.counter("tasks").inc(3)
        reg.gauge("makespan").set(1.25)
        reg.histogram("dur", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"] == {"tasks": 3}
        assert snap["gauges"] == {"makespan": 1.25}
        assert snap["histograms"]["dur"]["count"] == 1

    def test_reset_keeps_registrations(self):
        reg = Registry()
        reg.counter("a").inc(5)
        reg.reset()
        assert reg.counter("a").value == 0.0
        assert "a" in reg.snapshot()["counters"]

    def test_default_registry_process_wide(self):
        reset_metrics()
        get_registry().counter("test.obs.metric").inc()
        assert get_registry().snapshot()["counters"]["test.obs.metric"] == 1
        reset_metrics()
        assert get_registry().snapshot()["counters"]["test.obs.metric"] == 0


class TestSchedulerInstrumentation:
    def _run(self, sink=None):
        rt = Runtime(ProcessGrid(2, 2), numeric=False)
        a = DistMatrix(rt, 1024, 512, 128)
        geqrf(rt, a)
        return simulate(rt.graph,
                        taskbased_config(summit(), 2, 2, use_gpu=True),
                        sink=sink)

    def test_scheduler_publishes(self):
        reset_metrics()
        r = self._run()
        snap = get_registry().snapshot()
        c = snap["counters"]
        assert c["scheduler.simulations"] == 1
        assert c["scheduler.tasks_executed"] == r.task_count
        assert c["scheduler.stall_seconds.dependency"] >= 0.0
        assert snap["gauges"]["scheduler.makespan_seconds"] == r.makespan

    def test_comm_counters_merged(self):
        reset_metrics()
        r = self._run()
        c = get_registry().snapshot()["counters"]
        for path, nbytes in r.comm.as_dict()["bytes"].items():
            assert c[f"comm.bytes.{path}"] == nbytes

    def test_task_histogram_only_with_sink(self):
        reset_metrics()
        self._run()
        snap = get_registry().snapshot()
        assert snap["histograms"].get(
            "scheduler.task_seconds", {"count": 0})["count"] == 0
        reset_metrics()
        r = self._run(sink=TimelineSink())
        snap = get_registry().snapshot()
        assert snap["histograms"]["scheduler.task_seconds"]["count"] == \
            r.task_count

    def test_counters_accumulate_across_runs(self):
        reset_metrics()
        self._run()
        self._run()
        c = get_registry().snapshot()["counters"]
        assert c["scheduler.simulations"] == 2


class TestKernelInvocationCounters:
    def test_eager_mode_counts_kernels(self):
        import numpy as np
        from repro.tiled import gemm

        reset_metrics()
        rt = Runtime(ProcessGrid(1, 1), numeric=True)
        rng = np.random.default_rng(0)
        a = DistMatrix.from_array(rt, rng.standard_normal((256, 256)), 64)
        b = DistMatrix.from_array(rt, rng.standard_normal((256, 256)), 64)
        c = DistMatrix.from_array(rt, np.zeros((256, 256)), 64)
        gemm(rt, 1.0, a, b, 0.0, c)
        counters = get_registry().snapshot()["counters"]
        assert counters.get("kernel.invocations.gemm", 0) == 4 ** 3


class TestCommCounters:
    def _sample(self):
        c = CommCounters()
        c.record(TransferPath.INTRA_NODE, 100)
        c.record(TransferPath.INTRA_NODE, 50)
        c.record(TransferPath.H2D, 10)
        return c

    def test_local_not_counted(self):
        c = CommCounters()
        c.record(TransferPath.LOCAL, 1000)
        assert c.total_messages == 0
        assert c.total_bytes == 0

    def test_as_dict_from_dict_round_trip(self):
        c = self._sample()
        d = c.as_dict()
        back = CommCounters.from_dict(d)
        assert back.messages == c.messages
        assert back.bytes == c.bytes
        assert back.as_dict() == d

    def test_from_dict_json_round_trip(self):
        c = self._sample()
        back = CommCounters.from_dict(json.loads(json.dumps(c.as_dict())))
        assert back.bytes == c.bytes

    def test_from_dict_rejects_unknown_path(self):
        with pytest.raises(ValueError, match="unknown transfer path"):
            CommCounters.from_dict({"bytes": {"warp_drive": 1}})

    def test_from_dict_empty(self):
        c = CommCounters.from_dict({})
        assert c.total_bytes == 0

    def test_iadd_merges_in_place(self):
        c = self._sample()
        other = CommCounters()
        other.record(TransferPath.INTRA_NODE, 7)
        other.record(TransferPath.INTER_NODE, 3)
        ident = c
        c += other
        assert c is ident
        assert c.bytes[TransferPath.INTRA_NODE] == 157
        assert c.bytes[TransferPath.INTER_NODE] == 3
        assert c.messages[TransferPath.INTRA_NODE] == 3
        # merged() stays the non-mutating equivalent
        assert self._sample().merged(other).bytes == c.bytes

    def test_publish_to_registry(self):
        reg = Registry()
        self._sample().publish(reg, prefix="test")
        c = reg.snapshot()["counters"]
        assert c["test.bytes.intra_node"] == 150
        assert c["test.messages.intra_node"] == 2
        assert c["test.bytes.h2d"] == 10
        assert "test.bytes.inter_node" not in c
