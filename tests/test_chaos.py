"""ChaosComm, ReliableComm, and chaos-under-load executor tests.

Four layers:

* Listener/Comm close semantics — closing a listener mid-``accept``
  unblocks the accepter with :class:`CommClosedError` (never a hang),
  and every close is idempotent.
* :class:`ReliableComm` in isolation, driving one side by hand with
  raw CRC frames: exactly-once in-order delivery under duplicates,
  gaps, and corrupt frames; the reconnect-and-resync handshake from
  both roles; application-level accounting that counts each message
  once with wire retransmission cost reported separately.
* :class:`ChaosComm` injection: seeded decisions are deterministic
  frame-for-frame across runs, connection cuts fire on the driver
  side after the planned frame count, partitions drop scheduled
  windows, and corruption is always CRC-detectable.
* The processes backend end to end under a net plan: connection cuts
  are resynced, the default chaos plan converges bit-identically, a
  one-way link stall is caught by phi-accrual heartbeat suspicion
  (not the task timeout), and an unrecoverable backend loss degrades
  processes → threads → eager instead of raising.
"""

import math
import threading
import time
from unittest import mock

import numpy as np
import pytest

from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.matrices import generate_matrix
from repro.resilience.faults import FaultPlan
from repro.resilience.live import RecoveryPolicy
from repro.resilience.net import (ConnectionCut, FrameCorrupt, FrameDrop,
                                  LinkStall, NetFaultPlan, NetPartition,
                                  default_chaos_plan)
from repro.runtime import Runtime
from repro.runtime.distributed import scan_segments
from repro.runtime.distributed.chaos import (assign_peer, chaos_stats,
                                             clear_net_plan,
                                             install_net_plan)
from repro.runtime.distributed.comm import (CommClosedError, CommError,
                                            CommTimeoutError,
                                            FrameCorruptError, connect,
                                            encode_frame, listen)
from repro.runtime.distributed.reliable import ReliableComm

TRANSPORT_ADDRESSES = [
    pytest.param("inproc://chaos-test-{}", id="inproc"),
    pytest.param("tcp://127.0.0.1:0", id="tcp"),
]

_uniq = iter(range(10 ** 6))


def _pair(address_tpl="inproc://chaos-test-{}"):
    """A connected (server_comm, client_comm, listener) triple."""
    address = address_tpl.format(next(_uniq))
    lst = listen(address)
    out = {}

    def _accept():
        out["server"] = lst.accept(timeout=5.0)

    t = threading.Thread(target=_accept)
    t.start()
    client = connect(lst.address, timeout=5.0)
    t.join(timeout=5.0)
    assert "server" in out, "accept did not complete"
    return out["server"], client, lst


# ----------------------------------------------------------------------
# Listener / Comm close semantics
# ----------------------------------------------------------------------

@pytest.mark.parametrize("address", TRANSPORT_ADDRESSES)
class TestCloseSemantics:
    def test_close_unblocks_pending_accept(self, address):
        lst = listen(address.format(next(_uniq)))
        out = {}

        def _accept():
            t0 = time.perf_counter()
            try:
                lst.accept(timeout=10.0)
            except CommError as exc:
                out["exc"] = exc
            out["elapsed"] = time.perf_counter() - t0

        t = threading.Thread(target=_accept)
        t.start()
        time.sleep(0.05)
        lst.close()
        t.join(timeout=5.0)
        assert not t.is_alive(), "accept hung across listener close"
        assert isinstance(out.get("exc"), CommClosedError)
        assert out["elapsed"] < 5.0

    def test_accept_after_close_raises_immediately(self, address):
        lst = listen(address.format(next(_uniq)))
        lst.close()
        t0 = time.perf_counter()
        with pytest.raises(CommClosedError):
            lst.accept(timeout=10.0)
        assert time.perf_counter() - t0 < 1.0

    def test_listener_double_close_is_noop(self, address):
        lst = listen(address.format(next(_uniq)))
        lst.close()
        lst.close()

    def test_comm_double_close_is_noop(self, address):
        server, client, lst = _pair(address)
        for c in (client, server):
            c.close()
            c.close()
        lst.close()
        lst.close()


# ----------------------------------------------------------------------
# ReliableComm: exactly-once delivery over a lossy wire
# ----------------------------------------------------------------------

class TestReliableComm:
    def test_duplex_round_trip_and_heartbeat(self):
        server, client, lst = _pair()
        drv = ReliableComm(server, role="driver", wid=0)
        wrk = ReliableComm(client, role="worker", wid=0,
                           address=lst.address)
        try:
            wrk.send({"op": "done", "tid": 4})
            assert drv.recv(timeout=5.0) == {"op": "done", "tid": 4}
            drv.send({"op": "task", "tid": 5, "attempt": 0})
            assert wrk.recv(timeout=5.0) == {"op": "task", "tid": 5,
                                             "attempt": 0}
            wrk.send_heartbeat()
            hb = drv.recv(timeout=5.0)
            assert hb["op"] == "hb" and "clock" in hb
            # Heartbeats are control frames: not application messages.
            assert wrk.sent_messages == 1
            assert drv.sent_messages == 1
        finally:
            drv.close()
            wrk.close()
            lst.close()

    def test_duplicate_frames_delivered_once(self):
        server, client, lst = _pair()
        drv = ReliableComm(server, role="driver", wid=0)
        try:
            msg = {"op": "done", "tid": 9}
            frame = encode_frame({"s": 1, "a": 0, "m": msg}, crc=True)
            client._send_frame(frame)
            client._send_frame(frame)           # wire-level duplicate
            assert drv.recv(timeout=5.0) == msg
            with pytest.raises(CommTimeoutError):
                drv.recv(timeout=0.2)           # the copy was discarded
            assert drv.dup_frames == 1
            assert drv.received_messages == 1
        finally:
            drv.close()
            client.close()
            lst.close()

    def test_gap_is_nacked_and_refilled(self):
        server, client, lst = _pair()
        drv = ReliableComm(server, role="driver", wid=0)
        try:
            m1, m2 = {"op": "done", "tid": 1}, {"op": "done", "tid": 2}
            # Frame 2 arrives first: out of order, must not deliver.
            client._send_frame(encode_frame({"s": 2, "a": 0, "m": m2},
                                            crc=True))
            with pytest.raises(CommTimeoutError):
                drv.recv(timeout=0.2)
            nack = client.recv(timeout=5.0)
            assert nack == {"n": 1, "a": 0}
            # Peer replays from the gap: both deliver, in order.
            client._send_frame(encode_frame({"s": 1, "a": 0, "m": m1},
                                            crc=True))
            client._send_frame(encode_frame({"s": 2, "a": 0, "m": m2},
                                            crc=True))
            assert drv.recv(timeout=5.0) == m1
            assert drv.recv(timeout=5.0) == m2
        finally:
            drv.close()
            client.close()
            lst.close()

    def test_corrupt_frame_is_nacked_and_rerequested(self):
        server, client, lst = _pair()
        drv = ReliableComm(server, role="driver", wid=0)
        try:
            msg = {"op": "done", "tid": 3}
            frame = encode_frame({"s": 1, "a": 0, "m": msg}, crc=True)
            bad = frame[:-1] + bytes([frame[-1] ^ 0x5A])
            client._send_frame(bad)
            with pytest.raises(CommTimeoutError):
                drv.recv(timeout=0.2)
            assert drv.corrupt_frames == 1
            assert client.recv(timeout=5.0) == {"n": 1, "a": 0}
            client._send_frame(frame)           # clean retransmission
            assert drv.recv(timeout=5.0) == msg
        finally:
            drv.close()
            client.close()
            lst.close()

    def test_attach_retransmits_only_the_missing_tail(self):
        # Satellite: counters across a reconnect.  Application-level
        # accounting counts each message exactly once; the wire cost of
        # the replay shows up only in retrans_messages/retrans_bytes.
        server, client, lst = _pair()
        drv = ReliableComm(server, role="driver", wid=2,
                           deadline=5.0)
        try:
            m1, m2 = {"op": "task", "tid": 1}, {"op": "task", "tid": 2}
            drv.send(m1)
            env1 = client.recv(timeout=5.0)
            assert env1["s"] == 1 and env1["m"] == m1
            app_bytes = drv.sent_bytes
            client.close()                      # link breaks
            drv.send(m2)                        # buffered, not lost
            # The worker dials back; the acceptor hands us the new
            # connection, which we splice in at the peer's rx=1.
            out = {}
            t = threading.Thread(
                target=lambda: out.update(server=lst.accept(timeout=5.0)))
            t.start()
            client2 = connect(lst.address, timeout=5.0)
            t.join(timeout=5.0)
            assert drv.attach(out["server"], peer_rx=1)
            env2 = client2.recv(timeout=5.0)
            assert env2["s"] == 2 and env2["m"] == m2
            with pytest.raises(CommTimeoutError):
                client2.recv(timeout=0.2)       # m1 was NOT replayed
            assert drv.reconnects == 1
            assert drv.sent_messages == 2       # each counted once
            assert drv.sent_bytes == app_bytes + len(
                encode_frame({"s": 2, "a": 0, "m": m2}, crc=True))
            assert drv.retrans_messages == 1    # wire cost, separate
            assert drv.retrans_bytes > 0
            client2.close()
        finally:
            drv.close()
            lst.close()

    def test_worker_reconnect_resync_handshake(self):
        server, client, lst = _pair()
        wrk = ReliableComm(client, role="worker", wid=3,
                           address=lst.address, deadline=5.0)
        try:
            m1 = {"op": "done", "tid": 1}
            wrk.send(m1)
            env = server.recv(timeout=5.0)
            assert env["s"] == 1 and env["m"] == m1
            m2 = {"op": "done", "tid": 2}
            wrk.send(m2)                        # will be lost in transit
            server._close_transport()           # driver side of the link dies

            def _driver_side():
                # What the executor's acceptor does on resync: answer
                # with our rx, then resume the stream.
                conn = lst.accept(timeout=5.0)
                rs = conn.recv(timeout=5.0)
                out["resync"] = rs
                conn.send({"op": "resync-ack", "rx": 1})
                out["replay"] = conn.recv(timeout=5.0)
                conn._send_frame(encode_frame(
                    {"s": 1, "a": 2, "m": {"op": "shutdown"}},
                    crc=True))
                out["conn"] = conn

            out = {}
            t = threading.Thread(target=_driver_side)
            t.start()
            # recv drives the reconnect: dial, resync at rx=0, replay
            # the un-acked tail (m2), then deliver the driver's next.
            assert wrk.recv(timeout=5.0) == {"op": "shutdown"}
            t.join(timeout=5.0)
            assert out["resync"] == {"op": "resync", "wid": 3, "rx": 0}
            assert out["replay"]["s"] == 2 and out["replay"]["m"] == m2
            assert wrk.reconnects == 1
            assert wrk.sent_messages == 2       # app-level: still once each
            assert wrk.retrans_messages == 1
            out["conn"].close()
        finally:
            wrk.close()
            lst.close()

    def test_mark_dead_short_circuits_the_reconnect_wait(self):
        server, client, lst = _pair()
        drv = ReliableComm(server, role="driver", wid=0, deadline=30.0)
        try:
            client.close()
            drv.mark_dead()                     # driver killed it on purpose
            t0 = time.perf_counter()
            with pytest.raises(CommClosedError):
                drv.recv(timeout=30.0)
            assert time.perf_counter() - t0 < 1.0
        finally:
            drv.close()
            lst.close()


# ----------------------------------------------------------------------
# ChaosComm injection
# ----------------------------------------------------------------------

@pytest.fixture()
def chaos_state():
    yield
    clear_net_plan()


def _chaos_pair():
    return _pair("chaos+inproc://chaos-inj-{}")


class TestChaosInjection:
    def test_seeded_drops_are_deterministic(self, chaos_state):
        def run_once():
            install_net_plan(NetFaultPlan(
                seed=3, drops=(FrameDrop(probability=0.4),)))
            server, client, lst = _chaos_pair()
            try:
                for i in range(40):
                    client.send({"i": i})
                got = []
                while True:
                    try:
                        got.append(server.recv(timeout=0.2)["i"])
                    except CommTimeoutError:
                        break
                dropped = chaos_stats().get("drop", 0)
            finally:
                client.close()
                server.close()
                lst.close()
                clear_net_plan()
            return got, dropped

        got1, dropped1 = run_once()
        got2, dropped2 = run_once()
        assert got1 == got2 and dropped1 == dropped2
        assert dropped1 >= 1
        assert len(got1) == 40 - dropped1
        assert got1[0] == 0                     # handshake frame exempt

    def test_connection_cut_fires_after_planned_frames(self, chaos_state):
        install_net_plan(NetFaultPlan(
            seed=0, cuts=(ConnectionCut(wid=0, after_frames=5),)))
        server, client, lst = _chaos_pair()
        try:
            # The executor tags the driver-side comm with the worker's
            # lane; the cut counts frames there (the driver survives
            # per-window forks, so thresholds accumulate).
            assign_peer(server, wid=17, lane=0)
            for i in range(10):
                client.send({"i": i})
            got = []
            with pytest.raises(CommClosedError, match="cut"):
                for _ in range(10):
                    got.append(server.recv(timeout=1.0)["i"])
            assert got == [0, 1, 2, 3]          # severed on frame 5
            assert chaos_stats().get("cut") == 1
        finally:
            client.close()
            server.close()
            lst.close()

    def test_partition_window_drops_scheduled_lane(self, chaos_state):
        install_net_plan(NetFaultPlan(
            seed=0, partitions=(NetPartition(wids=(0,), start=0.0,
                                             end=math.inf),)),
            epoch=time.monotonic())
        server, client, lst = _chaos_pair()
        try:
            assign_peer(server, wid=17, lane=0)
            server.send({"op": "hello"})        # first frame: exempt
            assert client.recv(timeout=5.0) == {"op": "hello"}
            for i in range(3):
                server.send({"i": i})           # silently dropped
            with pytest.raises(CommTimeoutError):
                client.recv(timeout=0.25)
            stats = chaos_stats()
            assert stats.get("partition", 0) >= 1
            assert stats.get("drop", 0) >= 3
            # The un-tagged direction (client→server) is unaffected.
            client.send({"op": "done"})
            assert server.recv(timeout=5.0) == {"op": "done"}
        finally:
            client.close()
            server.close()
            lst.close()

    def test_corruption_is_always_crc_detectable(self, chaos_state):
        install_net_plan(NetFaultPlan(
            seed=1, corrupts=(FrameCorrupt(probability=1.0,
                                           max_events=1),)))
        server, client, lst = _chaos_pair()
        try:
            assign_peer(server, wid=17, lane=0)
            server.crc_frames = True
            server.send({"op": "hello"})        # first frame: exempt
            assert client.recv(timeout=5.0) == {"op": "hello"}
            server.send({"op": "task", "tid": 1})
            with pytest.raises(FrameCorruptError):
                client.recv(timeout=5.0)
            server.send({"op": "task", "tid": 2})   # max_events spent
            assert client.recv(timeout=5.0) == {"op": "task", "tid": 2}
            assert chaos_stats().get("corrupt") == 1
        finally:
            client.close()
            server.close()
            lst.close()


# ----------------------------------------------------------------------
# Executor end to end under chaos
# ----------------------------------------------------------------------

def _run_eager(a, nb):
    rt = Runtime(ProcessGrid(1, 1))
    d = DistMatrix.from_array(rt, a.copy(), nb)
    res = tiled_qdwh(rt, d)
    u, h = res.u.to_array(), res.h.to_array()
    rt.close()
    return u, h, res


def _run_processes(a, nb, workers, faults=None, recovery=None):
    rt = Runtime(ProcessGrid(1, 1), faults=faults, recovery=recovery)
    d = DistMatrix.from_array(rt, a.copy(), nb)
    res = tiled_qdwh(rt, d, backend="processes", workers=workers)
    u, h = res.u.to_array(), res.h.to_array()
    ex = rt._executor
    leaked = ex.inflight_attempts
    prefix = ex.store.prefix
    stats = rt.exec_stats
    rt.close()
    return u, h, res, stats, leaked, scan_segments(prefix)


class TestExecutorChaos:
    def test_connection_cut_resyncs_bit_identical(self):
        a = generate_matrix(96, cond=1e6, seed=21)
        u0, h0, _ = _run_eager(a, 32)
        plan = FaultPlan(seed=7, net=NetFaultPlan(
            seed=7, cuts=(ConnectionCut(wid=0, after_frames=40),)))
        u, h, res, stats, leaked, shm = _run_processes(
            a, 32, 2, faults=plan, recovery=RecoveryPolicy(max_retries=3))
        rec = stats.recovery
        assert rec.net_reconnects >= 1
        assert res.converged
        assert np.array_equal(u, u0)
        assert np.array_equal(h, h0)
        assert leaked == 0 and shm == []

    def test_default_chaos_plan_converges_bit_identical(self):
        a = generate_matrix(128, cond=1e6, seed=23)
        u0, h0, _ = _run_eager(a, 32)
        plan = FaultPlan(seed=11, net=default_chaos_plan(seed=11))
        u, h, res, stats, leaked, shm = _run_processes(
            a, 32, 3, faults=plan, recovery=RecoveryPolicy(max_retries=3))
        rec = stats.recovery
        assert res.converged
        assert rec.net_drops >= 1
        assert np.array_equal(u, u0)
        assert np.array_equal(h, h0)
        assert leaked == 0 and shm == []

    def test_heartbeat_suspicion_catches_stalled_link(self):
        # One-way stall: lane 1's replies and heartbeats vanish for
        # 0.6 s.  Phi-accrual suspicion must fire (placement moves off
        # the lane) long before the 60 s task timeout would, and the
        # run must finish from retransmission once the stall lifts —
        # no kill, no timeout, bit-identical result.
        a = generate_matrix(96, cond=1e6, seed=29)
        u0, h0, _ = _run_eager(a, 32)
        plan = FaultPlan(seed=13, net=NetFaultPlan(
            seed=13, stalls=(LinkStall(wid=1, direction="w2d",
                                       start=0.02, end=0.6),)))
        pol = RecoveryPolicy(max_retries=3, heartbeat_interval=0.01,
                             heartbeat_grace=0.05, phi_suspect=3.0,
                             phi_dead=1e6, net_deadline=2.0,
                             task_timeout=60.0)
        t0 = time.perf_counter()
        u, h, res, stats, leaked, shm = _run_processes(
            a, 32, 2, faults=plan, recovery=pol)
        elapsed = time.perf_counter() - t0
        rec = stats.recovery
        assert rec.heartbeat_suspects >= 1
        assert rec.timeouts == 0            # heartbeats beat the timeout
        assert elapsed < 30.0
        assert res.converged
        assert np.array_equal(u, u0)
        assert np.array_equal(h, h0)
        assert leaked == 0 and shm == []


# ----------------------------------------------------------------------
# Graceful backend degradation
# ----------------------------------------------------------------------

class TestGracefulDegradation:
    def _run_degraded(self, patches):
        a = generate_matrix(96, cond=1e6, seed=31)
        u0, h0, _ = _run_eager(a, 32)
        rt = Runtime(ProcessGrid(1, 1))
        try:
            d = DistMatrix.from_array(rt, a.copy(), 32)
            with warnings_ignored():
                with patches:
                    res = tiled_qdwh(rt, d, backend="processes",
                                     workers=2)
            u, h = res.u.to_array(), res.h.to_array()
        finally:
            rt.close()
        return u0, h0, u, h, res

    def test_dead_processes_backend_degrades_to_threads(self):
        from repro.runtime.distributed.executor import (ProcessExecutor,
                                                        WorkerCrashError)
        patches = mock.patch.object(
            ProcessExecutor, "run",
            side_effect=WorkerCrashError("all workers lost"))
        u0, h0, u, h, res = self._run_degraded(patches)
        assert res.degraded
        assert any("degrading to the threads backend" in line
                   for line in res.health_log)
        assert np.allclose(u, u0, atol=1e-12)
        assert np.allclose(h, h0, atol=1e-10 * np.linalg.norm(h0))

    def test_degradation_chain_reaches_eager(self):
        from repro.runtime.distributed.executor import (ProcessExecutor,
                                                        WorkerCrashError)
        from repro.runtime.parallel import ParallelExecutor
        p1 = mock.patch.object(
            ProcessExecutor, "run",
            side_effect=WorkerCrashError("all workers lost"))
        p2 = mock.patch.object(
            ParallelExecutor, "run",
            side_effect=WorkerCrashError("thread pool lost"))
        with p1, p2:
            a = generate_matrix(96, cond=1e6, seed=31)
            rt = Runtime(ProcessGrid(1, 1))
            try:
                d = DistMatrix.from_array(rt, a.copy(), 32)
                with warnings_ignored():
                    res = tiled_qdwh(rt, d, backend="processes",
                                     workers=2)
                u, h = res.u.to_array(), res.h.to_array()
            finally:
                rt.close()
        assert res.degraded
        assert sum("degrading to" in line for line in res.health_log) == 2
        assert any("eager" in line for line in res.health_log)
        u0, h0, _ = _run_eager(a, 32)
        assert np.allclose(u, u0, atol=1e-12)


def warnings_ignored():
    import warnings

    class _Ctx:
        def __enter__(self):
            self._cw = warnings.catch_warnings()
            self._cw.__enter__()
            warnings.simplefilter("ignore", RuntimeWarning)

        def __exit__(self, *exc):
            return self._cw.__exit__(*exc)

    return _Ctx()
