"""Tests for the event-driven schedule simulator."""

import numpy as np
import pytest

from repro.dist import DistMatrix, ProcessGrid
from repro.machines import summit
from repro.runtime import Runtime, TaskKind, simulate
from repro.runtime.scheduler import (
    RunConfig,
    forkjoin_config,
    taskbased_config,
)
from repro.tiled import gemm, geqrf


def build_gemm_graph(n=1024, nb=128, grid=(2, 2)):
    rt = Runtime(ProcessGrid(*grid), numeric=False)
    a = DistMatrix(rt, n, n, nb)
    b = DistMatrix(rt, n, n, nb)
    c = DistMatrix(rt, n, n, nb)
    gemm(rt, 1.0, a, b, 0.0, c)
    return rt.graph


def build_qr_graph(m=1024, n=512, nb=128, grid=(2, 2)):
    rt = Runtime(ProcessGrid(*grid), numeric=False)
    a = DistMatrix(rt, m, n, nb)
    geqrf(rt, a)
    return rt.graph


class TestScheduleValidity:
    def test_all_tasks_complete(self):
        g = build_gemm_graph()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=True)
        r = simulate(g, cfg)
        assert r.task_count == len(g)
        assert r.makespan > 0

    def test_dependencies_respected(self):
        """With keep_trace, every task starts after its deps finish."""
        g = build_qr_graph()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=False)
        r = simulate(g, cfg, keep_trace=True)
        for t in g.tasks:
            for d in t.deps:
                assert r.start_times[t.tid] >= r.finish_times[d] - 1e-12

    def test_makespan_at_least_critical_path(self):
        g = build_qr_graph()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=False)
        r = simulate(g, cfg)
        assert r.makespan >= r.critical_path * (1 - 1e-9)

    def test_makespan_at_least_work_over_capacity(self):
        g = build_gemm_graph()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=False)
        r = simulate(g, cfg)
        total_busy = sum(r.per_rank_busy)
        slots = 4 * 21  # 4 ranks x 21 cores each
        assert r.makespan >= total_busy / slots * (1 - 1e-9)

    def test_rank_out_of_range_rejected(self):
        g = build_gemm_graph(grid=(4, 4))  # ranks 0..15
        cfg = taskbased_config(summit(), 2, 2, use_gpu=False)  # 2 ranks
        with pytest.raises(ValueError):
            simulate(g, cfg)

    def test_empty_graph(self):
        from repro.runtime import TaskGraph
        cfg = taskbased_config(summit(), 2, 2, use_gpu=False)
        r = simulate(TaskGraph(), cfg)
        assert r.makespan == 0.0


class TestExecutionModels:
    def test_gpu_faster_than_cpu(self):
        g = build_gemm_graph(n=2048, nb=256)
        gpu = simulate(g, taskbased_config(summit(), 2, 2, use_gpu=True))
        cpu = simulate(g, taskbased_config(summit(), 2, 2, use_gpu=False))
        assert gpu.makespan < cpu.makespan

    def test_forkjoin_never_faster(self):
        g = build_qr_graph()
        tb = simulate(g, taskbased_config(summit(), 2, 2, use_gpu=False))
        fj = simulate(g, forkjoin_config(summit(), 2, 2))
        assert fj.makespan >= tb.makespan * (1 - 1e-9)

    def test_lookahead_monotone(self):
        """More lookahead can only help (or tie)."""
        g = build_qr_graph(m=2048, n=1024)
        spans = []
        for depth in [0, 1, 4, None]:
            cfg = RunConfig(machine=summit(), nodes=2, ranks_per_node=2,
                            use_gpu=False, lookahead=depth)
            spans.append(simulate(g, cfg).makespan)
        assert spans[0] >= spans[1] >= spans[2] >= spans[3]

    def test_phase_barriers_stricter_than_op_barriers(self):
        g = build_qr_graph(m=2048, n=1024)
        per_op = simulate(g, forkjoin_config(summit(), 2, 2))
        per_phase = simulate(
            g, forkjoin_config(summit(), 2, 2, granularity="phase"))
        assert per_phase.makespan >= per_op.makespan * (1 - 1e-9)

    def test_bad_granularity_rejected(self):
        g = build_gemm_graph()
        cfg = RunConfig(machine=summit(), nodes=2, ranks_per_node=2,
                        use_gpu=False, lookahead=0,
                        barrier_granularity="week")
        with pytest.raises(ValueError):
            simulate(g, cfg)

    def test_more_nodes_not_slower(self):
        g = build_gemm_graph(n=4096, nb=256, grid=(2, 4))
        one = simulate(g, taskbased_config(summit(), 4, 2, use_gpu=False))
        # Same graph, same 8 ranks — but spread over 4 nodes vs 4 ranks
        # on... instead compare comm: run on 4 nodes and confirm
        # inter-node traffic appears.
        assert one.comm.inter_node_bytes > 0


class TestCommModeling:
    def test_comm_counted_for_distributed_gemm(self):
        g = build_gemm_graph(grid=(2, 2))
        cfg = taskbased_config(summit(), 2, 2, use_gpu=False)
        r = simulate(g, cfg)
        assert r.comm.total_bytes > 0
        assert r.comm.inter_node_bytes > 0

    def test_single_rank_no_network_traffic(self):
        g = build_gemm_graph(grid=(1, 1))
        cfg = taskbased_config(summit(), 1, 1, use_gpu=False)
        r = simulate(g, cfg)
        assert r.comm.inter_node_bytes == 0
        assert r.comm.bytes[
            __import__("repro.comm.network", fromlist=["TransferPath"]
                       ).TransferPath.INTRA_NODE] == 0

    def test_gpu_run_has_staging_on_summit(self):
        g = build_qr_graph()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=True)
        r = simulate(g, cfg)
        assert r.comm.staging_bytes > 0  # panels on CPU, updates on GPU

    def test_broadcast_relay_bounds_link_serialization(self):
        """With q consumers of one tile, relays keep the producer's
        send link from serializing all q transfers."""
        from repro.runtime import TaskGraph
        from repro.runtime.task import Task

        g = TaskGraph()
        ref = (0, 0, 0)
        g.register_tile(ref, 10 ** 8)  # 100 MB tile
        g.add(Task(tid=0, kind=TaskKind.SET, reads=(), writes=(ref,),
                   rank=0, phase=0, flops=1.0))
        nconsumers = 16
        for i in range(nconsumers):
            g.add(Task(tid=1 + i, kind=TaskKind.GEMM, reads=(ref,),
                       writes=((1, i, 0),), rank=i, phase=0, flops=1.0))
        m = summit()
        cfg = taskbased_config(m, 8, 2, use_gpu=False)
        r = simulate(g, cfg)
        one_hop = m.network.transfer_time(
            10 ** 8, __import__("repro.comm.network",
                                fromlist=["TransferPath"]
                                ).TransferPath.INTER_NODE)
        # Serialized would be ~16 hops; a binary relay tree needs ~4-5
        # rounds.  Allow generous slack but exclude full serialization.
        assert r.makespan < one_hop * 8
        assert r.makespan >= one_hop * 2


class TestBreakdowns:
    def test_kind_busy_sums_to_rank_busy(self):
        g = build_qr_graph()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=False)
        r = simulate(g, cfg)
        assert sum(r.per_kind_busy.values()) == pytest.approx(
            sum(r.per_rank_busy))

    def test_tflops_reporting(self):
        g = build_gemm_graph()
        cfg = taskbased_config(summit(), 2, 2, use_gpu=True)
        r = simulate(g, cfg)
        assert r.gflops > 0
        assert r.tflops(1e12) == pytest.approx(
            1e12 / r.makespan / 1e12)
