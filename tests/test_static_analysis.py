"""Tests for the correctness-tooling subsystem (:mod:`repro.analysis`).

Three layers, each with its seeded known-bad fixture:

* TileSan footprint sanitizer — an undeclared read, an undeclared
  write, and a phantom declaration are each caught with the right
  finding kind, in raise and warn modes, on eager and threaded
  backends.
* Happens-before race checker — a true race (conflicting accesses
  with no dependency path) is reported; transitive ordering passes.
* repro-lint static rules — REP001..REP004 fire on crafted sources and
  are suppressible.

Plus the submit(rank=None) owner resolution, unconditional tile
registration, and the hypothesis property that sanitizer-clean random
graphs stay race-free and replay cleanly under workers=4.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    RaceError,
    SanitizerError,
    SanitizerWarning,
    ancestor_bitsets,
    check_races,
    lint_source,
)
from repro.analysis.lint import (
    BACKEND_UNKNOWN,
    BYTES_OUT_MISSING,
    FOOTPRINT_MISSING,
    FORK_UNSAFE_ARG,
    PAYLOAD_FOOTPRINT,
    RECV_UNDER_LOCK,
    SHM_UNRELEASED,
    SYNC_IN_PAYLOAD as LINT_SYNC_IN_PAYLOAD,
)
from repro.analysis.sanitizer import (
    PHANTOM_DECLARATION,
    SYNC_IN_PAYLOAD,
    UNDECLARED_READ,
    UNDECLARED_WRITE,
    sanitize_mode_from_env,
)
from repro.dist import DistMatrix, ProcessGrid
from repro.runtime import Runtime, TaskGraph, TaskKind
from repro.runtime.task import Task


def _runtime(p=1, q=1, **kw):
    kw.setdefault("sanitize", "raise")
    return Runtime(ProcessGrid(p, q), **kw)


def _matrix(rt, n=8, nb=4):
    a = np.arange(float(n * n)).reshape(n, n)
    return DistMatrix.from_array(rt, a, nb)


def _mk(tid, reads=(), writes=(), deps=None, kind=TaskKind.GEMM):
    t = Task(tid=tid, kind=kind, reads=tuple(reads), writes=tuple(writes),
             rank=0, phase=0)
    if deps is not None:
        t.deps = tuple(deps)
    return t


T0 = (0, 0, 0)
T1 = (0, 0, 1)


# ---------------------------------------------------------------------------
# TileSan: seeded known-bad footprints
# ---------------------------------------------------------------------------

class TestTileSanSeededBad:
    def test_undeclared_read_raises(self):
        rt = _runtime()
        m = _matrix(rt)

        def bad():
            m.tile(0, 0)[...] += m.tile(0, 1)  # (0,1) not declared

        with pytest.raises(SanitizerError) as exc:
            rt.submit(TaskKind.GEMM, reads=(), writes=(m.ref(0, 0),),
                      rank=0, fn=bad, label="bad-read")
        f = exc.value.finding
        assert f.kind == UNDECLARED_READ
        assert f.ref == (m.mat_id, 0, 1)
        assert "bad-read" in f.message()

    def test_undeclared_write_raises(self):
        # A write TileSan can attribute goes through set_tile (writes
        # through the ndarray a tile() read returned are inherently
        # invisible to the hook — that gap is REP002's job statically).
        rt = _runtime()
        m = _matrix(rt)

        def bad():
            m.set_tile(1, 1, np.zeros((4, 4)))  # only (0,0) declared

        with pytest.raises(SanitizerError) as exc:
            rt.submit(TaskKind.SET, reads=(), writes=(m.ref(0, 0),),
                      rank=0, fn=bad, label="bad-write")
        f = exc.value.finding
        assert f.kind == UNDECLARED_WRITE
        assert f.ref == (m.mat_id, 1, 1)

    def test_set_tile_is_a_write(self):
        rt = _runtime()
        m = _matrix(rt)

        def bad():
            m.set_tile(0, 0, np.zeros((4, 4)))

        with pytest.raises(SanitizerError) as exc:
            rt.submit(TaskKind.SET, reads=(m.ref(0, 0),), writes=(),
                      rank=0, fn=bad)
        assert exc.value.finding.kind == UNDECLARED_WRITE

    def test_phantom_declaration_raises(self):
        rt = _runtime()
        m = _matrix(rt)

        def lazy():
            m.tile(0, 0)[...] *= 2.0  # never touches declared (1, 1)

        with pytest.raises(SanitizerError) as exc:
            rt.submit(TaskKind.SCALE, reads=(m.ref(1, 1),),
                      writes=(m.ref(0, 0),), rank=0, fn=lazy,
                      label="phantom")
        f = exc.value.finding
        assert f.kind == PHANTOM_DECLARATION
        assert f.ref == (m.mat_id, 1, 1)
        # The payload itself completed before the phantom check fired.
        assert float(m.tile(0, 0)[0, 1]) == 2.0

    def test_declared_write_read_in_place_is_clean(self):
        rt = _runtime()
        m = _matrix(rt)

        def inplace():
            t = m.tile(0, 0)  # read of a declared write: in/out
            t[...] = t + 1.0

        rt.submit(TaskKind.ADD, reads=(), writes=(m.ref(0, 0),),
                  rank=0, fn=inplace)
        assert rt.sanitizer.findings == []
        assert rt.sanitizer.tasks_checked == 1

    def test_pseudo_tiles_exempt_from_phantom_check(self):
        rt = _runtime()
        m = _matrix(rt)
        sref = rt.new_scalar_ref()
        box = [0.0]

        def reduce_body():
            box[0] = float(np.sum(m.tile(0, 0)))

        rt.submit(TaskKind.REDUCE, reads=(m.ref(0, 0),), writes=(sref,),
                  rank=0, fn=reduce_body)
        assert rt.sanitizer.findings == []

    def test_warn_mode_collects_without_raising(self):
        rt = _runtime(sanitize="warn")
        m = _matrix(rt)

        def bad():
            m.tile(0, 0)[...] += m.tile(0, 1)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            rt.submit(TaskKind.GEMM, reads=(), writes=(m.ref(0, 0),),
                      rank=0, fn=bad)
        assert [f.kind for f in rt.sanitizer.findings] == [UNDECLARED_READ]
        assert any(issubclass(w.category, SanitizerWarning) for w in caught)
        # Observed footprints feed the race checker.
        reads, writes = rt.sanitizer.footprints()[0]
        assert (m.mat_id, 0, 1) in reads
        assert (m.mat_id, 0, 0) in writes

    def test_opt_out_per_task(self):
        rt = _runtime()
        m = _matrix(rt)

        def uninstrumented():
            m.tile(1, 0)[...] = 7.0

        rt.submit(TaskKind.SET, reads=(), writes=(m.ref(0, 0),),
                  rank=0, fn=uninstrumented, sanitize=False)
        assert rt.sanitizer.findings == []

    def test_driver_level_access_ignored(self):
        rt = _runtime()
        m = _matrix(rt)
        m.tile(0, 0)  # outside any payload: no frame, no finding
        assert rt.sanitizer.findings == []

    def test_sanitize_none_disables(self):
        rt = Runtime(ProcessGrid(1, 1), sanitize=None)
        assert rt.sanitizer is None
        m = _matrix(rt)

        def bad():
            m.tile(0, 1)

        rt.submit(TaskKind.GEMM, reads=(), writes=(m.ref(0, 0),),
                  rank=0, fn=bad)  # no checking at all

    def test_to_array_in_payload_flagged(self):
        rt = _runtime()
        m = _matrix(rt)

        def syncs():
            m.to_array()

        with pytest.raises(SanitizerError) as exc:
            rt.submit(TaskKind.REDUCE, reads=(m.ref(0, 0),),
                      writes=(rt.new_scalar_ref(),), rank=0, fn=syncs)
        assert exc.value.finding.kind == SYNC_IN_PAYLOAD

    def test_scalar_value_in_payload_flagged(self):
        from repro.tiled.norms import norm_fro

        rt = _runtime()
        m = _matrix(rt)
        res = norm_fro(rt, m)

        def syncs():
            _ = res.value

        with pytest.raises(SanitizerError) as exc:
            rt.submit(TaskKind.REDUCE, reads=(res.ref,),
                      writes=(rt.new_scalar_ref(),), rank=0, fn=syncs)
        assert exc.value.finding.kind == SYNC_IN_PAYLOAD

    def test_threads_backend_catches_undeclared_read(self):
        rt = _runtime(deferred=True, workers=2)
        m = _matrix(rt)

        def bad():
            m.tile(0, 0)[...] += m.tile(0, 1)

        rt.submit(TaskKind.GEMM, reads=(), writes=(m.ref(0, 0),),
                  rank=0, fn=bad)
        with pytest.raises(SanitizerError):
            rt.sync()
        rt.close()

    def test_findings_forwarded_to_sink(self):
        from repro.obs.timeline import TimelineSink

        sink = TimelineSink()
        rt = Runtime(ProcessGrid(1, 1), sanitize="warn", sink=sink)
        m = _matrix(rt)

        def bad():
            m.tile(0, 1)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SanitizerWarning)
            rt.submit(TaskKind.GEMM, reads=(), writes=(m.ref(0, 0),),
                      rank=0, fn=bad, label="sinky")
        assert len(sink.sanitizer) == 2  # undeclared read + phantom write
        kinds = {e.kind for e in sink.sanitizer}
        assert kinds == {UNDECLARED_READ, PHANTOM_DECLARATION}
        assert sink.sanitizer[0].label == "sinky"
        # And the chrome trace renders them as sanitizer instants.
        from repro.obs import chrome_trace

        evs = [e for e in chrome_trace(sink)["traceEvents"]
               if e.get("cat") == "sanitizer"]
        assert len(evs) == 2

    def test_summary_counts_by_kind(self):
        rt = _runtime(sanitize="warn")
        m = _matrix(rt)

        def bad():
            m.tile(0, 0)[...] += m.tile(0, 1)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SanitizerWarning)
            rt.submit(TaskKind.GEMM, reads=(), writes=(m.ref(0, 0),),
                      rank=0, fn=bad)
        s = rt.sanitizer.summary()
        assert s[UNDECLARED_READ] == 1
        assert s["tasks_checked"] == 1


class TestSanitizeEnv:
    def test_unset_gives_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_mode_from_env() is None
        assert sanitize_mode_from_env(default="warn") == "warn"

    @pytest.mark.parametrize("raw", ["", "0", "off", "none", "false", "OFF"])
    def test_disabled_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SANITIZE", raw)
        assert sanitize_mode_from_env(default="warn") is None

    @pytest.mark.parametrize("raw,mode", [("warn", "warn"),
                                          ("raise", "raise"),
                                          ("RAISE", "raise")])
    def test_modes(self, monkeypatch, raw, mode):
        monkeypatch.setenv("REPRO_SANITIZE", raw)
        assert sanitize_mode_from_env() == mode

    def test_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "yes")
        with pytest.raises(ValueError, match="REPRO_SANITIZE"):
            sanitize_mode_from_env()

    def test_runtime_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "warn")
        rt = Runtime(ProcessGrid(1, 1))
        assert rt.sanitizer is not None and rt.sanitizer.mode == "warn"
        monkeypatch.setenv("REPRO_SANITIZE", "off")
        assert Runtime(ProcessGrid(1, 1)).sanitizer is None


# ---------------------------------------------------------------------------
# Happens-before race checker
# ---------------------------------------------------------------------------

class TestRaceChecker:
    def test_true_race_no_dep_path(self):
        # Seeded-bad graph: two writers of T0 with the dependency edge
        # stripped — exactly what a wrong footprint would build.
        g = TaskGraph()
        g.add(_mk(0, writes=[T0]))
        g.add(_mk(1, writes=[T0]))
        g.tasks[1].deps = ()  # sever the WAW edge
        with pytest.raises(RaceError) as exc:
            check_races(g)
        (f,) = exc.value.findings
        assert (f.ref, f.first, f.second, f.kind) == (T0, 0, 1, "write-write")
        assert "no dependency path" in f.message()

    def test_read_write_race(self):
        g = TaskGraph()
        g.add(_mk(0, writes=[T0]))
        g.add(_mk(1, reads=[T0]))
        g.add(_mk(2, writes=[T0]))
        g.tasks[2].deps = (0,)  # ordered after the writer, not the reader
        findings = check_races(g, raise_on_error=False)
        assert [(f.first, f.second, f.kind) for f in findings] == \
            [(1, 2, "read-write")]

    def test_transitive_order_is_enough(self):
        # 0 -> 1 -> 2; task 2 writes T0 ordered only *transitively*
        # after writer 0.  validate() would demand a direct edge; the
        # happens-before check accepts the path.
        g = TaskGraph()
        g.add(_mk(0, writes=[T0]))
        g.add(_mk(1, reads=[T0], writes=[T1]))
        g.add(_mk(2, reads=[T1], writes=[T0]))
        g.tasks[2].deps = (1,)
        assert check_races(g) == []

    def test_inferred_graph_is_race_free(self):
        g = TaskGraph()
        g.add(_mk(0, writes=[T0]))
        g.add(_mk(1, reads=[T0], writes=[T1]))
        g.add(_mk(2, reads=[T0, T1], writes=[T0]))
        assert g.check_races() == []

    def test_observed_footprints_override_declared(self):
        # Declared footprints are disjoint (so the builder emits no
        # edge); the observed footprints reveal the hidden conflict.
        g = TaskGraph()
        g.add(_mk(0, writes=[T0]))
        g.add(_mk(1, writes=[T1]))
        fps = {0: (set(), {T0}), 1: (set(), {T0, T1})}
        findings = check_races(g, footprints=fps, raise_on_error=False)
        assert [(f.ref, f.kind) for f in findings] == [(T0, "write-write")]

    def test_in_out_counts_as_write(self):
        g = TaskGraph()
        g.add(_mk(0, writes=[T0]))
        g.add(_mk(1, reads=[T0], writes=[T0]))
        g.tasks[1].deps = ()
        findings = check_races(g, raise_on_error=False)
        assert [f.kind for f in findings] == ["write-write"]

    def test_ancestor_bitsets_transitive(self):
        tasks = [_mk(0), _mk(1, deps=[0]), _mk(2, deps=[1])]
        anc = ancestor_bitsets(tasks)
        assert anc[2] & (1 << 0)  # 0 happens-before 2 via 1

    def test_ancestor_bitsets_rejects_forward_dep(self):
        with pytest.raises(ValueError, match="not an earlier task"):
            ancestor_bitsets([_mk(0, deps=[1]), _mk(1)])

    def test_error_message_caps_at_twenty(self):
        g = TaskGraph()
        g.add(_mk(0, writes=[T0]))
        for tid in range(1, 31):
            g.add(_mk(tid, writes=[T0]))
            g.tasks[tid].deps = ()
        with pytest.raises(RaceError, match="more"):
            check_races(g)


# ---------------------------------------------------------------------------
# repro-lint static rules
# ---------------------------------------------------------------------------

SUBMIT_OK = """
def op(rt, a):
    for i in range(a.mt):
        def body(i=i):
            a.tile(i, 0)[...] = 0
        rt.submit(TaskKind.SET, reads=(), writes=(a.ref(i, 0),),
                  rank=0, fn=body, bytes_out=8)
"""


class TestLintRules:
    def test_clean_source(self):
        assert lint_source(SUBMIT_OK) == []

    def test_rep001_missing_footprint(self):
        src = """
def op(rt, a):
    rt.submit(TaskKind.SET, rank=0, fn=lambda: None)
"""
        (f,) = lint_source(src)
        assert f.rule == FOOTPRINT_MISSING

    def test_rep002_undeclared_tile_in_payload(self):
        src = """
def op(rt, a):
    def body():
        a.tile(0, 0)[...] = a.tile(0, 1)
    rt.submit(TaskKind.COPY, reads=(a.ref(0, 1),), writes=(a.ref(0, 0),),
              rank=0, fn=body, bytes_out=8)
    def body2():
        a.tile(1, 1)[...] = 0
    rt.submit(TaskKind.SET, reads=(), writes=(a.ref(0, 0),),
              rank=0, fn=body2, bytes_out=8)
"""
        (f,) = lint_source(src)
        assert f.rule == PAYLOAD_FOOTPRINT
        assert "a.tile(1, 1)" in f.message

    def test_rep002_set_tile(self):
        src = """
def op(rt, a):
    def body():
        a.set_tile(2, 2, None)
    rt.submit(TaskKind.SET, reads=(), writes=(a.ref(0, 0),),
              rank=0, fn=body, bytes_out=8)
"""
        (f,) = lint_source(src)
        assert f.rule == PAYLOAD_FOOTPRINT
        assert "set_tile" in f.message

    def test_rep002_resolves_latest_preceding_def(self):
        # Two defs of the same payload name: each submit must match its
        # own (the nearest preceding) def, regardless of AST walk order.
        src = """
def op(rt, a):
    for i in range(a.mt):
        if i == 0:
            def body(i=i):
                a.tile(i, i)[...] = 0
            rt.submit(TaskKind.SET, reads=(), writes=(a.ref(i, i),),
                      rank=0, fn=body, bytes_out=8)
        else:
            def body(i=i):
                a.tile(i, 0)[...] = 0
            rt.submit(TaskKind.SET, reads=(), writes=(a.ref(i, 0),),
                      rank=0, fn=body, bytes_out=8)
"""
        assert lint_source(src) == []

    def test_rep002_tuple_unpack_and_ifexp(self):
        src = """
def op(rt, a, trans):
    src, dst = a.ref(0, 1), a.ref(1, 0)
    xref = a.ref(0, 0) if trans else a.ref(1, 1)
    def body():
        a.tile(1, 0)[...] = a.tile(0, 1)
        a.tile(0, 0)[...] += 1
        a.tile(1, 1)[...] += 1
    rt.submit(TaskKind.COPY, reads=(src,), writes=(dst, xref),
              rank=0, fn=body, bytes_out=8)
"""
        # xref may be either tile: both alternatives are declared, and
        # the union-resolution accepts accesses to either.
        assert lint_source(src) == []

    def test_rep002_opaque_footprint_skipped(self):
        src = """
def op(rt, a):
    refs = tuple(a.ref(i, 0) for i in range(a.mt))
    def body():
        a.tile(5, 5)[...] = 0
    rt.submit(TaskKind.SET, reads=(), writes=refs, rank=0, fn=body,
              bytes_out=8)
"""
        assert lint_source(src) == []

    def test_rep003_bytes_out_missing(self):
        src = """
def op(rt, a):
    rt.submit(TaskKind.SET, reads=(), writes=(a.ref(0, 0),), rank=0)
"""
        (f,) = lint_source(src)
        assert f.rule == BYTES_OUT_MISSING

    def test_rep003_empty_writes_ok(self):
        src = """
def op(rt, a):
    rt.submit(TaskKind.SET, reads=(a.ref(0, 0),), writes=(), rank=0)
"""
        assert lint_source(src) == []

    def test_rep004_to_array_in_payload(self):
        src = """
def op(rt, a):
    def body():
        x = a.to_array()
    rt.submit(TaskKind.REDUCE, reads=(a.ref(0, 0),), writes=(), rank=0,
              fn=body)
"""
        (f,) = lint_source(src)
        assert f.rule == LINT_SYNC_IN_PAYLOAD

    def test_rep004_scalar_value_in_payload(self):
        src = """
def op(rt, a):
    nrm = norm_fro(rt, a)
    def body():
        x = nrm.value
    rt.submit(TaskKind.REDUCE, reads=(a.ref(0, 0),), writes=(), rank=0,
              fn=body)
"""
        (f,) = lint_source(src)
        assert f.rule == LINT_SYNC_IN_PAYLOAD

    def test_suppression_on_offending_line(self):
        src = """
def op(rt, a):
    rt.submit(TaskKind.SET, reads=(), writes=(a.ref(0, 0),), rank=0)  # repro-lint: ignore[REP003]
"""
        assert lint_source(src) == []

    def test_suppression_all_rules(self):
        src = """
def op(rt, a):
    rt.submit(TaskKind.SET, rank=0, fn=lambda: None)  # repro-lint: ignore
"""
        assert lint_source(src) == []

    def test_suppression_wrong_rule_still_fires(self):
        src = """
def op(rt, a):
    rt.submit(TaskKind.SET, reads=(), writes=(a.ref(0, 0),), rank=0)  # repro-lint: ignore[REP001]
"""
        (f,) = lint_source(src)
        assert f.rule == BYTES_OUT_MISSING

    def test_executor_submit_not_matched(self):
        # Thread-pool submit calls don't take a TaskKind first arg and
        # must not be linted.
        src = """
def drain(pool, work):
    for item in work:
        pool.submit(run_one, item)
"""
        assert lint_source(src) == []

    def test_repo_is_lint_clean(self):
        import os

        import repro
        from repro.analysis import lint_paths

        assert lint_paths([os.path.dirname(repro.__file__)]) == []


class TestDistributedLintRules:
    """REP005-REP008: rules targeting the distributed runtime."""

    def test_rep005_incref_without_release(self):
        src = """
def pin(store, name):
    store.incref(name)
    return name
"""
        (f,) = lint_source(src)
        assert f.rule == SHM_UNRELEASED

    def test_rep005_balanced_scope_is_clean(self):
        src = """
def pin(store, name):
    store.incref(name)
    try:
        use(name)
    finally:
        store.decref(name)
"""
        assert lint_source(src) == []

    def test_rep005_close_counts_as_release(self):
        src = """
def pin(store, name):
    store.incref(name)
    store.close()
"""
        assert lint_source(src) == []

    def test_rep006_recv_under_lock(self):
        src = """
def pump(self, w):
    with self._send_lock:
        return w.comm.recv(timeout=None)
"""
        (f,) = lint_source(src)
        assert f.rule == RECV_UNDER_LOCK

    def test_rep006_recv_outside_lock_is_clean(self):
        src = """
def pump(self, w):
    with self._send_lock:
        w.comm.send(msg)
    return w.comm.recv(timeout=None)
"""
        assert lint_source(src) == []

    def test_rep006_block_is_not_a_lock(self):
        # 'block' must not token-match 'lock'.
        src = """
def pump(self, w, block):
    with block:
        return w.comm.recv(timeout=None)
"""
        assert lint_source(src) == []

    def test_rep006_nonblocking_receiver_names_are_clean(self):
        src = """
def pump(self, q):
    with self._lock:
        return q.recv()
"""
        assert lint_source(src) == []

    def test_rep007_lock_in_process_args(self):
        src = """
def spawn(ctx, fn):
    lock = threading.Lock()
    return ctx.Process(target=fn, args=(1, lock))
"""
        (f,) = lint_source(src)
        assert f.rule == FORK_UNSAFE_ARG

    def test_rep007_factory_call_in_args(self):
        src = """
def spawn(ctx, fn):
    return ctx.Process(target=fn, args=(Lock(),))
"""
        (f,) = lint_source(src)
        assert f.rule == FORK_UNSAFE_ARG

    def test_rep007_comm_attribute_in_args(self):
        src = """
def spawn(ctx, fn, w):
    return ctx.Process(target=fn, args=(w.wid, w.comm))
"""
        (f,) = lint_source(src)
        assert f.rule == FORK_UNSAFE_ARG

    def test_rep007_plain_data_args_are_clean(self):
        src = """
def spawn(ctx, fn, address, close_fds):
    return ctx.Process(target=fn,
                       args=(3, address, "tcp://x", close_fds))
"""
        assert lint_source(src) == []

    def test_rep008_unknown_backend_literal(self):
        src = """
def run(rt, da):
    return tiled_qdwh(rt, da, backend="proceses", workers=4)
"""
        (f,) = lint_source(src)
        assert f.rule == BACKEND_UNKNOWN
        assert "proceses" in f.message

    def test_rep008_known_backends_are_clean(self):
        src = """
def run(rt, da):
    a = tiled_qdwh(rt, da, backend="processes", workers=4)
    b = tiled_qdwh(rt, da, backend="threads")
    c = tiled_qdwh(rt, da, backend="eager")
    d = tiled_qdwh(rt, da, backend="dense")
    return a, b, c, d
"""
        assert lint_source(src) == []

    def test_new_rules_respect_suppression(self):
        src = """
def pin(store, name):
    store.incref(name)  # repro-lint: ignore[REP005]
"""
        assert lint_source(src) == []


# ---------------------------------------------------------------------------
# repro lint CLI verb
# ---------------------------------------------------------------------------

class TestLintCli:
    def test_static_dirty_exit(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text(
            "def op(rt, a):\n"
            "    rt.submit(TaskKind.SET, reads=(), writes=(a.ref(0, 0),),\n"
            "              rank=0)\n")
        rc = main(["lint", "--static", str(bad)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP003" in out

    def test_static_clean_exit(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main(["lint", "--static", str(good)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# submit(rank=None) owner resolution
# ---------------------------------------------------------------------------

class TestRankResolution:
    def test_single_rank_grid_defaults_to_zero(self):
        rt = _runtime(1, 1)
        t = rt.submit(TaskKind.SET)
        assert t.rank == 0

    def test_owner_resolved_from_write_ref(self):
        rt = _runtime(2, 2)
        m = _matrix(rt, n=8, nb=4)
        for i in range(m.mt):
            for j in range(m.nt):
                t = rt.submit(TaskKind.SET, reads=(),
                              writes=(m.ref(i, j),))
                assert t.rank == m.owner(i, j)

    def test_pseudo_ref_then_owned_ref_resolves(self):
        rt = _runtime(2, 2)
        m = _matrix(rt, n=8, nb=4)
        sref = rt.new_scalar_ref()
        t = rt.submit(TaskKind.REDUCE, reads=(),
                      writes=(sref, m.ref(1, 1)))
        assert t.rank == m.owner(1, 1)

    def test_unresolvable_raises(self):
        rt = _runtime(2, 2)
        with pytest.raises(ValueError, match="rank=None"):
            rt.submit(TaskKind.REDUCE, writes=(rt.new_scalar_ref(),),
                      label="orphan")

    def test_no_writes_raises_on_multirank(self):
        rt = _runtime(2, 2)
        with pytest.raises(ValueError, match="pass rank= explicitly"):
            rt.submit(TaskKind.SET)


class TestUnconditionalRegistration:
    def test_scalar_ref_registered_without_graph(self):
        rt = Runtime(ProcessGrid(1, 1), collect_graph=False)
        ref = rt.new_scalar_ref(16)
        assert rt.graph.tile_bytes[ref] == 16

    def test_register_tiles_without_graph(self):
        rt = Runtime(ProcessGrid(1, 1), collect_graph=False)
        rt.register_tiles([(9, 0, 0)], 64, owner=0)
        assert rt.graph.tile_bytes[(9, 0, 0)] == 64
        assert rt.graph.tile_owner[(9, 0, 0)] == 0


# ---------------------------------------------------------------------------
# Property: sanitizer-clean graphs stay race-free under workers=4
# ---------------------------------------------------------------------------

@st.composite
def _programs(draw):
    """Random tile programs: (reads, writes) index sets over 6 tiles."""
    n_tiles = 6
    n_tasks = draw(st.integers(2, 14))
    tiles = st.integers(0, n_tiles - 1)
    specs = []
    for _ in range(n_tasks):
        writes = draw(st.sets(tiles, min_size=1, max_size=2))
        reads = draw(st.sets(tiles, max_size=3)) - writes
        specs.append((sorted(reads), sorted(writes)))
    return specs


@settings(max_examples=25, deadline=None)
@given(specs=_programs())
def test_sanitizer_clean_programs_are_race_free(specs):
    rt = Runtime(ProcessGrid(1, 1), deferred=True, workers=4,
                 sanitize="raise")
    n = 4 * 3  # 3x2 tiles of nb=4
    a = np.zeros((n, 8))
    m = DistMatrix.from_array(rt, a, 4)
    tile_of = [(i % 3, i // 3) for i in range(6)]

    for reads, writes in specs:
        def body(reads=tuple(reads), writes=tuple(writes)):
            acc = 1.0
            for r in reads:
                acc += float(m.tile(*tile_of[r])[0, 0])
            for w in writes:
                m.tile(*tile_of[w])[...] += acc

        rt.submit(TaskKind.GEMM,
                  reads=tuple(m.ref(*tile_of[r]) for r in reads),
                  writes=tuple(m.ref(*tile_of[w]) for w in writes),
                  rank=0, fn=body)
    rt.sync()  # raises SanitizerError / OrderingViolationError if dirty
    san = rt.sanitizer
    assert san.findings == []
    # Observed footprints match declarations, and the happens-before
    # check finds no unordered conflicting pair.
    assert rt.graph.check_races(footprints=san.footprints()) == []
    rt.close()
