"""Property-based tests of the schedule simulator on random DAGs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import summit
from repro.runtime import TaskGraph, TaskKind, simulate
from repro.runtime.scheduler import RunConfig, taskbased_config
from repro.runtime.task import Task

KINDS = [TaskKind.GEMM, TaskKind.GEQRT, TaskKind.COPY, TaskKind.TRSM,
         TaskKind.REDUCE]

# Restricting the eligible set (tight lookahead, phase barriers) reorders
# greedy dispatch, and Graham's scheduling anomalies mean that can
# occasionally *shorten* a list schedule.  Same margin convention as
# tests/test_resilience_properties.py ANOMALY_MARGIN.
ANOMALY_MARGIN = 0.97


@st.composite
def random_graphs(draw):
    """A random layered DAG over a handful of tiles and ranks."""
    n_tasks = draw(st.integers(1, 60))
    n_tiles = draw(st.integers(1, 12))
    ranks = draw(st.integers(1, 4))
    phases = draw(st.integers(1, 5))
    g = TaskGraph()
    for t in range(n_tiles):
        g.register_tile((0, t, 0), draw(st.integers(8, 10 ** 6)), owner=t % ranks)
    for tid in range(n_tasks):
        reads = draw(st.lists(st.integers(0, n_tiles - 1), max_size=3))
        writes = draw(st.lists(st.integers(0, n_tiles - 1), min_size=1,
                               max_size=2))
        g.add(Task(
            tid=tid,
            kind=draw(st.sampled_from(KINDS)),
            reads=tuple((0, r, 0) for r in set(reads)),
            writes=tuple((0, w, 0) for w in set(writes)),
            rank=draw(st.integers(0, ranks - 1)),
            phase=min(tid * phases // n_tasks, phases - 1),
            op=min(tid * phases // n_tasks, phases - 1),
            flops=draw(st.floats(0, 1e9)),
            tile_dim=draw(st.sampled_from([64, 192, 320])),
        ))
    return g, ranks


def cfg_for(ranks, lookahead=None, barrier=False):
    nodes = max(1, (ranks + 1) // 2)
    return RunConfig(machine=summit(), nodes=nodes, ranks_per_node=2,
                     use_gpu=False, lookahead=lookahead,
                     barrier_per_phase=barrier)


class TestRandomDags:
    @given(random_graphs())
    @settings(max_examples=40)
    def test_all_tasks_complete_and_deps_hold(self, gr):
        g, ranks = gr
        r = simulate(g, cfg_for(ranks), keep_trace=True)
        assert r.task_count == len(g)
        for t in g.tasks:
            for d in t.deps:
                assert r.start_times[t.tid] >= r.finish_times[d] - 1e-12

    @given(random_graphs())
    @settings(max_examples=25)
    def test_makespan_bounds(self, gr):
        g, ranks = gr
        r = simulate(g, cfg_for(ranks))
        assert r.makespan >= r.critical_path * (1 - 1e-9)
        assert np.isfinite(r.makespan)

    @given(random_graphs())
    @settings(max_examples=25)
    def test_lookahead_never_helps_to_restrict(self, gr):
        g, ranks = gr
        open_span = simulate(g, cfg_for(ranks, lookahead=None)).makespan
        tight = simulate(g, cfg_for(ranks, lookahead=0)).makespan
        assert tight >= open_span * ANOMALY_MARGIN

    @given(random_graphs())
    @settings(max_examples=25)
    def test_barrier_only_adds_time(self, gr):
        g, ranks = gr
        plain = simulate(g, cfg_for(ranks, lookahead=0)).makespan
        barred = simulate(g, cfg_for(ranks, lookahead=0,
                                     barrier=True)).makespan
        assert barred >= plain * ANOMALY_MARGIN

    @given(random_graphs())
    @settings(max_examples=20)
    def test_deterministic(self, gr):
        g, ranks = gr
        a = simulate(g, cfg_for(ranks)).makespan
        b = simulate(g, cfg_for(ranks)).makespan
        assert a == b


class TestGraphValidation:
    """Structural invariants of builder-produced DAGs."""

    @given(random_graphs())
    @settings(max_examples=40)
    def test_builder_graphs_always_validate(self, gr):
        # Dependency inference via TaskGraph.add must satisfy every
        # invariant validate() checks: topological program order, no
        # cycles, and OpenMP-depend serialization per tile.
        g, _ = gr
        assert g.validate() == []
        assert g.validate_topological()

    @given(random_graphs(), st.data())
    @settings(max_examples=25)
    def test_edge_stripping_is_detected(self, gr, data):
        # Removing all dependency edges from a task with a dependency
        # must break an invariant (it had that edge for a reason).
        g, _ = gr
        with_deps = [t.tid for t in g.tasks if t.deps]
        if not with_deps:
            return
        victim = data.draw(st.sampled_from(with_deps))
        g.tasks[victim].deps = ()
        problems = g.validate(raise_on_error=False)
        assert problems, f"stripping deps of task {victim} undetected"
