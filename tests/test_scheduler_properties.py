"""Property-based tests of the schedule simulator on random DAGs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import summit
from repro.runtime import TaskGraph, TaskKind, simulate
from repro.runtime.distributed.scheduling import DynamicScheduler
from repro.runtime.scheduler import RunConfig, taskbased_config
from repro.runtime.task import Task

KINDS = [TaskKind.GEMM, TaskKind.GEQRT, TaskKind.COPY, TaskKind.TRSM,
         TaskKind.REDUCE]

# Restricting the eligible set (tight lookahead, phase barriers) reorders
# greedy dispatch, and Graham's scheduling anomalies mean that can
# occasionally *shorten* a list schedule.  Same margin convention as
# tests/test_resilience_properties.py ANOMALY_MARGIN.
ANOMALY_MARGIN = 0.97


@st.composite
def random_graphs(draw):
    """A random layered DAG over a handful of tiles and ranks."""
    n_tasks = draw(st.integers(1, 60))
    n_tiles = draw(st.integers(1, 12))
    ranks = draw(st.integers(1, 4))
    phases = draw(st.integers(1, 5))
    g = TaskGraph()
    for t in range(n_tiles):
        g.register_tile((0, t, 0), draw(st.integers(8, 10 ** 6)), owner=t % ranks)
    for tid in range(n_tasks):
        reads = draw(st.lists(st.integers(0, n_tiles - 1), max_size=3))
        writes = draw(st.lists(st.integers(0, n_tiles - 1), min_size=1,
                               max_size=2))
        g.add(Task(
            tid=tid,
            kind=draw(st.sampled_from(KINDS)),
            reads=tuple((0, r, 0) for r in set(reads)),
            writes=tuple((0, w, 0) for w in set(writes)),
            rank=draw(st.integers(0, ranks - 1)),
            phase=min(tid * phases // n_tasks, phases - 1),
            op=min(tid * phases // n_tasks, phases - 1),
            flops=draw(st.floats(0, 1e9)),
            tile_dim=draw(st.sampled_from([64, 192, 320])),
        ))
    return g, ranks


def cfg_for(ranks, lookahead=None, barrier=False):
    nodes = max(1, (ranks + 1) // 2)
    return RunConfig(machine=summit(), nodes=nodes, ranks_per_node=2,
                     use_gpu=False, lookahead=lookahead,
                     barrier_per_phase=barrier)


class TestRandomDags:
    @given(random_graphs())
    @settings(max_examples=40)
    def test_all_tasks_complete_and_deps_hold(self, gr):
        g, ranks = gr
        r = simulate(g, cfg_for(ranks), keep_trace=True)
        assert r.task_count == len(g)
        for t in g.tasks:
            for d in t.deps:
                assert r.start_times[t.tid] >= r.finish_times[d] - 1e-12

    @given(random_graphs())
    @settings(max_examples=25)
    def test_makespan_bounds(self, gr):
        g, ranks = gr
        r = simulate(g, cfg_for(ranks))
        assert r.makespan >= r.critical_path * (1 - 1e-9)
        assert np.isfinite(r.makespan)

    @given(random_graphs())
    @settings(max_examples=25)
    def test_lookahead_never_helps_to_restrict(self, gr):
        g, ranks = gr
        open_span = simulate(g, cfg_for(ranks, lookahead=None)).makespan
        tight = simulate(g, cfg_for(ranks, lookahead=0)).makespan
        assert tight >= open_span * ANOMALY_MARGIN

    @given(random_graphs())
    @settings(max_examples=25)
    def test_barrier_only_adds_time(self, gr):
        g, ranks = gr
        plain = simulate(g, cfg_for(ranks, lookahead=0)).makespan
        barred = simulate(g, cfg_for(ranks, lookahead=0,
                                     barrier=True)).makespan
        assert barred >= plain * ANOMALY_MARGIN

    @given(random_graphs())
    @settings(max_examples=20)
    def test_deterministic(self, gr):
        g, ranks = gr
        a = simulate(g, cfg_for(ranks)).makespan
        b = simulate(g, cfg_for(ranks)).makespan
        assert a == b


class TestGraphValidation:
    """Structural invariants of builder-produced DAGs."""

    @given(random_graphs())
    @settings(max_examples=40)
    def test_builder_graphs_always_validate(self, gr):
        # Dependency inference via TaskGraph.add must satisfy every
        # invariant validate() checks: topological program order, no
        # cycles, and OpenMP-depend serialization per tile.
        g, _ = gr
        assert g.validate() == []
        assert g.validate_topological()

    @given(random_graphs(), st.data())
    @settings(max_examples=25)
    def test_edge_stripping_is_detected(self, gr, data):
        # Removing all dependency edges from a task with a dependency
        # must break an invariant (it had that edge for a reason).
        g, _ = gr
        with_deps = [t.tid for t in g.tasks if t.deps]
        if not with_deps:
            return
        victim = data.draw(st.sampled_from(with_deps))
        g.tasks[victim].deps = ()
        problems = g.validate(raise_on_error=False)
        assert problems, f"stripping deps of task {victim} undetected"


@st.composite
def dyn_workloads(draw):
    """A random window for the processes-backend DynamicScheduler:
    forward-edge DAG, random driver/worker lane split, small pool."""
    n_tasks = draw(st.integers(1, 24))
    tasks = []
    for tid in range(n_tasks):
        deps = sorted(draw(st.sets(st.integers(0, tid - 1),
                                   max_size=3))) if tid else []
        tasks.append(Task(
            tid=tid, kind=TaskKind.GEMM,
            reads=tuple((0, d % 4, 0) for d in deps),
            writes=((0, tid % 4, 0),),
            rank=0, phase=0, deps=tuple(deps)))
    worker_ok = {t.tid: draw(st.booleans()) for t in tasks}
    n_workers = draw(st.integers(1, 4))
    pipeline = draw(st.integers(1, 3))
    return tasks, worker_ok, n_workers, pipeline


class TestDynamicSchedulerProperties:
    """Random completion/crash/steal sequences against the real
    DynamicScheduler (the DistSan explorer's system under test)."""

    def _fresh(self, wl):
        tasks, worker_ok, n_workers, pipeline = wl
        sched = DynamicScheduler(tasks, 0, len(tasks), worker_ok,
                                 pipeline)
        for w in range(n_workers):
            sched.add_worker(w)
        return tasks, worker_ok, n_workers, sched

    def _drain(self, sched, worker_ok, inflight):
        """Deterministically run the remainder of the window; any
        stall with pending work is a scheduler bug."""
        while sched.pending:
            moved = False
            tid = sched.next_driver()
            if tid is not None:
                assert not worker_ok[tid]
                sched.on_done(tid, None)
                moved = True
            for w in list(sched.alive_workers()):
                tid = sched.next_for(w.wid)
                if tid is not None:
                    assert worker_ok[tid]
                    inflight[tid] = w.wid
                    moved = True
            for tid in sorted(inflight):
                sched.on_done(tid, inflight.pop(tid))
                moved = True
            assert moved, f"stalled with {sched.pending} pending"

    @given(dyn_workloads(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_random_interleavings_lose_no_tasks(self, wl, data):
        tasks, worker_ok, n_workers, sched = self._fresh(wl)
        inflight = {}            # tid -> wid, mirror of dispatches
        crashes = data.draw(st.integers(0, 2))
        next_wid = n_workers
        budget = 12 * len(tasks) + 24
        for _ in range(budget):
            if not sched.pending:
                break
            actions = [("driver", None)]
            alive = sched.alive_workers()
            actions += [("fetch", w.wid) for w in alive]
            actions += [("complete", t) for t in sorted(inflight)]
            if crashes and alive:
                actions += [("crash", w.wid) for w in alive]
            kind, arg = data.draw(st.sampled_from(actions))
            if kind == "fetch":
                tid = sched.next_for(arg)
                if tid is not None:
                    assert worker_ok[tid], "driver task on worker lane"
                    assert tid not in inflight, "double dispatch"
                    inflight[tid] = arg
            elif kind == "complete":
                sched.on_done(arg, inflight.pop(arg))
            elif kind == "driver":
                tid = sched.next_driver()
                if tid is not None:
                    assert not worker_ok[tid], "worker task on driver"
                    sched.on_done(tid, None)
            else:                                   # crash + respawn
                crashes -= 1
                queued, lost = sched.remove_worker(arg)
                for tid in lost:
                    assert inflight.pop(tid) == arg
                sched.requeue(queued + lost)
                sched.add_worker(next_wid)
                next_wid += 1
            held = [t for w in sched.alive_workers()
                    for t in list(w.queue) + list(w.inflight)]
            assert len(held) == len(set(held)), "tid held twice"
            assert sched.pending == len(tasks) - len(sched.done)
        self._drain(sched, worker_ok, inflight)
        assert sched.done == {t.tid for t in tasks}

    @given(dyn_workloads(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_remove_worker_returns_exact_holdings(self, wl, data):
        tasks, worker_ok, n_workers, sched = self._fresh(wl)
        for _ in range(data.draw(st.integers(0, len(tasks)))):
            sched.next_for(data.draw(st.integers(0, n_workers - 1)))
        victim = data.draw(st.integers(0, n_workers - 1))
        ws = sched.workers[victim]
        expect_q, expect_i = list(ws.queue), sorted(ws.inflight)
        queued, inflight = sched.remove_worker(victim)
        assert (queued, inflight) == (expect_q, expect_i)
        assert not ws.alive and not ws.queue and not ws.inflight
        # Removing a dead worker again must be a harmless no-op.
        assert sched.remove_worker(victim) == ([], [])

    @given(dyn_workloads())
    @settings(max_examples=50, deadline=None)
    def test_pipeline_depth_is_never_exceeded(self, wl):
        tasks, worker_ok, n_workers, sched = self._fresh(wl)
        pipeline = sched.pipeline
        # Fetch greedily without ever completing: each worker must
        # saturate at the pipeline depth, then yield None.
        for w in range(n_workers):
            while sched.next_for(w) is not None:
                assert len(sched.workers[w].inflight) <= pipeline
            assert len(sched.workers[w].inflight) <= pipeline
            # Saturated (or out of assignable work): stays None.
            assert sched.next_for(w) is None

    @given(dyn_workloads())
    @settings(max_examples=50, deadline=None)
    def test_single_fetcher_steals_everything(self, wl):
        # Worker 0 does all the fetching: stealing must migrate every
        # worker-lane task to it eventually — none stranded on idle
        # victims' queues.
        tasks, worker_ok, n_workers, sched = self._fresh(wl)
        inflight = {}
        while sched.pending:
            moved = False
            tid = sched.next_driver()
            if tid is not None:
                sched.on_done(tid, None)
                moved = True
            tid = sched.next_for(0)
            if tid is not None:
                inflight[tid] = 0
                moved = True
            elif inflight:
                done = min(inflight)
                sched.on_done(done, inflight.pop(done))
                moved = True
            assert moved, "stall: stealable work stranded"
        assert sched.done == {t.tid for t in tasks}
        for w in sched.workers.values():
            assert not w.queue and not w.inflight
