"""Tests for the schedule post-mortem analysis (runtime.trace)."""

import pytest

from repro.dist import DistMatrix, ProcessGrid
from repro.machines import summit
from repro.runtime import Runtime, simulate
from repro.runtime.scheduler import taskbased_config
from repro.runtime.trace import (
    critical_path_kinds,
    gantt_rows,
    kernel_breakdown,
    rank_utilization,
)
from repro.tiled import geqrf


def qr_schedule(keep_trace=False):
    rt = Runtime(ProcessGrid(2, 2), numeric=False)
    a = DistMatrix(rt, 1024, 512, 128)
    geqrf(rt, a)
    cfg = taskbased_config(summit(), 2, 2, use_gpu=False)
    return rt.graph, simulate(rt.graph, cfg, keep_trace=keep_trace)


class TestKernelBreakdown:
    def test_shares_sum_to_one(self):
        _, r = qr_schedule()
        rows = kernel_breakdown(r)
        assert sum(share for _, _, share in rows) == pytest.approx(1.0)
        assert rows == sorted(rows, key=lambda t: -t[1])

    def test_qr_kinds_present(self):
        _, r = qr_schedule()
        kinds = {k for k, _, _ in kernel_breakdown(r)}
        assert {"geqrt", "tpqrt", "unmqr", "tpmqrt"} <= kinds

    def test_empty_schedule(self):
        from repro.runtime import TaskGraph
        cfg = taskbased_config(summit(), 1, 2, use_gpu=False)
        r = simulate(TaskGraph(), cfg)
        assert kernel_breakdown(r) == []


class TestRankUtilization:
    def test_bounds(self):
        _, r = qr_schedule()
        u = rank_utilization(r)
        assert 0 < u["min"] <= u["mean"] <= u["max"]

    def test_empty(self):
        from repro.runtime import TaskGraph
        cfg = taskbased_config(summit(), 1, 2, use_gpu=False)
        r = simulate(TaskGraph(), cfg)
        assert rank_utilization(r)["mean"] == 0.0


class TestCriticalPath:
    def test_panel_kinds_dominate_qr_critical_path(self):
        """The QDWH paper's whole premise: panels serialize."""
        g, _ = qr_schedule()
        rows = critical_path_kinds(g, lambda t: t.flops + 1.0)
        kinds = [k for k, _ in rows]
        assert "geqrt" in kinds or "tpqrt" in kinds

    def test_total_equals_longest_chain(self):
        g, _ = qr_schedule()
        rows = critical_path_kinds(g, lambda t: 1.0)
        total = sum(v for _, v in rows)
        assert total == pytest.approx(
            g.critical_path_seconds(lambda t: 1.0))

    def test_empty_graph(self):
        from repro.runtime import TaskGraph
        assert critical_path_kinds(TaskGraph(), lambda t: 1.0) == []


class TestGantt:
    def test_rows_sorted_and_consistent(self):
        _, r = qr_schedule(keep_trace=True)
        rows = gantt_rows(r, limit=100)
        assert len(rows) == 100
        starts = [s for _, _, s, _ in rows]
        assert starts == sorted(starts)
        for _rank, kind, s, f in rows:
            assert f >= s
            assert isinstance(kind, str)

    def test_requires_trace(self):
        _, r = qr_schedule(keep_trace=False)
        with pytest.raises(ValueError):
            gantt_rows(r)
