"""DistSan wire-protocol state machine over recorded frames."""

from repro.analysis.dist.protocol import check_connection, check_frames
from repro.runtime.distributed.comm import (_HEADER, CODEC_MSGPACK,
                                            CODEC_PICKLE)
from repro.runtime.distributed.events import DistTraceRecorder, FrameRecord

H = _HEADER.size


def _frame(direction, op, tid=-1, attempt=0, codec=CODEC_PICKLE,
           payload=40, retryable=None, exc=None):
    return FrameRecord(direction=direction, op=op, tid=tid,
                       attempt=attempt, codec=codec,
                       nbytes=payload + H, declared=payload,
                       retryable=retryable, exc=exc)


def _hello():
    return _frame("recv", "hello")


def _clean_exchange():
    return [
        _hello(),
        _frame("send", "task", tid=5),
        _frame("recv", "done", tid=5),
        _frame("send", "shutdown"),
        FrameRecord(direction="close"),
    ]


class TestCleanSequences:
    def test_clean_exchange(self):
        assert check_connection("w0", _clean_exchange()) == []

    def test_msgpack_codec_accepted(self):
        frames = [_hello(),
                  _frame("send", "task", tid=1, codec=CODEC_MSGPACK),
                  _frame("recv", "done", tid=1, codec=CODEC_MSGPACK)]
        assert check_connection("w0", frames) == []

    def test_retry_uses_fresh_attempt(self):
        frames = [_hello(),
                  _frame("send", "task", tid=3, attempt=0),
                  _frame("recv", "fail", tid=3, attempt=0,
                         retryable=True, exc=OSError("boom")),
                  _frame("send", "task", tid=3, attempt=1),
                  _frame("recv", "done", tid=3, attempt=1)]
        assert check_connection("w0", frames) == []

    def test_crash_leaves_unanswered_tasks_silently(self):
        # A worker death means outstanding dispatches never get a
        # reply; that is recovery's business, not a protocol error.
        frames = [_hello(), _frame("send", "task", tid=9),
                  FrameRecord(direction="close")]
        assert check_connection("w0", frames) == []


class TestViolations:
    def _rules(self, frames):
        return [f.rule for f in check_connection("w0", frames)]

    def test_frame_after_close(self):
        frames = _clean_exchange() + [_frame("send", "task", tid=6)]
        assert "frame-after-close" in self._rules(frames)

    def test_unknown_codec_tag(self):
        frames = [_hello(), _frame("send", "task", tid=1, codec=7)]
        assert "bad-codec" in self._rules(frames)

    def test_length_prefix_mismatch(self):
        bad = FrameRecord(direction="send", op="task", tid=1,
                          attempt=0, codec=CODEC_PICKLE,
                          nbytes=10 + H, declared=99)
        assert "length-mismatch" in self._rules([_hello(), bad])

    def test_hello_must_come_first(self):
        frames = [_frame("recv", "done", tid=1)]
        rules = self._rules(frames)
        assert "hello-first" in rules

    def test_duplicate_hello(self):
        frames = [_hello(), _hello()]
        assert "duplicate-hello" in self._rules(frames)

    def test_unmatched_reply(self):
        frames = [_hello(), _frame("recv", "done", tid=42)]
        assert "unmatched-reply" in self._rules(frames)

    def test_duplicate_reply(self):
        frames = [_hello(), _frame("send", "task", tid=4),
                  _frame("recv", "done", tid=4),
                  _frame("recv", "done", tid=4)]
        assert "duplicate-reply" in self._rules(frames)

    def test_duplicate_dispatch_same_attempt(self):
        frames = [_hello(), _frame("send", "task", tid=4, attempt=0),
                  _frame("send", "task", tid=4, attempt=0)]
        assert "duplicate-dispatch" in self._rules(frames)

    def test_task_after_shutdown(self):
        frames = [_hello(), _frame("send", "shutdown"),
                  _frame("send", "task", tid=2)]
        assert "task-after-shutdown" in self._rules(frames)

    def test_unknown_ops(self):
        frames = [_hello(), _frame("send", "reboot"),
                  _frame("recv", "gossip")]
        assert self._rules(frames).count("bad-op") == 2

    def test_fail_without_retryable_verdict(self):
        frames = [_hello(), _frame("send", "task", tid=3),
                  _frame("recv", "fail", tid=3, retryable=None)]
        assert "retryable-missing" in self._rules(frames)

    def test_retryable_true_on_nonretryable_exception(self):
        import numpy as np

        frames = [_hello(), _frame("send", "task", tid=3),
                  _frame("recv", "fail", tid=3, retryable=True,
                         exc=np.linalg.LinAlgError("singular"))]
        assert "retryable-mismatch" in self._rules(frames)

    def test_retryable_false_never_second_guessed(self):
        # Workers may ship a sanitized stand-in exception; a False
        # verdict on a retryable-looking type must NOT be flagged.
        frames = [_hello(), _frame("send", "task", tid=3),
                  _frame("recv", "fail", tid=3, retryable=False,
                         exc=OSError("sanitized")),
                  _frame("send", "task", tid=3, attempt=1),
                  _frame("recv", "done", tid=3, attempt=1)]
        assert self._rules(frames) == []

    def test_connection_without_hello(self):
        frames = [_frame("send", "task", tid=1)]
        assert "no-hello" in self._rules(frames)


class TestCheckFrames:
    def test_walks_every_connection(self):
        rec = DistTraceRecorder()
        rec.frames["w0"] = _clean_exchange()
        rec.frames["w1"] = [_hello(), _frame("recv", "done", tid=8)]
        findings = check_frames(rec)
        assert {f.conn for f in findings} == {"w1"}

    def test_accepts_plain_mapping(self):
        findings = check_frames({"wX": [_frame("recv", "done", tid=1)]})
        assert findings and findings[0].conn == "wX"

    def test_finding_message_is_descriptive(self):
        findings = check_frames({"w2": [_hello(),
                                        _frame("recv", "done", tid=11)]})
        msg = findings[0].message()
        assert "w2" in msg and "unmatched-reply" in msg and "11" in msg
