"""Tests for the benchmark table formatting and DistMatrix I/O."""

import numpy as np
import pytest

from repro.bench.tables import format_series, format_table, write_result

from .conftest import make_runtime


class TestFormatTable:
    def test_alignment(self):
        out = format_table("T", ["a", "long"], [[1, 2.5], [333, 4e-9]])
        lines = out.splitlines()
        assert lines[0] == "T"
        widths = {len(ln) for ln in lines[2:] if ln}
        assert len(widths) <= 2  # header + rows share a width

    def test_float_formats(self):
        out = format_table("T", ["x"], [[0.0], [1234.5], [1e-9], [3.25]])
        assert "0" in out and "1.234e+03" in out and "1.000e-09" in out
        assert "3.250" in out

    def test_series(self):
        out = format_series("S", "n", [1, 2],
                            {"a": [10, 20], "b": [30, 40]})
        assert "n" in out and "a" in out and "b" in out
        assert "40" in out

    def test_series_ragged(self):
        out = format_series("S", "n", [1, 2], {"a": [10]})
        assert out.count("10") >= 1  # missing cells render empty

    def test_write_result(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.tables.RESULTS_DIR",
                            str(tmp_path))
        path = write_result("unit", "hello\n")
        assert open(path).read() == "hello\n"
        assert "saved to" in capsys.readouterr().out


class TestDistMatrixIO:
    def test_save_load_roundtrip(self, tmp_path, rng):
        from repro.dist import DistMatrix
        rt = make_runtime(2, 2)
        a = rng.standard_normal((22, 17))
        src = DistMatrix.from_array(rt, a, 5)
        path = src.save(str(tmp_path / "m.npz"))
        rt2 = make_runtime(2, 2)
        back = DistMatrix.load(rt2, path)
        assert np.array_equal(back.to_array(), a)
        assert back.row_heights == src.row_heights

    def test_load_symbolic(self, tmp_path, rng):
        from repro.dist import DistMatrix
        rt = make_runtime()
        src = DistMatrix.from_array(rt, rng.standard_normal((8, 8)), 4)
        path = src.save(str(tmp_path / "m.npz"))
        rts = make_runtime(numeric=False)
        back = DistMatrix.load(rts, path)
        assert back.shape == (8, 8)
        with pytest.raises(RuntimeError):
            back.to_array()
