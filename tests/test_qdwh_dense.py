"""Tests for the dense reference QDWH (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import qdwh
from repro.config import eps
from repro.matrices import (
    SingularValueMode,
    generate_matrix,
    ill_conditioned,
    polar_report,
    well_conditioned,
)

ALL_DTYPES = [np.float32, np.float64, np.complex64, np.complex128]


def tol_for(dtype, n):
    return 50 * n * eps(dtype)


class TestAccuracy:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_all_four_dtypes(self, dtype):
        a = ill_conditioned(96, dtype=dtype, seed=1)
        r = qdwh(a)
        rep = polar_report(a, r.u, r.h)
        assert r.u.dtype == np.dtype(dtype)
        assert rep.within(tol_for(dtype, 96))

    @pytest.mark.parametrize("shape", [(50, 50), (80, 50), (200, 30)])
    def test_rectangular(self, shape):
        a = generate_matrix(*shape, cond=1e8, seed=2)
        r = qdwh(a)
        rep = polar_report(a, r.u, r.h)
        assert rep.within(tol_for(np.float64, shape[0]))

    def test_matches_scipy_polar(self, rng):
        import scipy.linalg as sla
        a = generate_matrix(60, cond=100.0, seed=3)
        r = qdwh(a)
        u_ref, h_ref = sla.polar(a)
        assert np.allclose(r.u, u_ref, atol=1e-10)
        assert np.allclose(r.h, h_ref, atol=1e-10)

    @given(st.sampled_from(list(SingularValueMode)),
           st.floats(1.0, 1e14))
    def test_every_spectrum_mode(self, mode, cond):
        a = generate_matrix(40, cond=cond, mode=mode, seed=4)
        r = qdwh(a)
        rep = polar_report(a, r.u, r.h)
        assert rep.orthogonality < 1e-12
        assert rep.backward < 1e-12

    def test_h_is_hermitian_psd(self):
        a = ill_conditioned(64, dtype=np.complex128, seed=5)
        r = qdwh(a)
        assert np.allclose(r.h, r.h.conj().T)
        w = np.linalg.eigvalsh(r.h)
        assert w.min() > -1e-13


class TestIterationCounts:
    def test_ill_conditioned_paper_split(self):
        """kappa = 1e16: 3 QR-based + 3 Cholesky-based (Section 7.2)."""
        a = ill_conditioned(128, seed=6)
        r = qdwh(a)
        assert (r.it_qr, r.it_chol) == (3, 3)
        assert r.converged

    def test_well_conditioned_no_qr_with_exact_norms(self):
        """Paper Section 4: well-conditioned matrices need no QR-based
        iterations.  That statement assumes the true sigma_min; the
        exact_norms testing mode provides it (every practical estimate
        is deflated by sqrt(n) and may trigger one defensive QR step)."""
        a = well_conditioned(96, seed=7)
        r = qdwh(a, exact_norms=True)
        assert r.it_qr == 0
        assert 2 <= r.it_chol <= 4

    def test_well_conditioned_estimated_at_most_one_qr(self):
        a = well_conditioned(96, seed=7)
        r = qdwh(a)
        assert r.it_qr <= 1
        assert r.it_chol <= 4

    def test_orthogonal_input_converges_fast(self):
        from repro.matrices.generator import random_unitary
        q = random_unitary(64, seed=8)
        r = qdwh(q)
        assert r.iterations <= 3
        assert np.allclose(r.u, q, atol=1e-12)

    def test_max_iter_cap(self):
        a = ill_conditioned(48, seed=9)
        r = qdwh(a, max_iter=2)
        assert r.iterations == 2
        assert not r.converged

    def test_conv_history_decreasing_tail(self):
        a = ill_conditioned(64, seed=10)
        r = qdwh(a)
        assert len(r.conv_history) == r.iterations
        assert r.conv_history[-1] < r.conv_history[0]


class TestOptions:
    def test_cond_est_hint_skips_estimation(self):
        a = generate_matrix(48, cond=1e10, seed=11)
        r = qdwh(a, cond_est=1e10)
        rep = polar_report(a, r.u, r.h)
        assert rep.within(1e-11)
        assert r.l0 == pytest.approx(1e-10 / np.sqrt(48))

    def test_exact_norms_mode(self):
        a = ill_conditioned(48, seed=12)
        r = qdwh(a, exact_norms=True)
        rep = polar_report(a, r.u, r.h)
        assert rep.within(1e-12)

    def test_alpha_hint(self):
        a = generate_matrix(32, cond=100, seed=13)
        r = qdwh(a, alpha=float(np.linalg.norm(a, 2)))
        assert polar_report(a, r.u, r.h).within(1e-12)

    def test_rejects_bad_cond_est(self):
        with pytest.raises(ValueError):
            qdwh(np.eye(4), cond_est=0.1)


class TestEdgeCases:
    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            qdwh(np.ones((3, 5)))

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            qdwh(np.ones(5))

    def test_rejects_integer_dtype(self):
        with pytest.raises(TypeError):
            qdwh(np.ones((4, 4), dtype=np.int64))

    def test_zero_matrix(self):
        r = qdwh(np.zeros((6, 4)))
        assert r.iterations == 0
        assert np.allclose(r.u.conj().T @ r.u, np.eye(4))
        assert np.allclose(r.h, 0)

    def test_empty_matrix(self):
        r = qdwh(np.zeros((0, 0)))
        assert r.h.shape == (0, 0)

    def test_identity(self):
        r = qdwh(np.eye(16))
        assert np.allclose(r.u, np.eye(16), atol=1e-12)
        assert np.allclose(r.h, np.eye(16), atol=1e-12)

    def test_diagonal_with_negative_entries(self):
        """Polar factor of diag(+,-) is diag(sign)."""
        a = np.diag([2.0, -3.0, 0.5, -0.25])
        r = qdwh(a)
        assert np.allclose(r.u, np.diag([1.0, -1.0, 1.0, -1.0]), atol=1e-10)

    def test_numerically_singular(self):
        """Rank-deficient to working precision still converges with a
        valid (orthogonal, PSD) result."""
        rng = np.random.default_rng(14)
        b = rng.standard_normal((40, 5))
        a = b @ rng.standard_normal((5, 20))  # rank 5, 40 x 20
        r = qdwh(a)
        rep = polar_report(a, r.u, r.h)
        assert rep.orthogonality < 1e-12
        assert rep.backward < 1e-12

    def test_tiny_matrix(self):
        a = np.array([[2.0]])
        r = qdwh(a)
        assert r.u[0, 0] == pytest.approx(1.0)
        assert r.h[0, 0] == pytest.approx(2.0)


class TestScaleInvariance:
    @given(st.floats(1e-6, 1e6))
    def test_u_is_scale_invariant(self, scale):
        a = generate_matrix(24, cond=1e4, seed=15)
        r1 = qdwh(a)
        r2 = qdwh(scale * a)
        assert np.allclose(r1.u, r2.u, atol=1e-8)
        assert np.allclose(scale * r1.h, r2.h, rtol=1e-8, atol=1e-10)
