"""Tests for the synthetic matrix generator (Section 7.1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.matrices import (
    SingularValueMode,
    generate_matrix,
    ill_conditioned,
    random_unitary,
    singular_values,
    well_conditioned,
)


class TestRandomUnitary:
    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    def test_columns_orthonormal(self, dtype):
        q = random_unitary(24, dtype, m=40, seed=0)
        g = q.conj().T @ q
        assert np.allclose(g, np.eye(24), atol=1e-12)

    def test_square_unitary(self):
        q = random_unitary(16, seed=1)
        assert np.allclose(q @ q.T, np.eye(16), atol=1e-12)

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            random_unitary(10, m=5)

    def test_seeded_reproducibility(self):
        a = random_unitary(8, seed=7)
        b = random_unitary(8, seed=7)
        assert np.array_equal(a, b)


class TestSingularValues:
    @pytest.mark.parametrize("mode", list(SingularValueMode))
    def test_range_and_extremes(self, mode):
        s = singular_values(32, 1e6, mode, seed=3)
        assert s[0] == pytest.approx(1.0)
        assert s.min() == pytest.approx(1e-6, rel=1e-10)
        assert np.all(s <= 1.0 + 1e-15) and np.all(s > 0)

    def test_geometric_is_geometric(self):
        s = singular_values(10, 1e4, SingularValueMode.GEOMETRIC)
        ratios = s[1:] / s[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_cluster_modes(self):
        s = singular_values(8, 100, SingularValueMode.CLUSTER_SMALL)
        assert np.sum(s == 1.0) == 1
        s = singular_values(8, 100, SingularValueMode.CLUSTER_LARGE)
        assert np.sum(s == 1.0) == 7

    def test_n_equal_one(self):
        assert singular_values(1, 1e8).tolist() == [1.0]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            singular_values(0, 10)
        with pytest.raises(ValueError):
            singular_values(4, 0.5)


class TestGenerateMatrix:
    @given(st.sampled_from([8, 17, 32]), st.floats(1.0, 1e10))
    def test_condition_number_realized(self, n, cond):
        a = generate_matrix(n, cond=cond, seed=5)
        s = np.linalg.svd(a, compute_uv=False)
        got = s[0] / s[-1]
        # Forming U diag(s) V^H perturbs sigma_min by O(eps * ||A||),
        # so the realized cond carries a relative error that grows as
        # eps * cond; a fixed 1e-6 tolerance is too tight near 1e10.
        tol = max(1e-6, 16 * np.finfo(np.float64).eps * cond)
        assert got == pytest.approx(cond, rel=tol)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64,
                                       np.complex64, np.complex128])
    def test_dtype_respected(self, dtype):
        a = generate_matrix(12, cond=100, dtype=dtype, seed=2)
        assert a.dtype == np.dtype(dtype)

    def test_rectangular(self):
        a = generate_matrix(30, 12, cond=1e3, seed=4)
        assert a.shape == (30, 12)
        s = np.linalg.svd(a, compute_uv=False)
        assert s[0] / s[-1] == pytest.approx(1e3, rel=1e-8)

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            generate_matrix(5, 10)

    def test_explicit_sigma(self):
        sig = [4.0, 2.0, 1.0]
        a = generate_matrix(6, 3, sigma=sig, seed=0)
        s = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(s, sig, rtol=1e-12)

    def test_explicit_sigma_wrong_length(self):
        with pytest.raises(ValueError):
            generate_matrix(6, 3, sigma=[1.0, 2.0])


class TestPresets:
    def test_ill_conditioned_double(self):
        a = ill_conditioned(48, seed=0)
        s = np.linalg.svd(a, compute_uv=False)
        assert s[0] / s[-1] > 1e14  # 1e16 target, roundoff-limited

    def test_ill_conditioned_single_capped(self):
        a = ill_conditioned(32, dtype=np.float32, seed=0)
        s = np.linalg.svd(a.astype(np.float64), compute_uv=False)
        assert 1e5 < s[0] / s[-1] < 1e9

    def test_well_conditioned(self):
        a = well_conditioned(32, seed=0)
        s = np.linalg.svd(a, compute_uv=False)
        assert s[0] / s[-1] == pytest.approx(10.0, rel=1e-6)
