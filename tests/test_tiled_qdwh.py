"""Tests for the tiled (SLATE-analogue) QDWH implementation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix
from repro.matrices import (
    generate_matrix,
    ill_conditioned,
    polar_report,
    well_conditioned,
)

from .conftest import make_runtime


def run_tiled(a, nb=32, grid=(2, 2), **kw):
    rt = make_runtime(*grid)
    da = DistMatrix.from_array(rt, a.copy(), nb)
    res = tiled_qdwh(rt, da, **kw)
    return res, rt


class TestNumericAccuracy:
    def test_ill_conditioned_machine_precision(self):
        a = ill_conditioned(128, seed=0)
        res, _ = run_tiled(a)
        rep = polar_report(a, res.u.to_array(), res.h.to_array())
        assert rep.orthogonality < 1e-13
        assert rep.backward < 1e-12
        assert rep.h_hermitian < 1e-14

    def test_paper_iteration_split(self):
        a = ill_conditioned(128, seed=1)
        res, _ = run_tiled(a)
        assert (res.it_qr, res.it_chol) == (3, 3)
        assert res.converged

    @pytest.mark.parametrize("dtype", [np.float32, np.float64,
                                       np.complex64, np.complex128])
    def test_all_dtypes(self, dtype):
        a = ill_conditioned(96, dtype=dtype, seed=2)
        res, _ = run_tiled(a)
        u = res.u.to_array()
        assert u.dtype == np.dtype(dtype)
        single = dtype in (np.float32, np.complex64)
        tol = 5e-5 if single else 1e-12
        rep = polar_report(a, u, res.h.to_array())
        assert rep.orthogonality < tol and rep.backward < tol

    @given(st.integers(20, 70), st.integers(10, 40), st.integers(7, 17))
    def test_rectangular_ragged_tiles(self, m, n, nb):
        if m < n:
            m, n = n, m
        a = generate_matrix(m, n, cond=1e6, seed=m + n)
        res, _ = run_tiled(a, nb=nb)
        rep = polar_report(a, res.u.to_array(), res.h.to_array())
        assert rep.orthogonality < 1e-11
        assert rep.backward < 1e-11

    def test_agrees_with_dense_qdwh(self):
        from repro import qdwh
        a = generate_matrix(96, cond=1e4, seed=3)
        res, _ = run_tiled(a)
        dres = qdwh(a)
        # Same algorithm, same estimator design: U's must agree to the
        # conditioning-limited level.
        assert np.allclose(res.u.to_array(), dres.u, atol=1e-6)
        assert np.allclose(res.h.to_array(), dres.h, atol=1e-6)

    def test_well_conditioned_fast(self):
        a = well_conditioned(96, seed=4)
        res, _ = run_tiled(a, cond_est=10.0)
        # The sqrt(n)-deflated hint may trigger one defensive QR step.
        assert res.it_qr <= 1
        assert res.iterations <= 5

    def test_different_grids_same_numbers(self):
        a = generate_matrix(64, cond=1e8, seed=5)
        r1, _ = run_tiled(a, grid=(1, 1))
        r2, _ = run_tiled(a, grid=(2, 3))
        assert np.allclose(r1.u.to_array(), r2.u.to_array(), atol=1e-10)

    def test_zero_matrix(self):
        rt = make_runtime()
        da = DistMatrix(rt, 16, 8, 4)  # all-zero
        res = tiled_qdwh(rt, da)
        assert res.iterations == 0
        u = res.u.to_array()
        assert np.allclose(u.T @ u, np.eye(8))
        assert np.allclose(res.h.to_array(), 0)

    def test_rejects_wide(self):
        rt = make_runtime()
        da = DistMatrix(rt, 8, 16, 4)
        with pytest.raises(ValueError):
            tiled_qdwh(rt, da)


class TestSymbolicMode:
    def test_requires_cond_est(self):
        rt = make_runtime(numeric=False)
        da = DistMatrix(rt, 64, 64, 16)
        with pytest.raises(ValueError):
            tiled_qdwh(rt, da)

    def test_schedule_matches_prediction(self):
        from repro.core.params import predict_iterations
        rt = make_runtime(numeric=False)
        da = DistMatrix(rt, 128, 128, 32)
        res = tiled_qdwh(rt, da, cond_est=1e16)
        assert (res.it_qr, res.it_chol) == predict_iterations(1e16, n=128)

    def test_graph_is_topological_and_nonempty(self):
        rt = make_runtime(numeric=False)
        da = DistMatrix(rt, 128, 128, 32)
        tiled_qdwh(rt, da, cond_est=1e16)
        assert len(rt.graph) > 1000
        assert rt.graph.validate_topological()

    def test_symbolic_and_numeric_graphs_align(self):
        """The same condition estimate must produce the same task-graph
        shape in both modes (the core promise of the perf model)."""
        a = ill_conditioned(96, seed=6)
        rt_n = make_runtime()
        da_n = DistMatrix.from_array(rt_n, a.copy(), 32)
        tiled_qdwh(rt_n, da_n)  # estimated path: runs the condest QR
        rt_s = make_runtime(numeric=False)
        da_s = DistMatrix(rt_s, 96, 96, 32)
        tiled_qdwh(rt_s, da_s, cond_est=1e16)
        kn = rt_n.graph.counts_by_kind()
        ks = rt_s.graph.counts_by_kind()
        # Estimator sweep counts differ (adaptive vs fixed); the heavy
        # kernels must match exactly.
        for kind in ("geqrt", "tpqrt", "potrf", "trsm", "tpmqrt"):
            assert kn[kind] == ks[kind], kind

    def test_executed_flops_close_to_model(self):
        """Executed task flops are within ~1.7x of the paper's model
        (unstructured stacked QR + explicit Q account for the gap)."""
        import repro.flops as F
        rt = make_runtime(numeric=False)
        n = 256
        da = DistMatrix(rt, n, n, 32)
        res = tiled_qdwh(rt, da, cond_est=1e16)
        model = F.qdwh_total(n, res.it_qr, res.it_chol)
        executed = rt.graph.total_flops()
        assert model < executed < 2.0 * model

    def test_cholesky_only_graph_smaller(self):
        rt1 = make_runtime(numeric=False)
        tiled_qdwh(rt1, DistMatrix(rt1, 128, 128, 32), cond_est=1e16)
        rt2 = make_runtime(numeric=False)
        tiled_qdwh(rt2, DistMatrix(rt2, 128, 128, 32), cond_est=2.0)
        assert len(rt2.graph) < len(rt1.graph)
