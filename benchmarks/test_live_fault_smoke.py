"""CI smoke check for live fault tolerance on the threaded backend.

Runs the paper's worst-case workload (kappa = 1e16, float64) at a
CI-friendly size through ``backend="threads"`` with a seeded FaultPlan
firing transients, worker stalls, and one NaN tile corruption inside
real worker threads, and asserts the recovering executor delivers the
fault-free answer: convergence without dense degradation, backward
error within the condition-scaled budget of the clean run, every
injected fault visible in RecoveryStats, and zero leaked in-flight
attempts after the final sync.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bench import write_result
from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.matrices import generate_matrix, polar_report
from repro.obs import TimelineSink
from repro.resilience import (
    FaultPlan,
    TileCorruption,
    TransientFaults,
    WorkerStall,
)
from repro.resilience.live import RecoveryPolicy
from repro.runtime import Runtime

N = 256
NB = 64
COND = 1e16
SEED = 11


def test_live_faults_threads4_converges(once):
    def body():
        a = generate_matrix(N, cond=COND, seed=SEED)

        rt0 = Runtime(ProcessGrid(1, 1))
        d0 = DistMatrix.from_array(rt0, a.copy(), NB)
        res0 = tiled_qdwh(rt0, d0)
        rep0 = polar_report(a, d0.to_array(), res0.h.to_array())
        rt0.close()

        plan = FaultPlan(
            seed=SEED,
            transient=TransientFaults(probability=0.1, max_attempts=4),
            stalls=(WorkerStall(probability=0.05, seconds=0.05),),
            corruptions=(TileCorruption(probability=0.5, max_events=1),))
        sink = TimelineSink()
        rt = Runtime(ProcessGrid(1, 1), sink=sink, faults=plan,
                     recovery=RecoveryPolicy(max_retries=3, backoff=1e-4,
                                             min_straggler_seconds=0.02,
                                             min_samples=3,
                                             scrub_writes=True))
        d = DistMatrix.from_array(rt, a.copy(), NB)
        res = tiled_qdwh(rt, d, backend="threads", workers=4)
        rep = polar_report(a, d.to_array(), res.h.to_array())
        rec = rt.exec_stats.recovery
        leaked = rt.executor.inflight_attempts
        rt.close()
        return res0, rep0, res, rep, rec, leaked, sink

    res0, rep0, res, rep, rec, leaked, sink = once(body)

    assert res.converged and not res.degraded
    assert res.iterations == res0.iterations

    eps = np.finfo(np.float64).eps
    tol = max(100.0 * eps * math.sqrt(COND), 10.0 * rep0.backward)
    assert rep.backward <= tol
    assert rep.orthogonality < 5e-13

    # Every fault class fired and was recovered.
    assert rec.transient_failures >= 3
    assert rec.retried_tasks >= 3
    assert rec.injected_stalls >= 1
    assert rec.corrupted_tiles >= 1
    assert rec.health_events == 0  # scrubbing kept NaNs out
    assert leaked == 0
    assert len(sink.faults) > 0

    write_result("live_fault_smoke", (
        f"live fault smoke: n={N}, nb={NB}, kappa={COND:.0e}, "
        f"threads x4 -> {res.iterations} iterations "
        f"({res.it_qr} QR + {res.it_chol} Chol), "
        f"berr {rep.backward:.3e} (clean {rep0.backward:.3e}), "
        f"{rec.transient_failures} transients retried, "
        f"{rec.injected_stalls} stalls, "
        f"{rec.corrupted_tiles} corruptions scrubbed, "
        f"{rec.speculation_wins} speculation wins, "
        f"0 leaked attempts\n"))
