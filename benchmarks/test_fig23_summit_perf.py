"""Figures 2a, 2b, 3a, 3b — Summit performance comparison (E3-E6).

Paper: Tflop/s vs matrix size on 1/8/16/32 Summit nodes for SLATE-GPU
(blue squares), SLATE-CPU (orange circles), and ScaLAPACK/POLAR (green
triangles), kappa = 1e16.  SLATE-GPU wins, the gap widens with n,
SLATE-CPU tracks ScaLAPACK.

Here: simulated on the Summit machine model (see DESIGN.md for the
substitution rationale).  Absolute Tflop/s are model outputs; the
benchmark asserts the paper's qualitative shape.
"""

from __future__ import annotations

import pytest

from repro.bench import format_series, write_result
from repro.machines import summit
from repro.perf import figure_series

IMPLS = ("slate_gpu", "slate_cpu", "scalapack")

# Largest size per node count respects the memory-footprint model
# (repro.perf.memory) calibrated to the paper's n=175k Frontier datum.
CASES = {
    "fig2a": (1, (10_000, 20_000, 30_000, 40_000)),
    "fig2b": (8, (20_000, 40_000, 80_000, 125_000)),
    "fig3a": (16, (40_000, 80_000, 120_000, 175_000)),
    "fig3b": (32, (40_000, 80_000, 160_000, 250_000)),
}


def _series(nodes, sizes, max_tiles):
    out = figure_series(summit(), nodes, IMPLS, sizes,
                        max_tiles=max_tiles)
    return {impl: [p.tflops for p in pts] for impl, pts in out.items()}


@pytest.mark.parametrize("fig", list(CASES))
def test_summit_figure(fig, once):
    nodes, sizes = CASES[fig]
    max_tiles = 16 if nodes == 1 else 12

    series = once(lambda: _series(nodes, sizes, max_tiles))
    text = format_series(
        f"{fig}: Summit, {nodes} node(s) — Tflop/s vs matrix size "
        f"(kappa=1e16, simulated)",
        "n", sizes, series)
    write_result(f"{fig}_summit_{nodes}nodes", text)

    gpu, cpu, scal = (series["slate_gpu"], series["slate_cpu"],
                      series["scalapack"])
    # Shape assertions, straight from the paper's prose:
    # (1) GPU beats both CPU variants everywhere.
    assert all(g > 3 * c for g, c in zip(gpu, cpu))
    assert all(g > 3 * s for g, s in zip(gpu, scal))
    # (2) the GPU advantage grows with matrix size.
    assert gpu[-1] / scal[-1] > gpu[0] / scal[0] * 0.8
    assert gpu[-1] > gpu[0]
    # (3) SLATE-CPU is similar to ScaLAPACK (within ~35%).
    assert all(0.65 < s / c < 1.3 for s, c in zip(scal, cpu))
