"""Related-work and Section 7.1 quantitative claims.

RW1 (Section 3): "the POLAR QDWH implementation ... outperforms the
SVD-based implementation by up to 5x on ill-conditioned matrices" —
the structural reason (Section 4) being the SVD's unremovable
memory-bound Level-2 work.

E15 (Section 7.1): "The condition number has the most significant
effect on the convergence of QDWH and, consequently, its performance"
— a well-conditioned matrix needs ~2-3 cheap Cholesky iterations vs
the worst case's 3 QR + 3 Cholesky.
"""

from __future__ import annotations

from repro.bench import format_table, write_result
from repro.machines import summit
from repro.perf.model import simulate_qdwh
from repro.perf.svd_model import simulate_svd_polar


def test_rw1_qdwh_vs_svd_polar(once):
    cases = ((1, 40_000), (4, 80_000), (8, 125_000))

    def body():
        rows = []
        for nodes, n in cases:
            svd = simulate_svd_polar(summit(), nodes, n,
                                     ranks_per_node=2)
            q = simulate_qdwh(summit(), nodes, n, "scalapack",
                              max_tiles=12)
            rows.append([nodes, n, q.makespan, svd.makespan,
                         svd.makespan / q.makespan,
                         svd.level2_share])
        return rows

    rows = once(body)
    text = format_table(
        "RW1: QDWH vs SVD-based polar decomposition (CPU, kappa=1e16; "
        "paper cites up to 5x in favor of QDWH at scale)",
        ["nodes", "n", "qdwh (s)", "svd-polar (s)", "qdwh speedup",
         "svd L2 share"], rows)
    write_result("rw1_qdwh_vs_svd", text)

    speedups = [r[4] for r in rows]
    # QDWH's advantage *grows with scale* (the actual claim): modest at
    # one node, factor-5 territory by 4-8 nodes.
    assert speedups == sorted(speedups)
    assert speedups[0] > 0.8          # already competitive at 1 node
    assert 3.0 < speedups[1] < 8.0    # the "up to 5x" regime
    # The SVD baseline is Level-2 bound at scale — the paper's reason.
    assert rows[-1][5] > 0.9


def test_e15_condition_number_effect(once):
    n, nodes = 60_000, 4
    conds = (2.0, 1e4, 1e16)

    def body():
        return [simulate_qdwh(summit(), nodes, n, "slate_gpu",
                              cond=c, max_tiles=12) for c in conds]

    pts = once(body)
    rows = [[f"{c:.0e}", p.it_qr, p.it_chol, p.makespan, p.tflops]
            for c, p in zip(conds, pts)]
    write_result("condition_effect", format_table(
        "E15: condition number vs QDWH cost (4 Summit nodes, GPU, "
        "n=60k, simulated)",
        ["kappa", "#it_QR", "#it_Chol", "time (s)", "Tflop/s"], rows))

    times = [p.makespan for p in pts]
    # Worst case (3 QR + 3 Chol) costs ~2-4x the well-conditioned run.
    assert times[0] < times[1] <= times[2]
    assert 1.8 < times[2] / times[0] < 6.0
    # QR iterations only appear as kappa grows.
    assert pts[0].it_qr <= 1 and pts[2].it_qr == 3
