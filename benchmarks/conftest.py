"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (figure/table) and
archives its rows under ``results/``.  Simulated-performance points are
deterministic, so each benchmark runs exactly once
(``benchmark.pedantic(rounds=1)``); the pytest-benchmark timing then
reports the harness cost, while the *scientific* output is the table.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run a benchmark body exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn):
        return run_once(benchmark, fn)

    return _run
