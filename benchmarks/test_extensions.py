"""X1, X2 — the paper's Section 8 future-work items, implemented.

X1: Zolo-PD — more flops, fewer iterations, more concurrency.
X2: mixed-precision QDWH — speed vs accuracy trade-off.
"""

from __future__ import annotations

import time

import numpy as np

import repro.flops as F
from repro import qdwh, qdwh_mixed_precision, zolo_pd
from repro.bench import format_table, write_result
from repro.matrices import ill_conditioned, polar_report


def test_x1_zolo_vs_qdwh(once):
    n = 384

    def body():
        a = ill_conditioned(n, seed=0)
        rq = qdwh(a)
        rz = zolo_pd(a)
        rep_q = polar_report(a, rq.u, rq.h)
        rep_z = polar_report(a, rz.u, rz.h)
        # Flop/concurrency model: QDWH runs #it_QR stacked QRs
        # sequentially; Zolo runs `degree` independent QRs per
        # iteration.
        qdwh_flops = F.qdwh_total(n, rq.it_qr, rq.it_chol)
        zolo_flops = (rz.iterations * rz.degree
                      * (F.geqrf(2 * n, n) + F.orgqr(2 * n, n, n)
                         + F.gemm(n, n, n)))
        return rq, rz, rep_q, rep_z, qdwh_flops, zolo_flops

    rq, rz, rep_q, rep_z, fq, fz = once(body)
    text = format_table(
        "X1: Zolo-PD vs QDWH (kappa=1e16, n=384) — flops vs "
        "critical-path trade (Section 8 future work)",
        ["method", "iterations", "sequential QR steps",
         "concurrent QRs/iter", "flops", "backward error"],
        [["qdwh", rq.iterations, rq.it_qr, 1, f"{fq:.3e}",
          rep_q.backward],
         ["zolo", rz.iterations, rz.iterations, rz.degree, f"{fz:.3e}",
          rep_z.backward]])
    write_result("ext_zolo", text)

    assert rz.iterations < rq.iterations          # fewer iterations
    assert fz > fq                                # more flops
    assert rz.degree >= 8                         # much more concurrency
    assert rep_z.backward < 1e-12 and rep_q.backward < 1e-12


def test_x2_mixed_precision(once):
    n = 384

    def body():
        a = ill_conditioned(n, seed=1)
        t0 = time.perf_counter()
        rd = qdwh(a)
        t_double = time.perf_counter() - t0
        t0 = time.perf_counter()
        rm = qdwh_mixed_precision(a)
        t_mixed = time.perf_counter() - t0
        return (polar_report(a, rd.u, rd.h),
                polar_report(a, rm.u, rm.h), t_double, t_mixed, rm)

    rep_d, rep_m, t_d, t_m, rm = once(body)
    text = format_table(
        "X2: mixed-precision QDWH (f32 iterations + f64 Newton-Schulz "
        "polish) vs full double (kappa-capped f32 input, n=384)",
        ["variant", "orthogonality", "backward error", "wall (s)",
         "refine steps"],
        [["double", rep_d.orthogonality, rep_d.backward, t_d, 0],
         ["mixed", rep_m.orthogonality, rep_m.backward, t_m,
          rm.refinement_steps]])
    write_result("ext_mixed_precision", text)

    # Orthogonality recovers to double precision; backward error floors
    # at the f32 level (the documented trade-off).
    assert rep_m.orthogonality < 1e-12
    assert 1e-12 < rep_m.backward < 1e-4
    assert rep_d.backward < 1e-13
