"""E8 detail — the memory-footprint ceiling (Section 7.2).

Paper: "The maximum matrix size that can be tested on this number of
nodes [16 Frontier nodes] is 175k, due to the large memory footprint
of the algorithm."
"""

from __future__ import annotations

from repro.bench import format_table, write_result
from repro.machines import frontier, summit
from repro.perf.memory import max_feasible_n, qdwh_footprint, round_down_to


def test_memory_ceiling(once):
    def body():
        rows = []
        for mach, rpn, nodes_list in (
            (frontier(), 8, (1, 4, 8, 16)),
            (summit(), 2, (1, 4, 8, 16, 32)),
        ):
            for nodes in nodes_list:
                nmax = round_down_to(
                    max_feasible_n(mach, nodes, ranks_per_node=rpn,
                                   use_gpu=True))
                fp = qdwh_footprint(mach, nodes, nmax,
                                    ranks_per_node=rpn, use_gpu=True)
                rows.append([mach.name, nodes, nmax,
                             fp.per_rank_bytes / 2 ** 30,
                             fp.capacity_bytes / 2 ** 30])
        return rows

    rows = once(body)
    text = format_table(
        "E8 detail: largest feasible n per configuration (QDWH "
        "workspace model; paper reports 175k on 16 Frontier nodes)",
        ["machine", "nodes", "max n", "per-rank GiB", "capacity GiB"],
        rows)
    write_result("memory_footprint", text)

    frontier16 = next(r for r in rows
                      if r[0] == "frontier" and r[1] == 16)
    assert frontier16[2] == 175_000  # the paper's exact ceiling
    # Feasible n grows with node count on both machines.
    for mach in ("frontier", "summit"):
        ns = [r[2] for r in rows if r[0] == mach]
        assert ns == sorted(ns)
