"""Contribution #2 (four data types) and #5 (vendor portability).

The paper: "the first QDWH-based PD implementation that supports all
four standard data types" and "we demonstrate portability across
NVIDIA CUDA and AMD HIP GPU architectures.  SLATE also supports SYCL
for Intel GPUs on the upcoming Aurora system."
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, write_result
from repro.machines import aurora, frontier, summit
from repro.perf.model import simulate_qdwh
from repro.perf.report import profile_report


def test_portability_three_vendors(once):
    """One QDWH code path, three vendors' machine models."""
    n, nodes = 80_000, 4

    def body():
        return [(m().name, simulate_qdwh(m(), nodes, n, "slate_gpu",
                                         max_tiles=12))
                for m in (summit, frontier, aurora)]

    pts = once(body)
    rows = [[name, p.it_qr + p.it_chol, round(p.makespan, 1),
             round(p.tflops, 1)] for name, p in pts]
    write_result("portability", format_table(
        f"Contribution #5: the same QDWH task graph on all three "
        f"vendors' nodes ({nodes} nodes, n={n}, simulated)",
        ["machine", "iterations", "time (s)", "Tflop/s"], rows))

    # Identical algorithm everywhere: same iteration counts.
    its = {r[1] for r in rows}
    assert len(its) == 1
    # Every machine completes and the exascale-era GPUs beat Summit.
    tf = {name: p.tflops for name, p in pts}
    assert tf["frontier"] > tf["summit"]
    assert tf["aurora"] > tf["summit"]


def test_four_dtypes_performance(once):
    """Complex doubles the bytes and quadruples the flops; the
    simulated runtime must reflect both (contribution #2)."""
    n = 40_000

    def body():
        out = {}
        for name, dt in (("float64", np.float64),
                         ("complex128", np.complex128)):
            out[name] = simulate_qdwh(summit(), 1, n, "slate_gpu",
                                      max_tiles=12, dtype=dt)
        return out

    pts = once(body)
    rows = [[name, round(p.makespan, 1), round(p.tflops, 2)]
            for name, p in pts.items()]
    write_result("dtype_performance", format_table(
        f"Contribution #2: data-type cost model (1 Summit node, n={n})",
        ["dtype", "time (s)", "Tflop/s"], rows))

    ratio = pts["complex128"].makespan / pts["float64"].makespan
    # ~4x the arithmetic at comparable rates, slightly offset by the
    # better flop/byte ratio of complex transfers.
    assert 3.0 < ratio < 4.5
    # Effective Tflop/s (flops/time) stays in the same band.
    assert 0.7 < pts["complex128"].tflops / pts["float64"].tflops < 1.4


def test_profile_report(once):
    """The profiling-campaign view renders and names the QDWH story:
    gemm-class kernels dominate busy time (Section 4's premise)."""
    p = once(lambda: simulate_qdwh(summit(), 1, 40_000, "slate_gpu",
                                   max_tiles=12))
    text = profile_report(p)
    write_result("profile_report", text)
    assert "kernel busy time" in text
    assert "communication volume" in text
    top = text.split("kernel busy time")[1].splitlines()[4]
    assert any(k in top for k in ("gemm", "tpmqrt", "unmqr", "geqrt"))
