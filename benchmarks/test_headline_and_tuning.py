"""E10, E11 — tile-size tuning and the 18x headline speedup.

Paper (Section 7.2): "a tile size of nb = 320 provided the best
performance [on GPUs] ... for tests on CPUs, nb = 192 gave the best
performance"; "SLATE-QDWH is faster by up to 18x on 1 and 4 nodes,
and by approximately 13x on 8 nodes."
"""

from __future__ import annotations

from repro.bench import format_series, format_table, write_result
from repro.machines import summit
from repro.perf import speedup_table, tile_size_sweep

NBS = (64, 128, 192, 320, 512, 1024)
TUNE_N = 2560  # small enough to simulate the true tiling (no coarsening)


def test_tile_size_tuning(once):
    def body():
        gpu = tile_size_sweep(summit(), TUNE_N, "slate_gpu", NBS,
                              max_tiles=64)
        cpu = tile_size_sweep(summit(), TUNE_N, "slate_cpu", NBS,
                              max_tiles=64)
        return {"slate_gpu": [p.tflops for p in gpu],
                "slate_cpu": [p.tflops for p in cpu]}

    series = once(body)
    text = format_series(
        f"E10: tile-size tuning on 1 Summit node (n={TUNE_N}, "
        "simulated; paper tunes nb=320 GPU / nb=192 CPU at full scale)",
        "nb", NBS, series)
    write_result("tuning_tile_size", text)

    for name, perf in series.items():
        best = NBS[perf.index(max(perf))]
        # Interior optimum: the kernel-efficiency / parallelism
        # trade-off peaks strictly inside the sweep.
        assert NBS[0] < best < NBS[-1], (name, best)
    # GPUs want larger tiles than CPUs.
    gbest = NBS[series["slate_gpu"].index(max(series["slate_gpu"]))]
    cbest = NBS[series["slate_cpu"].index(max(series["slate_cpu"]))]
    assert gbest >= cbest


def test_headline_speedup(once):
    sizes = {1: (20_000, 40_000),
             4: (60_000, 80_000),
             8: (80_000, 125_000)}
    rows = once(lambda: speedup_table(summit(), [1, 4, 8], sizes=sizes,
                                      max_tiles=12))
    text = format_table(
        "E11: max SLATE-GPU speedup over ScaLAPACK (paper: up to 18x "
        "at 1 and 4 nodes, ~13x at 8 nodes)",
        ["nodes", "speedup", "at n"],
        [[r["nodes"], r["speedup"], r["at_n"]] for r in rows])
    write_result("headline_speedup", text)

    for r in rows:
        # Same regime as the paper's 13-18x (the simulator lands in a
        # 12-30x band depending on size; see EXPERIMENTS.md).
        assert 8 < r["speedup"] < 35, r
