"""Chaos smoke test: the distributed backend under seeded network
faults plus a worker crash.

Same workload shape as ``test_dist_smoke`` (512^2 float64, 4 workers)
but run under the default chaos plan — background frame drops,
duplicates and delays, one corrupt frame, a mid-run partition, a
mid-stream connection cut — and the default injected SIGKILL.  The
gates are the resilience invariants, independent of host speed: the
run converges with paper-level accuracy (kappa-scaled backward
error), the chaos actually fired (drops observed, the cut resynced),
and nothing leaked — zero in-flight attempts, zero ``/dev/shm``
segments.
"""

from __future__ import annotations

import numpy as np

from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.matrices import generate_matrix, polar_report
from repro.resilience import plan_from_spec
from repro.resilience.live import RecoveryPolicy
from repro.resilience.net import default_chaos_plan
from repro.runtime import Runtime
from repro.runtime.distributed import scan_segments

import dataclasses

N = 512
NB = 64
WORKERS = 4
SEED = 11


def _qdwh_under_chaos():
    plan = dataclasses.replace(
        plan_from_spec(seed=SEED, crash=("1@0.05",)),
        net=default_chaos_plan(seed=SEED))
    pol = RecoveryPolicy(max_retries=3)
    rt = Runtime(ProcessGrid(1, 1), faults=plan, recovery=pol)
    a = generate_matrix(N, cond=1e16, dtype=np.float64, seed=0)
    da = DistMatrix.from_array(rt, a, NB)
    res = tiled_qdwh(rt, da, backend="processes", workers=WORKERS)
    u, h = res.u.to_array(), res.h.to_array()
    ex = rt._executor
    leaked = ex.inflight_attempts
    prefix = ex.store.prefix
    stats = rt.exec_stats
    rt.close()
    return a, u, h, res, stats, leaked, scan_segments(prefix)


def test_chaos_processes4_converges_without_leaks(once):
    a, u, h, res, stats, leaked, shm = once(_qdwh_under_chaos)
    assert res.converged and not res.degraded
    rep = polar_report(a, u, h)
    assert rep.orthogonality < 1e-13
    assert rep.backward < 1e-13
    rec = stats.recovery
    assert rec.crashes >= 1, "injected SIGKILL never fired"
    assert rec.net_drops >= 1, "chaos plan injected no drops"
    assert rec.net_reconnects >= 1, "connection cut never resynced"
    assert leaked == 0, f"{leaked} in-flight attempts leaked"
    assert shm == [], f"leaked shm segments: {shm}"
