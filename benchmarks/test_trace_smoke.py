"""CI smoke check for the observability subsystem.

Runs the ``repro trace`` pipeline on the 1-node Summit SLATE-GPU point
and asserts the exported Chrome trace is honest: it parses as
trace_event JSON and its per-process summed task durations equal the
scheduler's per-rank busy time to 1e-9 — the trace is the schedule,
not an approximation of it.
"""

from __future__ import annotations

import json

from repro.bench import write_result
from repro.machines import summit
from repro.obs import TimelineSink, chrome_trace, write_chrome_trace
from repro.perf import simulate_qdwh


def test_trace_roundtrip_summit_1node(once, tmp_path):
    def body():
        sink = TimelineSink()
        point = simulate_qdwh(summit(), 1, 20_000, "slate_gpu",
                              max_tiles=8, sink=sink)
        path = write_chrome_trace(sink, str(tmp_path / "trace.json"))
        with open(path) as fh:
            doc = json.load(fh)
        return point, sink, doc

    point, sink, doc = once(body)
    sched = point.schedule

    # Perfetto-compatible trace_event JSON: the container keys exist and
    # every complete event carries the required fields.
    assert set(doc) >= {"traceEvents"}
    events = doc["traceEvents"]
    assert events
    task_events = [e for e in events
                   if e["ph"] == "X" and e.get("cat") not in ("barrier",
                                                              "stall")]
    assert len(task_events) == sched.task_count
    for e in task_events[:100]:
        assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e)

    # Honesty: summed task durations per pid == per-rank busy seconds.
    busy = {}
    for e in task_events:
        busy[e["pid"]] = busy.get(e["pid"], 0.0) + e["dur"] / 1e6
    for rank, expect in enumerate(sched.per_rank_busy):
        assert abs(busy.get(rank, 0.0) - expect) <= 1e-9, (
            f"rank {rank}: trace says {busy.get(rank, 0.0)!r}, "
            f"scheduler says {expect!r}")

    # The in-memory document matches what was written to disk.
    assert doc == json.loads(json.dumps(chrome_trace(sink)))

    write_result("trace_smoke", (
        f"trace smoke: summit x1, n=20000, slate_gpu -> "
        f"{len(task_events)} task events, {len(events)} total events, "
        f"max per-rank busy drift {max(abs(busy.get(r, 0.0) - b) for r, b in enumerate(sched.per_rank_busy)):.3e} s\n"))
