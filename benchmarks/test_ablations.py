"""A1-A4 — ablations of the design choices DESIGN.md calls out.

A1: lookahead depth (the task-based runtime's key lever);
A2: GPU-aware MPI / NIC placement (the Frontier-vs-Summit discussion);
A3: gemmA vs naive placement inside norm2est (Section 6.2);
A4: task-based vs fork-join on identical hardware (isolates runtime).
"""

from __future__ import annotations

import dataclasses

from repro.bench import format_table, write_result
from repro.machines import frontier, summit
from repro.perf.model import simulate_custom, simulate_qdwh

N = 60_000
MT = 12


def test_a1_lookahead_depth(once):
    depths = (0, 1, 2, 4, None)

    def body():
        return [simulate_custom(summit(), 4, N, ranks_per_node=2,
                                use_gpu=True, lookahead=d,
                                max_tiles=MT).tflops
                for d in depths]

    perf = once(body)
    text = format_table(
        "A1: lookahead depth on 4 Summit nodes (GPU, n=60k; depth 0 = "
        "bulk-synchronous panels, None = unbounded DAG order)",
        ["lookahead", "Tflop/s"],
        [["inf" if d is None else d, p] for d, p in zip(depths, perf)])
    write_result("ablation_lookahead", text)

    # Monotone non-decreasing and a real win from 0 -> unbounded.
    assert all(a <= b * 1.001 for a, b in zip(perf, perf[1:]))
    assert perf[-1] > 1.15 * perf[0]


def test_a2_gpu_aware_mpi(once):
    def body():
        fr = frontier()
        staged = dataclasses.replace(
            fr, network=dataclasses.replace(fr.network, nic_on_gpu=False))
        direct_p = simulate_qdwh(fr, 8, 120_000, "slate_gpu",
                                 max_tiles=MT)
        staged_p = simulate_qdwh(staged, 8, 120_000, "slate_gpu",
                                 max_tiles=MT)
        return direct_p, staged_p

    direct_p, staged_p = once(body)
    text = format_table(
        "A2: GPU-aware MPI on Frontier (NIC on GPU vs staged through "
        "host), 8 nodes, n=120k",
        ["config", "Tflop/s", "staging GB"],
        [["nic_on_gpu (real Frontier)", direct_p.tflops,
          direct_p.schedule.comm.staging_bytes / 1e9],
         ["staged through CPU", staged_p.tflops,
          staged_p.schedule.comm.staging_bytes / 1e9]])
    write_result("ablation_gpu_aware_mpi", text)

    assert direct_p.tflops >= staged_p.tflops
    assert (staged_p.schedule.comm.staging_bytes
            > direct_p.schedule.comm.staging_bytes)


def test_a3_gemma_vs_owner_c(once):
    """Communication volume of norm2est with gemmA vs naive placement."""
    from repro.dist import DistMatrix, ProcessGrid
    from repro.runtime import Runtime
    from repro.runtime.scheduler import simulate, taskbased_config
    from repro.tiled import norm2est_tiled

    def volume(use_gemm_a):
        rt = Runtime(ProcessGrid(2, 2), numeric=False)
        da = DistMatrix(rt, 16_384, 16_384, 1024)
        norm2est_tiled(rt, da, sweeps=4, use_gemm_a=use_gemm_a)
        cfg = taskbased_config(summit(), 2, 2, use_gpu=False)
        r = simulate(rt.graph, cfg)
        return r.comm.total_bytes, r.makespan

    def body():
        return volume(True), volume(False)

    (b_a, t_a), (b_c, t_c) = once(body)
    text = format_table(
        "A3: norm2est data movement — gemmA (compute at A's owners) "
        "vs owner-of-C placement (n=16k, 4 sweeps)",
        ["variant", "comm bytes", "simulated time (s)"],
        [["gemmA (paper)", b_a, t_a], ["owner-of-C", b_c, t_c]])
    write_result("ablation_gemma", text)

    assert b_a < b_c / 3       # gemmA moves far less data
    assert t_a <= t_c * 1.001  # and is never slower


def test_a4_runtime_model(once):
    """Task-based vs fork-join on identical CPU hardware."""
    def body():
        tb = simulate_custom(summit(), 4, N, ranks_per_node=2,
                             use_gpu=False, lookahead=None, max_tiles=MT)
        fj_op = simulate_qdwh(summit(), 4, N, "scalapack", max_tiles=MT)
        fj_phase = simulate_custom(summit(), 4, N, ranks_per_node=2,
                                   use_gpu=False, lookahead=0,
                                   barrier_per_phase=True, max_tiles=MT)
        return tb, fj_op, fj_phase

    tb, fj_op, fj_phase = once(body)
    text = format_table(
        "A4: runtime model on identical hardware (4 Summit nodes, "
        "CPU, n=60k)",
        ["runtime", "Tflop/s"],
        [["task-based (SLATE)", tb.tflops],
         ["fork-join per op (ScaLAPACK)", fj_op.tflops],
         ["fork-join per panel (strict BSP)", fj_phase.tflops]])
    write_result("ablation_runtime", text)

    assert tb.tflops >= fj_op.tflops * 0.999
    assert fj_op.tflops >= fj_phase.tflops * 0.999
    assert tb.tflops > 1.25 * fj_phase.tflops
