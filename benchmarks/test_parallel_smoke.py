"""Wall-clock smoke test of the threaded execution backend.

Runs the paper's headline numeric workload (kappa = 1e16, float64) at
a CI-friendly size through ``backend="threads"`` with 1 and 4 workers
and asserts 4 workers are not meaningfully *slower* than 1.  On a
multicore host the 4-worker run should win outright; the slack factor
keeps the check meaningful but unflakeable on single-core or noisy CI
runners, where threading can only add overhead bounded by the
dispatch cost (the payloads release the GIL either way).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.matrices import generate_matrix, polar_report
from repro.runtime import Runtime

#: 4 workers may not exceed this multiple of the 1-worker wall clock.
#: Generous on purpose: scheduling noise and 1-core CI hosts must not
#: flake the suite; a real dispatch-layer regression blows well past it.
SLACK = 2.0

N = 1024
NB = 128


def _qdwh_wall(workers: int):
    rt = Runtime(ProcessGrid(1, 1), deferred=True, workers=workers)
    a = generate_matrix(N, cond=1e16, dtype=np.float64, seed=0)
    da = DistMatrix.from_array(rt, a, NB)
    t0 = time.perf_counter()
    res = tiled_qdwh(rt, da, backend="threads", workers=workers)
    wall = time.perf_counter() - t0
    u, h = res.u.to_array(), res.h.to_array()
    rt.close()
    return wall, polar_report(a, u, h)


def test_threads4_not_slower_than_threads1(once):
    def body():
        w1, rep1 = _qdwh_wall(1)
        w4, rep4 = _qdwh_wall(4)
        return w1, w4, rep1, rep4

    w1, w4, rep1, rep4 = once(body)
    # Both runs must be correct before their timing means anything.
    for rep in (rep1, rep4):
        assert rep.orthogonality < 1e-13
        assert rep.backward < 1e-13
    assert w4 <= SLACK * w1, (
        f"threads(4) took {w4:.2f}s vs threads(1) {w1:.2f}s "
        f"(> {SLACK}x slack): dispatch overhead regression")
