"""Figure 4 — SLATE-GPU scalability on Summit (E7).

Paper: Tflop/s vs size, one curve per node count {1, 4, 8, 16, 32};
"while the strong scalability for a fixed problem size is limited, it
achieves good weak scalability at the largest problem size for each
number of nodes."
"""

from __future__ import annotations

from repro.bench import format_series, format_table, write_result
from repro.machines import summit
from repro.perf import scaling_series

NODES = (1, 4, 8, 16, 32)
# Per-node-count maxima follow the memory-footprint model.
SIZES = {
    1: (10_000, 20_000, 40_000),
    4: (40_000, 60_000, 80_000),
    8: (40_000, 80_000, 125_000),
    16: (80_000, 120_000, 175_000),
    32: (80_000, 160_000, 250_000),
}


def test_fig4_scaling(once):
    out = once(lambda: scaling_series(summit(), NODES,
                                      sizes_per_nodes=SIZES,
                                      max_tiles=12))

    all_sizes = sorted({n for ns in SIZES.values() for n in ns})
    series = {}
    for nodes in NODES:
        col = []
        by_n = {p.n: p.tflops for p in out[nodes]}
        for n in all_sizes:
            col.append(by_n.get(n, ""))
        series[f"{nodes} nodes"] = col
    text = format_series(
        "Fig 4: SLATE-GPU scalability on Summit (Tflop/s, simulated)",
        "n", all_sizes, series)
    write_result("fig4_summit_scaling", text)

    # Weak scaling: best Tflop/s per node count grows with nodes.
    best = [max(p.tflops for p in out[nodes]) for nodes in NODES]
    assert all(b2 > b1 for b1, b2 in zip(best, best[1:]))
    # ... and with reasonable parallel efficiency from 1 -> 32 nodes.
    assert best[-1] / best[0] > 8

    # Strong scaling is limited: at the shared size n=40k, the speedup
    # from 1 to 32 nodes falls well short of 32x.
    t1 = next(p.tflops for p in out[1] if p.n == 40_000)
    t32 = next(p.tflops for p in out[8] if p.n == 40_000)
    strong = [["n=40k", t1, t32, t32 / t1, 8.0]]
    write_result("fig4_strong_scaling", format_table(
        "Fig 4 detail: strong scaling at fixed n=40k, 1 -> 8 nodes",
        ["size", "1 node TF", "8 nodes TF", "speedup", "ideal"],
        strong))
    assert t32 / t1 < 7.2  # short of ideal 8x
    assert t32 / t1 > 1.5  # but still scaling
