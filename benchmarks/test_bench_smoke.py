"""Smoke test of the perf-trajectory harness (``repro bench``).

Runs the smoke suite with a single timed repeat, writes the versioned
``BENCH_*.json`` pair into the pytest tmpdir, self-compares the fresh
run against itself (must pass the regression gate), and archives the
headline cells under ``results/``.  This is the same path the CI
``bench-smoke`` job drives, so a harness regression shows up here
before it breaks the gate in CI.
"""

from __future__ import annotations

from repro.bench import format_table, write_result
from repro.obs.bench import (
    compare_bench,
    load_bench,
    run_suite,
    smoke_suite,
    write_bench,
)


def test_bench_smoke_suite_round_trip(once, tmp_path):
    suite = smoke_suite(repeats=1)

    def body():
        return run_suite(suite)

    run = once(body)
    qdwh_path, scaling_path = write_bench(run, out_dir=str(tmp_path))
    qdwh = load_bench(qdwh_path)
    scaling = load_bench(scaling_path)

    rep = compare_bench(qdwh, qdwh)
    assert rep.ok, rep.format()

    rows = [(rec["backend"], rec["workers"],
             "fault-plan" if rec["fault_cell"] else "clean",
             f"{rec['makespan_s'] * 1e3:8.2f}",
             rec["iterations"])
            for rec in qdwh["cells"].values()]
    text = format_table(
        f"bench smoke suite (n=96, nb=32, float64, kappa=1e4); "
        f"{len(scaling['series'])} scaling series",
        ["backend", "workers", "cell", "makespan_ms", "iters"],
        sorted(rows))
    write_result("bench_smoke", text)
    assert all(rec["converged"] for rec in qdwh["cells"].values())
