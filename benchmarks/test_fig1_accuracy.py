"""Figures 1a and 1b — numerical accuracy of QDWH (E1, E2).

Paper: orthogonality error ||I - Up^H Up||_F / sqrt(n) and backward
error ||A - Up H||_F / ||A||_F stay around machine precision (~1e-15)
for both the SLATE and ScaLAPACK implementations across matrix sizes,
on ill-conditioned (kappa = 1e16) matrices.

Here: the tiled task-based implementation plays SLATE; the dense
reference implementation plays ScaLAPACK (same arithmetic through
PBLAS).  These are *measured* numerics, not simulated.
"""

from __future__ import annotations

import numpy as np

from repro import DistMatrix, ProcessGrid, Runtime, qdwh, tiled_qdwh
from repro.bench import format_series, write_result
from repro.matrices import ill_conditioned, polar_report

SIZES = (256, 512, 768, 1024)
NB = 64
GRID = (2, 2)


def _run_both(n: int):
    a = ill_conditioned(n, seed=n)
    rt = Runtime(ProcessGrid(*GRID))
    da = DistMatrix.from_array(rt, a.copy(), NB)
    tiled = tiled_qdwh(rt, da)
    rep_t = polar_report(a, tiled.u.to_array(), tiled.h.to_array())
    dense = qdwh(a)
    rep_d = polar_report(a, dense.u, dense.h)
    return rep_t, rep_d


def test_fig1a_orthogonality(once):
    def body():
        rows = {"slate(tiled)": [], "scalapack(dense)": []}
        for n in SIZES:
            rep_t, rep_d = _run_both(n)
            rows["slate(tiled)"].append(rep_t.orthogonality)
            rows["scalapack(dense)"].append(rep_d.orthogonality)
        return rows

    rows = once(body)
    text = format_series(
        "Fig 1a: orthogonality error ||I - Up^H Up||_F / sqrt(n) "
        "(kappa = 1e16)",
        "n", SIZES, rows)
    write_result("fig1a_orthogonality", text)
    # Paper's claim: around machine precision for every size.
    for series in rows.values():
        assert all(v < 1e-13 for v in series)


def test_fig1b_backward_error(once):
    def body():
        rows = {"slate(tiled)": [], "scalapack(dense)": []}
        for n in SIZES:
            rep_t, rep_d = _run_both(n)
            rows["slate(tiled)"].append(rep_t.backward)
            rows["scalapack(dense)"].append(rep_d.backward)
        return rows

    rows = once(body)
    text = format_series(
        "Fig 1b: backward error ||A - Up H||_F / ||A||_F (kappa = 1e16)",
        "n", SIZES, rows)
    write_result("fig1b_backward_error", text)
    for series in rows.values():
        assert all(v < 1e-12 for v in series)


def test_fig1_all_dtypes_supplement(once):
    """Supplementary: the four standard data types (contribution #2)."""
    def body():
        out = {}
        for dtype in (np.float32, np.float64, np.complex64, np.complex128):
            a = ill_conditioned(256, dtype=dtype, seed=7)
            r = qdwh(a)
            rep = polar_report(a, r.u, r.h)
            out[np.dtype(dtype).name] = (rep.orthogonality, rep.backward)
        return out

    out = once(body)
    text = format_series(
        "Fig 1 supplement: accuracy per data type (n=256, worst-case "
        "conditioning per type)",
        "metric", ["orthogonality", "backward"],
        {k: [v[0], v[1]] for k, v in out.items()})
    write_result("fig1_dtypes", text)
    for name, (orth, back) in out.items():
        tol = 1e-5 if "32" in name or name == "complex64" else 1e-13
        assert orth < tol and back < tol
