"""CI smoke check for the resilience subsystem.

Kills one rank halfway through the 1-node Summit SLATE-GPU run and
asserts the simulator recovers by lineage replay: all tasks complete,
the makespan pays a recovery penalty, nothing executes on the dead
rank after the crash, and the whole faulty schedule — makespan,
recovery stats, comm counters — is bit-identical across two
invocations of the same seeded plan.
"""

from __future__ import annotations

from repro.bench import write_result
from repro.machines import summit
from repro.obs import TimelineSink
from repro.perf import simulate_qdwh
from repro.resilience import FaultPlan, RankCrash


def test_rank_crash_recovery_summit_1node(once):
    def body():
        base = simulate_qdwh(summit(), 1, 20_000, "slate_gpu",
                             max_tiles=8)
        plan = FaultPlan(seed=7, crashes=(
            RankCrash(rank=1, time=0.5 * base.makespan),))
        sink = TimelineSink()
        faulty = simulate_qdwh(summit(), 1, 20_000, "slate_gpu",
                               max_tiles=8, sink=sink, faults=plan)
        repeat = simulate_qdwh(summit(), 1, 20_000, "slate_gpu",
                               max_tiles=8, faults=plan)
        return base, plan, sink, faulty, repeat

    base, plan, sink, faulty, repeat = once(body)
    sched, rsched = faulty.schedule, repeat.schedule
    rec = sched.recovery

    # The run completes via replay and pays for it.
    assert sched.task_count == base.schedule.task_count
    assert faulty.makespan > base.makespan
    assert rec.crashes == 1 and rec.dead_ranks == (1,)
    assert rec.replayed_tasks > 0
    assert rec.reexecution_seconds > 0.0

    # The dead rank stays dead.
    crash_t = plan.crashes[0].time
    post_crash = [ev for ev in sink.tasks
                  if ev.rank == 1 and ev.start >= crash_t]
    assert not post_crash

    # Determinism: two invocations of the same seeded plan agree bit
    # for bit, counters included.
    assert repeat.makespan == faulty.makespan
    assert rsched.recovery.as_dict() == rec.as_dict()
    assert rsched.comm.as_dict() == sched.comm.as_dict()
    assert rsched.per_rank_busy == sched.per_rank_busy

    slowdown = faulty.makespan / base.makespan
    write_result("fault_smoke", (
        f"fault smoke: summit x1, n=20000, slate_gpu, "
        f"rank 1 crash @ {crash_t:.3f} s -> "
        f"makespan {base.makespan:.3f} -> {faulty.makespan:.3f} s "
        f"({slowdown:.3f}x), {rec.replayed_tasks} tasks replayed, "
        f"{rec.revoked_inflight} in-flight revoked, "
        f"{rec.lost_tiles} tiles lost, deterministic repeat OK\n"))
