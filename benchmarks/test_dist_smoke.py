"""Smoke test of the multi-process distributed backend.

Runs the paper's headline numeric workload (kappa = 1e16, float64) at
a CI-friendly size through ``backend="processes"`` with 4 workers and
gates on the invariants the distributed runtime owes regardless of
host speed: convergence, paper-level accuracy, bit-identity with the
eager backend, zero in-flight attempts after the final sync, and zero
shared-memory segments left in ``/dev/shm``.  No timing assertion —
on a 1-core runner fork + IPC overhead legitimately dominates, and
the perf trajectory is tracked by ``repro bench`` instead.
"""

from __future__ import annotations

import numpy as np

from repro.core.tiled_qdwh import tiled_qdwh
from repro.dist import DistMatrix, ProcessGrid
from repro.matrices import generate_matrix, polar_report
from repro.runtime import Runtime
from repro.runtime.distributed import scan_segments

N = 512
NB = 64
WORKERS = 4


def _qdwh(backend, workers=None):
    rt = Runtime(ProcessGrid(1, 1), deferred=backend != "eager",
                 workers=workers)
    a = generate_matrix(N, cond=1e16, dtype=np.float64, seed=0)
    da = DistMatrix.from_array(rt, a, NB)
    res = tiled_qdwh(rt, da, backend=backend, workers=workers)
    u, h = res.u.to_array(), res.h.to_array()
    ex = rt._executor
    leaked = ex.inflight_attempts if backend == "processes" else 0
    prefix = ex.store.prefix if backend == "processes" else None
    rt.close()
    shm = scan_segments(prefix) if prefix is not None else []
    return a, u, h, res, leaked, shm


def test_processes4_converges_without_leaks(once):
    def body():
        return _qdwh("processes", WORKERS)

    a, u, h, res, leaked, shm = once(body)
    assert res.converged and not res.degraded
    rep = polar_report(a, u, h)
    assert rep.orthogonality < 1e-13
    assert rep.backward < 1e-13
    assert leaked == 0, f"{leaked} in-flight attempts leaked"
    assert shm == [], f"leaked shm segments: {shm}"


def test_processes4_bit_identical_to_eager(once):
    def body():
        _, u0, h0, _, _, _ = _qdwh("eager")
        a, u, h, res, leaked, shm = _qdwh("processes", WORKERS)
        return u0, h0, u, h, res, leaked, shm

    u0, h0, u, h, res, leaked, shm = once(body)
    assert res.converged
    assert np.array_equal(u, u0), "processes(4) U differs from eager"
    assert np.array_equal(h, h0), "processes(4) H differs from eager"
    assert leaked == 0 and shm == []
