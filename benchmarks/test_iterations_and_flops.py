"""E12, E13, E14 — iteration counts, the flop model, norm2est quality.

Paper Section 4: ill-conditioned matrices need 3 QR + 3 Cholesky
iterations (6 = theoretical max in double precision); well-conditioned
need ~2 Cholesky and no QR.  Total flops follow
4/3 n^3 + (8+2/3) n^3 #it_QR + (4+1/3) n^3 #it_Chol + 2 n^3.
Section 6.2: norm2est (tol 0.1) is accurate far beyond the factor-5
requirement.
"""

from __future__ import annotations

import numpy as np

import repro.flops as F
from repro import norm2est, qdwh
from repro.bench import format_table, write_result
from repro.core.params import predict_iterations
from repro.matrices import generate_matrix


def test_iteration_counts_vs_condition(once):
    conds = (1.0, 10.0, 1e2, 1e4, 1e8, 1e12, 1e16)

    def body():
        rows = []
        for cond in conds:
            a = generate_matrix(192, cond=cond, seed=int(np.log10(cond)))
            r = qdwh(a)
            pred = predict_iterations(cond, n=192)
            rows.append([f"{cond:.0e}", r.it_qr, r.it_chol,
                         r.iterations, f"{pred[0]}+{pred[1]}"])
        return rows

    rows = once(body)
    text = format_table(
        "E12: QDWH iteration counts vs condition number (n=192, "
        "measured vs scalar-recurrence prediction)",
        ["kappa", "#it_QR", "#it_Chol", "total", "predicted"], rows)
    write_result("iteration_counts", text)

    by_cond = {r[0]: r for r in rows}
    assert by_cond["1e+16"][1] == 3 and by_cond["1e+16"][2] == 3
    assert all(int(r[3]) <= 7 for r in rows)       # theory: <= 6 (+1 est fuzz)
    assert by_cond["1e+01"][1] <= 1                # well-cond: ~no QR


def test_flop_model(once):
    """Executed task flops vs the paper's Section 4 formula."""
    from repro.dist import DistMatrix, ProcessGrid
    from repro.runtime import Runtime
    from repro.core.tiled_qdwh import tiled_qdwh

    sizes = (256, 512, 1024)

    def body():
        rows = []
        for n in sizes:
            rt = Runtime(ProcessGrid(2, 2), numeric=False)
            da = DistMatrix(rt, n, n, 64)
            res = tiled_qdwh(rt, da, cond_est=1e16)
            model = F.qdwh_total(n, res.it_qr, res.it_chol)
            executed = rt.graph.total_flops()
            rows.append([n, f"{model:.3e}", f"{executed:.3e}",
                         executed / model])
        return rows

    rows = once(body)
    text = format_table(
        "E13: paper flop formula vs executed task flops (kappa=1e16; "
        "the ~1.5x gap = unstructured stacked QR + explicit Q)",
        ["n", "model flops", "executed flops", "ratio"], rows)
    write_result("flop_model", text)
    for r in rows:
        assert 1.0 < r[3] < 2.0
    # The ratio stabilizes as n grows (both are Theta(n^3)).
    assert abs(rows[-1][3] - rows[-2][3]) < 0.2


def test_norm2est_accuracy(once):
    """E14: power-iteration 2-norm estimate vs truth across spectra."""
    from repro.matrices import SingularValueMode

    def body():
        rows = []
        for mode in SingularValueMode:
            errs = []
            for seed in range(5):
                a = generate_matrix(256, cond=1e8, mode=mode, seed=seed)
                est = norm2est(a)
                true = float(np.linalg.norm(a, 2))
                errs.append(abs(est - true) / true)
            rows.append([mode.value, max(errs)])
        return rows

    rows = once(body)
    text = format_table(
        "E14: norm2est relative error by spectrum shape (tol=0.1; "
        "paper: factor-5 accuracy is sufficient)",
        ["spectrum", "max rel err"], rows)
    write_result("norm2est_accuracy", text)
    assert all(r[1] < 0.8 for r in rows)  # far inside factor 5
