"""Figures 5 and 6 — Frontier performance and scalability (E8, E9).

Paper: on 16 Frontier nodes (128 MI250X GCDs) SLATE-QDWH reaches ~180
Tflop/s at the largest testable size n = 175k; performance increases
with both node count and matrix size; GPU-aware MPI helps because the
NICs attach to the GPUs.
"""

from __future__ import annotations

from repro.bench import format_series, write_result
from repro.machines import frontier
from repro.perf import figure_series, scaling_series

FIG5_SIZES = (40_000, 80_000, 120_000, 150_000, 175_000)
FIG6_NODES = (1, 2, 4, 8, 16)
FIG6_SIZES = {
    1: (20_000, 40_000, 80_000),
    2: (40_000, 80_000, 100_000),
    4: (40_000, 80_000, 120_000),
    8: (80_000, 120_000, 150_000),
    16: (80_000, 120_000, 175_000),
}


def test_fig5_frontier_16nodes(once):
    series = once(lambda: {
        impl: [p.tflops for p in pts]
        for impl, pts in figure_series(
            frontier(), 16, ("slate_gpu", "slate_cpu"), FIG5_SIZES,
            max_tiles=12).items()})
    text = format_series(
        "Fig 5: Frontier, 16 nodes (128 GCDs) — Tflop/s vs size "
        "(simulated; paper: ~180 TF at n=175k)",
        "n", FIG5_SIZES, series)
    write_result("fig5_frontier_16nodes", text)

    gpu = series["slate_gpu"]
    assert all(a < b for a, b in zip(gpu, gpu[1:]))  # grows with n
    # Paper's headline level: ~180 Tflop/s at n = 175k (wide band — the
    # machine model is calibrated, not fitted point-wise).
    assert 120 < gpu[-1] < 260


def test_fig6_frontier_scaling(once):
    out = once(lambda: scaling_series(frontier(), FIG6_NODES,
                                      sizes_per_nodes=FIG6_SIZES,
                                      max_tiles=12))
    all_sizes = sorted({n for ns in FIG6_SIZES.values() for n in ns})
    series = {}
    for nodes in FIG6_NODES:
        by_n = {p.n: p.tflops for p in out[nodes]}
        series[f"{nodes} nodes"] = [by_n.get(n, "") for n in all_sizes]
    text = format_series(
        "Fig 6: SLATE-GPU scalability on Frontier (Tflop/s, simulated)",
        "n", all_sizes, series)
    write_result("fig6_frontier_scaling", text)

    best = [max(p.tflops for p in out[nodes]) for nodes in FIG6_NODES]
    assert all(b2 > b1 for b1, b2 in zip(best, best[1:]))
    assert best[-1] > 100
