"""Floating-point operation counts for the kernels QDWH is built from.

These formulas serve two purposes:

1. every simulated task carries its flop count, so the performance model
   can compute Tflop/s figures the same way the paper does (useful flops
   divided by wall time), and
2. the end-to-end counts validate the paper's Section 4 complexity model

       4/3 n^3  +  (8 + 2/3) n^3 * #it_QR  +  (4 + 1/3) n^3 * #it_Chol
                +  2 n^3

   (square case) for the whole polar decomposition.

Counts follow the standard LAPACK working notes conventions (real
flops; a complex flop is accounted as one "operation" here and weighted
by :data:`COMPLEX_FLOP_FACTOR` by callers that need real-arithmetic
totals).
"""

from __future__ import annotations

#: A complex multiply-add costs ~4x a real one (2 real mul + 2 add per
#: component pair); the conventional weighting used by LAPACK timers.
COMPLEX_FLOP_FACTOR = 4.0


# ---------------------------------------------------------------------------
# Level-3 BLAS
# ---------------------------------------------------------------------------

def gemm(m: int, n: int, k: int) -> float:
    """C(m,n) += A(m,k) @ B(k,n): 2mnk flops."""
    return 2.0 * m * n * k


def herk(n: int, k: int) -> float:
    """C(n,n) += A(n,k) @ A(n,k)^H, one triangle: ~n^2 k flops."""
    return float(n) * n * k


def trsm(m: int, n: int) -> float:
    """Solve T(m,m) X = B(m,n) with triangular T: m^2 n flops."""
    return float(m) * m * n


def trmm(m: int, n: int) -> float:
    """B = T(m,m) @ B(m,n): m^2 n flops."""
    return float(m) * m * n


# ---------------------------------------------------------------------------
# Factorizations
# ---------------------------------------------------------------------------

def geqrf(m: int, n: int) -> float:
    """Householder QR of an m x n matrix (m >= n): 2n^2(m - n/3)."""
    return 2.0 * n * n * (m - n / 3.0)


def unmqr(side_m: int, side_n: int, k: int) -> float:
    """Apply Q (k reflectors) to an m x n matrix: 4 m n k - 2 n k^2 (left)."""
    return 4.0 * side_m * side_n * k - 2.0 * side_n * k * k


def orgqr(m: int, n: int, k: int) -> float:
    """Form explicit Q (m x n from k reflectors): 4mnk - 2(m+n)k^2 + 4k^3/3."""
    return 4.0 * m * n * k - 2.0 * (m + n) * k * k + 4.0 * k ** 3 / 3.0


def potrf(n: int) -> float:
    """Cholesky of an n x n SPD matrix: n^3/3."""
    return n ** 3 / 3.0


def getrf(m: int, n: int) -> float:
    """LU of an m x n matrix: mn^2 - n^3/3 (m >= n)."""
    return float(m) * n * n - n ** 3 / 3.0


# ---------------------------------------------------------------------------
# Tile kernels (the granularity at which the runtime schedules work)
# ---------------------------------------------------------------------------

def tile_geqrt(mb: int, nb: int) -> float:
    """QR of one mb x nb tile plus T factor: geqrf + T build (~nb^2 mb)."""
    return geqrf(mb, nb) + float(nb) * nb * mb


def tile_tpqrt(mb: int, nb: int) -> float:
    """Couple an nb x nb triangle with an mb x nb tile (TS/TT kernel)."""
    return 2.0 * nb * nb * mb + float(nb) * nb * mb


def tile_unmqr(mb: int, nb: int, kb: int) -> float:
    """Apply one tile's reflectors to one tile."""
    return 4.0 * mb * nb * kb


def tile_tpmqrt(mb: int, nb: int, kb: int) -> float:
    """Apply a TP (triangle-on-top-of-rectangle) reflector pair."""
    return 6.0 * mb * nb * kb


def tile_ttqrt(nb: int) -> float:
    """Combine two nb x nb triangles (TSQR tree node): ~2 nb^3."""
    return 2.0 * nb ** 3


def tile_ttmqrt(nb: int, nc: int) -> float:
    """Apply a triangle-combine reflector pair to an nb+nb row pair."""
    return 4.0 * nb * nb * nc


# ---------------------------------------------------------------------------
# QDWH composite model (paper Section 4)
# ---------------------------------------------------------------------------

def qdwh_qr_iteration(m: int, n: int) -> float:
    """One QR-based QDWH iteration on an m x n matrix.

    QR of the stacked (m+n) x n matrix, explicit Q1 (m x n) and Q2
    (n x n), then the rank-n update gemm.  For m == n this totals
    (8 + 2/3) n^3, matching the paper.
    """
    stacked = geqrf(m + n, n)
    form_q = orgqr(m + n, n, n)
    update = gemm(m, n, n)
    return stacked + form_q + update


def qdwh_chol_iteration(m: int, n: int) -> float:
    """One Cholesky-based QDWH iteration on an m x n matrix.

    herk (A^T A), Cholesky, two triangular solves, and the axpy-like
    add.  For m == n this totals (4 + 1/3) n^3, matching the paper.
    """
    # The paper's (4 + 1/3) n^3 count charges the Z_k = I + c A^T A
    # formation as a full gemm (2 n^2 m) even though the implementation
    # uses herk (n^2 m); we follow the paper here so qdwh_total matches
    # its Section 4 formula.  Executed task flops use the herk count.
    zk = gemm(n, n, m)
    chol = potrf(n)
    solves = 2.0 * trsm(n, m)
    return zk + chol + solves


def qdwh_condest(m: int, n: int) -> float:
    """Condition estimation stage: QR of A (the 4/3 n^3 term, square)."""
    return geqrf(m, n)


def qdwh_form_h(m: int, n: int) -> float:
    """H = U_p^H A: one n x n x m gemm (2 n^3 square)."""
    return gemm(n, n, m)


def qdwh_total(n: int, it_qr: int, it_chol: int, m: int | None = None) -> float:
    """Total QDWH flops for an m x n problem with the given iteration split.

    With m == n this reproduces the paper's formula
    ``4/3 n^3 + (8+2/3) n^3 #it_QR + (4+1/3) n^3 #it_Chol + 2 n^3``.
    """
    if m is None:
        m = n
    return (
        qdwh_condest(m, n)
        + it_qr * qdwh_qr_iteration(m, n)
        + it_chol * qdwh_chol_iteration(m, n)
        + qdwh_form_h(m, n)
    )


def qdwh_paper_formula(n: int, it_qr: int, it_chol: int) -> float:
    """The literal Section 4 formula (square matrices)."""
    n3 = float(n) ** 3
    return (4.0 / 3.0) * n3 + (8.0 + 2.0 / 3.0) * n3 * it_qr \
        + (4.0 + 1.0 / 3.0) * n3 * it_chol + 2.0 * n3
