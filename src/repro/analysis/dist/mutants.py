"""Seeded scheduler/store bugs that validate the explorer.

A model checker that reports "no findings" is only evidence if it
*would* have found something.  Each class here is the real
:class:`~repro.runtime.distributed.scheduling.DynamicScheduler` (or
the modeled refcount store) with one realistic concurrency bug seeded
— the kind of defect a refactor of the scheduler could plausibly
introduce.  :func:`mutant_gate` runs the explorer against every mutant
and against the unmutated scheduler; the gate passes only if **all**
mutants are killed (at least one invariant violation found) and the
clean run reports **zero** findings.  CI runs this gate, so the
explorer's teeth are themselves regression-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ...runtime.distributed.scheduling import DynamicScheduler
from .explore import (ExploreFinding, ModelShmStore, Scenario,
                      builtin_scenarios, explore)

__all__ = ["MUTANTS", "MutantResult", "GateReport", "mutant_gate"]


# ---------------------------------------------------------------------------
# Scheduler mutants


class LostWakeupScheduler(DynamicScheduler):
    """BUG: completion drops the wakeup of odd-numbered successors —
    the classic lost-notify; dependents never become ready."""

    def on_done(self, tid: int, wid: Optional[int] = None) -> List[int]:
        self.done.add(tid)
        if wid is not None:
            ws = self.workers.get(wid)
            if ws is not None:
                ws.inflight.discard(tid)
                ws.tasks_done += 1
                ws.resident.update(self._reads.get(tid, ()))
        newly = []
        for s in self.succ.get(tid, ()):
            self.indeg[s] -= 1
            if self.indeg[s] == 0 and s % 2 == 0:
                self._make_ready(s)
                newly.append(s)
        return newly


class StealNoPopScheduler(DynamicScheduler):
    """BUG: stealing reads the victim's queue without popping — the
    stolen task is dispatched twice."""

    def next_for(self, wid: int) -> Optional[int]:
        ws = self.workers.get(wid)
        if ws is None or not ws.alive:
            return None
        if len(ws.inflight) >= self.pipeline:
            return None
        self.assign_ready()
        if ws.queue:
            tid = ws.queue.popleft()
        else:
            victim = max(
                (w for w in self.alive_workers()
                 if w.wid != wid and w.queue),
                key=lambda w: len(w.queue), default=None)
            if victim is None:
                return None
            tid = victim.queue[-1]          # peek, never pop
            ws.steals += 1
        ws.inflight.add(tid)
        return tid


class ZombieQueueScheduler(DynamicScheduler):
    """BUG: removing a crashed worker reports its tasks but forgets to
    clear its queue — revoked work is both requeued and still
    stealable from the corpse."""

    def remove_worker(self, wid: int) -> Tuple[List[int], List[int]]:
        ws = self.workers.get(wid)
        if ws is None or not ws.alive:
            return [], []
        ws.alive = False
        queued = list(ws.queue)
        inflight = sorted(ws.inflight)
        ws.inflight.clear()                 # queue left populated
        return queued, inflight


class DropInflightScheduler(DynamicScheduler):
    """BUG: crash recovery replays only the dead worker's *queued*
    tasks; in-flight attempts vanish without a completion."""

    def remove_worker(self, wid: int) -> Tuple[List[int], List[int]]:
        queued, _inflight = super().remove_worker(wid)
        return queued, []


class DriverLaneMixupScheduler(DynamicScheduler):
    """BUG: readiness routing ignores worker eligibility — driver-only
    tasks (scalar reductions touching driver state) land on workers."""

    def _make_ready(self, tid: int) -> None:
        import heapq
        heapq.heappush(self._pool, tid)


class PendingSkewScheduler(DynamicScheduler):
    """BUG: off-by-one in the drain condition; the executor would stop
    syncing one completion early."""

    @property
    def pending(self) -> int:
        return max(0, (self.end - self.start) - len(self.done) - 1)


class RequeueDuplicateScheduler(DynamicScheduler):
    """BUG: crash replay enqueues every revoked task twice."""

    def requeue(self, tids: Iterable[int]) -> None:
        tids = list(tids)
        super().requeue(tids)
        super().requeue(tids)


# ---------------------------------------------------------------------------
# Store mutants


class LeakyReleaseStore(ModelShmStore):
    """BUG: releasing an attempt's pins skips the last tile — the
    segment refcount never returns to baseline (a leak)."""

    def on_release(self, refs: Sequence) -> None:
        super().on_release(refs[:-1])


class DoubleFreeStore(ModelShmStore):
    """BUG: release runs twice per reply — refcount dips below the
    owner's baseline (use-after-unlink in the real store)."""

    def on_release(self, refs: Sequence) -> None:
        super().on_release(refs)
        super().on_release(refs)


# ---------------------------------------------------------------------------
# The gate


@dataclass(frozen=True)
class Mutant:
    name: str
    scheduler: Callable[..., DynamicScheduler]
    store: Callable[[], ModelShmStore]
    #: Invariants whose violation plausibly kills this mutant (for the
    #: report; any violation counts as a kill).
    expect: Tuple[str, ...]


MUTANTS: Tuple[Mutant, ...] = (
    Mutant("lost-wakeup", LostWakeupScheduler, ModelShmStore,
           ("task-lost",)),
    Mutant("steal-no-pop", StealNoPopScheduler, ModelShmStore,
           ("task-duplicated", "double-dispatch")),
    Mutant("zombie-queue", ZombieQueueScheduler, ModelShmStore,
           ("dead-worker-holds-tasks", "task-duplicated")),
    Mutant("drop-inflight", DropInflightScheduler, ModelShmStore,
           ("task-lost", "tasks-lost-at-end", "refcount-imbalance")),
    Mutant("driver-lane-mixup", DriverLaneMixupScheduler, ModelShmStore,
           ("driver-task-on-worker", "driver-starvation")),
    Mutant("pending-skew", PendingSkewScheduler, ModelShmStore,
           ("pending-skew",)),
    Mutant("requeue-duplicate", RequeueDuplicateScheduler, ModelShmStore,
           ("task-duplicated",)),
    Mutant("leaky-release", DynamicScheduler, LeakyReleaseStore,
           ("refcount-imbalance",)),
    Mutant("double-free", DynamicScheduler, DoubleFreeStore,
           ("refcount-negative",)),
)


@dataclass
class MutantResult:
    name: str
    killed: bool
    schedules: int
    killing_invariant: str = ""
    scenario: str = ""


@dataclass
class GateReport:
    results: List[MutantResult] = field(default_factory=list)
    clean_findings: List[ExploreFinding] = field(default_factory=list)
    clean_schedules: int = 0

    @property
    def survivors(self) -> List[str]:
        return [r.name for r in self.results if not r.killed]

    @property
    def ok(self) -> bool:
        return not self.survivors and not self.clean_findings


def mutant_gate(scenarios: Optional[Sequence[Scenario]] = None,
                preemption_bound: int = 2,
                max_schedules: int = 200) -> GateReport:
    """Run the explorer over every mutant and the clean scheduler.

    Mutant runs stop at the first kill; the clean run explores the
    full budget on every scenario and must stay silent.
    """
    if scenarios is None:
        scenarios = builtin_scenarios()
    gate = GateReport()
    for sc in scenarios:
        rep = explore(sc, preemption_bound=preemption_bound,
                      max_schedules=max_schedules)
        gate.clean_schedules += rep.schedules
        gate.clean_findings.extend(rep.findings)
    for m in MUTANTS:
        result = MutantResult(name=m.name, killed=False, schedules=0)
        for sc in scenarios:
            rep = explore(sc, scheduler=m.scheduler, store=m.store,
                          preemption_bound=preemption_bound,
                          max_schedules=max_schedules,
                          stop_on_finding=True)
            result.schedules += rep.schedules
            if rep.findings:
                result.killed = True
                result.killing_invariant = rep.findings[0].invariant
                result.scenario = sc.name
                break
        gate.results.append(result)
    return gate
