"""Cross-process happens-before checking over *executed* runs.

PR 4's ``check_races`` proves the declared task graph race-free; this
module proves the **execution** was.  The distinction matters for the
processes backend: tiles live in shared memory mapped by several
processes at once, so ordering comes only from the runtime's own
machinery — a dispatch message, a completion reply, the driver's
single-threaded event loop.  If the scheduler ever let two attempts
touching one tile overlap, the graph checker would stay green while
the bytes raced.

The happens-before relation is rebuilt from a recorded
:class:`~repro.runtime.distributed.events.DistTraceRecorder`:

* **Driver program order** — every recorded event happened on (or was
  observed by) the single driver loop; its sequence numbers give a
  total order on driver-side nodes.
* **Worker program order** — a worker executes tasks in the order the
  driver dispatched to it (sequential recv loop), so per-worker
  execution nodes chain in dispatch order.
* **Message edges** — dispatch → execution (the task message's
  send→recv) and execution → accepted reply (recv of done/fail).

Execution nodes exist only for attempts whose reply the executor
*accepted*; an attempt revoked by a crash has no reply, so its
(discarded, snapshot-restored) accesses are conservatively skipped.
Shared-tile accesses hang off execution nodes (worker attempts) and
driver-lane/pin nodes (the driver); any write unordered with another
access to the same segment-backed tile is a finding.  Reachability is
the same transitive-ancestor bitset trick as
:func:`repro.analysis.races.ancestor_bitsets` — one shift+mask per
query.

:func:`audit_refcounts` separately replays the recorded shm lifecycle
(pin/incref/decref/unlink) and cross-checks it against the OS-level
``/dev/shm`` scan taken at close — bookkeeping and kernel must agree
that nothing leaked and nothing was freed twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...runtime.distributed.events import (EV_COMPLETE, EV_DECREF,
                                           EV_DISPATCH, EV_DRIVER, EV_FAIL,
                                           EV_INCREF, EV_PIN, EV_UNLINK,
                                           DistEvent, DistTraceRecorder)
from ...runtime.task import Task, TileRef

__all__ = ["HBFinding", "check_hb", "audit_refcounts"]


@dataclass(frozen=True)
class HBFinding:
    """One ordering or refcount defect in a recorded run."""

    kind: str       # race-* | refcount-* | leak
    ref: Tuple[int, ...] = ()
    segment: str = ""
    first: int = -1     # tid of the earlier access (races)
    second: int = -1
    detail: str = ""

    def message(self) -> str:
        if self.kind.startswith("race"):
            return (f"{self.kind} on shared tile {self.ref} "
                    f"[{self.segment}]: task {self.first} and task "
                    f"{self.second} unordered by happens-before"
                    + (f" ({self.detail})" if self.detail else ""))
        return f"{self.kind}: {self.detail}"


@dataclass
class _Node:
    """One vertex of the happens-before graph."""

    idx: int
    actor: str                      # "driver" | "w{wid}"
    tid: int = -1
    reads: Tuple[TileRef, ...] = ()
    writes: Tuple[TileRef, ...] = ()
    preds: List[int] = field(default_factory=list)


def _build_graph(rec: DistTraceRecorder,
                 tasks: Sequence[Task]) -> Tuple[List[_Node],
                                                 Dict[TileRef, str]]:
    """Nodes in topological order + the shared-tile universe."""
    by_tid: Dict[int, Task] = {t.tid: t for t in tasks}
    shared: Dict[TileRef, str] = {seg_ref: name for name, seg_ref
                                  in rec.segment_refs.items()}

    def accesses(tid: int) -> Tuple[Tuple[TileRef, ...],
                                    Tuple[TileRef, ...]]:
        t = by_tid.get(tid)
        if t is None:
            return (), ()
        reads = tuple(r for r in t.reads if r in shared)
        writes = tuple(w for w in t.writes if w in shared)
        return reads, writes

    nodes: List[_Node] = []
    prev_driver = -1          # last driver-loop node
    last_exec: Dict[int, int] = {}       # wid -> last execution node
    dispatch_node: Dict[Tuple[int, int, int], int] = {}

    def add(actor: str, *, tid: int = -1,
            reads: Tuple[TileRef, ...] = (),
            writes: Tuple[TileRef, ...] = (),
            preds: Sequence[int] = ()) -> int:
        nonlocal prev_driver
        idx = len(nodes)
        node = _Node(idx=idx, actor=actor, tid=tid, reads=reads,
                     writes=writes, preds=list(preds))
        if actor == "driver":
            if prev_driver >= 0:
                node.preds.append(prev_driver)
            prev_driver = idx
        nodes.append(node)
        return idx

    for ev in sorted(rec.events, key=lambda e: e.seq):
        if ev.kind == EV_DISPATCH:
            n = add("driver", tid=ev.tid)
            dispatch_node[(ev.tid, ev.wid, ev.attempt)] = n
        elif ev.kind in (EV_COMPLETE, EV_FAIL) and ev.wid >= 0:
            dn = dispatch_node.get((ev.tid, ev.wid, ev.attempt))
            if dn is None:
                continue        # reply without a recorded dispatch
            # The worker-side execution: after the dispatch message,
            # after the worker's previous execution (sequential loop).
            reads, writes = accesses(ev.tid)
            if ev.kind == EV_FAIL:
                # A failed attempt read its inputs but its outputs
                # were discarded/restored by the driver.
                writes = ()
            preds = [dn]
            prior = last_exec.get(ev.wid)
            if prior is not None:
                preds.append(prior)
            en = add(f"w{ev.wid}", tid=ev.tid, reads=reads,
                     writes=writes, preds=preds)
            last_exec[ev.wid] = en
            # The accepted reply, back on the driver loop.
            add("driver", tid=ev.tid, preds=[en])
        elif ev.kind == EV_DRIVER:
            reads, writes = accesses(ev.tid)
            add("driver", tid=ev.tid, reads=reads, writes=writes)
        elif ev.kind == EV_PIN:
            # Segment creation (zero-fill / data migration) is a
            # driver-side write to the tile.
            add("driver", tid=-1, writes=(tuple(ev.ref),))
    return nodes, shared


def _ancestors(nodes: Sequence[_Node]) -> List[int]:
    """Transitive-ancestor bitsets; nodes are already topological
    (every pred index < node index by construction)."""
    anc: List[int] = []
    for n in nodes:
        bits = 0
        for p in n.preds:
            bits |= anc[p] | (1 << p)
        anc.append(bits)
    return anc


def check_hb(rec: DistTraceRecorder,
             tasks: Sequence[Task]) -> List[HBFinding]:
    """Race-check a recorded distributed run.

    ``tasks`` is the runtime's task list (``rt.graph.tasks``) —
    needed to resolve each executed tid's declared tile accesses.
    Returns one finding per unordered conflicting pair on a
    shared-memory tile (plus a ``leak`` finding if the close-time
    ``/dev/shm`` scan saw surviving segments).
    """
    nodes, shared = _build_graph(rec, tasks)
    anc = _ancestors(nodes)
    findings: List[HBFinding] = []

    def ordered(a: int, b: int) -> bool:
        return bool(anc[b] >> a & 1) or bool(anc[a] >> b & 1)

    # Frontier sweep per tile: keep the accesses not yet proven
    # ordered-before a later write; compare each new access against
    # the frontier only (same scheme as analysis.races).
    writers: Dict[TileRef, List[int]] = {}
    readers: Dict[TileRef, List[int]] = {}
    seen_pairs: Set[Tuple[TileRef, int, int]] = set()

    def emit(kind: str, ref: TileRef, a: int, b: int) -> None:
        pair = (ref, nodes[a].tid, nodes[b].tid)
        if pair in seen_pairs:
            return
        seen_pairs.add(pair)
        findings.append(HBFinding(
            kind=kind, ref=ref, segment=shared.get(ref, ""),
            first=nodes[a].tid, second=nodes[b].tid,
            detail=f"{nodes[a].actor} vs {nodes[b].actor}"))

    for n in nodes:
        for ref in n.writes:
            for w in writers.get(ref, ()):
                if not ordered(w, n.idx):
                    emit("race-write-write", ref, w, n.idx)
            for r in readers.get(ref, ()):
                if r != n.idx and not ordered(r, n.idx):
                    emit("race-read-write", ref, r, n.idx)
            # New write dominates any frontier entry it is ordered
            # after; keep only still-concurrent history.
            writers[ref] = [w for w in writers.get(ref, ())
                            if not (anc[n.idx] >> w & 1)] + [n.idx]
            readers[ref] = [r for r in readers.get(ref, ())
                            if not (anc[n.idx] >> r & 1)]
        for ref in n.reads:
            for w in writers.get(ref, ()):
                if w != n.idx and not ordered(w, n.idx):
                    emit("race-write-read", ref, w, n.idx)
            readers.setdefault(ref, []).append(n.idx)

    for name in rec.leaked:
        findings.append(HBFinding(
            kind="leak", segment=name,
            detail=f"segment {name} survived close() in /dev/shm"))
    return findings


def audit_refcounts(rec: DistTraceRecorder) -> List[HBFinding]:
    """Replay the recorded shm lifecycle and flag imbalance.

    Checks, per segment: created exactly once, refcount never
    negative, the recorded post-event counts are self-consistent,
    unlinked exactly once, and nothing pinned was still missing an
    unlink when the store closed.
    """
    findings: List[HBFinding] = []
    expect: Dict[str, int] = {}
    unlinked: Set[str] = set()

    def flag(kind: str, seg: str, detail: str) -> None:
        findings.append(HBFinding(kind=kind, segment=seg, detail=detail))

    for ev in rec.events:
        seg = ev.segment
        if ev.kind == EV_PIN:
            if seg in expect:
                flag("refcount-repin", seg,
                     f"segment {seg} created twice")
            expect[seg] = 1
        elif ev.kind == EV_INCREF:
            if seg not in expect:
                flag("refcount-unknown", seg,
                     f"incref of unknown segment {seg}")
                continue
            expect[seg] += 1
            if ev.refs != expect[seg]:
                flag("refcount-skew", seg,
                     f"segment {seg}: store says {ev.refs} refs, "
                     f"replay says {expect[seg]}")
        elif ev.kind == EV_DECREF:
            if seg not in expect:
                flag("refcount-unknown", seg,
                     f"decref of unknown segment {seg}")
                continue
            expect[seg] -= 1
            if expect[seg] < 0:
                flag("refcount-negative", seg,
                     f"segment {seg} refcount went negative")
            elif ev.refs != expect[seg]:
                flag("refcount-skew", seg,
                     f"segment {seg}: store says {ev.refs} refs, "
                     f"replay says {expect[seg]}")
        elif ev.kind == EV_UNLINK:
            if seg in unlinked:
                flag("refcount-double-unlink", seg,
                     f"segment {seg} unlinked twice")
            unlinked.add(seg)

    for seg in sorted(set(expect) - unlinked):
        flag("refcount-leak", seg,
             f"segment {seg} pinned but never unlinked")
    for name in rec.leaked:
        flag("leak", name,
             f"segment {name} survived close() in /dev/shm")
    return findings
