"""Wire-protocol state-machine checking for recorded comm frames.

The driver↔worker protocol is small but every rule matters: a frame
after close is a hang, a reply with no matching dispatch corrupts the
scheduler's in-flight accounting, a mis-tagged codec byte poisons the
decode path, and an inconsistent retryable verdict turns a transient
fault into a permanent failure (or an infinite retry loop).  This
module replays each connection's recorded
:class:`~repro.runtime.distributed.events.FrameRecord` sequence
through an explicit state machine and flags every deviation.

Checked per connection (parent-side view, one comm per worker):

* framing: codec tag is a known codec (the ``FLAG_CRC`` high bit —
  a CRC32 trailer inside the declared length — is masked off first);
  the length prefix matches the observed frame size (header +
  payload).
* handshake: the first inbound frame is exactly one ``hello`` — or
  exactly one ``resync`` (the reliable layer's reconnect handshake),
  in which case the connection may carry nothing but that resync and
  one outbound ``resync-ack`` before being spliced under the worker's
  comm.
* vocabulary: inbound ops ⊆ {hello, done, fail, hb}; outbound ops ⊆
  {task, shutdown}.  ``hb`` heartbeats (reliable layer) may arrive
  any time after the hello and need no reply matching.
* lifecycle: no frame in either direction after close; no task
  dispatched after shutdown was sent.  A ``reopen`` mark (the
  reliable layer re-attached the connection after a link break) is
  informational while the connection is live but a violation after
  close.
* matching: every done/fail reply matches an outstanding
  ``(tid, attempt)`` task sent on the same connection, at most once.
* retry classification: a fail reply carrying an exception whose
  recorded ``retryable=True`` verdict contradicts
  :func:`~repro.runtime.distributed.worker.retryable_exception` is
  flagged (the opposite direction is allowed: workers may ship a
  sanitized stand-in exception that classifies differently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple, Union

from ...runtime.distributed.comm import (_HEADER, CODEC_MSGPACK,
                                         CODEC_PICKLE, FLAG_CRC)
from ...runtime.distributed.events import DistTraceRecorder, FrameRecord
from ...runtime.distributed.worker import retryable_exception

__all__ = ["ProtocolFinding", "check_connection", "check_frames"]

_KNOWN_CODECS = (CODEC_PICKLE, CODEC_MSGPACK)
_INBOUND_OPS = frozenset({"hello", "done", "fail", "hb"})
_OUTBOUND_OPS = frozenset({"task", "shutdown"})


@dataclass(frozen=True)
class ProtocolFinding:
    """One protocol violation on one connection."""

    conn: str
    index: int          # frame index within the connection
    rule: str
    detail: str

    def message(self) -> str:
        return f"[{self.conn}#{self.index}] {self.rule}: {self.detail}"


def check_connection(conn: str,
                     frames: Sequence[FrameRecord]) -> List[ProtocolFinding]:
    """Run one connection's frames through the protocol state machine."""
    findings: List[ProtocolFinding] = []
    outstanding: Set[Tuple[int, int]] = set()   # sent, unanswered
    answered: Set[Tuple[int, int]] = set()
    hello_seen = False
    resync_seen = False
    shutdown_sent = False
    closed = False

    def flag(i: int, rule: str, detail: str) -> None:
        findings.append(ProtocolFinding(conn=conn, index=i, rule=rule,
                                        detail=detail))

    for i, fr in enumerate(frames):
        if fr.direction == "close":
            closed = True
            continue
        if closed:
            flag(i, "frame-after-close",
                 f"{fr.direction} of {fr.op or '?'} after close")
            continue
        if fr.direction == "reopen":
            # Reliable-layer resync: the link broke and was re-attached.
            # Informational — the stream's seq/ack state carried over.
            continue
        if fr.codec & ~FLAG_CRC not in _KNOWN_CODECS:
            flag(i, "bad-codec", f"unknown codec tag {fr.codec}")
        if fr.declared >= 0 and fr.nbytes != fr.declared + _HEADER.size:
            flag(i, "length-mismatch",
                 f"frame is {fr.nbytes}B but prefix declares "
                 f"{fr.declared}B payload (+{_HEADER.size}B header)")
        if fr.direction == "recv":
            if resync_seen:
                flag(i, "bad-op",
                     f"inbound {fr.op!r} on a resync connection "
                     f"(handshake carries exactly one resync)")
                continue
            if not hello_seen:
                if fr.op == "resync":
                    # Reliable-layer reconnect: this connection exists
                    # only to carry the resync/resync-ack handshake
                    # before being spliced under the worker's comm.
                    resync_seen = True
                    continue
                if fr.op != "hello":
                    flag(i, "hello-first",
                         f"first inbound frame is {fr.op or '?'}, "
                         f"not hello")
                else:
                    hello_seen = True
                    continue
            elif fr.op == "hello":
                flag(i, "duplicate-hello", "second hello on connection")
                continue
            if fr.op not in _INBOUND_OPS:
                flag(i, "bad-op", f"unexpected inbound op {fr.op!r}")
                continue
            if fr.op in ("done", "fail"):
                key = (fr.tid, fr.attempt)
                if key in answered:
                    flag(i, "duplicate-reply",
                         f"second reply for tid {fr.tid} "
                         f"attempt {fr.attempt}")
                elif key not in outstanding:
                    flag(i, "unmatched-reply",
                         f"reply for tid {fr.tid} attempt {fr.attempt} "
                         f"never dispatched on this connection")
                else:
                    outstanding.discard(key)
                    answered.add(key)
                if fr.op == "fail":
                    if fr.retryable is None:
                        flag(i, "retryable-missing",
                             f"fail reply for tid {fr.tid} carries no "
                             f"boolean retryable verdict")
                    elif (fr.retryable and isinstance(fr.exc, BaseException)
                          and not retryable_exception(fr.exc)):
                        flag(i, "retryable-mismatch",
                             f"tid {fr.tid}: recorded retryable=True "
                             f"but {type(fr.exc).__name__} classifies "
                             f"as not retryable")
        elif fr.direction == "send":
            if resync_seen:
                if fr.op != "resync-ack":
                    flag(i, "bad-op",
                         f"outbound {fr.op!r} on a resync connection "
                         f"(only resync-ack is valid)")
                continue
            if fr.op not in _OUTBOUND_OPS:
                flag(i, "bad-op", f"unexpected outbound op {fr.op!r}")
                continue
            if fr.op == "shutdown":
                shutdown_sent = True
            elif fr.op == "task":
                if shutdown_sent:
                    flag(i, "task-after-shutdown",
                         f"tid {fr.tid} dispatched after shutdown")
                key = (fr.tid, fr.attempt)
                if key in outstanding:
                    flag(i, "duplicate-dispatch",
                         f"tid {fr.tid} attempt {fr.attempt} "
                         f"dispatched twice")
                outstanding.add(key)
    if not hello_seen and not resync_seen and frames:
        flag(len(frames) - 1, "no-hello",
             "connection carried frames but never a hello")
    return findings


def check_frames(rec: Union[DistTraceRecorder,
                            Mapping[str, Sequence[FrameRecord]]],
                 ) -> List[ProtocolFinding]:
    """Check every recorded connection of a run."""
    frames: Mapping[str, Sequence[FrameRecord]]
    frames = rec.frames if isinstance(rec, DistTraceRecorder) else rec
    findings: List[ProtocolFinding] = []
    for conn in sorted(frames):
        findings.extend(check_connection(conn, frames[conn]))
    return findings
