"""DistSan: distributed-runtime analysis suite.

PR 4's tooling (TileSan, ``check_races``, repro-lint) proves *task
graphs* clean; this package proves the **distributed layer that
executes them** clean.  Three checkers, one per failure surface:

* :mod:`.explore` — a schedule-space model checker: drives the real
  :class:`~repro.runtime.distributed.scheduling.DynamicScheduler`
  (plus a modeled worker pool and a modeled refcount store) through
  bounded systematic interleavings of fetch / completion / crash /
  respawn events, asserting scheduler invariants after every step.
  :mod:`.mutants` ships known-bad scheduler/store variants; the
  mutant gate requires the explorer to kill all of them while passing
  clean on the real scheduler.
* :mod:`.hb` — a cross-process happens-before race checker over
  *executed* runs: rebuilds the partial order from a recorded
  :class:`~repro.runtime.distributed.events.DistTraceRecorder`
  (dispatch/completion program order plus send→recv message edges and
  shm pin edges) and flags any shared-memory tile access unordered
  with a prior write, plus a per-segment refcount audit against the
  OS-level ``/dev/shm`` scan.
* :mod:`.protocol` — a wire-protocol state-machine checker over
  recorded comm frames (hello-first handshake, codec tags, length
  prefixes, no frame after close, reply matching, retryable-verdict
  consistency).

``repro explore`` and ``repro lint --dist`` drive these from the CLI;
the CI ``distsan`` job gates on all three.
"""

from .explore import (ExplorationReport, ExploreFinding, ModelShmStore,
                      Scenario, builtin_scenarios, explore)
from .hb import HBFinding, audit_refcounts, check_hb
from .mutants import MUTANTS, MutantResult, mutant_gate
from .protocol import ProtocolFinding, check_connection, check_frames

__all__ = [
    "ExplorationReport",
    "ExploreFinding",
    "HBFinding",
    "MUTANTS",
    "ModelShmStore",
    "MutantResult",
    "ProtocolFinding",
    "Scenario",
    "audit_refcounts",
    "builtin_scenarios",
    "check_connection",
    "check_frames",
    "check_hb",
    "explore",
    "mutant_gate",
]
