"""Schedule-space model checking for the distributed scheduler.

The processes backend multiplexes completions, steals, crash recovery
and driver-lane work over one event loop; whether it is correct
depends on *interleavings* the test suite only samples.  This module
checks them systematically, CHESS-style:

* The **real** :class:`~repro.runtime.distributed.scheduling.DynamicScheduler`
  is the system under test — not a re-implementation.  Around it sits
  a small modeled world: a worker pool that fetches and completes
  tasks, a crash/respawn fault model, and a modeled refcount store
  mirroring how the executor pins tiles per dispatch.
* Execution is **deterministic**: at each step the world enumerates
  the enabled actions in a fixed order and an explicit *decision
  vector* picks one.  Replaying the same vector replays the same run,
  so the whole exploration is reproducible with no timing dependence.
* The explorer enumerates decision vectors with **iterative context
  bounding**: index 0 is the "natural" action, any other index is a
  preemption, and schedules are enumerated in order of increasing
  deviation count up to ``preemption_bound``.  Small bounds are known
  to find the vast majority of concurrency bugs while keeping the
  schedule count polynomial.
* **Invariants** are asserted after every step: each task dispatched
  at most once per attempt and never after completion, no ready task
  starved while an eligible worker idles, driver-lane tasks never on
  workers (and vice versa), pipeline depth respected, ``pending`` in
  sync, crash revocation exactly-once, modeled refcounts balanced.

The checker itself is validated by :mod:`.mutants`: seeded scheduler
bugs (lost wakeup, double dispatch, steal-from-dead, ...) that the
explorer must kill, while reporting zero findings on the real code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...runtime.distributed.scheduling import DynamicScheduler, WorkerState
from ...runtime.task import Task, TaskKind, TileRef

__all__ = ["Scenario", "ExploreFinding", "ExplorationReport",
           "ModelShmStore", "builtin_scenarios", "explore"]


# ---------------------------------------------------------------------------
# Scenarios


@dataclass
class Scenario:
    """One bounded workload + fault budget to explore.

    ``tasks`` is a plain task list (tids ``0..n-1``, in-window deps);
    ``worker_ok`` marks worker-eligible tids, the rest are driver-lane.
    ``max_crashes``/``max_spawns`` bound the fault model: a crash kills
    an alive worker mid-run, a spawn adds a replacement.
    """

    name: str
    tasks: Tuple[Task, ...]
    worker_ok: Dict[int, bool]
    workers: int = 2
    pipeline_depth: int = 2
    max_crashes: int = 0
    max_spawns: int = 0

    @property
    def ntasks(self) -> int:
        return len(self.tasks)


def _task(tid: int, deps: Sequence[int] = (), reads: Sequence[TileRef] = (),
          writes: Sequence[TileRef] = ()) -> Task:
    if not writes:
        writes = ((90, tid, 0),)
    return Task(tid=tid, kind=TaskKind.GEMM, reads=tuple(reads),
                writes=tuple(writes), rank=0, phase=0,
                deps=tuple(deps))


def _all_ok(tasks: Sequence[Task]) -> Dict[int, bool]:
    return {t.tid: True for t in tasks}


def builtin_scenarios() -> List[Scenario]:
    """The workload zoo the CI gate explores.

    Shapes are chosen to reach every scheduler code path: serial
    chains (wakeup propagation), diamonds (fan-out/fan-in), wide
    independent sets (queue balancing), locality-skewed chains (steal
    path), mixed driver/worker lanes, and crashy variants (revocation
    and replay).
    """
    out: List[Scenario] = []

    chain = tuple(_task(i, deps=[i - 1] if i else []) for i in range(6))
    out.append(Scenario("chain", chain, _all_ok(chain)))

    # Two fan-out/fan-in diamonds sharing a final join.
    dia = (
        _task(0), _task(1, deps=[0]), _task(2, deps=[0]),
        _task(3, deps=[1, 2]),
        _task(4, deps=[3]), _task(5, deps=[3]),
        _task(6, deps=[4, 5]),
    )
    out.append(Scenario("diamond", dia, _all_ok(dia)))

    wide = tuple(_task(i) for i in range(6))
    out.append(Scenario("wide", wide, _all_ok(wide)))

    # Two chains whose every task touches one hot tile: locality pins
    # both chains to whichever worker ran first, forcing the other
    # worker through the steal path.
    hot: TileRef = (91, 0, 0)
    steal = (
        _task(0, reads=[hot]), _task(1, deps=[0], reads=[hot]),
        _task(2, deps=[1], reads=[hot]),
        _task(3, reads=[hot]), _task(4, deps=[3], reads=[hot]),
        _task(5, deps=[4], reads=[hot]),
    )
    out.append(Scenario("stealable", steal, _all_ok(steal)))

    # Driver-lane reductions interleaved with worker tasks.
    mixed = (
        _task(0), _task(1),
        _task(2, deps=[0, 1]),            # driver (reduce)
        _task(3, deps=[2]), _task(4, deps=[2]),
        _task(5, deps=[3, 4]),            # driver
    )
    ok = _all_ok(mixed)
    ok[2] = ok[5] = False
    out.append(Scenario("mixed-driver", mixed, ok))

    # Wide + a tail join, with a crash/respawn budget: exercises
    # remove_worker revocation, requeue and post-respawn placement.
    crashy = tuple(_task(i) for i in range(8)) + (
        _task(8, deps=list(range(8))),)
    out.append(Scenario("crashy", crashy, _all_ok(crashy),
                        max_crashes=2, max_spawns=2))

    return out


# ---------------------------------------------------------------------------
# Findings


@dataclass(frozen=True)
class ExploreFinding:
    """One invariant violation on one explored schedule."""

    scenario: str
    invariant: str
    detail: str
    schedule: Tuple[int, ...]      # decision vector that reached it
    trace: Tuple[str, ...]         # executed actions, in order

    def __str__(self) -> str:
        tail = " ; ".join(self.trace[-6:])
        return (f"[{self.scenario}] {self.invariant}: {self.detail} "
                f"(schedule={list(self.schedule)}, ...{tail})")


@dataclass
class ExplorationReport:
    scenario: str
    schedules: int = 0
    steps: int = 0
    preemption_bound: int = 0
    truncated: bool = False
    findings: List[ExploreFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


class _Violation(Exception):
    def __init__(self, invariant: str, detail: str):
        super().__init__(f"{invariant}: {detail}")
        self.invariant = invariant
        self.detail = detail


# ---------------------------------------------------------------------------
# Modeled refcount store

class ModelShmStore:
    """Models the executor's per-dispatch tile pinning.

    The real executor pins every tile a task touches for the lifetime
    of the attempt (incref at dispatch, decref when the reply is
    accepted or the attempt is revoked).  The model checks the two
    properties that matter: a refcount never dips below the owner's
    baseline reference mid-run, and every count returns to exactly the
    baseline once the window drains.
    """

    def __init__(self) -> None:
        self.refs: Dict[TileRef, int] = {}

    def pin(self, ref: TileRef) -> None:
        self.refs.setdefault(ref, 1)

    def on_dispatch(self, refs: Sequence[TileRef]) -> None:
        for r in refs:
            self.refs[r] = self.refs.get(r, 1) + 1

    def on_release(self, refs: Sequence[TileRef]) -> None:
        """Reply accepted *or* attempt revoked — either way the
        dispatch-time pins drop."""
        for r in refs:
            self.refs[r] = self.refs.get(r, 1) - 1

    def check_step(self) -> None:
        for r, n in self.refs.items():
            if n < 1:
                raise _Violation("refcount-negative",
                                 f"tile {r} refcount {n} < 1")

    def check_final(self) -> None:
        bad = {r: n for r, n in self.refs.items() if n != 1}
        if bad:
            raise _Violation("refcount-imbalance",
                             f"non-baseline counts at drain: {bad}")


# ---------------------------------------------------------------------------
# The modeled world

Action = Tuple  # ("fetch", wid) | ("complete", wid, tid) | ("driver",)
#               | ("crash", wid) | ("spawn",)

SchedulerFactory = Callable[..., DynamicScheduler]
StoreFactory = Callable[[], ModelShmStore]


class _World:
    """One deterministic execution of a scenario under a decision
    vector.  Owns the scheduler under test plus the model state used
    to check it."""

    def __init__(self, scenario: Scenario,
                 scheduler: SchedulerFactory,
                 store: StoreFactory):
        self.sc = scenario
        self.sched = scheduler(list(scenario.tasks), 0, scenario.ntasks,
                               dict(scenario.worker_ok),
                               scenario.pipeline_depth)
        self.store = store()
        self.refs_of: Dict[int, Tuple[TileRef, ...]] = {}
        for t in scenario.tasks:
            if scenario.worker_ok.get(t.tid, False):
                refs = tuple(t.reads) + tuple(t.writes)
                self.refs_of[t.tid] = refs
                for r in refs:
                    self.store.pin(r)
            else:
                self.refs_of[t.tid] = ()
        for wid in range(scenario.workers):
            self.sched.add_worker(wid)
        self._next_wid = scenario.workers
        #: tid -> wid of the live (dispatched, not yet resolved) attempt.
        self.live: Dict[int, int] = {}
        self.completed: Set[int] = set()
        self.dispatches: Dict[int, int] = {}   # tid -> dispatch count
        self.crashes_left = scenario.max_crashes
        self.spawns_left = scenario.max_spawns
        self.trace: List[str] = []

    # -- enabled actions -------------------------------------------------

    def _alive(self) -> List[WorkerState]:
        return sorted(self.sched.alive_workers(), key=lambda w: w.wid)

    def enabled(self) -> List[Action]:
        """Enabled actions in a fixed, progress-first order.

        Index 0 is always a step the real executor would take
        eagerly; crash/spawn faults sort last so the default schedule
        (all-zero decisions) is the fault-free happy path.
        """
        acts: List[Action] = []
        sched = self.sched
        alive = self._alive()
        work = bool(sched._pool) or any(w.queue for w in alive)
        for w in alive:
            if len(w.inflight) < sched.pipeline and work:
                acts.append(("fetch", w.wid))
        for w in alive:
            for tid in sorted(w.inflight):
                acts.append(("complete", w.wid, tid))
        if sched._driver_ready:
            acts.append(("driver",))
        if self.spawns_left > 0 and len(alive) < self.sc.workers:
            acts.append(("spawn",))
        if self.crashes_left > 0:
            for w in alive:
                acts.append(("crash", w.wid))
        return acts

    # -- transition ------------------------------------------------------

    def execute(self, act: Action) -> None:
        self.trace.append("/".join(str(a) for a in act))
        kind = act[0]
        if kind == "fetch":
            self._do_fetch(act[1])
        elif kind == "complete":
            self._do_complete(act[1], act[2])
        elif kind == "driver":
            self._do_driver()
        elif kind == "crash":
            self._do_crash(act[1])
        elif kind == "spawn":
            wid = self._next_wid
            self._next_wid += 1
            self.sched.add_worker(wid)

    def _do_fetch(self, wid: int) -> None:
        sched = self.sched
        tid = sched.next_for(wid)
        if tid is None:
            # The action was only enabled because assignable work
            # existed and this worker had pipeline headroom; the real
            # scheduler then always hands out a task (own queue, the
            # pool via assign_ready, or a steal).
            raise _Violation(
                "starvation",
                f"worker {wid} idles with ready work in the system")
        if tid in self.completed:
            raise _Violation("dispatch-after-done",
                             f"tid {tid} handed out after completion")
        if tid in self.live:
            raise _Violation(
                "double-dispatch",
                f"tid {tid} handed to worker {wid} while live on "
                f"worker {self.live[tid]}")
        if not self.sc.worker_ok.get(tid, False):
            raise _Violation("driver-task-on-worker",
                             f"driver-lane tid {tid} on worker {wid}")
        ws = sched.workers[wid]
        if len(ws.inflight) > sched.pipeline:
            raise _Violation(
                "pipeline-exceeded",
                f"worker {wid} holds {len(ws.inflight)} in-flight "
                f"(depth {sched.pipeline})")
        self.live[tid] = wid
        self.dispatches[tid] = self.dispatches.get(tid, 0) + 1
        self.store.on_dispatch(self.refs_of[tid])

    def _do_complete(self, wid: int, tid: int) -> None:
        if self.live.get(tid) != wid:
            raise _Violation(
                "inflight-untracked",
                f"worker {wid} completes tid {tid} it was never "
                f"handed (live={self.live.get(tid)})")
        self._check_deps(tid)
        if tid in self.completed:
            raise _Violation("double-complete",
                             f"tid {tid} completed twice")
        del self.live[tid]
        self.sched.on_done(tid, wid)
        self.completed.add(tid)
        self.store.on_release(self.refs_of[tid])

    def _do_driver(self) -> None:
        tid = self.sched.next_driver()
        if tid is None:
            raise _Violation("driver-starvation",
                             "driver lane enabled but empty")
        if self.sc.worker_ok.get(tid, False):
            raise _Violation("worker-task-on-driver",
                             f"worker-eligible tid {tid} in driver lane")
        if tid in self.completed or tid in self.live:
            raise _Violation("double-dispatch",
                             f"driver tid {tid} already resolved")
        self._check_deps(tid)
        self.sched.on_done(tid, None)
        self.completed.add(tid)

    def _do_crash(self, wid: int) -> None:
        self.crashes_left -= 1
        queued, inflight = self.sched.remove_worker(wid)
        if set(queued) & set(inflight):
            raise _Violation("revoke-duplicate",
                             f"crash of {wid} reports tids both queued "
                             f"and in-flight: {set(queued) & set(inflight)}")
        for tid in inflight:
            if self.live.get(tid) != wid:
                raise _Violation(
                    "revoke-unknown",
                    f"crash of {wid} revokes tid {tid} not live there")
            del self.live[tid]
            self.store.on_release(self.refs_of[tid])
        for tid in queued + inflight:
            if tid in self.completed:
                raise _Violation("revoke-done",
                                 f"crash of {wid} revokes completed {tid}")
        ws = self.sched.workers[wid]
        if ws.queue or ws.inflight:
            raise _Violation(
                "dead-worker-holds-tasks",
                f"worker {wid} still holds queue={list(ws.queue)} "
                f"inflight={sorted(ws.inflight)} after removal")
        self.sched.requeue(queued + inflight)

    def _check_deps(self, tid: int) -> None:
        deps = self.sc.tasks[tid].deps
        missing = [d for d in deps if d not in self.completed]
        if missing:
            raise _Violation(
                "dependency-violated",
                f"tid {tid} ran before deps {missing} completed")

    # -- global invariants ----------------------------------------------

    def check_step(self) -> None:
        sched = self.sched
        locs: Dict[int, int] = {}

        def seen(tid: int) -> None:
            locs[tid] = locs.get(tid, 0) + 1

        for tid in sched._pool:
            seen(tid)
        for tid in sched._driver_ready:
            seen(tid)
        for w in sched.workers.values():
            if not w.alive and (w.queue or w.inflight):
                raise _Violation(
                    "dead-worker-holds-tasks",
                    f"dead worker {w.wid} holds "
                    f"{list(w.queue) + sorted(w.inflight)}")
            for tid in w.queue:
                seen(tid)
            for tid in w.inflight:
                seen(tid)
        for tid, n in locs.items():
            if n > 1:
                raise _Violation(
                    "task-duplicated",
                    f"tid {tid} scheduled in {n} places at once")
            if tid in self.completed:
                raise _Violation(
                    "done-task-scheduled",
                    f"completed tid {tid} still queued/in-flight")
        for t in self.sc.tasks:
            tid = t.tid
            if tid in self.completed or tid in locs:
                continue
            if all(d in self.completed for d in t.deps):
                raise _Violation(
                    "task-lost",
                    f"ready tid {tid} is in no queue, pool or lane")
        expect = self.sc.ntasks - len(self.completed)
        if sched.pending != expect:
            raise _Violation(
                "pending-skew",
                f"pending={sched.pending}, model says {expect}")
        if (sched.pending == 0) != (len(self.completed) == self.sc.ntasks):
            raise _Violation(
                "pending-skew",
                "pending==0 disagrees with all-done")
        self.store.check_step()

    def check_final(self) -> None:
        # A scenario that crashed every worker and exhausted its spawn
        # budget deadlocks by construction — that is the fault model's
        # doing, not a scheduler bug.
        stranded = (not self._alive() and self.spawns_left == 0
                    and any(self.sc.worker_ok.values()))
        if len(self.completed) != self.sc.ntasks and not stranded:
            missing = sorted(set(t.tid for t in self.sc.tasks)
                             - self.completed)
            raise _Violation("tasks-lost-at-end",
                             f"drained with {missing} incomplete")
        for tid, n in self.dispatches.items():
            # Every dispatch beyond the first must be covered by a
            # crash revocation (the only replay source in the model).
            if n > 1 and self.sc.max_crashes == 0:
                raise _Violation("double-dispatch",
                                 f"tid {tid} dispatched {n}x, no crashes")
        if not stranded:
            self.store.check_final()


# ---------------------------------------------------------------------------
# The explorer


def _run_schedule(scenario: Scenario, scheduler: SchedulerFactory,
                  store: StoreFactory, decisions: Sequence[int],
                  max_steps: int) -> Tuple[List[Tuple[int, int]],
                                           List[ExploreFinding], int]:
    """Execute one schedule.  Returns (decision log as (chosen, n)
    pairs, findings, steps executed)."""
    world = _World(scenario, scheduler, store)
    log: List[Tuple[int, int]] = []
    findings: List[ExploreFinding] = []

    def finding(v: _Violation) -> ExploreFinding:
        return ExploreFinding(
            scenario=scenario.name, invariant=v.invariant,
            detail=v.detail,
            schedule=tuple(c for c, _ in log),
            trace=tuple(world.trace))

    steps = 0
    try:
        while True:
            acts = world.enabled()
            if not acts:
                break
            k = len(log)
            idx = decisions[k] if k < len(decisions) else 0
            if idx >= len(acts):
                idx = len(acts) - 1
            log.append((idx, len(acts)))
            world.execute(acts[idx])
            world.check_step()
            steps += 1
            if steps > max_steps:
                raise _Violation(
                    "no-termination",
                    f"schedule still enabled after {max_steps} steps")
        world.check_final()
    except _Violation as v:
        findings.append(finding(v))
    return log, findings, steps


def explore(scenario: Scenario,
            scheduler: SchedulerFactory = DynamicScheduler,
            store: StoreFactory = ModelShmStore,
            preemption_bound: int = 2,
            max_schedules: int = 400,
            stop_on_finding: bool = False) -> ExplorationReport:
    """Systematically explore a scenario's schedule space.

    Enumerates decision vectors depth-first with at most
    ``preemption_bound`` deviations from the default (index-0)
    action, capped at ``max_schedules`` total runs.  With
    ``stop_on_finding`` the exploration ends at the first violation
    (used by the mutant gate, where one kill suffices).
    """
    report = ExplorationReport(scenario=scenario.name,
                               preemption_bound=preemption_bound)
    # Generous step bound: every task is fetched + completed at most
    # (1 + crashes) times, plus faults and slack.
    max_steps = 4 * scenario.ntasks * (1 + scenario.max_crashes) + 16
    decisions: List[int] = []
    exhausted = False
    while report.schedules < max_schedules:
        log, findings, steps = _run_schedule(
            scenario, scheduler, store, decisions, max_steps)
        report.schedules += 1
        report.steps += steps
        report.findings.extend(findings)
        if findings and stop_on_finding:
            return report
        # Advance to the next decision vector: bump the rightmost
        # choice point that still has an unexplored branch within the
        # deviation budget.
        nxt: Optional[List[int]] = None
        for i in range(len(log) - 1, -1, -1):
            chosen, n = log[i]
            if chosen + 1 >= n:
                continue
            deviations = sum(1 for c, _ in log[:i] if c != 0) + 1
            if deviations <= preemption_bound:
                nxt = [c for c, _ in log[:i]] + [chosen + 1]
                break
        if nxt is None:
            exhausted = True
            break
        decisions = nxt
    report.truncated = not exhausted
    return report
