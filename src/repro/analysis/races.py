"""Happens-before race checker over recorded task graphs.

:class:`~repro.runtime.graph.TaskGraph.validate` proves the *builder*
emitted direct RAW/WAW/WAR edges for the declared footprints.  This
module answers the complementary question: given a graph (possibly
hand-mutated, replayed, or augmented with footprints *observed* by
TileSan), is every pair of conflicting tile accesses ordered by *some*
dependency path?  Any unordered conflicting pair is a true race the
threaded backend could hit under an adversarial schedule.

Algorithm — per-tile last-writer frontiers, not all-pairs:

* One transitive-ancestor bitset per task (a Python int; ``anc[t]``
  has bit ``d`` set iff ``d`` happens-before ``t``), built in one
  program-order pass: ``anc[t] = OR over deps d of (anc[d] | 1<<d)``.
* Replay accesses in program order per tile, keeping the last writer
  and the readers seen since that write.  Each new access only needs
  reachability checks against that frontier: a write checks the last
  writer (WAW) and the readers since it (WAR); a read checks the last
  writer (RAW).  Cascading unordered pairs behind an already-reported
  frontier race are redundant diagnostics and are skipped.

Bitsets make each reachability query one shift+mask; memory is
O(V^2 / 64) bits, fine for the test- and lint-scale graphs this is
meant for (a few 10^4 tasks), not for scheduler-simulation-scale runs.

A task that reads and writes the same tile is treated as a writer for
that tile (declared writes are in/out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..runtime.task import Task, TileRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.graph import TaskGraph

#: Conflict kinds (first access vs second, in program order).
WRITE_WRITE = "write-write"
WRITE_READ = "write-read"
READ_WRITE = "read-write"


@dataclass(frozen=True)
class RaceFinding:
    """Two conflicting accesses to one tile with no dependency path."""

    ref: TileRef
    first: int  # tid of the earlier access (program order)
    second: int  # tid of the later access
    kind: str  # WRITE_WRITE | WRITE_READ | READ_WRITE
    detail: str = ""

    def message(self) -> str:
        msg = (
            f"race ({self.kind}) on tile {self.ref}: "
            f"task {self.first} and task {self.second} have no "
            f"dependency path between them"
        )
        if self.detail:
            msg += f" ({self.detail})"
        return msg


class RaceError(ValueError):
    """Raised by :func:`check_races` when races are found."""

    def __init__(self, findings: List[RaceFinding]):
        self.findings = findings
        lines = [f.message() for f in findings[:20]]
        if len(findings) > 20:
            lines.append(f"... and {len(findings) - 20} more")
        super().__init__(
            f"happens-before check found {len(findings)} race(s):\n  "
            + "\n  ".join(lines)
        )


def ancestor_bitsets(tasks: Iterable[Task]) -> List[int]:
    """Transitive-ancestor bitsets, indexed by tid.

    Requires tasks in program order with ``tid == position`` and deps
    pointing backwards (both invariants ``TaskGraph.validate`` checks).
    """

    anc: List[int] = []
    for t in tasks:
        bits = 0
        for d in t.deps:
            if d >= len(anc):
                raise ValueError(
                    f"task {t.tid}: dep {d} is not an earlier task "
                    f"(graph not in program order?)"
                )
            bits |= anc[d] | (1 << d)
        anc.append(bits)
    return anc


def _task_desc(t: Task) -> str:
    return f"{t.kind.name}[{t.label}]" if t.label else t.kind.name


def check_races(
    graph: "TaskGraph",
    footprints: Optional[Mapping[int, Tuple[Set[TileRef], Set[TileRef]]]] = None,
    raise_on_error: bool = True,
) -> List[RaceFinding]:
    """Report conflicting tile-access pairs with no dependency path.

    ``footprints`` maps tid -> (reads, writes); tasks absent from the
    mapping fall back to their declared footprint.  Pass
    ``TileSanitizer.footprints()`` to check *observed* accesses — a
    builder-produced graph is race-free on its declared footprints by
    construction, so the interesting inputs are observed footprints
    and mutated/seeded graphs.
    """

    tasks = graph.tasks
    anc = ancestor_bitsets(tasks)

    def reaches(a: int, b: int) -> bool:
        return a == b or bool((anc[b] >> a) & 1)

    last_writer: Dict[TileRef, int] = {}
    # Readers since the last write whose ordering is still undecided
    # relative to a future write.
    readers: Dict[TileRef, List[int]] = {}
    findings: List[RaceFinding] = []

    def report(ref: TileRef, first: int, second: int, kind: str) -> None:
        findings.append(
            RaceFinding(
                ref,
                first,
                second,
                kind,
                f"{_task_desc(tasks[first])} vs {_task_desc(tasks[second])}",
            )
        )

    for t in tasks:
        if footprints is not None and t.tid in footprints:
            fp_reads, fp_writes = footprints[t.tid]
        else:
            fp_reads, fp_writes = set(t.reads), set(t.writes)
        # In/out semantics: a tile both read and written is a write.
        for ref in sorted(fp_reads - fp_writes):
            w = last_writer.get(ref)
            if w is not None and not reaches(w, t.tid):
                report(ref, w, t.tid, WRITE_READ)
            readers.setdefault(ref, []).append(t.tid)
        for ref in sorted(fp_writes):
            w = last_writer.get(ref)
            if w is not None and not reaches(w, t.tid):
                report(ref, w, t.tid, WRITE_WRITE)
            for r in readers.get(ref, ()):
                if not reaches(r, t.tid):
                    report(ref, r, t.tid, READ_WRITE)
            last_writer[ref] = t.tid
            readers[ref] = []

    if findings and raise_on_error:
        raise RaceError(findings)
    return findings
