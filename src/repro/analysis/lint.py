"""repro-lint: static AST rules for task-submitting code.

TileSan (:mod:`.sanitizer`) only checks footprints that *execute*;
this pass checks the source itself, so a broken footprint is caught at
review time even on paths no test exercises.  All rules are
best-effort static analysis over ``ast`` — helper-mediated tile
accesses and dynamically built footprints are skipped, never guessed.

Rules (a ``submit`` call here means ``<runtime>.submit(TaskKind.X,
...)`` — the first argument must literally be a ``TaskKind``
attribute, so executor/thread-pool ``submit`` calls are not matched):

=======  =================================================================
REP001   ``submit(..., fn=...)`` must declare a footprint: at least one
         of ``reads=`` / ``writes=``.
REP002   Payload closures must not call ``.tile(`` / ``.set_tile(`` on
         tiles absent from the declared footprint.  Matching is
         best-effort: receivers must be plain names, coordinates are
         compared structurally, names are resolved through simple
         assignments (including tuple unpacking and conditional
         expressions) in enclosing scopes; footprints built from
         generator expressions or concatenation are treated as opaque
         and skipped.
REP003   A ``submit`` with a non-empty ``writes=`` must set
         ``bytes_out=`` (the scheduler's communication volume model
         prices task outputs; a silent 0 under-reports traffic).
REP004   No ``.to_array()`` call and no ``.value`` read of a known
         scalar result inside a payload — both are sync points, and a
         re-entrant sync inside a payload is suppressed on deferred
         runtimes, yielding stale data.
REP005   A function that calls ``.incref(`` on a shared-memory store
         must also call ``.decref(`` (or hand the segment to a
         ``close``/``release`` path) somewhere in the same function —
         an acquire with no release in scope leaks ``/dev/shm``
         segments on every early exit.
REP006   No blocking ``.recv(`` on a comm-like receiver inside a
         ``with <lock>`` block: the distributed executor's reader
         threads and completion path share those locks, so a recv
         under a lock can deadlock the event loop.
REP007   ``Process(...)`` spawns must not capture fork-unsafe state in
         ``args=``/``kwargs=``: locks, sockets, comms, listeners or
         threads captured at fork time are dead weight (or deadlocks)
         in the child.
REP008   ``backend=`` string literals at call sites must name a known
         runtime backend (``dense``/``eager``/``threads``/
         ``processes``) — a typo like ``"proceses"`` otherwise
         surfaces only at runtime as a fallback to the default path.
=======  =================================================================

REP005–REP008 target the distributed runtime
(:mod:`repro.runtime.distributed`) but apply everywhere, so user code
driving the processes backend is linted by the same pass.

Suppression: put ``# repro-lint: ignore`` (all rules) or
``# repro-lint: ignore[REP002]`` / ``ignore[REP002, REP003]`` on the
offending line or on the line of the enclosing ``submit`` call.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import (Dict, FrozenSet, Iterator, List, Optional, Sequence,
                    Set, Tuple, Union)

FOOTPRINT_MISSING = "REP001"
PAYLOAD_FOOTPRINT = "REP002"
BYTES_OUT_MISSING = "REP003"
SYNC_IN_PAYLOAD = "REP004"
SHM_UNRELEASED = "REP005"
RECV_UNDER_LOCK = "REP006"
FORK_UNSAFE_ARG = "REP007"
BACKEND_UNKNOWN = "REP008"

ALL_RULES = (FOOTPRINT_MISSING, PAYLOAD_FOOTPRINT, BYTES_OUT_MISSING,
             SYNC_IN_PAYLOAD, SHM_UNRELEASED, RECV_UNDER_LOCK,
             FORK_UNSAFE_ARG, BACKEND_UNKNOWN)

#: Valid values for a ``backend=`` string literal (REP008).
KNOWN_BACKENDS = frozenset({"dense", "eager", "threads", "processes"})

#: Identifier tokens marking a lock-like object (REP006 ``with``
#: context) — matched against ``_``-split tokens so ``_recv_lock``
#: hits but ``block`` does not.
_LOCK_TOKENS = frozenset({"lock", "rlock", "mutex"})

#: Identifier tokens marking a comm-like receiver (REP006).
_COMM_TOKENS = frozenset({"comm", "conn", "channel", "sock", "socket"})

#: Identifier tokens marking fork-unsafe captured state (REP007).
_FORK_UNSAFE_TOKENS = frozenset({
    "lock", "rlock", "mutex", "sock", "socket", "comm", "listener",
    "thread", "threads", "queue", "cond", "condition", "event",
    "semaphore",
})

#: Factory call names whose result is fork-unsafe (REP007).
_FORK_UNSAFE_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier", "socket", "Queue", "Thread",
    "connect", "listen",
})

#: Release-path method names that satisfy REP005 within a scope.
_RELEASE_ATTRS = frozenset({"decref", "release", "close",
                            "_decref_name", "_release_many"})

#: Methods returning pseudo-tile refs (scalars, side buffers).  Entries
#: built from these carry data the payload reads through captured
#: Python objects, not through ``.tile()``, so they are ignorable for
#: REP002 matching (neither a match target nor a reason to go opaque).
_PSEUDO_REF_ATTRS = frozenset({"new_scalar_ref", "t_ref", "tt_ref"})

#: Functions returning ScalarResult: a ``.value`` read of their result
#: inside a payload is REP004.
_SCALAR_FUNCS = frozenset({
    "norm_one", "norm_inf", "norm_fro", "norm_max", "column_abs_sums_max",
    "norm2est_tiled", "trcondest_tiled", "gecondest_tiled", "_const_scalar",
})

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([^\]]*)\])?")

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


@dataclass(frozen=True)
class LintFinding:
    """One static-rule violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# A matrix-tile entry is (receiver name, coord0 dump, coord1 dump).
_Entry = Tuple[str, str, str]


def _dump(node: ast.AST) -> str:
    return ast.dump(node)


class _Scope:
    """One lexical function (or module) scope."""

    def __init__(self, node: ast.AST, parent: Optional["_Scope"]):
        self.node = node
        self.parent = parent
        # name -> ordered list of (lineno, function node)
        self.defs: Dict[str, List[Tuple[int, _FuncNode]]] = {}
        # name -> (entries, opaque); entries are matrix-tile triples
        self.ref_env: Dict[str, Tuple[FrozenSet[_Entry], bool]] = {}
        self.scalar_names: Set[str] = set()

    def lookup_ref(self, name: str) -> Optional[Tuple[FrozenSet[_Entry], bool]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.ref_env:
                return scope.ref_env[name]
            scope = scope.parent
        return None

    def lookup_def(self, name: str, before_line: int) -> Optional[_FuncNode]:
        scope: Optional[_Scope] = self
        while scope is not None:
            best: Optional[_FuncNode] = None
            best_line = -1
            for lineno, fnode in scope.defs.get(name, ()):
                if best_line < lineno <= before_line:
                    best, best_line = fnode, lineno
            if best is not None:
                return best
            scope = scope.parent
        return None

    def is_scalar_name(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.scalar_names:
                return True
            scope = scope.parent
        return False


def _scope_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's own nodes without entering nested function bodies."""

    stack = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        yield n
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(n))


def _resolve_value(expr: ast.AST, scope: _Scope) -> Tuple[FrozenSet[_Entry], bool]:
    """Resolve an expression to matrix-tile entries.

    Returns ``(entries, opaque)``; ``opaque`` means the expression may
    denote refs we cannot enumerate, so membership checks against it
    must be skipped rather than flagged.
    """

    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        attr = expr.func.attr
        if attr == "ref" and isinstance(expr.func.value, ast.Name) \
                and len(expr.args) == 2 and not expr.keywords:
            recv = expr.func.value.id
            return frozenset({(recv, _dump(expr.args[0]), _dump(expr.args[1]))}), False
        if attr in _PSEUDO_REF_ATTRS:
            return frozenset(), False  # pseudo ref: ignorable, not opaque
        return frozenset(), True
    if isinstance(expr, ast.Name):
        hit = scope.lookup_ref(expr.id)
        if hit is None:
            return frozenset(), True
        return hit
    if isinstance(expr, ast.IfExp):
        b_e, b_o = _resolve_value(expr.body, scope)
        o_e, o_o = _resolve_value(expr.orelse, scope)
        return b_e | o_e, b_o or o_o
    if isinstance(expr, (ast.Tuple, ast.List)):
        entries: Set[_Entry] = set()
        opaque = False
        for elt in expr.elts:
            if isinstance(elt, ast.Starred):
                elt = elt.value
            e, o = _resolve_value(elt, scope)
            entries |= e
            opaque = opaque or o
        return frozenset(entries), opaque
    return frozenset(), True


def _collect_scope_env(scope: _Scope) -> None:
    """Record defs, ref-producing assignments, and scalar-result names."""

    for n in _scope_walk(scope.node):
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.defs.setdefault(n.name, []).append((n.lineno, n))
        elif isinstance(n, ast.Assign):
            if len(n.targets) == 1 and isinstance(n.targets[0], ast.Name):
                name = n.targets[0].id
                entries, opaque = _resolve_value(n.value, scope)
                prev = scope.ref_env.get(name)
                if prev is not None:  # rebinding: union, keep any opacity
                    entries, opaque = entries | prev[0], opaque or prev[1]
                scope.ref_env[name] = (entries, opaque)
                if isinstance(n.value, ast.Call):
                    fname = None
                    if isinstance(n.value.func, ast.Name):
                        fname = n.value.func.id
                    elif isinstance(n.value.func, ast.Attribute):
                        fname = n.value.func.attr
                    if fname in _SCALAR_FUNCS:
                        scope.scalar_names.add(name)
            elif len(n.targets) == 1 and isinstance(n.targets[0], ast.Tuple) \
                    and isinstance(n.value, ast.Tuple) \
                    and len(n.targets[0].elts) == len(n.value.elts):
                for tgt, val in zip(n.targets[0].elts, n.value.elts):
                    if isinstance(tgt, ast.Name):
                        scope.ref_env[tgt.id] = _resolve_value(val, scope)


def _is_task_submit(call: ast.Call) -> bool:
    """True for ``<rt>.submit(TaskKind.X, ...)`` calls only."""

    if not (isinstance(call.func, ast.Attribute) and call.func.attr == "submit"):
        return False
    kind = call.args[0] if call.args else None
    if kind is None:
        for kw in call.keywords:
            if kw.arg == "kind":
                kind = kw.value
    return (isinstance(kind, ast.Attribute)
            and isinstance(kind.value, ast.Name)
            and kind.value.id == "TaskKind")


def _kw(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _nonempty_literal(expr: ast.AST) -> bool:
    """True unless the expression is a literally empty tuple/list."""

    if isinstance(expr, (ast.Tuple, ast.List)):
        return bool(expr.elts)
    if isinstance(expr, ast.Constant) and expr.value is None:
        return False
    return True


class _Linter:
    def __init__(self, path: str, source: str):
        self.path = path
        self.lines = source.splitlines()
        self.findings: List[LintFinding] = []

    # ----------------------------------------------------------- suppression

    def _suppressed(self, rule: str, *linenos: int) -> bool:
        for lineno in linenos:
            if not 1 <= lineno <= len(self.lines):
                continue
            m = _SUPPRESS_RE.search(self.lines[lineno - 1])
            if m is None:
                continue
            if m.group(1) is None:
                return True
            rules = {r.strip() for r in m.group(1).split(",")}
            if rule in rules:
                return True
        return False

    def _flag(self, rule: str, message: str, node: ast.AST,
              extra_lines: Sequence[int] = ()) -> None:
        if self._suppressed(rule, node.lineno, *extra_lines):
            return
        self.findings.append(
            LintFinding(self.path, node.lineno, node.col_offset, rule, message)
        )

    # ------------------------------------------------------------ scope pass

    def run(self, tree: ast.Module) -> None:
        self._visit_scope(_Scope(tree, None))
        self._check_recv_under_lock(tree)
        self._check_fork_args(tree)
        self._check_backend_literals(tree)

    def _visit_scope(self, scope: _Scope) -> None:
        _collect_scope_env(scope)
        for n in _scope_walk(scope.node):
            if isinstance(n, ast.Call) and _is_task_submit(n):
                self._check_submit(n, scope)
        self._check_shm_balance(scope)
        for n in _scope_walk(scope.node):
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                self._visit_scope(_Scope(n, scope))

    # --------------------------------------------------------------- checks

    def _check_submit(self, call: ast.Call, scope: _Scope) -> None:
        fn = _kw(call, "fn")
        has_fn = fn is not None and not (
            isinstance(fn, ast.Constant) and fn.value is None)
        reads = _kw(call, "reads")
        writes = _kw(call, "writes")

        if has_fn and reads is None and writes is None:
            self._flag(FOOTPRINT_MISSING,
                       "submit(..., fn=...) without reads=/writes=: the "
                       "payload's tile footprint must be declared", call)

        if writes is not None and _nonempty_literal(writes) \
                and _kw(call, "bytes_out") is None:
            self._flag(BYTES_OUT_MISSING,
                       "submit with writes= must set bytes_out= (task "
                       "output volume feeds the communication model)", call)

        if not has_fn:
            return
        payload = self._resolve_payload(fn, scope, call.lineno)
        if payload is None:
            return
        read_entries, reads_opaque = (
            _resolve_value(reads, scope) if reads is not None
            else (frozenset(), False))
        write_entries, writes_opaque = (
            _resolve_value(writes, scope) if writes is not None
            else (frozenset(), False))
        self._check_payload(payload, scope, call,
                            read_entries, reads_opaque,
                            write_entries, writes_opaque)

    def _resolve_payload(self, fn: ast.AST, scope: _Scope,
                         lineno: int) -> Optional[_FuncNode]:
        if isinstance(fn, ast.Lambda):
            return fn
        if isinstance(fn, ast.Name):
            return scope.lookup_def(fn.id, lineno)
        return None

    def _check_payload(self, payload: _FuncNode, scope: _Scope,
                       submit: ast.Call,
                       read_entries: FrozenSet[_Entry], reads_opaque: bool,
                       write_entries: FrozenSet[_Entry], writes_opaque: bool
                       ) -> None:
        receivers = {e[0] for e in read_entries | write_entries}
        body = payload.body if isinstance(payload, ast.Lambda) else payload
        for n in ast.walk(body):
            if not isinstance(n, ast.Call):
                if isinstance(n, ast.Attribute) and n.attr == "value" \
                        and isinstance(n.value, ast.Name) \
                        and isinstance(n.ctx, ast.Load) \
                        and scope.is_scalar_name(n.value.id):
                    self._flag(SYNC_IN_PAYLOAD,
                               f"ScalarResult '{n.value.id}.value' read "
                               "inside a payload (re-entrant sync hazard)",
                               n, (submit.lineno,))
                continue
            func = n.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "to_array":
                self._flag(SYNC_IN_PAYLOAD,
                           ".to_array() inside a payload (re-entrant sync "
                           "hazard)", n, (submit.lineno,))
                continue
            if func.attr not in ("tile", "set_tile"):
                continue
            if not isinstance(func.value, ast.Name) or len(n.args) < 2:
                continue
            recv = func.value.id
            entry = (recv, _dump(n.args[0]), _dump(n.args[1]))
            if func.attr == "set_tile":
                if entry in write_entries or writes_opaque:
                    continue
                self._flag(PAYLOAD_FOOTPRINT,
                           f"payload calls {recv}.set_tile({_src(n.args[0])}, "
                           f"{_src(n.args[1])}, ...) but that tile is not in "
                           "the declared writes=", n, (submit.lineno,))
            else:
                if entry in read_entries or entry in write_entries:
                    continue
                if reads_opaque or writes_opaque:
                    continue
                if recv not in receivers:
                    self._flag(PAYLOAD_FOOTPRINT,
                               f"payload accesses {recv}.tile(...) but no "
                               f"tile of '{recv}' appears in the declared "
                               "footprint", n, (submit.lineno,))
                else:
                    self._flag(PAYLOAD_FOOTPRINT,
                               f"payload calls {recv}.tile({_src(n.args[0])}, "
                               f"{_src(n.args[1])}) but that tile is not in "
                               "the declared reads=/writes=", n,
                               (submit.lineno,))


    # ----------------------------------------------- distributed rules

    def _check_shm_balance(self, scope: _Scope) -> None:
        """REP005: incref without any release path in the same scope."""
        increfs: List[ast.Call] = []
        released = False
        for n in _scope_walk(scope.node):
            if not (isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)):
                continue
            if n.func.attr == "incref":
                increfs.append(n)
            elif n.func.attr in _RELEASE_ATTRS:
                released = True
        if released:
            return
        for call in increfs:
            self._flag(SHM_UNRELEASED,
                       "shm segment incref'd with no decref/release/"
                       "close in the same function: every early exit "
                       "leaks the /dev/shm segment", call)

    def _check_recv_under_lock(self, tree: ast.Module) -> None:
        """REP006: blocking comm recv inside a ``with <lock>`` body."""

        def visit(node: ast.AST, under: Optional[ast.AST]) -> None:
            for child in ast.iter_child_nodes(node):
                inner = under
                if isinstance(child, (ast.With, ast.AsyncWith)) and any(
                        _ident_matches(i.context_expr, _LOCK_TOKENS)
                        for i in child.items):
                    inner = child
                if (under is not None and isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and child.func.attr == "recv"
                        and _ident_matches(child.func.value,
                                           _COMM_TOKENS)):
                    self._flag(RECV_UNDER_LOCK,
                               f"blocking {_src(child.func.value)}"
                               ".recv(...) while holding "
                               f"{_src_with(under)}: reader threads "
                               "and the completion path share comm "
                               "locks, so this can deadlock the event "
                               "loop", child, (under.lineno,))
                visit(child, inner)

        visit(tree, None)

    def _check_fork_args(self, tree: ast.Module) -> None:
        """REP007: fork-unsafe state captured in Process payloads."""
        for n in ast.walk(tree):
            if not isinstance(n, ast.Call):
                continue
            fname = None
            if isinstance(n.func, ast.Name):
                fname = n.func.id
            elif isinstance(n.func, ast.Attribute):
                fname = n.func.attr
            if fname != "Process":
                continue
            payload: List[ast.AST] = []
            for kw in n.keywords:
                if kw.arg == "args" and isinstance(kw.value,
                                                   (ast.Tuple, ast.List)):
                    payload.extend(kw.value.elts)
                elif kw.arg == "kwargs" and isinstance(kw.value, ast.Dict):
                    payload.extend(v for v in kw.value.values
                                   if v is not None)
            for elt in payload:
                if isinstance(elt, ast.Starred):
                    elt = elt.value
                if isinstance(elt, ast.Call):
                    cname = None
                    if isinstance(elt.func, ast.Name):
                        cname = elt.func.id
                    elif isinstance(elt.func, ast.Attribute):
                        cname = elt.func.attr
                    if cname in _FORK_UNSAFE_FACTORIES:
                        self._flag(FORK_UNSAFE_ARG,
                                   f"Process(...) captures {cname}() "
                                   "in its payload: locks/sockets/"
                                   "threads made in the parent are "
                                   "fork-unsafe in the child", elt,
                                   (n.lineno,))
                elif _ident_matches(elt, _FORK_UNSAFE_TOKENS):
                    self._flag(FORK_UNSAFE_ARG,
                               f"Process(...) captures {_src(elt)} in "
                               "its payload: lock/socket/thread state "
                               "does not survive fork", elt,
                               (n.lineno,))

    def _check_backend_literals(self, tree: ast.Module) -> None:
        """REP008: unknown ``backend=`` string literal at a call."""
        for n in ast.walk(tree):
            if not isinstance(n, ast.Call):
                continue
            val = _kw(n, "backend")
            if (isinstance(val, ast.Constant)
                    and isinstance(val.value, str)
                    and val.value not in KNOWN_BACKENDS):
                known = "/".join(sorted(KNOWN_BACKENDS))
                self._flag(BACKEND_UNKNOWN,
                           f"unknown backend {val.value!r} (known: "
                           f"{known}): a typo here silently falls "
                           "back to the default execution path", val,
                           (n.lineno,))


def _ident_tokens(name: str) -> Set[str]:
    return {t for t in re.split(r"[_\W\d]+", name.lower()) if t}


def _ident_matches(expr: ast.AST, tokens: FrozenSet[str]) -> bool:
    """True when the trailing identifier of a name/attribute chain
    carries one of ``tokens`` (``w.comm`` -> comm, ``self._recv_lock``
    -> recv+lock).  Non-name expressions never match."""
    if isinstance(expr, ast.Name):
        return bool(_ident_tokens(expr.id) & tokens)
    if isinstance(expr, ast.Attribute):
        return bool(_ident_tokens(expr.attr) & tokens)
    return False


def _src_with(node: ast.AST) -> str:
    items = getattr(node, "items", ())
    for item in items:
        if _ident_matches(item.context_expr, _LOCK_TOKENS):
            return _src(item.context_expr)
    return "a lock"


def _src(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is py>=3.9
        return "<expr>"


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Run all rules over one module's source text."""

    tree = ast.parse(source, filename=path)
    linter = _Linter(path, source)
    linter.run(tree)
    return linter.findings


def lint_paths(paths: Sequence[str]) -> List[LintFinding]:
    """Run all rules over ``.py`` files in the given files/directories."""

    files: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".py"))
        elif p.endswith(".py"):
            files.append(p)
    findings: List[LintFinding] = []
    for f in sorted(set(files)):
        with open(f, "r", encoding="utf-8") as fh:
            findings.extend(lint_source(fh.read(), f))
    findings.sort(key=lambda x: (x.path, x.line, x.col, x.rule))
    return findings
