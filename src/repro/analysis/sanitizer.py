"""TileSan: dynamic footprint sanitizer for task payloads.

The task runtime (``Runtime.submit``) trusts the caller's declared
``reads``/``writes`` tile footprints: dependencies are inferred from
them, and the threaded backend (:class:`~repro.runtime.parallel.ParallelExecutor`)
reorders anything they leave unordered.  A payload that touches a tile
it did not declare is therefore a *silent data race* — correct under
eager execution, flaky under ``backend="threads"``.

TileSan closes that hole dynamically.  While a payload runs, a
per-thread *frame* is active; :class:`~repro.dist.matrix.DistMatrix`
``tile()``/``set_tile()`` (and the scalar pseudo-tile sync points)
report every actual access into the frame, where it is diffed against
the declaration:

* **undeclared-read** — payload read a tile absent from ``reads`` and
  ``writes`` (reading a declared *write* tile is fine: declared writes
  are in/out, payloads update tiles in place);
* **undeclared-write** — payload wrote a tile absent from ``writes``;
* **phantom-declaration** — a declared *observable* tile the payload
  never touched: not a race, but over-synchronization that serializes
  the DAG for nothing (reported on frame exit, never fatal mid-run
  numerics-wise — in ``raise`` mode it still raises after the payload
  completed, so state is consistent);
* **sync-in-payload** — ``DistMatrix.to_array()`` or
  ``ScalarResult.value`` used inside a payload: a re-entrant sync
  hazard (on a deferred runtime the inner sync is a no-op and the
  value read is stale/partial).

"Observable" means the ref is registered in the graph's tile registry
with a real owner rank (``DistMatrix`` tiles).  Pseudo-tiles — scalar
refs, QR ``T``-factor side buffers, norm partials — carry payload data
the sanitizer cannot see, so they are exempt from the phantom check
and their accesses are not recorded.

Modes (``Runtime(sanitize=...)`` or the ``REPRO_SANITIZE`` env var):
``"raise"`` aborts on the first finding (:class:`SanitizerError`),
``"warn"`` emits :class:`SanitizerWarning` and keeps collecting,
``None``/unset disables instrumentation entirely.  Individual tasks
opt out with ``submit(..., sanitize=False)``.

Observed footprints are kept per task so the happens-before checker
(:func:`repro.analysis.races.check_races`) can run on *actual* rather
than declared accesses; findings are also forwarded to a trace sink as
:class:`~repro.obs.timeline.SanitizerEvent` instants.
"""

from __future__ import annotations

import contextlib
import os
import threading
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..runtime.task import Task, TileRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.timeline import TraceSink
    from ..runtime.graph import TaskGraph

#: Recognized sanitizer modes (``None`` means "off" and is also valid).
SANITIZE_MODES = ("warn", "raise")

#: Finding kinds.
UNDECLARED_READ = "undeclared-read"
UNDECLARED_WRITE = "undeclared-write"
PHANTOM_DECLARATION = "phantom-declaration"
SYNC_IN_PAYLOAD = "sync-in-payload"


def sanitize_mode_from_env(default: Optional[str] = None) -> Optional[str]:
    """Resolve the sanitizer mode from ``REPRO_SANITIZE``.

    Empty / ``0`` / ``off`` / ``none`` disable the sanitizer; ``warn``
    and ``raise`` select the mode; any other value is an error so CI
    typos fail loudly instead of silently disabling the check.
    """

    raw = os.environ.get("REPRO_SANITIZE")
    if raw is None:
        return default
    val = raw.strip().lower()
    if val in ("", "0", "off", "none", "false"):
        return None
    if val in SANITIZE_MODES:
        return val
    raise ValueError(
        f"REPRO_SANITIZE={raw!r}: expected one of {SANITIZE_MODES} or off/none/0"
    )


class SanitizerWarning(UserWarning):
    """Emitted for each finding when the sanitizer runs in warn mode."""


@dataclass(frozen=True)
class SanitizerFinding:
    """One footprint violation observed while a payload ran."""

    kind: str  # UNDECLARED_READ | UNDECLARED_WRITE | PHANTOM_DECLARATION | SYNC_IN_PAYLOAD
    tid: int
    task_kind: str
    label: str
    ref: TileRef
    detail: str = ""

    def message(self) -> str:
        where = f"task {self.tid} {self.task_kind}"
        if self.label:
            where += f" [{self.label}]"
        msg = f"TileSan: {self.kind} in {where}: ref {self.ref}"
        if self.detail:
            msg += f" ({self.detail})"
        return msg


class SanitizerError(RuntimeError):
    """Raised in ``raise`` mode on the first footprint violation."""

    def __init__(self, finding: SanitizerFinding):
        super().__init__(finding.message())
        self.finding = finding


@dataclass
class ObservedFootprint:
    """Actual tile accesses recorded for one task payload."""

    reads: Set[TileRef] = field(default_factory=set)
    writes: Set[TileRef] = field(default_factory=set)


class _Frame:
    """Per-payload recording scope (lives on one worker thread)."""

    __slots__ = ("task", "decl_reads", "decl_writes", "reads", "writes")

    def __init__(self, task: Task):
        self.task = task
        self.decl_reads = frozenset(task.reads)
        self.decl_writes = frozenset(task.writes)
        self.reads: Set[TileRef] = set()
        self.writes: Set[TileRef] = set()


class _TaskScope:
    """Context manager pushing a sanitizer frame around one payload."""

    __slots__ = ("san", "task", "frame")

    def __init__(self, san: "TileSanitizer", task: Task):
        self.san = san
        self.task = task
        self.frame: Optional[_Frame] = None

    def __enter__(self) -> "_TaskScope":
        self.frame = _Frame(self.task)
        self.san._stack().append(self.frame)
        return self

    def __exit__(self, exc_type: Optional[type],
                 exc: Optional[BaseException], tb: object) -> bool:
        frame = self.frame
        self.san._stack().pop()
        # Record what we saw even on failure so post-mortem race checks
        # run on actual accesses; skip the phantom check if the payload
        # blew up (it may not have reached its declared tiles yet).
        self.san._finish_frame(frame, payload_ok=exc_type is None)
        return False


class TileSanitizer:
    """Dynamic footprint sanitizer shared by a :class:`Runtime`.

    Thread-safe: frames are thread-local (payloads run on executor
    worker threads), findings and observed footprints are appended
    under a lock.  Accesses made outside any payload (driver-level
    ``tile()`` calls, gathers) are ignored.
    """

    def __init__(self, graph: "TaskGraph", mode: str = "raise",
                 sink: Optional["TraceSink"] = None):
        if mode not in SANITIZE_MODES:
            raise ValueError(f"sanitize mode {mode!r}: expected one of {SANITIZE_MODES}")
        self.graph = graph
        self.mode = mode
        self.sink = sink
        self.findings: List[SanitizerFinding] = []
        self.observed: Dict[int, ObservedFootprint] = {}
        self.tasks_checked = 0
        self._tls = threading.local()
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- frames

    def _stack(self) -> List[_Frame]:
        st = getattr(self._tls, "stack", None)
        if st is None:
            st = []
            self._tls.stack = st
        return st

    def _current(self) -> Optional[_Frame]:
        st = getattr(self._tls, "stack", None)
        return st[-1] if st else None

    @property
    def in_payload(self) -> bool:
        """True when a payload frame is active on the calling thread."""

        return self._current() is not None

    def task_scope(self, task: Task) -> _TaskScope:
        """Context manager instrumenting one payload execution."""

        return _TaskScope(self, task)

    # ---------------------------------------------------------------- hooks

    def _observable(self, ref: TileRef) -> bool:
        # DistMatrix tiles are registered with their owner rank; pseudo
        # tiles (scalars, QR T factors, norm partials) are not, so they
        # are exempt from the phantom check.
        return ref in self.graph.tile_owner

    def on_access(self, ref: TileRef, write: bool) -> None:
        """Record one actual tile access from ``DistMatrix``.

        No-op when called outside a payload (driver-level access).
        """

        frame = self._current()
        if frame is None:
            return
        if write:
            frame.writes.add(ref)
            if ref not in frame.decl_writes:
                self._report(
                    SanitizerFinding(
                        UNDECLARED_WRITE,
                        frame.task.tid,
                        frame.task.kind.name,
                        frame.task.label,
                        ref,
                        "payload wrote a tile absent from writes=",
                    )
                )
        elif ref in frame.decl_writes:
            # Declared writes are in/out: payloads update tiles in place,
            # so a read of a declared-write tile is part of the write.
            frame.writes.add(ref)
        elif ref in frame.decl_reads:
            frame.reads.add(ref)
        else:
            frame.reads.add(ref)
            self._report(
                SanitizerFinding(
                    UNDECLARED_READ,
                    frame.task.tid,
                    frame.task.kind.name,
                    frame.task.label,
                    ref,
                    "payload read a tile absent from reads=/writes=",
                )
            )

    def on_sync(self, ref: TileRef, what: str) -> None:
        """Flag a re-entrant sync point used inside a payload.

        ``DistMatrix.to_array()`` and ``ScalarResult.value`` are sync
        points: on a deferred runtime they normally drain the executor,
        but inside a payload the inner sync is suppressed and the value
        read may be stale or partial.  No-op outside payloads.
        """

        frame = self._current()
        if frame is None:
            return
        self._report(
            SanitizerFinding(
                SYNC_IN_PAYLOAD,
                frame.task.tid,
                frame.task.kind.name,
                frame.task.label,
                ref,
                f"{what} inside a payload is a re-entrant sync hazard",
            )
        )

    # ------------------------------------------------------------- reporting

    def _report(self, finding: SanitizerFinding) -> None:
        with self._lock:
            self.findings.append(finding)
        if self.sink is not None:
            # Sinks must never break a run.
            with contextlib.suppress(Exception):  # pragma: no cover
                from ..obs.timeline import SanitizerEvent

                self.sink.on_sanitizer(
                    SanitizerEvent(
                        kind=finding.kind,
                        tid=finding.tid,
                        task_kind=finding.task_kind,
                        label=finding.label,
                        ref=finding.ref,
                        detail=finding.detail,
                    )
                )
        if self.mode == "raise":
            raise SanitizerError(finding)
        warnings.warn(finding.message(), SanitizerWarning, stacklevel=4)

    def _finish_frame(self, frame: _Frame, payload_ok: bool) -> None:
        task = frame.task
        with self._lock:
            self.tasks_checked += 1
            obs = self.observed.setdefault(task.tid, ObservedFootprint())
            obs.reads |= frame.reads
            obs.writes |= frame.writes
        if not payload_ok:
            return
        touched = frame.reads | frame.writes
        for ref in task.reads + task.writes:
            if ref in touched or not self._observable(ref):
                continue
            self._report(
                SanitizerFinding(
                    PHANTOM_DECLARATION,
                    task.tid,
                    task.kind.name,
                    task.label,
                    ref,
                    "declared tile never touched by the payload "
                    "(over-synchronization)",
                )
            )

    # --------------------------------------------------------------- queries

    def footprints(self) -> Dict[int, Tuple[Set[TileRef], Set[TileRef]]]:
        """Merged declared ∪ observed footprints, keyed by tid.

        Suitable for :func:`repro.analysis.races.check_races`: declared
        footprints keep the pseudo-tile dependencies the sanitizer
        cannot observe, observed footprints add anything a payload
        touched beyond its declaration (warn mode only — raise mode
        aborts before that happens).
        """

        with self._lock:
            observed = {
                tid: (set(fp.reads), set(fp.writes))
                for tid, fp in self.observed.items()
            }
        out: Dict[int, Tuple[Set[TileRef], Set[TileRef]]] = {}
        for task in self.graph.tasks:
            reads = set(task.reads)
            writes = set(task.writes)
            obs = observed.get(task.tid)
            if obs is not None:
                reads |= obs[0]
                writes |= obs[1]
            out[task.tid] = (reads - writes, writes)
        return out

    def summary(self) -> Dict[str, int]:
        """Counts by finding kind plus tasks checked (for CLI output)."""

        with self._lock:
            counts: Dict[str, int] = {}
            for f in self.findings:
                counts[f.kind] = counts.get(f.kind, 0) + 1
            counts["tasks_checked"] = self.tasks_checked
        return counts
