"""Correctness tooling for the task runtime (TileSan + lint).

Three layers, all built on the same premise as the paper's runtime:
the task DAG is only as correct as the declared tile footprints.

* :mod:`.sanitizer` — **TileSan**, a dynamic footprint sanitizer.
  While a task's payload runs (eagerly in ``Runtime.submit`` or on a
  :class:`~repro.runtime.parallel.ParallelExecutor` worker), every
  actual ``DistMatrix`` tile access is recorded and diffed against the
  task's declared ``reads``/``writes``.  Undeclared accesses are data
  races waiting for the threads backend; phantom declarations are
  over-synchronization.
* :mod:`.races` — a **happens-before race checker** over a recorded
  :class:`~repro.runtime.graph.TaskGraph`: any two conflicting tile
  accesses with no dependency path between them are a true race the
  threaded backend could hit.  Exposed as ``TaskGraph.check_races()``.
* :mod:`.lint` — **repro-lint**, a static AST pass with repo-specific
  rules over task-submitting code (footprints declared, payload tile
  accesses covered, ``bytes_out`` set, no re-entrant syncs inside
  payloads).

The ``repro lint`` CLI verb drives all three; the tier-1 suite runs
with ``REPRO_SANITIZE=raise`` in CI.
"""

from .lint import LintFinding, lint_paths, lint_source
from .races import RaceError, RaceFinding, ancestor_bitsets, check_races
from .sanitizer import (
    SANITIZE_MODES,
    SanitizerError,
    SanitizerFinding,
    SanitizerWarning,
    TileSanitizer,
    sanitize_mode_from_env,
)

__all__ = [
    "LintFinding",
    "lint_paths",
    "lint_source",
    "RaceError",
    "RaceFinding",
    "ancestor_bitsets",
    "check_races",
    "SANITIZE_MODES",
    "SanitizerError",
    "SanitizerFinding",
    "SanitizerWarning",
    "TileSanitizer",
    "sanitize_mode_from_env",
]
