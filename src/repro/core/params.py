"""Dynamical weights of the QDWH iteration (Algorithm 1, lines 21-29).

The weights (a_k, b_k, c_k) and the lower-bound tracker L_i form a pure
scalar recurrence driven only by the initial estimate

    l_0  =  1 / cond_2(A_0)   (approximately; the implementation uses
                               Anorm * rcond_1(R) / sqrt(n))

and the convergence tolerances.  Because the recurrence is independent
of the matrix data, the full iteration *schedule* — how many QR-based
and how many Cholesky-based iterations run — is known up front.  The
performance model exploits this to emit task graphs for arbitrarily
large matrices without touching numeric data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..config import (
    QDWH_CHOLESKY_SWITCH,
    QDWH_HARD_ITERATION_CAP,
    qdwh_weight_tolerance,
)


@dataclass(frozen=True)
class QdwhParams:
    """Weights for one QDWH iteration.

    Attributes
    ----------
    a, b, c:
        The dynamical Halley weights.  The iteration map is
        ``x -> x (a + b x^2) / (1 + c x^2)``.
    L:
        Lower bound on the singular values of A_k *before* this
        iteration (the paper's ``L_i`` entering the update).
    L_next:
        The updated lower bound after the iteration.
    use_qr:
        True when ``c > 100`` — the QR-based variant must be used
        (matrix still ill-conditioned); otherwise the cheaper
        Cholesky-based variant is numerically safe.
    """

    a: float
    b: float
    c: float
    L: float
    L_next: float

    @property
    def use_qr(self) -> bool:
        return self.c > QDWH_CHOLESKY_SWITCH

    def mapped(self, x: float) -> float:
        """Apply the rational iteration map to a scalar singular value."""
        x2 = x * x
        return x * (self.a + self.b * x2) / (1.0 + self.c * x2)


def dynamical_weights(L: float) -> Tuple[float, float, float, float]:
    """One step of the weight recurrence (Algorithm 1, lines 23-27).

    Given the current lower bound ``L`` on the singular values, returns
    ``(a, b, c, L_next)``.
    """
    # Clamp into (0, 1]: roundoff can push the tracker marginally above
    # 1, and the floor keeps L2*L2 from underflowing to zero below.
    if not (1e-76 <= L <= 1.0):
        L = min(max(L, 1e-76), 1.0)
    L2 = L * L
    dd = np.cbrt(4.0 * (1.0 - L2) / (L2 * L2))
    sqd = np.sqrt(1.0 + dd)
    a1 = sqd + np.sqrt(8.0 - 4.0 * dd + 8.0 * (2.0 - L2) / (L2 * sqd)) / 2.0
    a = float(np.real(a1))
    b = (a - 1.0) ** 2 / 4.0
    c = a + b - 1.0
    L_next = L * (a + b * L2) / (1.0 + c * L2)
    # Guard against roundoff overshoot; L is a lower bound on sigma <= 1.
    L_next = min(L_next, 1.0)
    return a, b, c, L_next


def parameter_schedule(l0: float, dtype=np.float64,
                       max_iter: int = QDWH_HARD_ITERATION_CAP) -> List[QdwhParams]:
    """Full (a, b, c) schedule until the *weight* criterion converges.

    Iterates the scalar recurrence from ``L = l0`` until
    ``|L - 1| < 5 eps``.  The matrix-difference criterion
    (``conv < (5 eps)^(1/3)``) typically triggers on the same iteration
    or one earlier; the dense/tiled drivers check both at run time, so
    this schedule is an upper bound used for planning (its length equals
    the paper's iteration counts in practice: 6 for kappa = 1e16, 2-3
    for well-conditioned matrices).
    """
    if not np.isfinite(l0) or l0 <= 0:
        l0 = float(np.finfo(np.float64).tiny)
    tol = qdwh_weight_tolerance(dtype)
    schedule: List[QdwhParams] = []
    L = min(float(l0), 1.0)
    while abs(L - 1.0) >= tol and len(schedule) < max_iter:
        a, b, c, L_next = dynamical_weights(L)
        schedule.append(QdwhParams(a=a, b=b, c=c, L=L, L_next=L_next))
        if L_next == L:
            break  # fixed point (can only happen at L == 1 numerically)
        L = L_next
    return schedule


def schedule_table(l0: float, dtype=np.float64) -> str:
    """Human-readable weight schedule (Algorithm 1's loop, line by line).

    One row per iteration: the dynamical weights, the branch the
    ``c > 100`` test selects, and the lower-bound trajectory — handy
    for teaching and for debugging iteration-count surprises.
    """
    rows = ["  k  |          a |          b |          c | branch |"
            "        L_k -> L_{k+1}",
            "-" * 78]
    for k, p in enumerate(parameter_schedule(l0, dtype=dtype), start=1):
        branch = "QR  " if p.use_qr else "Chol"
        rows.append(f"  {k:<3}| {p.a:10.4g} | {p.b:10.4g} | "
                    f"{p.c:10.4g} | {branch}   | "
                    f"{p.L:9.3e} -> {p.L_next:9.3e}")
    return "\n".join(rows) + "\n"


def predict_iterations(cond: float, dtype=np.float64,
                       n: int | None = None) -> Tuple[int, int]:
    """Predicted (#it_QR, #it_Chol) for a matrix with 2-norm condition *cond*.

    With ``n`` given, models the *practical* initial bound Algorithm 1
    actually computes, ``l0 = ||A||_1 rcond_1(R) / sqrt(n) ~ 1/(cond *
    sqrt(n))`` — the deliberate sqrt(n) underestimate that keeps l0 a
    true lower bound.  This reproduces the paper's Section 4 counts:
    kappa = 1e16 at any realistic n gives 3 QR-based + 3
    Cholesky-based iterations; well-conditioned matrices give 0 QR and
    ~2-3 Cholesky.  With ``n=None`` the idealized ``l0 = 1/cond`` is
    used (exact-estimator behaviour: 2 QR + 4 Chol at kappa = 1e16).
    """
    if cond < 1.0:
        raise ValueError(f"condition number must be >= 1, got {cond}")
    l0 = 1.0 / cond
    if n is not None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        l0 /= np.sqrt(n)
    schedule = parameter_schedule(l0, dtype=dtype)
    it_qr = sum(1 for p in schedule if p.use_qr)
    it_chol = len(schedule) - it_qr
    return it_qr, it_chol
