"""Symmetric eigensolver via QDWH spectral divide-and-conquer.

The paper's introduction motivates the polar decomposition as the
building block for eigensolvers (Nakatsukasa & Higham, "Stable and
efficient spectral divide and conquer...", SISC 2013), and its future
work asks for partial-spectrum variants.  This module implements both:

* :func:`qdwh_eigh` — full Hermitian EVD by recursive spectral
  divide-and-conquer: the polar factor of ``A - sigma I`` yields the
  matrix sign function, whose spectral projector splits the spectrum at
  ``sigma``; recurse on the two invariant subspaces.
* :func:`qdwh_partial_eigh` — only the eigenpairs above (or below) a
  split point, descending just one side of the tree (the "more
  economical partial spectrum requirement" of Section 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..config import check_dtype, eps
from .qdwh_dense import qdwh


@dataclass
class EighResult:
    """Eigendecomposition A = V diag(w) V^H (w ascending)."""

    w: np.ndarray
    v: np.ndarray
    polar_calls: int


def _subspace_from_projector(p: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Orthonormal bases of range(P) (dim k) and its complement.

    Uses a column-pivoted QR of the Hermitian projector: the first k
    pivoted columns span range(P) to working precision.  Returns
    (V1 m x k, V2 m x (m-k)).
    """
    import scipy.linalg as sla

    q, _r, _piv = sla.qr(p, pivoting=True, mode="full")
    return q[:, :k], q[:, k:]


def _split_point(d: np.ndarray) -> float:
    """Median-of-diagonal spectral split heuristic (N&H choice)."""
    return float(np.median(d))


def qdwh_eigh(a: np.ndarray, *,
              min_block: int = 32,
              polar_fn: Optional[Callable] = None) -> EighResult:
    """Hermitian eigendecomposition via QDWH divide-and-conquer.

    Parameters
    ----------
    a:
        Hermitian matrix (only its Hermitian part is used).
    min_block:
        Subproblems at or below this size fall back to LAPACK ``eigh``
        (in production this would be the single-node threshold).
    polar_fn:
        Override the polar-decomposition routine (signature like
        :func:`repro.core.qdwh.qdwh`); used to plug in the tiled
        implementation.

    Returns
    -------
    EighResult
        Eigenvalues ascending, eigenvectors as columns of ``v``, and
        the number of polar decompositions performed.
    """
    a = np.asarray(a)
    dt = check_dtype(a.dtype)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError(f"expected a square matrix, got {a.shape}")
    a = 0.5 * (a + a.conj().T)
    pfn = polar_fn if polar_fn is not None else qdwh
    calls = 0

    def recurse(block: np.ndarray, basis: np.ndarray,
                w_out: np.ndarray, v_out: np.ndarray, offset: int) -> int:
        """Solve ``block`` whose ambient-space basis is ``basis``.

        Writes eigenvalues into w_out[offset:...] and the corresponding
        ambient eigenvectors into v_out; returns polar-call count.
        """
        nonlocal calls
        k = block.shape[0]
        if k <= min_block:
            w, v = np.linalg.eigh(block)
            w_out[offset:offset + k] = w
            v_out[:, offset:offset + k] = basis @ v
            return 0
        sigma = _split_point(np.real(np.diagonal(block)))
        shifted = block - dt.type(sigma) * np.eye(k, dtype=dt)
        res = pfn(shifted)
        calls += 1
        # P = (U + I)/2 projects onto the invariant subspace of
        # eigenvalues > sigma (sign(+1) eigenspace of U).
        p = 0.5 * (res.u + np.eye(k, dtype=dt))
        # Rank of P = number of eigenvalues above sigma; trace is exact
        # up to roundoff for a projector.
        k1 = int(round(float(np.real(np.trace(p)))))
        if k1 == 0 or k1 == k:
            # Split failed to separate (clustered spectrum around
            # sigma): fall back to dense on this block.
            w, v = np.linalg.eigh(block)
            w_out[offset:offset + k] = w
            v_out[:, offset:offset + k] = basis @ v
            return 0
        v1, v2 = _subspace_from_projector(p, k1)
        a1 = v1.conj().T @ block @ v1
        a2 = v2.conj().T @ block @ v2
        a1 = 0.5 * (a1 + a1.conj().T)
        a2 = 0.5 * (a2 + a2.conj().T)
        # Low side (eigenvalues <= sigma) first: results come out ascending.
        recurse(a2, basis @ v2, w_out, v_out, offset)
        recurse(a1, basis @ v1, w_out, v_out, offset + (k - k1))
        return 0

    w_out = np.empty(n, dtype=np.float64)
    v_out = np.empty((n, n), dtype=dt)
    recurse(a, np.eye(n, dtype=dt), w_out, v_out, 0)
    # Each half is internally ascending but boundary effects from the
    # projector rank rounding can leave tiny inversions; a final sort is
    # cheap and makes the contract exact.
    order = np.argsort(w_out, kind="stable")
    return EighResult(w=w_out[order], v=v_out[:, order], polar_calls=calls)


def qdwh_partial_eigh(a: np.ndarray, sigma: float, *, side: str = "above",
                      min_block: int = 32) -> EighResult:
    """Eigenpairs of a Hermitian matrix on one side of ``sigma``.

    The "light-weight polar decomposition for partial spectrum" use
    case: one polar decomposition of ``A - sigma I`` isolates the
    invariant subspace with eigenvalues above (or below) ``sigma``;
    only that subspace is then diagonalized.

    Returns an :class:`EighResult` whose length equals the number of
    eigenvalues on the requested side.
    """
    if side not in ("above", "below"):
        raise ValueError(f"side must be 'above' or 'below', got {side!r}")
    a = np.asarray(a)
    dt = check_dtype(a.dtype)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError(f"expected a square matrix, got {a.shape}")
    a = 0.5 * (a + a.conj().T)
    shifted = a - dt.type(sigma) * np.eye(n, dtype=dt)
    res = qdwh(shifted)
    p = 0.5 * (res.u + np.eye(n, dtype=dt))
    k1 = int(round(float(np.real(np.trace(p)))))
    if side == "above":
        k_want = k1
    else:
        k_want = n - k1
    if k_want == 0:
        return EighResult(w=np.empty(0), v=np.empty((n, 0), dtype=dt),
                          polar_calls=1)
    v1, v2 = _subspace_from_projector(p, k1)
    basis = v1 if side == "above" else v2
    sub = basis.conj().T @ a @ basis
    sub = 0.5 * (sub + sub.conj().T)
    if k_want <= min_block:
        w, v = np.linalg.eigh(sub)
        return EighResult(w=w, v=basis @ v, polar_calls=1)
    inner = qdwh_eigh(sub, min_block=min_block)
    return EighResult(w=inner.w, v=basis @ inner.v,
                      polar_calls=1 + inner.polar_calls)


def spectral_gap_check(w: np.ndarray, sigma: float, dtype=np.float64) -> bool:
    """True if sigma sits in a gap wide enough for a stable split."""
    d = np.abs(np.asarray(w) - sigma)
    return bool(np.min(d) > 10 * eps(dtype) * max(1.0, float(np.max(np.abs(w)))))
