"""Dense norm and condition estimators (Section 6.2 / 6.3 of the paper).

Three estimators, mirrored one-to-one by the tiled implementations in
:mod:`repro.tiled.estimators`:

* :func:`norm2est` — matrix 2-norm via power iteration (Algorithm 2),
  started from the vector of column 1-norms, tolerance 0.1.
* :func:`one_norm_estimator` — Hager's 1-norm estimator [Hager 1984]
  exposed through *reverse communication*: the caller owns the solves
  (or multiplies), exactly as in (Sca)LAPACK's ``xLACON``, so a single
  implementation serves any factorization.
* :func:`gecondest` / :func:`trcondest` — reciprocal 1-norm condition
  numbers of a general (given LU) and a triangular matrix.
"""

from __future__ import annotations

from typing import Callable, Generator, Tuple

import numpy as np
import scipy.linalg as sla

from ..config import NORM2EST_MAX_ITER, NORM2EST_TOL, check_dtype


def norm2est(a: np.ndarray, tol: float = NORM2EST_TOL,
             max_iter: int = NORM2EST_MAX_ITER) -> float:
    """Estimate ``||A||_2`` by power iteration on A^H A (Algorithm 2).

    Follows the paper's pseudo-code literally: the starting vector is
    the vector of column 1-norms of A; each sweep computes
    ``AX = A @ X`` then ``X = A^H @ AX`` and updates the estimate as
    ``e = ||X|| / ||AX||`` (Frobenius norms of the vectors).  Stops when
    the estimate moves by less than ``tol * e``.

    The paper notes factor-of-5 accuracy is entirely sufficient for
    QDWH's scaling step; with tol=0.1 the estimate is typically within
    a few percent of the true norm.
    """
    a = np.asarray(a)
    check_dtype(a.dtype)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {a.shape}")
    if a.size == 0:
        return 0.0
    # Guard against under/overflow: the sweeps square the data scale
    # (A^H A x), so entries near 1e+-150 in double would leave the
    # representable range.  Estimate on a unit-scaled copy instead.
    amax = float(np.max(np.abs(a)))
    if amax == 0.0:
        return 0.0
    if not (2 ** -100 < amax < 2 ** 100):
        return amax * norm2est((a / a.dtype.type(amax)), tol, max_iter)
    # Line 6-8: start from the global column sums (1-norms per column).
    x = np.sum(np.abs(a), axis=0).astype(a.dtype)
    e = float(np.linalg.norm(x))
    if e == 0.0:  # zero matrix
        return 0.0
    norm_x = e
    e0 = 0.0
    it = 0
    while abs(e - e0) > tol * e and it < max_iter:
        e0 = e
        x = x / norm_x
        ax = a @ x
        norm_ax = float(np.linalg.norm(ax))
        if norm_ax == 0.0:
            # x happens to lie in the null space; restart deterministically.
            x = np.ones(a.shape[1], dtype=a.dtype)
            norm_x = float(np.linalg.norm(x))
            it += 1
            continue
        x = a.conj().T @ ax
        norm_x = float(np.linalg.norm(x))
        # e = ||A^H A x|| / ||A x||  -> converges to sigma_max.
        e = norm_x / norm_ax
        it += 1
    return e


# ---------------------------------------------------------------------------
# Hager 1-norm estimation with reverse communication
# ---------------------------------------------------------------------------

#: Request kinds yielded by :func:`one_norm_estimator`.
SOLVE = "solve"        # caller must return  op(v)        (i.e. B @ v)
SOLVE_ADJ = "solve_adj"  # caller must return  op^H(v)    (i.e. B^H @ v)

Request = Tuple[str, np.ndarray]


def one_norm_estimator(n: int, dtype=np.float64,
                       max_cycles: int = 5) -> Generator[Request, np.ndarray, float]:
    """Hager's estimator of ``||B||_1`` for an implicit operator B.

    A generator implementing reverse communication: it *yields*
    ``(kind, vector)`` requests, the driver ``send``s back ``B @ v``
    (for ``SOLVE``) or ``B^H @ v`` (for ``SOLVE_ADJ``), and on
    completion the generator returns the estimate via ``StopIteration``
    (use :func:`drive_estimator` for a convenient wrapper).

    To estimate ``||A^{-1}||_1``, the driver answers requests with
    triangular/LU solves — this is how :func:`gecondest` and
    :func:`trcondest` (and their tiled twins) share this one
    implementation, as the paper describes.
    """
    dt = check_dtype(dtype)
    if n < 1:
        raise ValueError("n must be >= 1")
    x = np.full(n, 1.0 / n, dtype=dt)
    est_old = 0.0
    for _ in range(max_cycles):
        y = yield (SOLVE, x)
        est = float(np.sum(np.abs(y)))
        if est == 0.0:
            return 0.0
        # xi = sign(y): y/|y| elementwise (1 where y == 0).
        absy = np.abs(y)
        xi = np.where(absy == 0, 1.0, y / np.where(absy == 0, 1.0, absy))
        xi = xi.astype(dt)
        z = yield (SOLVE_ADJ, xi)
        j = int(np.argmax(np.abs(z)))
        if float(np.abs(z[j])) <= float(np.real(np.vdot(z, x))) or est <= est_old:
            break
        est_old = est
        x = np.zeros(n, dtype=dt)
        x[j] = 1.0
    # Final safeguard from LAPACK xLACON: test the alternating vector
    # x_i = (-1)^i (1 + i/(n-1)), which defeats adversarial cases.
    v = np.array([(-1.0) ** i * (1.0 + i / max(n - 1, 1)) for i in range(n)],
                 dtype=dt)
    y = yield (SOLVE, v)
    alt = 2.0 * float(np.sum(np.abs(y))) / (3.0 * n)
    return max(est, alt)


def drive_estimator(n: int, apply_op: Callable[[np.ndarray], np.ndarray],
                    apply_adj: Callable[[np.ndarray], np.ndarray],
                    dtype=np.float64) -> float:
    """Run :func:`one_norm_estimator` against callables for B and B^H."""
    gen = one_norm_estimator(n, dtype=dtype)
    try:
        kind, vec = next(gen)
        while True:
            result = apply_op(vec) if kind == SOLVE else apply_adj(vec)
            kind, vec = gen.send(np.asarray(result))
    except StopIteration as stop:
        return float(stop.value)


def norm1est_inverse(solve: Callable[[np.ndarray], np.ndarray],
                     solve_adj: Callable[[np.ndarray], np.ndarray],
                     n: int, dtype=np.float64) -> float:
    """Estimate ``||A^{-1}||_1`` given solvers for A x = b and A^H x = b."""
    return drive_estimator(n, solve, solve_adj, dtype=dtype)


def gecondest(a: np.ndarray) -> float:
    """Reciprocal 1-norm condition estimate of a square general matrix.

    Factorizes A = LU once and runs Hager's estimator through the LU
    solves, like LAPACK ``xGECON`` after ``xGETRF``.  Returns
    ``rcond = 1 / (||A||_1 * est(||A^{-1}||_1))``; 0 for an exactly
    singular factorization.
    """
    a = np.asarray(a)
    check_dtype(a.dtype)
    m, n = a.shape
    if m != n:
        raise ValueError(f"gecondest needs a square matrix, got {m}x{n}")
    anorm = float(np.max(np.sum(np.abs(a), axis=0))) if n else 0.0
    if anorm == 0.0:
        return 0.0
    lu, piv = sla.lu_factor(a)
    if np.any(np.diagonal(lu) == 0):
        return 0.0
    inv_est = norm1est_inverse(
        lambda v: sla.lu_solve((lu, piv), v),
        lambda v: sla.lu_solve((lu, piv), v, trans=2),
        n, dtype=a.dtype)
    if inv_est == 0.0:
        return 0.0
    return 1.0 / (anorm * inv_est)


def trcondest(r: np.ndarray, *, lower: bool = False) -> float:
    """Reciprocal 1-norm condition estimate of a triangular matrix.

    In QDWH this is called on the R factor of A = QR (Algorithm 1, line
    17); since Q is unitary, ``cond(R)`` tracks ``cond(A)``.  Returns
    ``rcond = 1 / (||R||_1 * est(||R^{-1}||_1))``; 0 if the diagonal
    contains an exact zero.
    """
    r = np.asarray(r)
    check_dtype(r.dtype)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise ValueError(f"trcondest needs a square triangular matrix, got {r.shape}")
    n = r.shape[0]
    if n == 0:
        return 0.0
    tri = np.tril(r) if lower else np.triu(r)
    rnorm = float(np.max(np.sum(np.abs(tri), axis=0)))
    if rnorm == 0.0 or np.any(np.diagonal(tri) == 0):
        return 0.0
    inv_est = norm1est_inverse(
        lambda v: sla.solve_triangular(tri, v, lower=lower),
        lambda v: sla.solve_triangular(tri, v, lower=lower, trans="C"),
        n, dtype=r.dtype)
    if inv_est == 0.0:
        return 0.0
    return 1.0 / (rnorm * inv_est)
