"""Baseline polar-decomposition algorithms the paper compares against.

* :func:`polar_svd` — the direct SVD route ``A = U S V^H = (U V^H)(V S V^H)``
  (Golub & Van Loan; Trefethen & Bau).  Fewer flops than QDWH but built
  on memory-bound bidiagonalization — the paper's Section 3 notes POLAR
  beats it by up to 5x on ill-conditioned matrices at scale.
* :func:`polar_newton` — Newton's iteration ``X <- (X + X^{-H})/2``.
  Requires explicit inversion each step (the numerical-stability problem
  QDWH was designed to avoid); square nonsingular matrices only.
* :func:`polar_newton_scaled` — Newton with Higham's 1,inf-norm scaling
  (Byers & Xu / Kenney & Laub lineage), far fewer iterations.
* :func:`polar_dwh` — dynamically weighted Halley with explicit inverse
  (the pre-QDWH form of the same rational iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np
import scipy.linalg as sla

from ..config import check_dtype, eps
from .params import dynamical_weights


@dataclass
class PolarResult:
    """Polar factors from a baseline algorithm, with iteration metadata."""

    u: np.ndarray
    h: np.ndarray
    iterations: int
    method: str
    conv_history: List[float] = field(default_factory=list)
    converged: bool = True


def _finalize(a: np.ndarray, u: np.ndarray, method: str, iterations: int,
              history: List[float], converged: bool = True) -> PolarResult:
    h = u.conj().T @ a
    h = 0.5 * (h + h.conj().T)
    return PolarResult(u=u, h=h, iterations=iterations, method=method,
                       conv_history=history, converged=converged)


def polar_svd(a: np.ndarray) -> PolarResult:
    """Polar decomposition through the SVD (the flop-optimal baseline)."""
    a = np.asarray(a)
    check_dtype(a.dtype)
    m, n = a.shape
    if m < n:
        raise ValueError(f"requires m >= n, got {m} x {n}")
    u_svd, s, vh = np.linalg.svd(a, full_matrices=False)
    up = u_svd @ vh
    h = (vh.conj().T * s[None, :]) @ vh
    h = 0.5 * (h + h.conj().T)
    return PolarResult(u=up, h=h, iterations=0, method="svd")


def _require_square_nonsingular(a: np.ndarray, method: str) -> None:
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"{method} requires a square matrix, got {a.shape}")


def polar_newton(a: np.ndarray, max_iter: int = 100) -> PolarResult:
    """Unscaled Newton iteration ``X <- (X + X^{-H}) / 2``.

    Converges quadratically near U but can crawl for ill-conditioned
    inputs (its iteration count grows with log2 of the condition
    number) and each step inverts the current iterate explicitly.
    """
    a = np.asarray(a)
    check_dtype(a.dtype)
    _require_square_nonsingular(a, "polar_newton")
    tol = 10 * a.shape[0] * eps(a.dtype)
    x = a.astype(a.dtype, copy=True)
    history: List[float] = []
    for it in range(1, max_iter + 1):
        xinv_h = np.linalg.inv(x).conj().T
        x_next = 0.5 * (x + xinv_h)
        delta = float(np.linalg.norm(x_next - x, "fro")
                      / max(np.linalg.norm(x_next, "fro"), 1e-300))
        history.append(delta)
        x = x_next
        if delta < tol:
            return _finalize(a, x, "newton", it, history)
    return _finalize(a, x, "newton", max_iter, history, converged=False)


def polar_newton_scaled(a: np.ndarray, max_iter: int = 100) -> PolarResult:
    """Newton iteration with Higham's (1, inf)-norm scaling.

    ``gamma = (||X^{-1}||_1 ||X^{-1}||_inf / (||X||_1 ||X||_inf))^{1/4}``
    rescales each iterate toward the unitary group, cutting the
    iteration count to ~9 even at kappa = 1e16.
    """
    a = np.asarray(a)
    check_dtype(a.dtype)
    _require_square_nonsingular(a, "polar_newton_scaled")
    tol = 10 * a.shape[0] * eps(a.dtype)
    x = a.astype(a.dtype, copy=True)
    history: List[float] = []
    scaling_active = True
    for it in range(1, max_iter + 1):
        xinv = np.linalg.inv(x)
        if scaling_active:
            num = (np.linalg.norm(xinv, 1) * np.linalg.norm(xinv, np.inf))
            den = (np.linalg.norm(x, 1) * np.linalg.norm(x, np.inf))
            gamma = (num / den) ** 0.25
            # Once close to unitarity, freeze scaling (standard practice:
            # scaling hurts terminal quadratic convergence).
            if abs(gamma - 1.0) < 1e-2:
                scaling_active = False
                gamma = 1.0
        else:
            gamma = 1.0
        x_next = 0.5 * (gamma * x + xinv.conj().T / gamma)
        delta = float(np.linalg.norm(x_next - x, "fro")
                      / max(np.linalg.norm(x_next, "fro"), 1e-300))
        history.append(delta)
        x = x_next
        if delta < tol:
            return _finalize(a, x, "newton_scaled", it, history)
    return _finalize(a, x, "newton_scaled", max_iter, history, converged=False)


def polar_dwh(a: np.ndarray, max_iter: int = 50) -> PolarResult:
    """Dynamically weighted Halley with explicit inversion.

    The same (a_k, b_k, c_k) rational map as QDWH,

        X <- X (a I + b X^H X)(I + c X^H X)^{-1},

    but evaluated by forming and inverting ``I + c X^H X`` — the
    numerically risky formulation that motivated the inverse-free QR
    reformulation (Nakatsukasa et al.).
    """
    a = np.asarray(a)
    check_dtype(a.dtype)
    m, n = a.shape
    if m < n:
        raise ValueError(f"requires m >= n, got {m} x {n}")
    alpha = float(np.linalg.norm(a, 2))
    if alpha == 0.0:
        u = np.zeros((m, n), dtype=a.dtype)
        u[:n, :n] = np.eye(n, dtype=a.dtype)
        return PolarResult(u=u, h=np.zeros((n, n), dtype=a.dtype),
                           iterations=0, method="dwh")
    x = a / a.dtype.type(alpha)
    smin = float(np.linalg.svd(x, compute_uv=False)[-1])
    li = max(smin, float(np.finfo(np.float64).tiny))
    tol = 10 * n * eps(a.dtype)
    history: List[float] = []
    for it in range(1, max_iter + 1):
        wa, wb, wc, li = dynamical_weights(li)
        g = x.conj().T @ x
        num = wa * x + wb * (x @ g)
        den = wc * g
        den[np.diag_indices(n)] += 1.0
        x_next = sla.solve(den.conj().T, num.conj().T,
                           assume_a="her", check_finite=False).conj().T
        delta = float(np.linalg.norm(x_next - x, "fro"))
        history.append(delta)
        x = x_next
        if delta < tol and abs(li - 1.0) < 10 * eps(a.dtype):
            return _finalize(a, x, "dwh", it, history)
    return _finalize(a, x, "dwh", max_iter, history, converged=False)
