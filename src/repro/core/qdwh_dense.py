"""Reference dense QDWH polar decomposition (Algorithm 1 of the paper).

This is the numerically authoritative implementation: plain numpy/LAPACK
on contiguous arrays, supporting the four standard dtypes and
rectangular matrices with m >= n.  The tiled/distributed implementation
(:mod:`repro.core.tiled_qdwh`) is validated against it, and it stands in
for the "ScaLAPACK/POLAR" numerical behaviour in the accuracy figures
(Fig. 1a/1b) — POLAR computes the same arithmetic through PBLAS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np
import scipy.linalg as sla

if TYPE_CHECKING:
    from ..obs.qdwh_log import IterationLog
    from ..resilience.checkpoint import QdwhCheckpointer

from ..config import (
    QDWH_HARD_ITERATION_CAP,
    check_dtype,
    qdwh_inner_tolerance,
    qdwh_weight_tolerance,
)
from .estimators import norm2est, trcondest
from .params import dynamical_weights


@dataclass
class QdwhResult:
    """Outcome of a QDWH polar decomposition ``A = U @ H``.

    Attributes
    ----------
    u:
        The unitary (orthonormal-columns) polar factor, m x n.
    h:
        The Hermitian positive semidefinite factor, n x n.
    iterations:
        Total iteration count.
    it_qr, it_chol:
        Split into QR-based and Cholesky-based iterations (the paper's
        #it_QR and #it_Chol).
    conv_history:
        ``||A_k - A_{k-1}||_F`` per iteration.
    weight_history:
        The (a, b, c) triple used at each iteration.
    alpha:
        The 2-norm estimate used to scale A.
    l0:
        Initial lower bound on the singular values of the scaled matrix.
    converged:
        False only if the hard iteration cap was hit.
    """

    u: np.ndarray
    h: np.ndarray
    iterations: int
    it_qr: int
    it_chol: int
    conv_history: List[float] = field(default_factory=list)
    weight_history: List[tuple] = field(default_factory=list)
    alpha: float = 0.0
    l0: float = 0.0
    converged: bool = True


def _initial_lower_bound(a0: np.ndarray) -> float:
    """l0 = ||A0||_1 * rcond_1(R) / sqrt(n)  (Algorithm 1, lines 14-19).

    QR-factorize the scaled matrix and estimate the reciprocal condition
    number of R.  The sqrt(n) deflation makes l0 a genuine lower bound
    on sigma_min(A0) up to the estimator's fuzz.
    """
    n = a0.shape[1]
    anorm = float(np.max(np.sum(np.abs(a0), axis=0)))
    r = np.linalg.qr(a0, mode="r")
    rcond = trcondest(np.ascontiguousarray(r[:n, :n]))
    l0 = anorm * rcond / np.sqrt(n)
    if not np.isfinite(l0) or l0 <= 0.0:
        # Singular to working precision: run the worst-case schedule.
        l0 = float(np.finfo(np.float64).tiny)
    return min(l0, 1.0)


def _qr_iteration(a: np.ndarray, weight_a: float, weight_b: float,
                  weight_c: float) -> np.ndarray:
    """One inverse-free QR-based iteration, Eq. (1) / Alg. 1 lines 30-36."""
    m, n = a.shape
    dt = a.dtype
    # Keep scalars as python floats: numpy scalar types are "strong" under
    # NEP 50 and would silently promote float32 iterates to float64.
    sc = math.sqrt(weight_c)
    # W = [ sqrt(c) * A_{k-1} ; I ],  (m+n) x n.
    w = np.empty((m + n, n), dtype=dt)
    w[:m] = sc * a
    w[m:] = np.eye(n, dtype=dt)
    # Economy QR, explicit Q = [Q1; Q2].
    q, _ = np.linalg.qr(w)
    q1, q2 = q[:m], q[m:]
    # A_k = (1/sqrt(c)) (a - b/c) Q1 Q2^H + (b/c) A_{k-1}.
    theta = (weight_a - weight_b / weight_c) / sc
    beta = weight_b / weight_c
    return theta * (q1 @ q2.conj().T) + beta * a


def _chol_iteration(a: np.ndarray, weight_a: float, weight_b: float,
                    weight_c: float) -> np.ndarray:
    """One Cholesky-based iteration, Eq. (2) / Alg. 1 lines 38-44."""
    m, n = a.shape
    dt = a.dtype
    # Z = I + c A^H A  (herk).
    z = weight_c * (a.conj().T @ a)
    z[np.diag_indices(n)] += 1.0
    # posv: Cholesky-factor Z and solve Z X = A^H; then A Z^{-1} = X^H.
    chol, lower = sla.cho_factor(z, lower=True, check_finite=False)
    x = sla.cho_solve((chol, lower), a.conj().T, check_finite=False)
    beta = weight_b / weight_c
    theta = weight_a - beta
    return beta * a + theta * x.conj().T.astype(dt, copy=False)


def qdwh(a: np.ndarray, *,
         cond_est: Optional[float] = None,
         alpha: Optional[float] = None,
         max_iter: int = QDWH_HARD_ITERATION_CAP,
         exact_norms: bool = False,
         iter_log: Optional["IterationLog"] = None,
         checkpoint: Optional["QdwhCheckpointer"] = None) -> QdwhResult:
    """QDWH polar decomposition of an m x n matrix (m >= n).

    Parameters
    ----------
    a:
        Input matrix; any of float32/float64/complex64/complex128.
    cond_est:
        Optional known estimate of cond_2(A).  When given, the QR-based
        condition-estimation stage is skipped and the initial bound is
        ``l0 = 1/(cond_est * sqrt(n))`` — the same defensive sqrt(n)
        deflation the estimated path applies.
    alpha:
        Optional known estimate of ``||A||_2``; skips norm2est.
    max_iter:
        Hard safety cap (the theory guarantees 6 in double precision).
    exact_norms:
        Use exact ``||A||_2`` and exact ``sigma_min`` instead of the
        estimators (testing aid: isolates iteration behaviour from
        estimator fuzz).
    iter_log:
        Optional :class:`repro.obs.qdwh_log.IterationLog`; when given,
        one telemetry record (variant, weights, convergence, condition
        estimate, flops) is appended per iteration.  Default off: the
        return value and signature contract are unchanged.
    checkpoint:
        Optional :class:`repro.resilience.checkpoint.QdwhCheckpointer`.
        The full loop state is written per its policy after each
        iteration, and a matching checkpoint found on entry resumes
        the loop mid-run.  The iterate round-trips losslessly, so an
        interrupted-and-resumed run returns bit-identical ``u`` and
        ``h`` to an uninterrupted one.  Checkpoints carry a content
        fingerprint of ``a`` — state left behind by a *different*
        input (even of the same shape and dtype) is ignored — and a
        run that converges clears the checkpoint directory.

    Returns
    -------
    QdwhResult
        With ``u`` m x n (orthonormal columns), ``h`` n x n Hermitian
        PSD such that ``a ~= u @ h``.
    """
    a = np.asarray(a)
    dt = check_dtype(a.dtype)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {a.shape}")
    m, n = a.shape
    if m < n:
        raise ValueError(
            f"QDWH requires m >= n (paper supports tall rectangular); "
            f"got {m} x {n}. Factor A^H instead.")
    if n == 0:
        return QdwhResult(u=a.copy(), h=np.zeros((0, 0), dtype=dt),
                          iterations=0, it_qr=0, it_chol=0)

    a_orig = a

    # --- Resume from the newest checkpoint, if one matches. ---
    state = ckpt_fp = None
    if checkpoint is not None:
        from ..resilience.checkpoint import input_fingerprint
        ckpt_fp = input_fingerprint(a)
        state = checkpoint.load()
    if state is not None:
        saved = np.asarray(state["ak"])
        if (saved.shape != (m, n) or saved.dtype != dt
                or state.get("fingerprint") != ckpt_fp):
            state = None  # stale checkpoint from a different problem

    if state is not None:
        ak = saved
        li, conv = state["li"], state["conv"]
        it, it_qr, it_chol = state["it"], state["it_qr"], state["it_chol"]
        alpha, l0 = state["alpha"], state["l0"]
        conv_history = list(state["conv_history"])
        weight_history = list(state["weight_history"])
    else:
        # --- Scale: A_0 = A / alpha,  alpha ~ ||A||_2  (lines 10-13). ---
        if alpha is None:
            alpha = (float(np.linalg.norm(a, 2)) if exact_norms
                     else norm2est(a))
        if alpha == 0.0:
            # Zero matrix: U = [I; 0] padding is the conventional choice.
            u = np.zeros((m, n), dtype=dt)
            u[:n, :n] = np.eye(n, dtype=dt)
            return QdwhResult(u=u, h=np.zeros((n, n), dtype=dt),
                              iterations=0, it_qr=0, it_chol=0, alpha=0.0)
        # Guard: alpha is only an estimate (within ~10%); inflate
        # slightly so the scaled matrix truly has 2-norm <= 1 as the
        # weights assume.
        if not exact_norms:
            alpha *= 1.1
        ak = (a / dt.type(alpha)).astype(dt, copy=False)

        # --- Condition estimate -> l0 (lines 14-19). ---
        if cond_est is not None:
            if cond_est < 1.0:
                raise ValueError(f"cond_est must be >= 1, got {cond_est}")
            # Apply the same defensive sqrt(n) deflation as the
            # estimated path (and the tiled implementation): l0 must be
            # a *lower* bound on sigma_min for the weight recurrence's
            # guarantees.
            l0 = 1.0 / (cond_est * math.sqrt(n))
        elif exact_norms:
            smin = float(np.linalg.svd(ak, compute_uv=False)[-1])
            l0 = max(smin, float(np.finfo(np.float64).tiny))
        else:
            l0 = _initial_lower_bound(ak)
        li = l0
        conv = 100.0
        it = it_qr = it_chol = 0
        conv_history = []
        weight_history = []

    inner_tol = qdwh_inner_tolerance(dt)
    weight_tol = qdwh_weight_tolerance(dt)
    if iter_log is not None:
        iter_log.m, iter_log.n = m, n

    # --- Main loop (lines 22-50). ---
    while conv >= inner_tol or abs(li - 1.0) >= weight_tol:
        if it >= max_iter:
            break
        l_enter = li
        wa, wb, wc, li = dynamical_weights(li)
        prev = ak
        if wc > 100.0:
            ak = _qr_iteration(ak, wa, wb, wc)
            it_qr += 1
        else:
            ak = _chol_iteration(ak, wa, wb, wc)
            it_chol += 1
        conv = float(np.linalg.norm(ak - prev, "fro"))
        conv_history.append(conv)
        weight_history.append((wa, wb, wc))
        it += 1
        if iter_log is not None:
            iter_log.record(variant="qr" if wc > 100.0 else "chol",
                            a=wa, b=wb, c=wc, L=l_enter, L_next=li,
                            conv=conv)
        if checkpoint is not None and checkpoint.due(it):
            checkpoint.save(ak=ak, li=li, conv=conv, it=it, it_qr=it_qr,
                            it_chol=it_chol, alpha=float(alpha),
                            l0=float(l0), conv_history=conv_history,
                            weight_history=weight_history,
                            fingerprint=ckpt_fp)

    converged = conv < inner_tol and abs(li - 1.0) < weight_tol
    if checkpoint is not None and converged:
        # A finished run's checkpoints are spent; a later run must
        # start fresh, not resume from this one's converged state.
        checkpoint.clear()

    # --- H = U_p^H A, symmetrized (line 52). ---
    u = ak
    h = u.conj().T @ a_orig
    h = 0.5 * (h + h.conj().T)

    return QdwhResult(u=u, h=h, iterations=it, it_qr=it_qr, it_chol=it_chol,
                      conv_history=conv_history, weight_history=weight_history,
                      alpha=float(alpha), l0=float(l0), converged=converged)
