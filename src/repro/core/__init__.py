"""The paper's primary contribution: QDWH-based polar decomposition.

Layout:

* :mod:`.params` — the scalar (a, b, c, L) dynamical-weight recurrence
  shared by every variant, plus iteration-count prediction.
* :mod:`.qdwh_dense` — reference dense implementation (Algorithm 1) on
  plain numpy arrays, all four dtypes, rectangular m >= n.
* :mod:`.tiled_qdwh` — the SLATE-style implementation on the tiled,
  block-cyclic, task-recorded substrate (:mod:`repro.dist`,
  :mod:`repro.tiled`, :mod:`repro.runtime`).
* :mod:`.baselines` — SVD-based polar, Newton, scaled Newton, DWH.
* :mod:`.zolo` — Zolo-PD (the paper's future-work variant).
* :mod:`.qdwh_eig`, :mod:`.qdwh_svd` — spectral divide-and-conquer
  applications built on the polar decomposition.
* :mod:`.mixed_precision` — low-precision iterations + high-precision
  cleanup (future-work item).
* :mod:`.polar` — the top-level dispatching API.
"""

from .params import (
    QdwhParams,
    dynamical_weights,
    parameter_schedule,
    predict_iterations,
    schedule_table,
)
from .qdwh_dense import qdwh, QdwhResult
from .baselines import (
    polar_svd,
    polar_newton,
    polar_newton_scaled,
    polar_dwh,
)
from .polar import polar
from .zolo import zolo_pd, zolo_degree
from .qdwh_eig import qdwh_eigh
from .qdwh_svd import qdwh_svd
from .mixed_precision import qdwh_mixed_precision

__all__ = [
    "QdwhParams",
    "dynamical_weights",
    "parameter_schedule",
    "predict_iterations",
    "schedule_table",
    "qdwh",
    "QdwhResult",
    "polar",
    "polar_svd",
    "polar_newton",
    "polar_newton_scaled",
    "polar_dwh",
    "zolo_pd",
    "zolo_degree",
    "qdwh_eigh",
    "qdwh_svd",
    "qdwh_mixed_precision",
]
