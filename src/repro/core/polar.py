"""Top-level polar-decomposition API.

``polar(A)`` dispatches between the QDWH implementations and the
baselines so examples/benchmarks can switch algorithms with a string.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .baselines import (
    PolarResult,
    polar_dwh,
    polar_newton,
    polar_newton_scaled,
    polar_svd,
)
from .qdwh_dense import QdwhResult, qdwh

#: Methods accepted by :func:`polar`.
METHODS = ("qdwh", "svd", "newton", "newton_scaled", "dwh", "zolo")


def polar(a: np.ndarray, method: str = "qdwh",
          **kwargs) -> Union[QdwhResult, PolarResult]:
    """Compute the polar decomposition ``A = U @ H``.

    Parameters
    ----------
    a:
        m x n matrix, m >= n, any of the four standard dtypes.
    method:
        One of ``"qdwh"`` (the paper's algorithm, default), ``"svd"``,
        ``"newton"``, ``"newton_scaled"``, ``"dwh"``, or ``"zolo"``
        (the future-work Zolotarev variant).
    **kwargs:
        Forwarded to the chosen implementation (e.g. ``cond_est=`` for
        qdwh, ``max_iter=`` for the iterative baselines).

    Returns
    -------
    An object with at least ``.u``, ``.h``, and ``.iterations``.
    """
    if method == "qdwh":
        return qdwh(a, **kwargs)
    if method == "svd":
        return polar_svd(a, **kwargs)
    if method == "newton":
        return polar_newton(a, **kwargs)
    if method == "newton_scaled":
        return polar_newton_scaled(a, **kwargs)
    if method == "dwh":
        return polar_dwh(a, **kwargs)
    if method == "zolo":
        from .zolo import zolo_pd
        return zolo_pd(a, **kwargs)
    raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
