"""Top-level polar-decomposition API.

``polar(A)`` dispatches between the QDWH implementations and the
baselines so examples/benchmarks can switch algorithms with a string.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

import numpy as np

if TYPE_CHECKING:
    from ..obs.qdwh_log import IterationLog

from .baselines import (
    PolarResult,
    polar_dwh,
    polar_newton,
    polar_newton_scaled,
    polar_svd,
)
from .qdwh_dense import QdwhResult, qdwh

#: Methods accepted by :func:`polar`.
METHODS = ("qdwh", "svd", "newton", "newton_scaled", "dwh", "zolo")


def polar(a: np.ndarray, method: str = "qdwh",
          iter_log: Optional["IterationLog"] = None,
          **kwargs) -> Union[QdwhResult, PolarResult]:
    """Compute the polar decomposition ``A = U @ H``.

    Parameters
    ----------
    a:
        m x n matrix, m >= n, any of the four standard dtypes.
    method:
        One of ``"qdwh"`` (the paper's algorithm, default), ``"svd"``,
        ``"newton"``, ``"newton_scaled"``, ``"dwh"``, or ``"zolo"``
        (the future-work Zolotarev variant).
    iter_log:
        Optional :class:`repro.obs.qdwh_log.IterationLog` collecting
        per-iteration telemetry; only the ``"qdwh"`` method supports
        it (the baselines have no weight recurrence to log).
    **kwargs:
        Forwarded to the chosen implementation (e.g. ``cond_est=`` for
        qdwh, ``max_iter=`` for the iterative baselines).

    Returns
    -------
    An object with at least ``.u``, ``.h``, and ``.iterations``.
    """
    if iter_log is not None and method != "qdwh":
        raise ValueError(
            f"iter_log telemetry is only supported for method='qdwh', "
            f"not {method!r}")
    if method == "qdwh":
        return qdwh(a, iter_log=iter_log, **kwargs)
    if method == "svd":
        return polar_svd(a, **kwargs)
    if method == "newton":
        return polar_newton(a, **kwargs)
    if method == "newton_scaled":
        return polar_newton_scaled(a, **kwargs)
    if method == "dwh":
        return polar_dwh(a, **kwargs)
    if method == "zolo":
        from .zolo import zolo_pd
        return zolo_pd(a, **kwargs)
    raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
