"""QDWH polar decomposition on the tiled/distributed substrate.

This is the reproduction's analogue of the paper's SLATE implementation
(Algorithm 1): every operation is a tiled, task-recorded, owner-computes
computation over a block-cyclic DistMatrix — norm2est, the QR-based
condition estimate, the stacked-QR iterations, the Cholesky iterations,
and the final H formation.

Two execution modes share this one code path:

* **numeric** — tiles hold real data; convergence tests read the actual
  scalar reductions; results match :func:`repro.core.qdwh` to roundoff.
* **symbolic** — no data; the loop is driven by the scalar weight
  schedule (which is data-independent given the condition estimate),
  emitting the exact task graph a run of that size would execute.  The
  performance model simulates this graph on a machine model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from ..obs.qdwh_log import IterationLog

from ..config import (
    QDWH_HARD_ITERATION_CAP,
    qdwh_inner_tolerance,
    qdwh_weight_tolerance,
)
from ..dist.matrix import DistMatrix
from ..runtime.executor import Runtime
from ..runtime.task import TaskKind
from ..tiled.blas3 import add, copy, gemm, herk, scale, transpose_conj
from ..tiled.cholesky import posv
from ..tiled.estimators import norm2est_tiled, trcondest_tiled
from ..tiled.norms import norm_fro, norm_one
from ..tiled.qr import geqrf, qr_explicit
from .params import QdwhParams, dynamical_weights, parameter_schedule


@dataclass
class TiledQdwhResult:
    """Outcome of a tiled QDWH run."""

    u: DistMatrix
    h: DistMatrix
    iterations: int
    it_qr: int
    it_chol: int
    conv_history: List[float] = field(default_factory=list)
    alpha: float = 0.0
    l0: float = 0.0
    converged: bool = True


def _copy_scaled(rt: Runtime, alpha: float, src: DistMatrix,
                 dst: DistMatrix, row_offset: int) -> None:
    """dst[offset tiles ...] = alpha * src (builds the sqrt(c)A block)."""
    for i in range(src.mt):
        di = i + row_offset
        for j in range(src.nt):

            def body(i=i, j=j, di=di):
                dst.tile(di, j)[...] = (dst.dtype.type(alpha)
                                        * src.tile(i, j))

            rt.submit(TaskKind.COPY, reads=(src.ref(i, j),),
                      writes=(dst.ref(di, j),), rank=dst.owner(di, j),
                      flops=float(src.tile_rows(i) * src.tile_cols(j)),
                      tile_dim=dst.nb, fn=body,
                      bytes_out=dst.tile_nbytes(di, j),
                      label=f"cpysc({i},{j})")


def _set_identity_block(rt: Runtime, w: DistMatrix, row_offset: int) -> None:
    """w[offset block] = I (the bottom block of [sqrt(c)A; I])."""
    nt = w.nt
    for i in range(nt):
        di = i + row_offset
        for j in range(nt):

            def body(i=i, j=j, di=di):
                t = w.tile(di, j)
                t[...] = 0
                if i == j:
                    d = min(t.shape)
                    t[np.arange(d), np.arange(d)] = 1

            rt.submit(TaskKind.SET, reads=(), writes=(w.ref(di, j),),
                      rank=w.owner(di, j),
                      flops=float(w.tile_rows(di) * w.tile_cols(j)),
                      tile_dim=w.nb, fn=body,
                      bytes_out=w.tile_nbytes(di, j),
                      label=f"wident({di},{j})")


def _split_rows(rt: Runtime, q: DistMatrix, top_mt: int,
                template_top: DistMatrix) -> Tuple[DistMatrix, DistMatrix]:
    """Split Q (stacked) into Q1 (top_mt tile rows) and Q2 (rest).

    Q2's layout is shifted so each copy is owner-local (zero traffic) —
    the analogue of SLATE's submatrix views.
    """
    q1 = DistMatrix(rt, template_top.m, q.n, q.nb, q.dtype,
                    layout=q.layout, name="Q1",
                    row_heights=q.row_heights[:top_mt],
                    col_widths=q.col_widths)
    q2 = DistMatrix(rt, q.m - template_top.m, q.n, q.nb, q.dtype,
                    layout=q.layout.shifted(top_mt, 0), name="Q2",
                    row_heights=q.row_heights[top_mt:],
                    col_widths=q.col_widths)
    for i in range(q.mt):
        dst, di = (q1, i) if i < top_mt else (q2, i - top_mt)
        for j in range(q.nt):

            def body(i=i, j=j, dst=dst, di=di):
                dst.tile(di, j)[...] = q.tile(i, j)

            rt.submit(TaskKind.COPY, reads=(q.ref(i, j),),
                      writes=(dst.ref(di, j),), rank=dst.owner(di, j),
                      flops=float(q.tile_rows(i) * q.tile_cols(j)),
                      tile_dim=q.nb, fn=body,
                      bytes_out=dst.tile_nbytes(di, j),
                      label=f"split({i},{j})")
    return q1, q2


def _symmetrize(rt: Runtime, h: DistMatrix) -> None:
    """H = (H + H^H) / 2, tile-pair-wise."""
    for i in range(h.mt):
        for j in range(i + 1):
            if i == j:

                def body(i=i):
                    t = h.tile(i, i)
                    t[...] = 0.5 * (t + t.conj().T)

                rt.submit(TaskKind.ADD, reads=(h.ref(i, i),),
                          writes=(h.ref(i, i),), rank=h.owner(i, i),
                          flops=float(h.tile_rows(i) ** 2),
                          tile_dim=h.nb, fn=body,
                          bytes_out=h.tile_nbytes(i, i),
                          label=f"symm({i},{i})")
            else:

                def body(i=i, j=j):
                    lo = h.tile(i, j)
                    up = h.tile(j, i)
                    s = 0.5 * (lo + up.conj().T)
                    lo[...] = s
                    up[...] = s.conj().T

                rt.submit(TaskKind.ADD,
                          reads=(h.ref(i, j), h.ref(j, i)),
                          writes=(h.ref(i, j), h.ref(j, i)),
                          rank=h.owner(i, j),
                          flops=2.0 * h.tile_rows(i) * h.tile_cols(j),
                          tile_dim=h.nb, fn=body,
                          bytes_out=2 * h.tile_nbytes(i, j),
                          label=f"symm({i},{j})")


def _qr_iteration(rt: Runtime, a: DistMatrix, wa: float, wb: float,
                  wc: float) -> None:
    """Eq. (1): stacked QR of [sqrt(c)A; I], A <- theta Q1 Q2^H + beta A."""
    sc = math.sqrt(wc)
    w = DistMatrix(rt, a.m + a.n, a.n, a.nb, a.dtype, layout=a.layout,
                   name="W",
                   row_heights=a.row_heights + a.col_widths,
                   col_widths=a.col_widths)
    rt.advance_phase()
    _copy_scaled(rt, sc, a, w, 0)
    _set_identity_block(rt, w, a.mt)
    _fac, q = qr_explicit(rt, w)
    q1, q2 = _split_rows(rt, q, a.mt, a)
    theta = (wa - wb / wc) / sc
    beta = wb / wc
    rt.advance_phase()
    gemm(rt, theta, q1, q2, beta, a, opb="C")


def _chol_iteration(rt: Runtime, a: DistMatrix, wa: float, wb: float,
                    wc: float) -> None:
    """Eq. (2): Z = I + c A^H A, posv solve, A <- beta A + theta X^H."""
    rt.advance_phase()
    z = DistMatrix(rt, a.n, a.n, a.nb, a.dtype, layout=a.layout, name="Z",
                   row_heights=a.col_widths, col_widths=a.col_widths)
    _set_identity_block(rt, z, 0)
    herk(rt, wc, a, 1.0, z, opa="C")
    rhs = transpose_conj(rt, a)          # A^H, n x m
    posv(rt, z, rhs)                     # X overwrites rhs
    xt = transpose_conj(rt, rhs)         # X^H, m x n
    beta = wb / wc
    theta = wa - beta
    rt.advance_phase()
    add(rt, theta, xt, beta, a)


#: Execution backends for numeric tiled runs.
BACKENDS = ("eager", "threads")


def tiled_qdwh(rt: Runtime, a: DistMatrix, *,
               cond_est: Optional[float] = None,
               max_iter: int = QDWH_HARD_ITERATION_CAP,
               norm2est_sweeps: Optional[int] = None,
               condest_cycles: Optional[int] = None,
               iter_log: Optional["IterationLog"] = None,
               backend: str = "eager",
               workers: Optional[int] = None) -> TiledQdwhResult:
    """Algorithm 1 on the tiled substrate.

    Parameters
    ----------
    rt:
        The runtime (numeric or symbolic).
    a:
        m x n DistMatrix (m >= n); overwritten by the polar factor U.
    backend:
        ``"eager"`` (default) runs each task payload at submit time —
        the original single-threaded semantics, bit-identical to
        earlier releases.  ``"threads"`` switches the runtime to
        deferred recording and executes the DAG on a
        :class:`repro.runtime.parallel.ParallelExecutor` thread pool
        (real concurrency; numeric mode only).  A runtime constructed
        with ``deferred=True`` already uses the threaded backend.
    workers:
        Thread count for ``backend="threads"`` (default: one per
        core).  ``workers=1`` is bit-identical to eager execution.
    cond_est:
        Known condition estimate.  Optional in numeric mode (the tiled
        QR + trcondest stage runs otherwise); **required** in symbolic
        mode, where the iteration schedule must be known a priori.
        The planning bound is ``l0 = 1/(cond_est * sqrt(n))``, matching
        the deflation the practical estimator applies.
    norm2est_sweeps / condest_cycles:
        Fixed estimator iteration counts for symbolic runs.
    iter_log:
        Optional :class:`repro.obs.qdwh_log.IterationLog`: one record
        per iteration (variant, weights, convergence).  In symbolic
        mode the convergence column is NaN (no numeric data flows).

    Returns
    -------
    TiledQdwhResult with ``u`` aliasing ``a`` (overwritten, as in the
    paper) and a fresh ``h``.
    """
    m, n = a.shape
    if m < n:
        raise ValueError(f"QDWH requires m >= n, got {m} x {n}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of "
                         f"{BACKENDS}")
    if backend == "threads":
        if not rt.numeric:
            raise ValueError("backend='threads' requires a numeric runtime")
        rt.enable_deferred(workers=workers)
    dt = a.dtype
    if n == 0:
        # Empty problem: no tasks, no iterations — the trace/simulate
        # paths must survive a zero-task DAG rather than divide by the
        # (undefined) condition deflation below.
        h = DistMatrix(rt, 0, 0, a.nb, dt, layout=a.layout, name="H")
        rt.sync()  # flush any pending window from the caller
        return TiledQdwhResult(u=a, h=h, iterations=0, it_qr=0,
                               it_chol=0, alpha=0.0, l0=0.0)
    inner_tol = qdwh_inner_tolerance(dt)
    weight_tol = qdwh_weight_tolerance(dt)

    if not rt.numeric and cond_est is None:
        raise ValueError("symbolic tiled_qdwh requires cond_est")

    # Backup A for the final H = U^H A (Algorithm 1, line 8).
    acpy = DistMatrix(rt, m, n, a.nb, dt, layout=a.layout, name="Acpy",
                      row_heights=a.row_heights, col_widths=a.col_widths)
    copy(rt, a, acpy)

    # --- Two-norm estimate and scaling (lines 10-13). ---
    rt.advance_phase()
    alpha_res = norm2est_tiled(rt, a, sweeps=norm2est_sweeps)
    if rt.numeric:
        alpha = alpha_res.value
        if alpha == 0.0:
            # Zero matrix: conventional polar factors U = [I; 0], H = 0.
            _set_identity_block(rt, a, 0)  # writes top n x n block
            h = DistMatrix(rt, n, n, a.nb, dt, layout=a.layout, name="H",
                           row_heights=a.col_widths, col_widths=a.col_widths)
            from ..tiled.blas3 import set_zero
            set_zero(rt, h)
            for i in range(a.nt, a.mt):
                for j in range(a.nt):
                    def zbody(i=i, j=j):
                        a.tile(i, j)[...] = 0
                    rt.submit(TaskKind.SET, reads=(), writes=(a.ref(i, j),),
                              rank=a.owner(i, j), fn=zbody,
                              bytes_out=a.tile_nbytes(i, j), label="uzero")
            rt.sync()  # materialize U = [I; 0], H = 0 before returning
            return TiledQdwhResult(u=a, h=h, iterations=0, it_qr=0,
                                   it_chol=0, alpha=0.0, l0=0.0)
        alpha *= 1.1  # estimator safety margin, as in the dense driver
    else:
        alpha = 1.0
    rt.advance_phase()
    scale(rt, 1.0 / alpha, a)

    # --- Condition estimate -> l0 (lines 14-19). ---
    if cond_est is not None:
        l0 = 1.0 / (cond_est * math.sqrt(n))
        if not rt.numeric:
            # Emit the estimation stage's tasks anyway so the simulated
            # cost includes the paper's stage 1 (QR + trcondest).
            w1 = DistMatrix(rt, m, n, a.nb, dt, layout=a.layout, name="W1c",
                            row_heights=a.row_heights,
                            col_widths=a.col_widths)
            copy(rt, a, w1)
            fac = geqrf(rt, w1)
            trcondest_tiled(rt, fac, cycles=condest_cycles)
            norm_one(rt, a)
    else:
        w1 = DistMatrix(rt, m, n, a.nb, dt, layout=a.layout, name="W1c",
                        row_heights=a.row_heights, col_widths=a.col_widths)
        copy(rt, a, w1)
        fac = geqrf(rt, w1)
        rcond = trcondest_tiled(rt, fac, cycles=condest_cycles)
        anorm = norm_one(rt, a)
        l0 = anorm.value * rcond.value / math.sqrt(n)
        if not np.isfinite(l0) or l0 <= 0.0:
            l0 = float(np.finfo(np.float64).tiny)
        l0 = min(l0, 1.0)

    conv_history: List[float] = []
    it = it_qr = it_chol = 0
    converged = True
    if iter_log is not None:
        iter_log.m, iter_log.n = m, n

    if rt.numeric:
        li = l0
        conv = 100.0
        prev = DistMatrix(rt, m, n, a.nb, dt, layout=a.layout, name="prev",
                          row_heights=a.row_heights, col_widths=a.col_widths)
        while conv >= inner_tol or abs(li - 1.0) >= weight_tol:
            if it >= max_iter:
                converged = False
                break
            l_enter = li
            wa, wb, wc, li = dynamical_weights(li)
            copy(rt, a, prev)
            if wc > 100.0:
                _qr_iteration(rt, a, wa, wb, wc)
                it_qr += 1
            else:
                _chol_iteration(rt, a, wa, wb, wc)
                it_chol += 1
            rt.advance_phase()
            add(rt, 1.0, a, -1.0, prev)  # prev = A_k - A_{k-1}
            conv = norm_fro(rt, prev).value
            conv_history.append(conv)
            it += 1
            if iter_log is not None:
                iter_log.record(variant="qr" if wc > 100.0 else "chol",
                                a=wa, b=wb, c=wc, L=l_enter, L_next=li,
                                conv=conv)
    else:
        schedule: List[QdwhParams] = parameter_schedule(l0, dtype=dt,
                                                        max_iter=max_iter)
        prev = DistMatrix(rt, m, n, a.nb, dt, layout=a.layout, name="prev",
                          row_heights=a.row_heights, col_widths=a.col_widths)
        for p in schedule:
            copy(rt, a, prev)
            if p.use_qr:
                _qr_iteration(rt, a, p.a, p.b, p.c)
                it_qr += 1
            else:
                _chol_iteration(rt, a, p.a, p.b, p.c)
                it_chol += 1
            rt.advance_phase()
            add(rt, 1.0, a, -1.0, prev)
            norm_fro(rt, prev)
            it += 1
            if iter_log is not None:
                iter_log.record(variant="qr" if p.use_qr else "chol",
                                a=p.a, b=p.b, c=p.c, L=p.L, L_next=p.L_next)

    # --- H = U^H A, symmetrized (line 52). ---
    rt.advance_phase()
    h = DistMatrix(rt, n, n, a.nb, dt, layout=a.layout, name="H",
                   row_heights=a.col_widths, col_widths=a.col_widths)
    gemm(rt, 1.0, a, acpy, 0.0, h, opa="C")
    _symmetrize(rt, h)

    rt.sync()  # deferred backend: execute the tail window (H formation)
    return TiledQdwhResult(u=a, h=h, iterations=it, it_qr=it_qr,
                           it_chol=it_chol, conv_history=conv_history,
                           alpha=float(alpha), l0=float(l0),
                           converged=converged)
