"""QDWH polar decomposition on the tiled/distributed substrate.

This is the reproduction's analogue of the paper's SLATE implementation
(Algorithm 1): every operation is a tiled, task-recorded, owner-computes
computation over a block-cyclic DistMatrix — norm2est, the QR-based
condition estimate, the stacked-QR iterations, the Cholesky iterations,
and the final H formation.

Two execution modes share this one code path:

* **numeric** — tiles hold real data; convergence tests read the actual
  scalar reductions; results match :func:`repro.core.qdwh` to roundoff.
* **symbolic** — no data; the loop is driven by the scalar weight
  schedule (which is data-independent given the condition estimate),
  emitting the exact task graph a run of that size would execute.  The
  performance model simulates this graph on a machine model.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from ..obs.qdwh_log import IterationLog
    from ..resilience.checkpoint import QdwhCheckpointer

from ..config import (
    QDWH_HARD_ITERATION_CAP,
    qdwh_inner_tolerance,
    qdwh_weight_tolerance,
)
from ..dist.matrix import DistMatrix
from ..obs.metrics import get_registry
from ..obs.timeline import FAULT_HEALTH, FaultEvent
from ..runtime.executor import Runtime
from ..runtime.task import TaskKind
from ..tiled.blas3 import add, copy, gemm, herk, scale, transpose_conj
from ..tiled.cholesky import posv
from ..tiled.estimators import norm2est_tiled, trcondest_tiled
from ..tiled.norms import norm_fro, norm_one
from ..tiled.qr import geqrf, qr_explicit
from .params import QdwhParams, dynamical_weights, parameter_schedule


@dataclass
class TiledQdwhResult:
    """Outcome of a tiled QDWH run.

    ``degraded`` is True when a numerical health guard abandoned the
    tiled iteration and recomputed the factors on the dense
    :func:`repro.core.qdwh_dense.qdwh` path; ``health_log`` lists every
    guard intervention (also emitted as RuntimeWarnings, FAULT_HEALTH
    trace events, and ``RecoveryStats.health_events``).
    """

    u: DistMatrix
    h: DistMatrix
    iterations: int
    it_qr: int
    it_chol: int
    conv_history: List[float] = field(default_factory=list)
    alpha: float = 0.0
    l0: float = 0.0
    converged: bool = True
    degraded: bool = False
    health_log: List[str] = field(default_factory=list)


def _health(rt: Runtime, health_log: List[str], msg: str) -> None:
    """Record one numerical-health intervention everywhere it is
    visible: the result's ``health_log``, a RuntimeWarning, the metrics
    registry, the trace sink (FAULT_HEALTH), and — when a threaded
    executor is live — ``RecoveryStats.health_events``."""
    health_log.append(msg)
    warnings.warn(f"tiled_qdwh: {msg}", RuntimeWarning, stacklevel=3)
    get_registry().counter("resilience.health_events").inc()
    sink = rt._exec_sink
    if sink is not None:
        sink.on_fault(FaultEvent(kind=FAULT_HEALTH, time=0.0, rank=0,
                                 tid=-1, detail=msg))
    stats = rt.exec_stats
    if stats is not None:
        stats.recovery.health_events += 1


def _scatter_dense(mat: DistMatrix, arr: np.ndarray) -> None:
    """Driver-level scatter of a dense array into an existing matrix
    (checkpoint resume / dense-fallback install; not a tiled op)."""
    for i in range(mat.mt):
        r0 = mat.row_offsets[i]
        for j in range(mat.nt):
            c0 = mat.col_offsets[j]
            mat.set_tile(i, j, arr[r0:r0 + mat.tile_rows(i),
                                   c0:c0 + mat.tile_cols(j)])


def _copy_scaled(rt: Runtime, alpha: float, src: DistMatrix,
                 dst: DistMatrix, row_offset: int) -> None:
    """dst[offset tiles ...] = alpha * src (builds the sqrt(c)A block)."""
    for i in range(src.mt):
        di = i + row_offset
        for j in range(src.nt):

            def body(i=i, j=j, di=di):
                dst.tile(di, j)[...] = (dst.dtype.type(alpha)
                                        * src.tile(i, j))

            rt.submit(TaskKind.COPY, reads=(src.ref(i, j),),
                      writes=(dst.ref(di, j),), rank=dst.owner(di, j),
                      flops=float(src.tile_rows(i) * src.tile_cols(j)),
                      tile_dim=dst.nb, fn=body,
                      bytes_out=dst.tile_nbytes(di, j),
                      label=f"cpysc({i},{j})")


def _set_identity_block(rt: Runtime, w: DistMatrix, row_offset: int) -> None:
    """w[offset block] = I (the bottom block of [sqrt(c)A; I])."""
    nt = w.nt
    for i in range(nt):
        di = i + row_offset
        for j in range(nt):

            def body(i=i, j=j, di=di):
                t = w.tile(di, j)
                t[...] = 0
                if i == j:
                    d = min(t.shape)
                    t[np.arange(d), np.arange(d)] = 1

            rt.submit(TaskKind.SET, reads=(), writes=(w.ref(di, j),),
                      rank=w.owner(di, j),
                      flops=float(w.tile_rows(di) * w.tile_cols(j)),
                      tile_dim=w.nb, fn=body,
                      bytes_out=w.tile_nbytes(di, j),
                      label=f"wident({di},{j})")


def _split_rows(rt: Runtime, q: DistMatrix, top_mt: int,
                template_top: DistMatrix) -> Tuple[DistMatrix, DistMatrix]:
    """Split Q (stacked) into Q1 (top_mt tile rows) and Q2 (rest).

    Q2's layout is shifted so each copy is owner-local (zero traffic) —
    the analogue of SLATE's submatrix views.
    """
    q1 = DistMatrix(rt, template_top.m, q.n, q.nb, q.dtype,
                    layout=q.layout, name="Q1",
                    row_heights=q.row_heights[:top_mt],
                    col_widths=q.col_widths)
    q2 = DistMatrix(rt, q.m - template_top.m, q.n, q.nb, q.dtype,
                    layout=q.layout.shifted(top_mt, 0), name="Q2",
                    row_heights=q.row_heights[top_mt:],
                    col_widths=q.col_widths)
    for i in range(q.mt):
        dst, di = (q1, i) if i < top_mt else (q2, i - top_mt)
        for j in range(q.nt):

            def body(i=i, j=j, dst=dst, di=di):
                dst.tile(di, j)[...] = q.tile(i, j)

            rt.submit(TaskKind.COPY, reads=(q.ref(i, j),),
                      writes=(dst.ref(di, j),), rank=dst.owner(di, j),
                      flops=float(q.tile_rows(i) * q.tile_cols(j)),
                      tile_dim=q.nb, fn=body,
                      bytes_out=dst.tile_nbytes(di, j),
                      label=f"split({i},{j})")
    return q1, q2


def _symmetrize(rt: Runtime, h: DistMatrix) -> None:
    """H = (H + H^H) / 2, tile-pair-wise."""
    for i in range(h.mt):
        for j in range(i + 1):
            if i == j:

                def body(i=i):
                    t = h.tile(i, i)
                    t[...] = 0.5 * (t + t.conj().T)

                rt.submit(TaskKind.ADD, reads=(h.ref(i, i),),
                          writes=(h.ref(i, i),), rank=h.owner(i, i),
                          flops=float(h.tile_rows(i) ** 2),
                          tile_dim=h.nb, fn=body,
                          bytes_out=h.tile_nbytes(i, i),
                          label=f"symm({i},{i})")
            else:

                def body(i=i, j=j):
                    lo = h.tile(i, j)
                    up = h.tile(j, i)
                    s = 0.5 * (lo + up.conj().T)
                    lo[...] = s
                    up[...] = s.conj().T

                rt.submit(TaskKind.ADD,
                          reads=(h.ref(i, j), h.ref(j, i)),
                          writes=(h.ref(i, j), h.ref(j, i)),
                          rank=h.owner(i, j),
                          flops=2.0 * h.tile_rows(i) * h.tile_cols(j),
                          tile_dim=h.nb, fn=body,
                          bytes_out=2 * h.tile_nbytes(i, j),
                          label=f"symm({i},{j})")


def _qr_iteration(rt: Runtime, a: DistMatrix, wa: float, wb: float,
                  wc: float) -> None:
    """Eq. (1): stacked QR of [sqrt(c)A; I], A <- theta Q1 Q2^H + beta A."""
    sc = math.sqrt(wc)
    w = DistMatrix(rt, a.m + a.n, a.n, a.nb, a.dtype, layout=a.layout,
                   name="W",
                   row_heights=a.row_heights + a.col_widths,
                   col_widths=a.col_widths)
    rt.advance_phase()
    _copy_scaled(rt, sc, a, w, 0)
    _set_identity_block(rt, w, a.mt)
    _fac, q = qr_explicit(rt, w)
    q1, q2 = _split_rows(rt, q, a.mt, a)
    theta = (wa - wb / wc) / sc
    beta = wb / wc
    rt.advance_phase()
    gemm(rt, theta, q1, q2, beta, a, opb="C")


def _chol_iteration(rt: Runtime, a: DistMatrix, wa: float, wb: float,
                    wc: float) -> None:
    """Eq. (2): Z = I + c A^H A, posv solve, A <- beta A + theta X^H."""
    rt.advance_phase()
    z = DistMatrix(rt, a.n, a.n, a.nb, a.dtype, layout=a.layout, name="Z",
                   row_heights=a.col_widths, col_widths=a.col_widths)
    _set_identity_block(rt, z, 0)
    herk(rt, wc, a, 1.0, z, opa="C")
    rhs = transpose_conj(rt, a)          # A^H, n x m
    posv(rt, z, rhs)                     # X overwrites rhs
    xt = transpose_conj(rt, rhs)         # X^H, m x n
    beta = wb / wc
    theta = wa - beta
    rt.advance_phase()
    add(rt, theta, xt, beta, a)


#: Execution backends for numeric tiled runs.
BACKENDS = ("eager", "threads", "processes")

#: Graceful-degradation chain: when a parallel backend's recovery
#: budget is exhausted mid-run (worker crashes and network faults past
#: what the policy can absorb), the factorization is redone one rung
#: down, on the pristine input.
_BACKEND_FALLBACK = {"processes": "threads", "threads": "eager"}


def _demote_backend(rt: Runtime, backend: str) -> None:
    """Tear down a failed parallel executor and re-home ``rt`` on
    ``backend``.  Pending payloads are abandoned (their tile writes
    are untrustworthy) and live fault injection is disarmed — a
    degraded rerun must not replay the fault plan against the
    fallback backend."""
    with contextlib.suppress(Exception):
        rt.abandon_pending()
    if rt._executor is not None:
        with contextlib.suppress(Exception):
            rt._executor.close()
        rt._executor = None
    rt.fault_plan = None
    if backend == "eager":
        rt.disable_deferred()
    else:
        rt.enable_deferred(backend=backend)


def tiled_qdwh(rt: Runtime, a: DistMatrix, *,
               cond_est: Optional[float] = None,
               max_iter: int = QDWH_HARD_ITERATION_CAP,
               norm2est_sweeps: Optional[int] = None,
               condest_cycles: Optional[int] = None,
               iter_log: Optional["IterationLog"] = None,
               backend: str = "eager",
               workers: Optional[int] = None,
               checkpoint: Optional["QdwhCheckpointer"] = None
               ) -> TiledQdwhResult:
    """Algorithm 1 on the tiled substrate — see
    :func:`_tiled_qdwh_impl` for the full parameter reference.

    This wrapper adds **graceful backend degradation** (numeric mode):
    an unrecoverable executor failure on a parallel backend — a
    :class:`~repro.runtime.distributed.WorkerCrashError` or
    :class:`~repro.runtime.distributed.comm.CommError` surfacing after
    the recovery budget is spent — does not abort the factorization.
    The input copy taken before the first recorded task is scattered
    back and the run is redone one rung down the chain *processes →
    threads → eager* (fault injection disarmed), with ``degraded=True``
    on the result and the demotion recorded in ``health_log``.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of "
                         f"{BACKENDS}")
    if backend == "eager" or not rt.numeric:
        return _tiled_qdwh_impl(
            rt, a, cond_est=cond_est, max_iter=max_iter,
            norm2est_sweeps=norm2est_sweeps,
            condest_cycles=condest_cycles, iter_log=iter_log,
            backend=backend, workers=workers, checkpoint=checkpoint)
    from ..runtime.distributed.comm import CommError
    from ..runtime.distributed.executor import WorkerCrashError
    # Captured before any task is recorded: whatever a parallel
    # backend later does to the shared tiles, this copy is pristine.
    pristine = a.to_array()
    health_log: List[str] = []
    bk = backend
    while True:
        try:
            res = _tiled_qdwh_impl(
                rt, a, cond_est=cond_est, max_iter=max_iter,
                norm2est_sweeps=norm2est_sweeps,
                condest_cycles=condest_cycles, iter_log=iter_log,
                backend=bk, workers=workers, checkpoint=checkpoint)
        except (WorkerCrashError, CommError) as exc:
            fb = _BACKEND_FALLBACK.get(bk)
            if fb is None:
                raise
            _health(rt, health_log,
                    f"{bk} backend failed ({type(exc).__name__}: {exc}); "
                    f"degrading to the {fb} backend on the pristine "
                    f"input")
            _demote_backend(rt, fb)
            _scatter_dense(a, pristine)
            bk = fb
            continue
        if health_log:
            res = dataclasses.replace(
                res, degraded=True,
                health_log=health_log + res.health_log)
        return res


def _tiled_qdwh_impl(rt: Runtime, a: DistMatrix, *,
               cond_est: Optional[float] = None,
               max_iter: int = QDWH_HARD_ITERATION_CAP,
               norm2est_sweeps: Optional[int] = None,
               condest_cycles: Optional[int] = None,
               iter_log: Optional["IterationLog"] = None,
               backend: str = "eager",
               workers: Optional[int] = None,
               checkpoint: Optional["QdwhCheckpointer"] = None
               ) -> TiledQdwhResult:
    """Algorithm 1 on the tiled substrate.

    Parameters
    ----------
    rt:
        The runtime (numeric or symbolic).
    a:
        m x n DistMatrix (m >= n); overwritten by the polar factor U.
    backend:
        ``"eager"`` (default) runs each task payload at submit time —
        the original single-threaded semantics, bit-identical to
        earlier releases.  ``"threads"`` switches the runtime to
        deferred recording and executes the DAG on a
        :class:`repro.runtime.parallel.ParallelExecutor` thread pool
        (real concurrency; numeric mode only).  ``"processes"``
        executes the DAG on a
        :class:`repro.runtime.distributed.ProcessExecutor` — forked
        worker processes scheduled centrally, with tiles in shared
        memory (GIL-free parallelism).  A runtime constructed with
        ``deferred=True`` already uses its configured deferred
        backend.
    workers:
        Worker count for ``backend="threads"`` / ``"processes"``
        (default: one per core).  ``workers=1`` is bit-identical to
        eager execution on either backend.
    cond_est:
        Known condition estimate.  Optional in numeric mode (the tiled
        QR + trcondest stage runs otherwise); **required** in symbolic
        mode, where the iteration schedule must be known a priori.
        The planning bound is ``l0 = 1/(cond_est * sqrt(n))``, matching
        the deflation the practical estimator applies.
    norm2est_sweeps / condest_cycles:
        Fixed estimator iteration counts for symbolic runs.
    iter_log:
        Optional :class:`repro.obs.qdwh_log.IterationLog`: one record
        per iteration (variant, weights, convergence).  In symbolic
        mode the convergence column is NaN (no numeric data flows).
    checkpoint:
        Optional :class:`repro.resilience.checkpoint.QdwhCheckpointer`
        (numeric mode only; ignored for symbolic runs).  The loop state
        is saved per the checkpointer's policy after each iteration —
        on the threaded backend always *after* ``rt.sync()``, so a
        snapshot only ever captures committed tile state — and a
        matching checkpoint found on entry resumes the loop mid-run
        (stale state from a different input is ignored, exactly as in
        the dense driver).  A converged run clears the directory.

    Numerical health guards (numeric mode)
    --------------------------------------
    The iteration defends itself against corrupted data and estimator
    failures instead of crashing or silently diverging:

    * unusable ``norm2est`` / condition estimates fall back to
      conservative bounds (Frobenius norm; ``l0 = tiny``);
    * a Cholesky-iteration breakdown (``posv`` raising
      ``LinAlgError``) redoes that step with the unconditionally
      stable QR iteration;
    * a non-finite or exploding iterate, and non-convergence at the
      hard iteration cap, degrade to the dense
      :func:`repro.core.qdwh_dense.qdwh` path on the pristine input
      copy (``degraded=True`` on the result) with a RuntimeWarning
      instead of raising.

    Every intervention is appended to the result's ``health_log`` and
    emitted as a FAULT_HEALTH trace event.

    Returns
    -------
    TiledQdwhResult with ``u`` aliasing ``a`` (overwritten, as in the
    paper) and a fresh ``h``.
    """
    m, n = a.shape
    if m < n:
        raise ValueError(f"QDWH requires m >= n, got {m} x {n}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of "
                         f"{BACKENDS}")
    if backend in ("threads", "processes"):
        if not rt.numeric:
            raise ValueError(
                f"backend={backend!r} requires a numeric runtime")
        rt.enable_deferred(workers=workers, backend=backend)
    dt = a.dtype
    if n == 0:
        # Empty problem: no tasks, no iterations — the trace/simulate
        # paths must survive a zero-task DAG rather than divide by the
        # (undefined) condition deflation below.
        h = DistMatrix(rt, 0, 0, a.nb, dt, layout=a.layout, name="H")
        rt.sync()  # flush any pending window from the caller
        return TiledQdwhResult(u=a, h=h, iterations=0, it_qr=0,
                               it_chol=0, alpha=0.0, l0=0.0)
    inner_tol = qdwh_inner_tolerance(dt)
    weight_tol = qdwh_weight_tolerance(dt)

    if not rt.numeric and cond_est is None:
        raise ValueError("symbolic tiled_qdwh requires cond_est")

    health_log: List[str] = []
    #: cond_est as handed to a dense fallback; nulled when the guard
    #: below finds it unusable (the dense driver validates it too).
    dense_cond = cond_est

    # --- Checkpoint resume (numeric only, mirrors the dense driver). ---
    resume_state = ckpt_fp = None
    if checkpoint is not None and rt.numeric:
        from ..resilience.checkpoint import input_fingerprint
        ckpt_fp = input_fingerprint(a.to_array())
        state = checkpoint.load()
        if state is not None:
            saved = np.asarray(state["ak"])
            if (saved.shape != (m, n) or saved.dtype != dt
                    or state.get("fingerprint") != ckpt_fp):
                state = None  # stale checkpoint from a different problem
        resume_state = state

    # Backup A for the final H = U^H A (Algorithm 1, line 8).
    acpy = DistMatrix(rt, m, n, a.nb, dt, layout=a.layout, name="Acpy",
                      row_heights=a.row_heights, col_widths=a.col_widths)
    copy(rt, a, acpy)

    if resume_state is not None:
        # Skip estimation and scaling: reinstall the saved (already
        # scaled) iterate.  set_tile syncs the acpy copy above first,
        # so the backup still captures the *original* input.
        _scatter_dense(a, np.asarray(resume_state["ak"]))
        alpha = float(resume_state["alpha"])
        l0 = float(resume_state["l0"])
    else:
        # --- Two-norm estimate and scaling (lines 10-13). ---
        rt.advance_phase()
        alpha_res = norm2est_tiled(rt, a, sweeps=norm2est_sweeps)
        if rt.numeric:
            alpha = alpha_res.value
            if not np.isfinite(alpha) or alpha < 0.0:
                # Health guard: the power iteration came back with
                # garbage.  ||A||_F >= ||A||_2 is a safe scaling bound.
                _health(rt, health_log,
                        f"norm2est returned {alpha!r}; falling back to "
                        f"the Frobenius-norm upper bound")
                alpha = float(norm_fro(rt, a).value)
                if not np.isfinite(alpha):
                    raise ValueError(
                        "input matrix contains non-finite entries")
            if alpha == 0.0:
                # Zero matrix: conventional polar factors U = [I; 0], H = 0.
                _set_identity_block(rt, a, 0)  # writes top n x n block
                h = DistMatrix(rt, n, n, a.nb, dt, layout=a.layout, name="H",
                               row_heights=a.col_widths,
                               col_widths=a.col_widths)
                from ..tiled.blas3 import set_zero
                set_zero(rt, h)
                for i in range(a.nt, a.mt):
                    for j in range(a.nt):
                        def zbody(i=i, j=j):
                            a.tile(i, j)[...] = 0
                        rt.submit(TaskKind.SET, reads=(),
                                  writes=(a.ref(i, j),),
                                  rank=a.owner(i, j), fn=zbody,
                                  bytes_out=a.tile_nbytes(i, j),
                                  label="uzero")
                rt.sync()  # materialize U = [I; 0], H = 0 before returning
                return TiledQdwhResult(u=a, h=h, iterations=0, it_qr=0,
                                       it_chol=0, alpha=0.0, l0=0.0,
                                       health_log=health_log)
            alpha *= 1.1  # estimator safety margin, as in the dense driver
        else:
            alpha = 1.0
        rt.advance_phase()
        scale(rt, 1.0 / alpha, a)

        # --- Condition estimate -> l0 (lines 14-19). ---
        if cond_est is not None:
            if rt.numeric and not (np.isfinite(cond_est)
                                   and cond_est >= 1.0):
                # Health guard: a nonsense user/caller estimate must
                # not poison the weight recurrence; tiny is always a
                # valid (if slow) lower bound on sigma_min.
                _health(rt, health_log,
                        f"unusable cond_est={cond_est!r}; using the "
                        f"conservative default lower bound")
                dense_cond = None
                l0 = float(np.finfo(np.float64).tiny)
            else:
                l0 = 1.0 / (cond_est * math.sqrt(n))
            if not rt.numeric:
                # Emit the estimation stage's tasks anyway so the
                # simulated cost includes the paper's stage 1
                # (QR + trcondest).
                w1 = DistMatrix(rt, m, n, a.nb, dt, layout=a.layout,
                                name="W1c", row_heights=a.row_heights,
                                col_widths=a.col_widths)
                copy(rt, a, w1)
                fac = geqrf(rt, w1)
                trcondest_tiled(rt, fac, cycles=condest_cycles)
                norm_one(rt, a)
        else:
            w1 = DistMatrix(rt, m, n, a.nb, dt, layout=a.layout, name="W1c",
                            row_heights=a.row_heights,
                            col_widths=a.col_widths)
            copy(rt, a, w1)
            fac = geqrf(rt, w1)
            rcond = trcondest_tiled(rt, fac, cycles=condest_cycles)
            anorm = norm_one(rt, a)
            l0 = anorm.value * rcond.value / math.sqrt(n)
            if not np.isfinite(l0) or l0 <= 0.0:
                _health(rt, health_log,
                        f"condition estimator returned unusable "
                        f"l0={l0!r}; using the conservative default "
                        f"lower bound")
                l0 = float(np.finfo(np.float64).tiny)
            l0 = min(l0, 1.0)

    conv_history: List[float] = []
    weight_history: List[Tuple[float, float, float]] = []
    it = it_qr = it_chol = 0
    converged = True
    if iter_log is not None:
        iter_log.m, iter_log.n = m, n

    if rt.numeric:
        if resume_state is not None:
            li = float(resume_state["li"])
            conv = float(resume_state["conv"])
            it = int(resume_state["it"])
            it_qr = int(resume_state["it_qr"])
            it_chol = int(resume_state["it_chol"])
            conv_history = [float(c) for c in resume_state["conv_history"]]
            weight_history = [tuple(float(x) for x in w)
                              for w in resume_state["weight_history"]]
        else:
            li = l0
            conv = 100.0
        #: QDWH iterates stay in the unit-ball image of the rational
        #: map (||A_k||_2 <~ 1.3), so ||A_k - A_{k-1}||_F can never
        #: legitimately exceed ~2.6 sqrt(n); beyond this bound the
        #: iterate has been corrupted.
        conv_guard = 4.0 * math.sqrt(n) + 4.0

        def _degrade(reason: str) -> TiledQdwhResult:
            """Last-resort path: redo the factorization densely on the
            pristine input backup and scatter the factors back."""
            _health(rt, health_log, reason)
            from .qdwh_dense import qdwh as dense_qdwh
            res = dense_qdwh(acpy.to_array(), cond_est=dense_cond,
                             max_iter=QDWH_HARD_ITERATION_CAP)
            _scatter_dense(a, res.u)
            hh = DistMatrix(rt, n, n, a.nb, dt, layout=a.layout, name="H",
                            row_heights=a.col_widths,
                            col_widths=a.col_widths)
            _scatter_dense(hh, res.h)
            if checkpoint is not None and res.converged:
                checkpoint.clear()
            return TiledQdwhResult(
                u=a, h=hh, iterations=it + res.iterations,
                it_qr=it_qr + res.it_qr, it_chol=it_chol + res.it_chol,
                conv_history=conv_history + [float(c) for c
                                             in res.conv_history],
                alpha=float(res.alpha), l0=float(res.l0),
                converged=res.converged, degraded=True,
                health_log=health_log)

        prev = DistMatrix(rt, m, n, a.nb, dt, layout=a.layout, name="prev",
                          row_heights=a.row_heights, col_widths=a.col_widths)
        while conv >= inner_tol or abs(li - 1.0) >= weight_tol:
            if it >= max_iter:
                if max_iter >= QDWH_HARD_ITERATION_CAP:
                    # Health guard: out of budget at the hard cap.
                    # Raising would discard the run; hand the pristine
                    # input to the dense driver instead.
                    return _degrade(
                        f"no convergence after {it} iterations "
                        f"(conv={conv:.3e}, |li-1|={abs(li - 1.0):.3e}); "
                        f"degrading to the dense QDWH path")
                # A deliberately small budget (interrupt/checkpoint
                # workflows) keeps the partial result.
                converged = False
                break
            l_enter = li
            wa, wb, wc, li = dynamical_weights(li)
            variant = "qr" if wc > 100.0 else "chol"
            copy(rt, a, prev)
            if wc > 100.0:
                _qr_iteration(rt, a, wa, wb, wc)
                it_qr += 1
            else:
                try:
                    # Commit prev = A_{k-1} first: a breakdown must be
                    # recoverable from prev, so it cannot share an
                    # execution window with the posv that may raise.
                    rt.sync()
                    _chol_iteration(rt, a, wa, wb, wc)
                    rt.sync()  # deferred: surface the breakdown here
                    it_chol += 1
                except np.linalg.LinAlgError as exc:
                    # Health guard: Z = I + c A^H A not SPD (corrupted
                    # or ill-conditioned iterate).  A is written only
                    # by the final add, which depends on the complete
                    # posv solve, so the iterate is still A_{k-1};
                    # drop the dead window and redo the step with the
                    # unconditionally stable QR variant.
                    _health(rt, health_log,
                            f"Cholesky breakdown at iteration {it + 1} "
                            f"({exc}); redoing the step with the QR "
                            f"iteration")
                    rt.abandon_pending()
                    copy(rt, prev, a)  # defensive restore + re-chains epochs
                    _qr_iteration(rt, a, wa, wb, wc)
                    it_qr += 1
                    variant = "qr"
            rt.advance_phase()
            add(rt, 1.0, a, -1.0, prev)  # prev = A_k - A_{k-1}
            conv = float(norm_fro(rt, prev).value)
            if not np.isfinite(conv) or conv > conv_guard:
                # Health guard: NaN/Inf or an exploding iterate —
                # corruption slipped past the executor's defenses.
                return _degrade(
                    f"iterate health check failed at iteration {it + 1} "
                    f"(||A_k - A_k-1||_F = {conv!r}); degrading to the "
                    f"dense QDWH path")
            conv_history.append(conv)
            weight_history.append((wa, wb, wc))
            it += 1
            if iter_log is not None:
                iter_log.record(variant=variant,
                                a=wa, b=wb, c=wc, L=l_enter, L_next=li,
                                conv=conv)
            if checkpoint is not None and checkpoint.due(it):
                rt.sync()  # checkpoint only committed tile state
                checkpoint.save(ak=a.to_array(), li=li, conv=conv, it=it,
                                it_qr=it_qr, it_chol=it_chol, alpha=alpha,
                                l0=l0, conv_history=conv_history,
                                weight_history=weight_history,
                                fingerprint=ckpt_fp)
    else:
        schedule: List[QdwhParams] = parameter_schedule(l0, dtype=dt,
                                                        max_iter=max_iter)
        prev = DistMatrix(rt, m, n, a.nb, dt, layout=a.layout, name="prev",
                          row_heights=a.row_heights, col_widths=a.col_widths)
        for p in schedule:
            copy(rt, a, prev)
            if p.use_qr:
                _qr_iteration(rt, a, p.a, p.b, p.c)
                it_qr += 1
            else:
                _chol_iteration(rt, a, p.a, p.b, p.c)
                it_chol += 1
            rt.advance_phase()
            add(rt, 1.0, a, -1.0, prev)
            norm_fro(rt, prev)
            it += 1
            if iter_log is not None:
                iter_log.record(variant="qr" if p.use_qr else "chol",
                                a=p.a, b=p.b, c=p.c, L=p.L, L_next=p.L_next)

    # --- H = U^H A, symmetrized (line 52). ---
    rt.advance_phase()
    h = DistMatrix(rt, n, n, a.nb, dt, layout=a.layout, name="H",
                   row_heights=a.col_widths, col_widths=a.col_widths)
    gemm(rt, 1.0, a, acpy, 0.0, h, opa="C")
    _symmetrize(rt, h)

    rt.sync()  # deferred backend: execute the tail window (H formation)
    if checkpoint is not None and rt.numeric and converged:
        checkpoint.clear()
    return TiledQdwhResult(u=a, h=h, iterations=it, it_qr=it_qr,
                           it_chol=it_chol, conv_history=conv_history,
                           alpha=float(alpha), l0=float(l0),
                           converged=converged, health_log=health_log)
