"""SVD via the polar decomposition (Higham & Papadimitriou framework).

Section 3 of the paper: "The main steps to compute the SVD through the
polar decomposition start by finding the polar decomposition A = U_p H,
then the EVD of H = V Lambda V^H, therefore A = (U_p V) Lambda V^H =
U Lambda V^H."

Also provides the "light-weight" partial-SVD variant the introduction
mentions (most significant singular values/vectors) built on the
partial EVD of H.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..config import check_dtype
from .qdwh_dense import qdwh
from .qdwh_eig import qdwh_eigh, qdwh_partial_eigh


@dataclass
class SvdResult:
    """SVD A = U diag(s) V^H with s descending."""

    u: np.ndarray
    s: np.ndarray
    vh: np.ndarray
    polar_iterations: int


def qdwh_svd(a: np.ndarray, *,
             eig_min_block: int = 32,
             polar_fn: Optional[Callable] = None,
             use_qdwh_eig: bool = True) -> SvdResult:
    """Singular value decomposition through QDWH.

    1. ``A = U_p H``          (QDWH polar decomposition)
    2. ``H = V diag(s) V^H``  (Hermitian EVD — QDWH divide-and-conquer
       by default, LAPACK ``eigh`` with ``use_qdwh_eig=False``)
    3. ``U = U_p V``.

    Singular values are returned in descending order; tiny negative
    eigenvalues of H (roundoff on a rank-deficient A) are clamped to 0.
    """
    a = np.asarray(a)
    check_dtype(a.dtype)
    m, n = a.shape
    if m < n:
        raise ValueError(f"requires m >= n, got {m} x {n}; pass A^H")
    pfn = polar_fn if polar_fn is not None else qdwh
    pres = pfn(a)
    if use_qdwh_eig:
        eres = qdwh_eigh(pres.h, min_block=eig_min_block)
        w, v = eres.w, eres.v
    else:
        w, v = np.linalg.eigh(pres.h)
    # eigh returns ascending; SVD convention is descending.
    w = w[::-1].copy()
    v = v[:, ::-1].copy()
    w[w < 0] = 0.0
    u = pres.u @ v
    return SvdResult(u=u, s=np.asarray(w, dtype=float), vh=v.conj().T,
                     polar_iterations=getattr(pres, "iterations", 0))


def qdwh_partial_svd(a: np.ndarray, threshold: float, *,
                     min_block: int = 32) -> SvdResult:
    """Singular triplets with singular value above ``threshold``.

    The light-weight variant (Ltaief et al., PASC'18 adaptive-optics
    use case): polar-decompose once, then extract only the invariant
    subspace of H with eigenvalues > threshold.
    """
    a = np.asarray(a)
    check_dtype(a.dtype)
    m, n = a.shape
    if m < n:
        raise ValueError(f"requires m >= n, got {m} x {n}")
    if threshold < 0:
        raise ValueError("threshold must be >= 0 (singular values are >= 0)")
    pres = qdwh(a)
    part = qdwh_partial_eigh(pres.h, threshold, side="above",
                             min_block=min_block)
    w = part.w[::-1].copy()
    v = part.v[:, ::-1].copy()
    w[w < 0] = 0.0
    u = pres.u @ v
    return SvdResult(u=u, s=np.asarray(w, dtype=float), vh=v.conj().T,
                     polar_iterations=pres.iterations)
