"""Zolo-PD: polar decomposition via Zolotarev rational approximation.

The paper's Section 8 names this as future work: "the Zolo PD algorithm
[Nakatsukasa & Freund], which requires an even higher number of flops
than QDWH-based PD, but can exploit a higher level of concurrency,
making it attractive in the strong-scaling regime."

Zolo-PD replaces QDWH's degree-(3,2) rational iteration with the
type-(2r+1, 2r) Zolotarev best rational approximation to sign(x) on
[-1, -l] U [l, 1].  One Zolo iteration evaluates r *independent*
QR-based terms (the concurrency win); for kappa up to 1e16, r = 8
converges in two iterations.

Implementation follows Nakatsukasa & Freund, "Computing fundamental
matrix decompositions accurately via the matrix sign function" (SIAM
Review 2016): coefficients from Jacobi elliptic functions, partial
fraction evaluation, inverse-free QR formulation of each term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np
import scipy.special as special

from ..config import check_dtype, eps
from .estimators import norm2est, trcondest


@dataclass
class ZoloResult:
    """Polar factors computed by Zolo-PD."""

    u: np.ndarray
    h: np.ndarray
    iterations: int
    degree: int
    method: str = "zolo"
    conv_history: List[float] = field(default_factory=list)
    converged: bool = True

    @property
    def concurrent_factorizations(self) -> int:
        """QR factorizations per iteration that can run concurrently."""
        return self.degree


def _zolotarev_coefficients(l: float, r: int) -> Tuple[np.ndarray, float]:
    """Coefficients c_1..c_2r and scaling Mhat of the Zolotarev function.

    The type-(2r+1, 2r) Zolotarev function on [l, 1] is

        Z(x) = Mhat * x * prod_{j=1}^{r} (x^2 + c_{2j}) / (x^2 + c_{2j-1})

    with c_i = l^2 sn^2(i K'/(2r+1); k') / cn^2(i K'/(2r+1); k') and
    k' = sqrt(1 - l^2).  Mhat normalizes so Z equioscillates in (0, 1];
    we use the standard choice making max Z = 1 impossible to exceed:
    Z(1) scaled such that 1 - Z equioscillates, i.e.
    Mhat = 1 / prod ((1 + c_{2j-1}) / (1 + c_{2j})).
    """
    if not (0.0 < l < 1.0):
        raise ValueError(f"need 0 < l < 1, got {l}")
    kp2 = 1.0 - l * l  # modulus^2 of the complementary elliptic integral
    # ellipkm1(p) = K(1 - p) evaluated accurately near p = 0; for tiny l
    # the naive ellipk(1 - l^2) sees its argument round to 1 and blows up.
    big_kp = special.ellipkm1(l * l)
    i = np.arange(1, 2 * r + 1, dtype=np.float64)
    sn, cn, _dn, _ph = special.ellipj(i * big_kp / (2 * r + 1), kp2)
    c = (l * l) * (sn * sn) / (cn * cn)
    # Mhat = prod (1 + c_{2j-1}) / (1 + c_{2j})  makes Z(1) = 1 exactly.
    mhat = 1.0
    for j in range(r):
        mhat *= (1.0 + c[2 * j]) / (1.0 + c[2 * j + 1])
    return c, mhat


def _partial_fraction_weights(c: np.ndarray, r: int) -> np.ndarray:
    """Residues a_j of x*prod((x^2+c_even)/(x^2+c_odd)) at -c_odd.

    prod_j (x2 + c_{2j}) / prod_j (x2 + c_{2j-1})
        = 1 + sum_j a_j / (x2 + c_{2j-1}).
    """
    a = np.empty(r, dtype=np.float64)
    for j in range(r):
        num = 1.0
        den = 1.0
        for k in range(r):
            num *= c[2 * j] - c[2 * k + 1]
            if k != j:
                den *= c[2 * j] - c[2 * k]
        # evaluated at x^2 = -c_{2j-1}; c[2j] is c_{2j+1} 0-indexed odd term
        a[j] = -num / den
    return a


def _zolo_scalar(x: float, c: np.ndarray, mhat: float, r: int) -> float:
    """Evaluate the Zolotarev function at a scalar (for l-updates)."""
    x2 = x * x
    val = x
    for j in range(r):
        val *= (x2 + c[2 * j + 1]) / (x2 + c[2 * j])
    return mhat * val


def zolo_degree(l0: float, dtype=np.float64, max_degree: int = 8) -> int:
    """Smallest Zolotarev degree r such that two iterations converge.

    Simulates the scalar map: l -> Z(l) twice and picks the smallest
    r in 1..max_degree with |Z(Z(l0)) - 1| below ~10 eps.  For
    l0 = 1e-16 this returns 8 (two iterations, as in Nakatsukasa &
    Freund); well-conditioned problems get small r.
    """
    l0 = min(max(l0, 1e-300), 1.0 - 1e-16)
    target = 10.0 * eps(dtype)
    for r in range(1, max_degree + 1):
        l = l0
        for _ in range(2):
            c, mhat = _zolotarev_coefficients(l, r)
            l = min(_zolo_scalar(l, c, mhat, r), 1.0)
        if abs(l - 1.0) <= target:
            return r
    return max_degree


def _zolo_iteration(x: np.ndarray, l: float, r: int) -> Tuple[np.ndarray, float]:
    """One Zolo iteration: r independent QR-based partial-fraction terms.

    X_{k+1} = Mhat * (X + sum_j a_j * X (X^H X + c_{2j-1} I)^{-1}),
    each term via QR of [X; sqrt(c_{2j-1}) I]:
    X (X^H X + c I)^{-1} = Q1 Q2^H / sqrt(c).

    In the distributed setting the r QR factorizations are independent
    tasks — this is exactly the extra concurrency the paper's future
    work section is after.
    """
    m, n = x.shape
    dt = x.dtype
    c, mhat = _zolotarev_coefficients(l, r)
    a = _partial_fraction_weights(c, r)
    acc = x.copy()
    ident = np.eye(n, dtype=dt)
    for j in range(r):
        cj = float(c[2 * j])  # c_{2j-1} in 1-based indexing
        sqrt_cj = float(np.sqrt(cj))  # python float: avoids f32 promotion
        w = np.empty((m + n, n), dtype=dt)
        w[:m] = x
        w[m:] = sqrt_cj * ident
        q, _ = np.linalg.qr(w)
        term = (q[:m] @ q[m:].conj().T) / sqrt_cj
        acc += dt.type(a[j]) * term
    x_next = dt.type(mhat) * acc
    l_next = min(_zolo_scalar(l, c, mhat, r), 1.0)
    return x_next, l_next


def zolo_pd(a: np.ndarray, *, max_iter: int = 6,
            degree: int | None = None) -> ZoloResult:
    """Polar decomposition via the Zolotarev rational iteration.

    Parameters
    ----------
    a:
        m x n matrix, m >= n.
    max_iter:
        Safety cap (two iterations suffice by construction).
    degree:
        Zolotarev half-degree r; ``None`` selects the smallest r that
        converges in two iterations (8 for kappa ~ 1e16).
    """
    a = np.asarray(a)
    dt = check_dtype(a.dtype)
    m, n = a.shape
    if m < n:
        raise ValueError(f"requires m >= n, got {m} x {n}")
    if n == 0:
        return ZoloResult(u=a.copy(), h=np.zeros((0, 0), dtype=dt),
                          iterations=0, degree=0)
    alpha = norm2est(a)
    if alpha == 0.0:
        u = np.zeros((m, n), dtype=dt)
        u[:n, :n] = np.eye(n, dtype=dt)
        return ZoloResult(u=u, h=np.zeros((n, n), dtype=dt),
                          iterations=0, degree=0)
    alpha *= 1.1
    x = (a / dt.type(alpha)).astype(dt, copy=False)
    # Lower bound on sigma_min of the scaled matrix, as in QDWH.
    rfac = np.linalg.qr(x, mode="r")
    anorm1 = float(np.max(np.sum(np.abs(x), axis=0)))
    l = anorm1 * trcondest(np.ascontiguousarray(rfac[:n, :n])) / np.sqrt(n)
    if not np.isfinite(l) or l <= 0.0:
        l = 1e-16 if eps(dt) < 1e-10 else 1e-7
    l = min(l, 1.0 - 1e-16)
    r = degree if degree is not None else zolo_degree(l, dtype=dt)

    tol = float((5.0 * eps(dt)) ** (1.0 / 3.0))
    history: List[float] = []
    it = 0
    converged = False
    while it < max_iter:
        x_next, l = _zolo_iteration(x, min(l, 1.0 - 1e-16), r)
        delta = float(np.linalg.norm(x_next - x, "fro"))
        history.append(delta)
        x = x_next
        it += 1
        if delta < tol and abs(l - 1.0) < 1e4 * eps(dt):
            converged = True
            break
    # Newton-Schulz polish: one cheap gemm-only step cleans up the last
    # digits of orthogonality (standard Zolo-PD practice).
    g = x.conj().T @ x
    x = 0.5 * x @ (3.0 * np.eye(n, dtype=dt) - g)
    h = x.conj().T @ a
    h = 0.5 * (h + h.conj().T)
    return ZoloResult(u=x, h=h, iterations=it, degree=r,
                      conv_history=history, converged=converged)
