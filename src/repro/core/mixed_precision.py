"""Mixed-precision QDWH (the paper's Section 8 future-work item).

Strategy: run the bulk of the QDWH iterations in a low precision
(float32 / complex64), then polish the polar factor in the target
precision with Newton-Schulz steps,

    U <- U (3 I - U^H U) / 2,

which are pure gemm (GPU-friendly) and converge quadratically once
``||U^H U - I||_2 < 1`` — guaranteed after the low-precision phase,
whose orthogonality error is ~1e-7 << 1.

Accuracy contract (important): the polish restores *orthogonality* of
U to full precision, but the *backward error* ||A - U H||_F / ||A||_F
floors at roughly n * eps(float32) ~ 1e-7 — the low-precision phase
commits to singular subspaces with float32 fidelity and no cheap
post-processing can recover them (the unitary polar factor has
condition number ~1/sigma_min(A), so for the paper's kappa = 1e16
workload full-precision U is unreachable from an f32 start).  This is
the standard speed/accuracy trade-off of mixed-precision polar
decomposition; the X2 extension benchmark quantifies both sides.

The flop savings: every QR/Cholesky iteration runs at half the memory
traffic and (on real accelerators) 2-16x the throughput; the cleanup
costs 2 gemms per step, typically 2 steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..config import check_dtype, eps, is_complex
from .qdwh_dense import QdwhResult, qdwh

#: Map a high precision dtype to its low-precision companion.
_LOW = {
    np.dtype(np.float64): np.dtype(np.float32),
    np.dtype(np.complex128): np.dtype(np.complex64),
}


@dataclass
class MixedPrecisionResult:
    """Polar factors from the mixed-precision pipeline."""

    u: np.ndarray
    h: np.ndarray
    iterations: int            # low-precision QDWH iterations
    refinement_steps: int      # high-precision Newton-Schulz steps
    it_qr: int
    it_chol: int
    conv_history: List[float] = field(default_factory=list)
    converged: bool = True
    method: str = "qdwh_mixed"


def newton_schulz_polish(u: np.ndarray, max_steps: int = 4,
                         tol: float | None = None) -> tuple[np.ndarray, int, List[float]]:
    """Newton-Schulz orthogonalization of a nearly unitary factor.

    Requires ``||U^H U - I||_2 < 1`` on entry (true for any reasonable
    low-precision polar factor).  Returns (U, steps, residual history).
    """
    dt = u.dtype
    n = u.shape[1]
    if tol is None:
        tol = 10 * n * eps(dt)
    history: List[float] = []
    steps = 0
    ident = np.eye(n, dtype=dt)
    for _ in range(max_steps):
        g = u.conj().T @ u
        resid = float(np.linalg.norm(g - ident, "fro") / np.sqrt(n))
        history.append(resid)
        if resid < tol:
            break
        u = 0.5 * (u @ (3.0 * ident - g))
        steps += 1
    return u, steps, history


def qdwh_mixed_precision(a: np.ndarray, *, max_refine: int = 4,
                         **qdwh_kwargs) -> MixedPrecisionResult:
    """Polar decomposition with low-precision iterations + fp64 cleanup.

    Parameters
    ----------
    a:
        float64 or complex128 matrix, m >= n.  (Single-precision inputs
        have no lower companion type here and raise ``TypeError``.)
    max_refine:
        Cap on Newton-Schulz polish steps (2 is typical).
    **qdwh_kwargs:
        Forwarded to the low-precision :func:`qdwh` run.
    """
    a = np.asarray(a)
    dt = check_dtype(a.dtype)
    if dt not in _LOW:
        raise TypeError(
            f"mixed precision needs a double-precision input, got {dt}")
    low = _LOW[dt]
    m, n = a.shape
    if m < n:
        raise ValueError(f"requires m >= n, got {m} x {n}")
    if n == 0:
        return MixedPrecisionResult(u=a.copy(), h=np.zeros((0, 0), dtype=dt),
                                    iterations=0, refinement_steps=0,
                                    it_qr=0, it_chol=0)
    # Guard against overflow when narrowing the range (float32 max ~3e38).
    scale = float(np.max(np.abs(a))) if a.size else 0.0
    if scale == 0.0:
        res = qdwh(a, **qdwh_kwargs)
        return MixedPrecisionResult(u=res.u, h=res.h, iterations=0,
                                    refinement_steps=0, it_qr=0, it_chol=0)
    a_low = (a / scale).astype(low)
    low_res: QdwhResult = qdwh(a_low, **qdwh_kwargs)
    # Promote and polish in the target precision.
    u = low_res.u.astype(dt)
    u, steps, history = newton_schulz_polish(u, max_steps=max_refine)
    h = u.conj().T @ a
    h = 0.5 * (h + h.conj().T)
    if is_complex(dt):
        # Hermitian symmetrization already enforced real diagonal in
        # exact arithmetic; clean residual imaginary dust on the diag.
        idx = np.diag_indices(n)
        h[idx] = np.real(h[idx])
    return MixedPrecisionResult(
        u=u, h=h, iterations=low_res.iterations, refinement_steps=steps,
        it_qr=low_res.it_qr, it_chol=low_res.it_chol,
        conv_history=history, converged=low_res.converged)
