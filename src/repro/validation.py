"""Programmatic acceptance matrix: every paper claim, one check.

``validate_all()`` runs the whole reproduction contract — the
EXPERIMENTS.md table as executable code — and returns structured
results, so a release pipeline (or ``repro validate``) can gate on it
without parsing benchmark output.

Checks are sized to finish in a couple of minutes; the full-resolution
figures remain in ``benchmarks/``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np


@dataclass
class CheckResult:
    """One validated claim."""

    claim: str
    passed: bool
    measured: str
    expected: str
    seconds: float


@dataclass
class ValidationReport:
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def summary(self) -> str:
        lines = []
        for c in self.checks:
            mark = "PASS" if c.passed else "FAIL"
            lines.append(f"[{mark}] {c.claim}")
            lines.append(f"       measured {c.measured} | expected "
                         f"{c.expected} | {c.seconds:.1f}s")
        n_ok = sum(c.passed for c in self.checks)
        lines.append(f"{n_ok}/{len(self.checks)} claims reproduced")
        return "\n".join(lines)


def _check(report: ValidationReport, claim: str, expected: str,
           fn: Callable[[], tuple]) -> None:
    t0 = time.perf_counter()
    try:
        passed, measured = fn()
    except Exception as exc:  # a crash is a failed claim, not a crash
        passed, measured = False, f"error: {exc!r}"
    report.checks.append(CheckResult(
        claim=claim, passed=bool(passed), measured=str(measured),
        expected=expected, seconds=time.perf_counter() - t0))


def validate_all(n_numeric: int = 256, max_tiles: int = 10,
                 seed: int = 0) -> ValidationReport:
    """Run the acceptance matrix.

    ``n_numeric`` sizes the measured (real-arithmetic) checks;
    ``max_tiles`` bounds the simulated checks' task counts.
    """
    from . import qdwh, tiled_qdwh
    from .dist import DistMatrix, ProcessGrid
    from .machines import frontier, summit
    from .matrices import ill_conditioned, polar_report
    from .perf.memory import max_feasible_n, round_down_to
    from .perf.model import simulate_qdwh
    from .runtime import Runtime

    rep = ValidationReport()
    a = ill_conditioned(n_numeric, seed=seed)

    def fig1_accuracy():
        rt = Runtime(ProcessGrid(2, 2))
        da = DistMatrix.from_array(rt, a.copy(), max(16, n_numeric // 8))
        res = tiled_qdwh(rt, da)
        r = polar_report(a, res.u.to_array(), res.h.to_array())
        worst = max(r.orthogonality, r.backward)
        return worst < 1e-12, f"max error {worst:.2e}"

    _check(rep, "Fig 1: errors around machine precision (tiled QDWH, "
                "kappa=1e16)", "< 1e-12", fig1_accuracy)

    def iteration_split():
        r = qdwh(a)
        return (r.it_qr, r.it_chol) == (3, 3), f"{r.it_qr}+{r.it_chol}"

    _check(rep, "Section 4: 3 QR + 3 Cholesky iterations at kappa=1e16",
           "3+3", iteration_split)

    def headline():
        g = simulate_qdwh(summit(), 1, 40_000, "slate_gpu",
                          max_tiles=max_tiles)
        s = simulate_qdwh(summit(), 1, 40_000, "scalapack",
                          max_tiles=max_tiles)
        ratio = g.tflops / s.tflops
        return 10 < ratio < 30, f"{ratio:.1f}x"

    _check(rep, "Abstract: up-to-18x GPU speedup over ScaLAPACK "
                "(simulated, 1 node)", "10-30x", headline)

    def cpu_parity():
        c = simulate_qdwh(summit(), 1, 40_000, "slate_cpu",
                          max_tiles=max_tiles)
        s = simulate_qdwh(summit(), 1, 40_000, "scalapack",
                          max_tiles=max_tiles)
        ratio = s.tflops / c.tflops
        return 0.7 < ratio <= 1.1, f"scal/cpu = {ratio:.2f}"

    _check(rep, "Fig 2: SLATE-CPU similar to ScaLAPACK", "0.7-1.1",
           cpu_parity)

    def frontier_level():
        # The most granularity-sensitive check: at 128 ranks the tile
        # grid needs >= 12 tiles per dimension to feed everyone.
        p = simulate_qdwh(frontier(), 16, 175_000, "slate_gpu",
                          max_tiles=max(max_tiles, 12))
        return 100 < p.tflops < 280, f"{p.tflops:.0f} TF"

    _check(rep, "Fig 5: ~180 Tflop/s on 16 Frontier nodes at n=175k "
                "(simulated)", "100-280 TF", frontier_level)

    def memory_ceiling():
        nmax = round_down_to(max_feasible_n(frontier(), 16,
                                            ranks_per_node=8,
                                            use_gpu=True))
        return nmax == 175_000, f"n_max = {nmax}"

    _check(rep, "Section 7.2: memory ceiling n=175k on 16 Frontier "
                "nodes", "175000", memory_ceiling)

    def weak_scaling():
        t1 = simulate_qdwh(summit(), 1, 30_000, "slate_gpu",
                           max_tiles=max_tiles).tflops
        t4 = simulate_qdwh(summit(), 4, 60_000, "slate_gpu",
                           max_tiles=max_tiles).tflops
        return t4 > 2.0 * t1, f"1n {t1:.1f} TF -> 4n {t4:.1f} TF"

    _check(rep, "Fig 4: good weak scalability", "> 2x from 1 to 4 nodes",
           weak_scaling)

    def dtypes():
        worst = 0.0
        for dt in (np.float32, np.float64, np.complex64, np.complex128):
            x = ill_conditioned(96, dtype=dt, seed=seed)
            r = qdwh(x)
            rel = polar_report(x, r.u, r.h).backward
            tol = 1e-4 if dt in (np.float32, np.complex64) else 1e-12
            worst = max(worst, rel / tol)
        return worst < 1.0, f"worst error/tolerance = {worst:.2f}"

    _check(rep, "Contribution 2: all four standard data types",
           "each at its machine precision", dtypes)

    def rectangular():
        x = ill_conditioned(2 * n_numeric, n_numeric, seed=seed)
        r = qdwh(x)
        rel = polar_report(x, r.u, r.h).backward
        return rel < 1e-12, f"backward {rel:.2e}"

    _check(rep, "Contribution 2: rectangular m >= n", "< 1e-12",
           rectangular)

    return rep
