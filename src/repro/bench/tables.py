"""Row/series formatting for the benchmark harness.

Every figure/table benchmark renders its data through these helpers so
the output matches the paper's axes (matrix size on x, Tflop/s or error
on y, one column per implementation/node count) and lands both on
stdout and in ``results/<experiment>.txt``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

#: Where benchmark tables are archived (relative to the repo root /
#: current working directory of the pytest run).
RESULTS_DIR = os.environ.get("REPRO_RESULTS_DIR", "results")


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a title rule."""
    cols = len(headers)
    str_rows = [[_fmt(c) for c in r] for r in rows]
    widths = [max(len(headers[i]),
                  max((len(r[i]) for r in str_rows), default=0))
              for i in range(cols)]
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = "\n".join("  ".join(c.rjust(w) for c, w in zip(r, widths))
                     for r in str_rows)
    return f"{title}\n{rule}\n{line}\n{rule}\n{body}\n"


def format_series(title: str, x_name: str, xs: Sequence[object],
                  series: Dict[str, Sequence[object]]) -> str:
    """One x column plus one column per named series (a figure's data)."""
    headers = [x_name] + list(series)
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[k][i] if i < len(series[k]) else ""
                           for k in series])
    return format_table(title, headers, rows)


def write_result(name: str, text: str, echo: bool = True) -> str:
    """Persist a benchmark table under results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    if echo:
        print(f"\n{text}[saved to {path}]")
    return path


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)
