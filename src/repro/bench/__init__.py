"""Benchmark-harness utilities: table/series formatting and result
persistence, so every benchmark prints the same rows/series the paper's
figures plot and archives them under ``results/``."""

from .tables import format_series, format_table, write_result

__all__ = ["format_series", "format_table", "write_result"]
