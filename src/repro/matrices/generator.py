"""Synthetic matrices with prescribed condition number and spectrum.

Following Section 7.1 of the paper: draw random unitary matrices U and
V by QR-factorizing Gaussian matrices, build a diagonal matrix of
singular values realizing a target condition number, and form
``A = U @ diag(sigma) @ V^H``.

The singular-value *distribution* matters for convergence studies, so a
few standard LAPACK-style modes are provided (geometric, arithmetic,
clustered, single outlier, random log-uniform).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Union

import numpy as np

from ..config import check_dtype, is_complex, real_dtype


class SingularValueMode(enum.Enum):
    """Distribution of singular values between 1 and 1/kappa."""

    #: sigma_i = kappa^{-(i-1)/(n-1)} — geometric decay (LAPACK mode 3).
    GEOMETRIC = "geometric"
    #: sigma_i = 1 - (i-1)/(n-1) * (1 - 1/kappa) — linear (LAPACK mode 4).
    ARITHMETIC = "arithmetic"
    #: sigma_1 = 1, all others 1/kappa (LAPACK mode 1).
    CLUSTER_SMALL = "cluster_small"
    #: sigma_n = 1/kappa, all others 1 (LAPACK mode 2).
    CLUSTER_LARGE = "cluster_large"
    #: log-uniform random in [1/kappa, 1] (LAPACK mode 5).
    RANDOM = "random"


def _rng(seed: Union[int, np.random.Generator, None]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_unitary(n: int, dtype=np.float64, *, m: Optional[int] = None,
                   seed: Union[int, np.random.Generator, None] = None) -> np.ndarray:
    """Haar-ish random unitary (orthogonal) m x n matrix with orthonormal columns.

    Obtained via QR of a Gaussian matrix with the R-diagonal sign fix so
    the distribution does not collapse onto a QR-convention artifact.
    """
    dt = check_dtype(dtype)
    if m is None:
        m = n
    if m < n:
        raise ValueError(f"need m >= n to build orthonormal columns, got {m} < {n}")
    rng = _rng(seed)
    g = rng.standard_normal((m, n))
    if is_complex(dt):
        g = g + 1j * rng.standard_normal((m, n))
    q, r = np.linalg.qr(g.astype(dt, copy=False))
    d = np.diagonal(r).copy()
    d[d == 0] = 1
    q = q * (d / np.abs(d))
    return np.ascontiguousarray(q.astype(dt, copy=False))


def singular_values(n: int, cond: float,
                    mode: SingularValueMode = SingularValueMode.GEOMETRIC,
                    dtype=np.float64,
                    seed: Union[int, np.random.Generator, None] = None) -> np.ndarray:
    """Vector of n singular values in [1/cond, 1] following *mode*."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if cond < 1:
        raise ValueError(f"condition number must be >= 1, got {cond}")
    rdt = real_dtype(dtype)
    if n == 1:
        return np.ones(1, dtype=rdt)
    lo = 1.0 / cond
    if mode is SingularValueMode.GEOMETRIC:
        s = np.power(cond, -np.arange(n) / (n - 1))
    elif mode is SingularValueMode.ARITHMETIC:
        s = 1.0 - np.arange(n) / (n - 1) * (1.0 - lo)
    elif mode is SingularValueMode.CLUSTER_SMALL:
        s = np.full(n, lo)
        s[0] = 1.0
    elif mode is SingularValueMode.CLUSTER_LARGE:
        s = np.ones(n)
        s[-1] = lo
    elif mode is SingularValueMode.RANDOM:
        rng = _rng(seed)
        s = np.exp(rng.uniform(np.log(lo), 0.0, size=n))
        s = np.sort(s)[::-1]
        s[0], s[-1] = 1.0, lo  # pin the extremes so cond is exact
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown mode {mode}")
    return np.asarray(s, dtype=rdt)


def generate_matrix(m: int, n: Optional[int] = None, *,
                    cond: float = 1e16,
                    mode: SingularValueMode = SingularValueMode.GEOMETRIC,
                    dtype=np.float64,
                    seed: Union[int, np.random.Generator, None] = None,
                    sigma: Optional[Sequence[float]] = None) -> np.ndarray:
    """Random m x n matrix (m >= n) with prescribed condition number.

    Builds ``A = U @ diag(sigma) @ V^H`` with random unitary U (m x n)
    and V (n x n).  Pass an explicit *sigma* to override the mode-based
    spectrum (its length must be n; values are used as given).

    This is the generator the paper uses for its benchmarking campaign;
    the ill-conditioned runs use ``cond=1e16``.
    """
    if n is None:
        n = m
    if m < n:
        raise ValueError(f"generator requires m >= n, got {m} x {n}")
    dt = check_dtype(dtype)
    rng = _rng(seed)
    if sigma is None:
        s = singular_values(n, cond, mode, dtype=dt, seed=rng)
    else:
        s = np.asarray(sigma, dtype=real_dtype(dt))
        if s.shape != (n,):
            raise ValueError(f"sigma must have shape ({n},), got {s.shape}")
    u = random_unitary(n, dt, m=m, seed=rng)
    v = random_unitary(n, dt, seed=rng)
    a = (u * s[None, :]) @ v.conj().T
    return np.ascontiguousarray(a.astype(dt, copy=False))


def ill_conditioned(m: int, n: Optional[int] = None, *, dtype=np.float64,
                    seed: Union[int, np.random.Generator, None] = None) -> np.ndarray:
    """The paper's worst-case workload: kappa = 1e16 (double precision).

    For single-precision dtypes the condition number is capped near
    1/eps of the type so the matrix is numerically (not just nominally)
    ill-conditioned.
    """
    dt = check_dtype(dtype)
    kappa = 1e16 if real_dtype(dt) == np.dtype(np.float64) else 1e7
    return generate_matrix(m, n, cond=kappa, dtype=dt, seed=seed)


def well_conditioned(m: int, n: Optional[int] = None, *, dtype=np.float64,
                     seed: Union[int, np.random.Generator, None] = None) -> np.ndarray:
    """A benign workload (kappa ~ 10): converges in ~2 Cholesky iterations."""
    return generate_matrix(m, n, cond=10.0, dtype=dtype, seed=seed)
