"""Accuracy metrics for the computed polar decomposition.

Exactly the two error measures of Section 7.2:

* orthogonality of the polar factor:  ``||I - U^H U||_F / sqrt(n)``
* backward error of the decomposition: ``||A - U H||_F / ||A||_F``

plus sanity metrics on H (Hermitian-ness, positive semidefiniteness)
that the paper asserts by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def orthogonality_error(u: np.ndarray) -> float:
    """``||I - U^H U||_F / sqrt(n)`` for an m x n matrix U (m >= n)."""
    n = u.shape[1]
    g = u.conj().T @ u
    g[np.diag_indices(n)] -= 1.0
    return float(np.linalg.norm(g, "fro") / np.sqrt(n))


def backward_error(a: np.ndarray, u: np.ndarray, h: np.ndarray) -> float:
    """``||A - U H||_F / ||A||_F``."""
    anorm = np.linalg.norm(a, "fro")
    if anorm == 0:
        return float(np.linalg.norm(u @ h, "fro"))
    return float(np.linalg.norm(a - u @ h, "fro") / anorm)


def hermitian_error(h: np.ndarray) -> float:
    """``||H - H^H||_F / max(||H||_F, 1)`` — 0 for exactly Hermitian H."""
    hnorm = max(np.linalg.norm(h, "fro"), 1.0)
    return float(np.linalg.norm(h - h.conj().T, "fro") / hnorm)


def positive_semidefinite_defect(h: np.ndarray) -> float:
    """Magnitude of the most negative eigenvalue of (H+H^H)/2, scaled.

    Zero (up to roundoff) for a valid polar factor H.  Uses eigvalsh on
    the Hermitian part; returns ``max(0, -lambda_min) / max(||H||_2, 1)``.
    """
    hs = 0.5 * (h + h.conj().T)
    w = np.linalg.eigvalsh(hs)
    scale = max(float(w[-1]), 1.0)
    return float(max(0.0, -float(w[0])) / scale)


@dataclass(frozen=True)
class PolarAccuracy:
    """Bundle of the paper's accuracy metrics for one decomposition."""

    n: int
    m: int
    orthogonality: float
    backward: float
    h_hermitian: float
    h_psd_defect: float

    def within(self, tol: float) -> bool:
        """True when every metric is below *tol* (H-defect included)."""
        return (self.orthogonality <= tol and self.backward <= tol
                and self.h_hermitian <= tol and self.h_psd_defect <= tol)


def polar_report(a: np.ndarray, u: np.ndarray, h: np.ndarray) -> PolarAccuracy:
    """Compute all accuracy metrics for a polar decomposition A = U H."""
    m, n = a.shape
    return PolarAccuracy(
        n=n,
        m=m,
        orthogonality=orthogonality_error(u),
        backward=backward_error(a, u, h),
        h_hermitian=hermitian_error(h),
        h_psd_defect=positive_semidefinite_defect(h),
    )
