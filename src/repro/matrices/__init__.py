"""Synthetic test-matrix generation and accuracy metrics.

The paper (Section 7.1) generates matrices from a prescribed SVD:
random unitary factors U, V (QR of random matrices) times a diagonal
singular-value matrix chosen for a target condition number.
"""

from .generator import (
    SingularValueMode,
    generate_matrix,
    random_unitary,
    singular_values,
    ill_conditioned,
    well_conditioned,
)
from .metrics import (
    orthogonality_error,
    backward_error,
    hermitian_error,
    positive_semidefinite_defect,
    polar_report,
    PolarAccuracy,
)

__all__ = [
    "SingularValueMode",
    "generate_matrix",
    "random_unitary",
    "singular_values",
    "ill_conditioned",
    "well_conditioned",
    "orthogonality_error",
    "backward_error",
    "hermitian_error",
    "positive_semidefinite_defect",
    "polar_report",
    "PolarAccuracy",
]
