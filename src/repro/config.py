"""Global configuration: supported dtypes, machine epsilons, tolerances.

The paper's QDWH implementation supports all four standard LAPACK data
types (float, double, float complex, double complex).  Tolerances follow
Algorithm 1 of the paper: the outer loop runs while

    conv >= (5 * eps) ** (1/3)   or   |L_i - 1| >= 5 * eps,

where ``eps`` is the unit roundoff of the *real* base type.
"""

from __future__ import annotations

import numpy as np

#: The four standard data types the paper's implementation supports.
SUPPORTED_DTYPES = (
    np.dtype(np.float32),
    np.dtype(np.float64),
    np.dtype(np.complex64),
    np.dtype(np.complex128),
)

#: Map a (possibly complex) dtype to its real base type.
_REAL_BASE = {
    np.dtype(np.float32): np.dtype(np.float32),
    np.dtype(np.float64): np.dtype(np.float64),
    np.dtype(np.complex64): np.dtype(np.float32),
    np.dtype(np.complex128): np.dtype(np.float64),
}

#: Threshold on the dynamical weight ``c`` below which the Cholesky-based
#: iteration replaces the QR-based iteration (Algorithm 1, line 29).
QDWH_CHOLESKY_SWITCH = 100.0

#: Theoretical upper bound on QDWH iterations in double precision
#: (Nakatsukasa & Higham 2013); used as a safety cap.
QDWH_MAX_ITERATIONS = 6

#: Extra slack on the iteration cap to guard against pathological inputs
#: where the condition estimate is wildly wrong.
QDWH_HARD_ITERATION_CAP = 30

#: Convergence tolerance of the power-iteration two-norm estimator
#: (Algorithm 2, line 13).  The paper notes factor-of-5 accuracy is
#: entirely satisfactory for QDWH.
NORM2EST_TOL = 0.1

#: Safety cap on power-iteration sweeps in norm2est.
NORM2EST_MAX_ITER = 100


def check_dtype(dtype) -> np.dtype:
    """Validate that *dtype* is one of the four supported types.

    Returns the canonical :class:`numpy.dtype`.  Raises ``TypeError``
    for anything else (integer matrices, float16, ...).
    """
    dt = np.dtype(dtype)
    if dt not in SUPPORTED_DTYPES:
        raise TypeError(
            f"dtype {dt} not supported; expected one of "
            f"{[str(d) for d in SUPPORTED_DTYPES]}"
        )
    return dt


def real_dtype(dtype) -> np.dtype:
    """Real base type of *dtype* (e.g. complex128 -> float64)."""
    return _REAL_BASE[check_dtype(dtype)]


def is_complex(dtype) -> bool:
    """True if *dtype* is one of the two complex supported types."""
    return np.issubdtype(np.dtype(dtype), np.complexfloating)


def eps(dtype) -> float:
    """Unit roundoff of the real base type of *dtype*."""
    return float(np.finfo(real_dtype(dtype)).eps)


def qdwh_inner_tolerance(dtype) -> float:
    """``(5*eps)**(1/3)`` — tolerance on ||A_k - A_{k-1}||_F (Alg. 1 l.22)."""
    return float((5.0 * eps(dtype)) ** (1.0 / 3.0))


def qdwh_weight_tolerance(dtype) -> float:
    """``5*eps`` — tolerance on |L_i - 1| (Alg. 1 line 22)."""
    return 5.0 * eps(dtype)
