"""repro — reproduction of "Task-Based Polar Decomposition Using SLATE
on Massively Parallel Systems with Hardware Accelerators" (SC-W 2023).

Public API (see README for the architecture overview):

* Numerics — :func:`polar`, :func:`qdwh`, baselines, Zolo-PD, the
  QDWH-based EVD/SVD applications, mixed precision.
* Substrate — :mod:`repro.dist` (block-cyclic tiled matrices),
  :mod:`repro.tiled` (tiled kernels/algorithms), :mod:`repro.runtime`
  (task DAG + schedulers), :mod:`repro.comm` (network model).
* Performance — :mod:`repro.machines` (Summit/Frontier models),
  :mod:`repro.perf` (the simulated benchmarking campaign).
"""

from .core import (
    QdwhParams,
    QdwhResult,
    dynamical_weights,
    parameter_schedule,
    polar,
    polar_dwh,
    polar_newton,
    polar_newton_scaled,
    polar_svd,
    predict_iterations,
    qdwh,
    qdwh_eigh,
    qdwh_mixed_precision,
    qdwh_svd,
    zolo_degree,
    zolo_pd,
)
from .core.estimators import gecondest, norm2est, trcondest
from .core.tiled_qdwh import TiledQdwhResult, tiled_qdwh
from .dist import BlockCyclic, DistMatrix, ProcessGrid
from .machines import frontier, summit
from .perf import simulate_qdwh
from .runtime import Runtime, simulate
from .matrices import (
    SingularValueMode,
    generate_matrix,
    ill_conditioned,
    polar_report,
    well_conditioned,
)

__version__ = "1.0.0"

__all__ = [
    "QdwhParams",
    "QdwhResult",
    "dynamical_weights",
    "parameter_schedule",
    "predict_iterations",
    "polar",
    "qdwh",
    "polar_svd",
    "polar_newton",
    "polar_newton_scaled",
    "polar_dwh",
    "zolo_pd",
    "zolo_degree",
    "qdwh_eigh",
    "qdwh_svd",
    "qdwh_mixed_precision",
    "norm2est",
    "gecondest",
    "trcondest",
    "SingularValueMode",
    "generate_matrix",
    "ill_conditioned",
    "well_conditioned",
    "polar_report",
    "tiled_qdwh",
    "TiledQdwhResult",
    "DistMatrix",
    "ProcessGrid",
    "BlockCyclic",
    "Runtime",
    "simulate",
    "simulate_qdwh",
    "summit",
    "frontier",
    "__version__",
]
