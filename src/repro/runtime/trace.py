"""Post-mortem analysis of a simulated schedule (the paper's profiling
campaign analogue): per-kernel time breakdowns, rank utilization, and
critical-path composition.

The aggregate views (:func:`kernel_breakdown`,
:func:`rank_utilization`) are thin wrappers over
:mod:`repro.obs.export` — the observability subsystem is the single
source of truth for them; full task-timeline capture and the richer
exporters also live there.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..obs import export as _obs_export
from .graph import TaskGraph
from .scheduler import ScheduleResult


def kernel_breakdown(result: ScheduleResult) -> List[Tuple[str, float, float]]:
    """(kind, busy seconds, share of total busy time), sorted descending."""
    return _obs_export.kernel_breakdown(result)


def rank_utilization(result: ScheduleResult,
                     normalize: bool = True) -> Dict[str, float]:
    """min/mean/max busy fraction over ranks (1.0 = always busy).

    Busy time aggregates all slots of a rank; with ``normalize=True``
    (default) it is divided by ``makespan * slots_per_rank``, giving a
    true utilization in [0, 1].  ``normalize=False`` restores the
    legacy busy-over-makespan view, which can exceed 1 for multi-slot
    ranks.
    """
    return _obs_export.rank_utilization(result, normalize=normalize)


def critical_path_kinds(graph: TaskGraph, duration) -> List[Tuple[str, float]]:
    """Time per kind along one critical path of the DAG.

    Walks the longest path under ``duration(task) -> seconds`` and
    attributes its length to kernel kinds — shows *what* serializes the
    algorithm (panels, in QDWH's case).
    """
    tasks = graph.tasks
    if not tasks:
        return []
    finish = [0.0] * len(tasks)
    best_pred = [-1] * len(tasks)
    for t in tasks:
        s, p = 0.0, -1
        for d in t.deps:
            if finish[d] > s:
                s, p = finish[d], d
        finish[t.tid] = s + duration(t)
        best_pred[t.tid] = p
    tid = max(range(len(tasks)), key=lambda i: finish[i])
    acc: Dict[str, float] = {}
    while tid != -1:
        t = tasks[tid]
        acc[t.kind.value] = acc.get(t.kind.value, 0.0) + duration(t)
        tid = best_pred[tid]
    rows = sorted(acc.items(), key=lambda r: -r[1])
    return rows


def ascii_gantt(result: ScheduleResult, width: int = 78,
                max_ranks: int = 16) -> str:
    """A terminal Gantt chart of the simulated schedule.

    One row per rank; each column is a makespan/width time bucket
    showing the kind (first letter) of the task occupying most of that
    bucket on that rank — enough to *see* pipeline bubbles and barrier
    walls.  Requires ``keep_trace=True``.
    """
    if result.start_times is None or result.finish_times is None:
        raise ValueError("simulate(..., keep_trace=True) required")
    span = result.makespan or 1.0
    n_ranks = min(len(result.per_rank_busy), max_ranks)
    # occupancy[rank][bucket] -> {kind: seconds}
    occ = [[{} for _ in range(width)] for _ in range(n_ranks)]
    for rank, kind, beg, end in zip(result.ranks or [],
                                    result.kinds or [],
                                    result.start_times,
                                    result.finish_times):
        if rank >= n_ranks:
            continue
        b0 = min(int(beg / span * width), width - 1)
        b1 = min(int(end / span * width), width - 1)
        for b in range(b0, b1 + 1):
            lo = max(beg, b * span / width)
            hi = min(end, (b + 1) * span / width)
            if hi > lo:
                occ[rank][b][kind] = occ[rank][b].get(kind, 0.0) + hi - lo
    lines = [f"gantt ({result.makespan:.3g} s makespan, "
             f"{n_ranks} of {len(result.per_rank_busy)} ranks)"]
    for rank in range(n_ranks):
        row = []
        for bucket in occ[rank]:
            if not bucket:
                row.append(".")
            else:
                row.append(max(bucket, key=bucket.get)[0])
        lines.append(f"r{rank:<3}|" + "".join(row) + "|")
    return "\n".join(lines) + "\n"


def export_chrome_trace(result: ScheduleResult, path: str,
                        limit: int = 200_000) -> str:
    """Write the simulated schedule as a chrome://tracing JSON file.

    Each rank becomes a process row; every task becomes a complete
    ("X") event with microsecond timestamps, so the Gantt chart opens
    directly in chrome://tracing or Perfetto.  Requires a schedule
    simulated with ``keep_trace=True``.
    """
    import json

    if result.start_times is None or result.finish_times is None:
        raise ValueError("simulate(..., keep_trace=True) required")
    events = []
    rows = list(zip(result.ranks or [], result.kinds or [],
                    result.start_times, result.finish_times))
    for rank, kind, beg, end in rows[:limit]:
        events.append({
            "name": kind,
            "cat": "task",
            "ph": "X",
            "ts": beg * 1e6,
            "dur": max((end - beg) * 1e6, 0.01),
            "pid": rank,
            "tid": 0,
        })
    with open(path, "w") as fh:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, fh)
    return path


def gantt_rows(result: ScheduleResult, limit: int = 2000
               ) -> List[Tuple[int, str, float, float]]:
    """(rank, kind, start, finish) rows for plotting; needs keep_trace."""
    if result.start_times is None or result.finish_times is None:
        raise ValueError("simulate(..., keep_trace=True) required for gantt")
    rows = list(zip(result.ranks or [], result.kinds or [],
                    result.start_times, result.finish_times))
    rows.sort(key=lambda r: r[2])
    return rows[:limit]
