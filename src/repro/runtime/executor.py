"""The Runtime context: tiled ops submit tasks here.

A :class:`Runtime` binds a process grid and an execution mode:

* ``numeric=True`` — each submitted task's payload closure runs
  immediately (eager execution, like OpenMP tasks with a single
  thread), so tiled algorithms produce real numbers; the DAG is
  recorded on the side for scheduling analysis.
* ``numeric=False`` — symbolic mode: payloads are skipped, only the
  DAG is built.  This is how the performance model emits task graphs
  for paper-scale matrices (n ~ 2e5) in milliseconds of real time.

Phases: ops bump :meth:`advance_phase` at every panel step.  The
fork-join (ScaLAPACK) scheduler model inserts a barrier between
phases; the task-based model uses them only for the lookahead window.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Optional, Sequence

from ..dist.grid import ProcessGrid
from ..dist.layout import BlockCyclic
from .graph import TaskGraph
from .task import Task, TaskKind, TileRef


class Runtime:
    """Execution context for tiled algorithms."""

    def __init__(self, grid: ProcessGrid, *, numeric: bool = True,
                 collect_graph: bool = True,
                 tile_dim_hint: Optional[int] = None) -> None:
        self.grid = grid
        self.numeric = numeric
        self.collect_graph = collect_graph or not numeric
        #: When set, overrides every task's tile_dim for the machine
        #: efficiency lookup.  The perf model simulates paper-scale
        #: matrices with coarsened tiles (to bound task counts) while
        #: rating each kernel at the *real* tile size the run would use.
        self.tile_dim_hint = tile_dim_hint
        #: Coarsening factor attached to every task (see Task.coarse).
        self.coarse_hint = 1.0
        #: Multiplier applied to every task's flops (complex arithmetic
        #: costs ~4x real at the same dimensions; see
        #: repro.flops.COMPLEX_FLOP_FACTOR).
        self.flops_scale = 1.0
        self.graph = TaskGraph()
        self._matrix_ids = itertools.count()
        self._task_ids = itertools.count()
        self._phase = 0
        self._op = 0
        #: pseudo-matrix id for scalar results (reductions).
        self.scalar_mat = self.new_matrix_id()
        self._scalar_ids = itertools.count()
        #: Cached metric counters for eager kernel invocations
        #: (kind -> Counter in the process-wide registry).
        self._kernel_counters: dict = {}

    # ------------------------------------------------------------------
    # Identifiers and phases
    # ------------------------------------------------------------------

    def new_matrix_id(self) -> int:
        """Fresh matrix id for tile refs."""
        return next(self._matrix_ids)

    def new_scalar_ref(self, nbytes: int = 8) -> TileRef:
        """A fresh pseudo-tile carrying a scalar reduction result."""
        ref = (self.scalar_mat, next(self._scalar_ids), 0)
        if self.collect_graph:
            self.graph.register_tile(ref, nbytes)
        return ref

    @property
    def phase(self) -> int:
        return self._phase

    def advance_phase(self) -> int:
        """Start a new program phase (panel step)."""
        self._phase += 1
        return self._phase

    def begin_op(self) -> int:
        """Mark the start of a library operation (a ScaLAPACK-call
        analogue); the fork-join execution model barriers between ops.
        Also advances the phase counter.
        """
        self._op += 1
        self._phase += 1
        return self._op

    def default_layout(self) -> BlockCyclic:
        """Block-cyclic layout over this runtime's grid."""
        return BlockCyclic(self.grid)

    # ------------------------------------------------------------------
    # Task submission
    # ------------------------------------------------------------------

    def submit(self, kind: TaskKind, *,
               reads: Sequence[TileRef] = (),
               writes: Sequence[TileRef] = (),
               rank: Optional[int] = None,
               flops: float = 0.0,
               bytes_out: int = 0,
               tile_dim: int = 0,
               label: str = "",
               fn: Optional[Callable[[], None]] = None) -> Task:
        """Submit one task; runs ``fn`` now when in numeric mode.

        ``rank=None`` is only valid when every write ref has been
        registered with an owner through a DistMatrix; callers normally
        pass the owner of the primary output tile (owner-computes).
        """
        task = Task(
            tid=next(self._task_ids),
            kind=kind,
            reads=tuple(reads),
            writes=tuple(writes),
            rank=0 if rank is None else rank,
            phase=self._phase,
            flops=flops * self.flops_scale,
            bytes_out=bytes_out,
            tile_dim=(self.tile_dim_hint if self.tile_dim_hint
                      else tile_dim),
            coarse=self.coarse_hint,
            op=self._op,
            label=label,
        )
        if self.collect_graph:
            self.graph.add(task)
        if self.numeric and fn is not None:
            fn()
            counter = self._kernel_counters.get(kind)
            if counter is None:
                from ..obs.metrics import get_registry
                counter = get_registry().counter(
                    f"kernel.invocations.{kind.value}")
                self._kernel_counters[kind] = counter
            counter.inc()
        return task

    def register_tiles(self, refs: Iterable[TileRef], nbytes_each: int,
                       owner: int = -1) -> None:
        """Bulk tile-size registration (called by DistMatrix)."""
        if self.collect_graph:
            for ref in refs:
                self.graph.register_tile(ref, nbytes_each, owner)
