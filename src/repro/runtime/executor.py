"""The Runtime context: tiled ops submit tasks here.

A :class:`Runtime` binds a process grid and an execution mode:

* ``numeric=True`` — each submitted task's payload closure runs
  immediately (eager execution, like OpenMP tasks with a single
  thread), so tiled algorithms produce real numbers; the DAG is
  recorded on the side for scheduling analysis.
* ``numeric=False`` — symbolic mode: payloads are skipped, only the
  DAG is built.  This is how the performance model emits task graphs
  for paper-scale matrices (n ~ 2e5) in milliseconds of real time.
* ``numeric=True, deferred=True`` — payload closures are *recorded*
  instead of run; :meth:`Runtime.sync` replays the pending window on a
  :class:`repro.runtime.parallel.ParallelExecutor` thread pool, so
  independent tiles execute concurrently (the real-hardware analogue
  of the simulated task-based schedule).  Scalar reduction reads and
  ``DistMatrix`` gathers sync automatically, so adaptive algorithms
  (convergence tests, estimators) run unchanged.

Phases: ops bump :meth:`advance_phase` at every panel step.  The
fork-join (ScaLAPACK) scheduler model inserts a barrier between
phases; the task-based model uses them only for the lookahead window.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Callable, Iterable, Optional, Sequence

from ..dist.grid import ProcessGrid
from ..dist.layout import BlockCyclic
from .graph import TaskGraph
from .task import Task, TaskKind, TileRef

#: Sentinel: resolve the sanitizer mode from the REPRO_SANITIZE env var.
_SANITIZE_FROM_ENV = object()


class Runtime:
    """Execution context for tiled algorithms."""

    def __init__(self, grid: ProcessGrid, *, numeric: bool = True,
                 collect_graph: bool = True,
                 tile_dim_hint: Optional[int] = None,
                 deferred: bool = False,
                 backend: str = "threads",
                 workers: Optional[int] = None,
                 sink=None,
                 lookahead: Optional[int] = None,
                 sanitize=_SANITIZE_FROM_ENV,
                 faults=None,
                 recovery=None) -> None:
        if deferred and not numeric:
            raise ValueError(
                "deferred execution requires numeric mode (symbolic "
                "graphs have no payloads to run)")
        self.grid = grid
        self.numeric = numeric
        self.collect_graph = collect_graph or not numeric or deferred
        #: When set, overrides every task's tile_dim for the machine
        #: efficiency lookup.  The perf model simulates paper-scale
        #: matrices with coarsened tiles (to bound task counts) while
        #: rating each kernel at the *real* tile size the run would use.
        self.tile_dim_hint = tile_dim_hint
        #: Coarsening factor attached to every task (see Task.coarse).
        self.coarse_hint = 1.0
        #: Multiplier applied to every task's flops (complex arithmetic
        #: costs ~4x real at the same dimensions; see
        #: repro.flops.COMPLEX_FLOP_FACTOR).
        self.flops_scale = 1.0
        self.graph = TaskGraph()
        self._matrix_ids = itertools.count()
        self._task_ids = itertools.count()
        self._phase = 0
        self._op = 0
        #: pseudo-matrix id for scalar results (reductions).
        self.scalar_mat = self.new_matrix_id()
        self._scalar_ids = itertools.count()
        #: Cached metric counters for eager kernel invocations
        #: (kind -> Counter in the process-wide registry).  Kernel
        #: invocation metrics are published from exactly one execution
        #: path: here when a payload runs eagerly, or by the
        #: ParallelExecutor when it runs a recorded payload — never
        #: both, and never for payload-less (symbolic) tasks.
        self._kernel_counters: dict = {}
        #: Deferred-execution state (threaded or processes backend).
        self.deferred = bool(deferred)
        if backend not in ("threads", "processes"):
            raise ValueError(f"unknown execution backend {backend!r} "
                             f"(expected 'threads' or 'processes')")
        self.backend = backend
        self._workers = workers
        self._exec_sink = sink
        self._exec_lookahead = lookahead
        self._pending_fns: dict = {}
        self._exec_cursor = 0
        self._executor = None
        self._in_execution = False
        #: Live fault tolerance for the threaded backend: an optional
        #: :class:`repro.resilience.faults.FaultPlan` (its live faults
        #: — transients, worker stalls, tile corruption — fire inside
        #: real workers) and an optional
        #: :class:`repro.resilience.live.RecoveryPolicy` (retries,
        #: timeouts, straggler speculation).  Either alone activates
        #: the executor's recovering dispatch loop.
        self.fault_plan = faults
        self.recovery_policy = recovery
        #: mat_id -> DistMatrix, weakly held, for the executor's tile
        #: accessor (snapshot/restore/corrupt on recovery).
        self._matrices: "weakref.WeakValueDictionary" = \
            weakref.WeakValueDictionary()
        #: mat_id -> side store: driver-held dict state written inside
        #: payloads under declared pseudo-tile refs (e.g. QR T factors
        #: in ``QRFactors.aux``).  The processes backend ships these
        #: entries between parent and workers by ref; the threads and
        #: eager backends ignore them (shared address space).
        self._side_stores: dict = {}
        #: Optional DistSan event recorder
        #: (:class:`repro.runtime.distributed.events.DistTraceRecorder`).
        #: Set it before the first ``sync()`` of a processes-backend run
        #: and the executor records dispatch/completion, shm lifecycle,
        #: and wire-frame events for the ``repro lint --dist`` checkers.
        self.dist_recorder = None
        self._closed = False
        #: TileSan footprint sanitizer (``sanitize="warn"|"raise"|None``;
        #: default comes from the REPRO_SANITIZE env var).  Only numeric
        #: runtimes instrument payloads — symbolic mode never runs any.
        if sanitize is _SANITIZE_FROM_ENV:
            from ..analysis.sanitizer import sanitize_mode_from_env
            sanitize = sanitize_mode_from_env()
        self._sanitizer = None
        if sanitize is not None and numeric:
            from ..analysis.sanitizer import TileSanitizer
            self._sanitizer = TileSanitizer(self.graph, mode=sanitize,
                                            sink=sink)

    # ------------------------------------------------------------------
    # Identifiers and phases
    # ------------------------------------------------------------------

    def new_matrix_id(self) -> int:
        """Fresh matrix id for tile refs."""
        return next(self._matrix_ids)

    def new_scalar_ref(self, nbytes: int = 8) -> TileRef:
        """A fresh pseudo-tile carrying a scalar reduction result.

        Registered unconditionally: the sanitizer and race checker need
        tile metadata even when no task graph is collected.
        """
        ref = (self.scalar_mat, next(self._scalar_ids), 0)
        self.graph.register_tile(ref, nbytes)
        return ref

    @property
    def phase(self) -> int:
        return self._phase

    def advance_phase(self) -> int:
        """Start a new program phase (panel step)."""
        self._phase += 1
        return self._phase

    def begin_op(self) -> int:
        """Mark the start of a library operation (a ScaLAPACK-call
        analogue); the fork-join execution model barriers between ops.
        Also advances the phase counter.
        """
        self._op += 1
        self._phase += 1
        return self._op

    def default_layout(self) -> BlockCyclic:
        """Block-cyclic layout over this runtime's grid."""
        return BlockCyclic(self.grid)

    # ------------------------------------------------------------------
    # Task submission
    # ------------------------------------------------------------------

    def submit(self, kind: TaskKind, *,
               reads: Sequence[TileRef] = (),
               writes: Sequence[TileRef] = (),
               rank: Optional[int] = None,
               flops: float = 0.0,
               bytes_out: int = 0,
               tile_dim: int = 0,
               label: str = "",
               fn: Optional[Callable[[], None]] = None,
               sanitize: bool = True) -> Task:
        """Submit one task; runs ``fn`` now when in numeric mode.

        ``rank=None`` resolves owner-computes placement from the
        graph's tile registry: the first write ref registered with an
        owner (through a DistMatrix) wins.  On a single-rank grid the
        owner is trivially rank 0.  Otherwise ``rank=None`` is an
        error — silently defaulting to rank 0 would skew every
        per-rank metric the scheduler produces.

        ``sanitize=False`` opts this task's payload out of TileSan
        footprint checking (for payloads that legitimately touch tiles
        through captured buffers the sanitizer cannot attribute).
        """
        writes = tuple(writes)
        if rank is None:
            rank = self._resolve_rank(kind, writes, label)
        task = Task(
            tid=next(self._task_ids),
            kind=kind,
            reads=tuple(reads),
            writes=writes,
            rank=rank,
            phase=self._phase,
            flops=flops * self.flops_scale,
            bytes_out=bytes_out,
            tile_dim=(self.tile_dim_hint if self.tile_dim_hint
                      else tile_dim),
            coarse=self.coarse_hint,
            op=self._op,
            label=label,
            sanitize=sanitize,
        )
        if self.collect_graph:
            self.graph.add(task)
        if self.numeric and fn is not None:
            if self.deferred:
                self._pending_fns[task.tid] = fn
            else:
                san = self._sanitizer
                if san is not None and task.sanitize:
                    with san.task_scope(task):
                        fn()
                else:
                    fn()
                self._count_kernel(kind)
        return task

    def _resolve_rank(self, kind: TaskKind, writes: Sequence[TileRef],
                      label: str) -> int:
        """Owner of the primary (first owner-registered) write ref."""
        if self.grid.size == 1:
            return 0
        owners = self.graph.tile_owner
        for ref in writes:
            owner = owners.get(ref)
            if owner is not None and owner >= 0:
                return owner
        what = f"{kind.name} [{label}]" if label else kind.name
        raise ValueError(
            f"submit({what}, rank=None): no write ref has a registered "
            f"owner on this {self.grid.p}x{self.grid.q} grid; pass "
            f"rank= explicitly (owner-computes on the primary output "
            f"tile)")

    def _count_kernel(self, kind: TaskKind) -> None:
        """Publish one eager kernel invocation to the metrics registry."""
        counter = self._kernel_counters.get(kind)
        if counter is None:
            from ..obs.metrics import get_registry
            counter = get_registry().counter(
                f"kernel.invocations.{kind.value}")
            self._kernel_counters[kind] = counter
        counter.inc()

    # ------------------------------------------------------------------
    # Deferred (threaded) execution
    # ------------------------------------------------------------------

    def register_matrix(self, mat) -> None:
        """Track a DistMatrix for executor-side tile access (weakly)."""
        self._matrices[mat.mat_id] = mat

    def register_side_store(self, mat_id: int, mapping, key_of) -> None:
        """Declare driver-held dict state behind a pseudo-matrix id.

        ``mapping`` is the dict that payloads read/write under tile
        refs ``(mat_id, i, j)``; ``key_of(ref)`` maps a ref to the
        dict key it denotes.  The processes backend uses this to ship
        produced entries from workers back to the scheduler and out to
        whichever worker later needs them; entries are write-once (the
        graph's WAW edges already serialise conflicting writers).
        """
        from .distributed.executor import SideStore
        self._side_stores[mat_id] = SideStore(mapping=mapping,
                                              key_of=key_of)

    def enable_deferred(self, *, workers: Optional[int] = None,
                        sink=None, lookahead: Optional[int] = None,
                        faults=None, recovery=None,
                        backend: Optional[str] = None) -> None:
        """Switch this runtime to deferred execution.

        Tasks submitted so far (eagerly executed) stay as they are;
        from here on payload closures are recorded and replayed by
        :meth:`sync` on the threaded backend.  Idempotent; a changed
        ``workers`` count flushes pending work and re-pools.
        """
        if not self.numeric:
            raise ValueError("deferred execution requires numeric mode")
        if backend is not None and backend != self.backend:
            if backend not in ("threads", "processes"):
                raise ValueError(f"unknown execution backend {backend!r}")
            if self._executor is not None:
                self.sync()
                self._executor.close()
                self._executor = None
            self.backend = backend
        if workers is not None and self._executor is not None \
                and workers != self._executor.workers:
            self.sync()
            self._executor.close()
            self._executor = None
        if workers is not None:
            self._workers = workers
        if sink is not None:
            self._exec_sink = sink
        if lookahead is not None:
            self._exec_lookahead = lookahead
        if faults is not None or recovery is not None:
            if self._executor is not None:
                self.sync()
                self._executor.close()
                self._executor = None
            if faults is not None:
                self.fault_plan = faults
            if recovery is not None:
                self.recovery_policy = recovery
        if not self.deferred:
            self.deferred = True
            # Everything before this point already ran eagerly.
            self._exec_cursor = len(self.graph.tasks)

    def disable_deferred(self) -> None:
        """Return this runtime to eager execution.

        The degradation path of :func:`~repro.core.tiled_qdwh`: when a
        parallel backend is no longer trustworthy (e.g. the recovery
        budget of the processes backend is exhausted mid-run), pending
        payloads are abandoned, the executor torn down, and subsequent
        submissions run inline at submit time.  Idempotent."""
        if not self.deferred:
            return
        self.abandon_pending()
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        self.deferred = False

    @property
    def executor(self):
        """The lazily created executor for the configured backend
        (:class:`ParallelExecutor` for threads,
        :class:`~repro.runtime.distributed.ProcessExecutor` for
        processes)."""
        if self._executor is None:
            injector = tiles = None
            if self.fault_plan is not None or self.recovery_policy is not None:
                from ..resilience.live import LiveFaultInjector, TileAccessor
                if self.fault_plan is not None:
                    injector = LiveFaultInjector(self.fault_plan)
                tiles = TileAccessor(self._matrices)
            if self.backend == "processes":
                from .distributed.executor import ProcessExecutor
                self._executor = ProcessExecutor(
                    self, workers=self._workers, sink=self._exec_sink,
                    recovery=self.recovery_policy, injector=injector,
                    tiles=tiles)
            else:
                from .parallel import ParallelExecutor
                self._executor = ParallelExecutor(
                    self.graph, self._pending_fns, workers=self._workers,
                    lookahead=self._exec_lookahead, sink=self._exec_sink,
                    sanitizer=self._sanitizer,
                    recovery=self.recovery_policy, injector=injector,
                    tiles=tiles)
        return self._executor

    @property
    def sanitizer(self):
        """The TileSan instance, or None when sanitizing is off."""
        return self._sanitizer

    @property
    def exec_stats(self):
        """Measured execution accounting, or None before any sync."""
        return self._executor.stats if self._executor is not None else None

    def sync(self) -> None:
        """Run every recorded-but-pending payload (deferred mode).

        A no-op for eager/symbolic runtimes, when nothing is pending,
        and while an execution window is already in flight (task
        payloads touch tiles, which would otherwise re-enter here).
        Scalar reductions and DistMatrix gathers call this before
        exposing values, so driver code sees exactly the eager-mode
        dataflow.
        """
        if not self.deferred or self._in_execution:
            return
        end = len(self.graph.tasks)
        if end == self._exec_cursor:
            return
        self._in_execution = True
        try:
            self.executor.run(self._exec_cursor, end)
        finally:
            self._in_execution = False
            self._exec_cursor = end

    def abandon_pending(self) -> None:
        """Drop every recorded-but-unexecuted payload (deferred mode).

        For algorithm-level recovery after a failed window: when a
        :meth:`sync` raised (e.g. Cholesky breakdown inside a posv
        window), the window's unexecuted tasks are folded into the
        executor's epoch tables as no-ops and their payloads discarded,
        so the caller can restore data from its own copies and submit
        replacement work.  A no-op for eager runtimes.
        """
        if not self.deferred:
            return
        self._exec_cursor = len(self.graph.tasks)
        if self._executor is not None:
            self._executor.abandon_window()
        self._pending_fns.clear()

    def close(self) -> None:
        """Release every backend resource: worker pools or processes,
        comm listeners, and shared-memory segments.  Idempotent — safe
        to call from both an explicit ``with`` block and a teardown
        path that does not know whether the runtime was ever used."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def register_tiles(self, refs: Iterable[TileRef], nbytes_each: int,
                       owner: int = -1) -> None:
        """Bulk tile-size registration (called by DistMatrix).

        Unconditional — even with ``collect_graph=False`` the registry
        is kept (a cheap dict): owner resolution for ``rank=None``
        submits, the sanitizer's observable-tile test, and the race
        checker all need it in pure-eager runs.
        """
        for ref in refs:
            self.graph.register_tile(ref, nbytes_each, owner)
