"""Task-based runtime: dependency-inferred DAGs, eager numeric
execution, and event-driven schedule simulation.

The pieces map onto what SLATE gets from OpenMP + MPI:

* :mod:`.task` — a task with declared read/write tile sets (the
  analogue of ``omp task depend(in:...) depend(inout:...)``).
* :mod:`.graph` — builds the DAG by last-writer/reader inference,
  which is precisely the semantics OpenMP applies to depend clauses.
* :mod:`.executor` — the :class:`Runtime` context: ops submit tasks,
  numeric payloads run eagerly, the graph is recorded for simulation.
* :mod:`.scheduler` — event-driven simulation of the DAG on a machine
  model; the task-based mode allows arbitrary out-of-order execution
  within a lookahead window, the fork-join mode inserts a barrier
  after every phase (the ScaLAPACK/POLAR execution model).
* :mod:`.parallel` — *real* threaded replay of a recorded DAG on a
  thread pool (NumPy/BLAS kernels release the GIL), with measured
  timestamps and execution-time ordering assertions.
* :mod:`.distributed` — multi-process replay: a central dynamic
  scheduler dispatching to forked workers over a pluggable comm layer,
  with tiles in shared memory (zero-copy) and crash recovery.
* :mod:`.trace` — per-kernel/per-rank breakdowns of a simulated run.
"""

from .task import Task, TaskKind, DEVICE_ELIGIBLE
from .graph import GraphValidationError, TaskGraph
from .executor import Runtime
from .parallel import ExecutionStats, OrderingViolationError, ParallelExecutor
from .distributed import (ProcessExecutor, SharedTileStore,
                          WorkerCrashError)
from .scheduler import ScheduleResult, simulate
from .trace import kernel_breakdown, rank_utilization, critical_path_kinds

__all__ = [
    "Task",
    "TaskKind",
    "DEVICE_ELIGIBLE",
    "TaskGraph",
    "GraphValidationError",
    "Runtime",
    "ParallelExecutor",
    "ProcessExecutor",
    "SharedTileStore",
    "WorkerCrashError",
    "ExecutionStats",
    "OrderingViolationError",
    "ScheduleResult",
    "simulate",
    "kernel_breakdown",
    "rank_utilization",
    "critical_path_kinds",
]
