"""DAG construction by read/write dependency inference.

Implements exactly the semantics of OpenMP ``task depend`` clauses,
which is how SLATE sequences its tiles:

* read-after-write: a task reading tile t depends on t's last writer;
* write-after-write: a task writing t depends on t's last writer;
* write-after-read: a task writing t depends on every reader of t
  since the last write.

Tasks are added in program order; the builder maintains per-tile
last-writer and reader sets and emits explicit dependency edges so the
scheduler never needs the tile tables again.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .task import Task, TileRef


class TaskGraph:
    """An append-only task DAG with dependency inference."""

    def __init__(self) -> None:
        self.tasks: List[Task] = []
        self._last_writer: Dict[TileRef, int] = {}
        self._readers: Dict[TileRef, Set[int]] = {}
        #: bytes of each tile ref seen (for transfer costs).
        self.tile_bytes: Dict[TileRef, int] = {}
        #: owning rank of registered tiles (initial placement).
        self.tile_owner: Dict[TileRef, int] = {}

    def __len__(self) -> int:
        return len(self.tasks)

    def add(self, task: Task) -> Task:
        """Append a task, inferring its dependency edges."""
        deps: Set[int] = set()
        cold = []
        for ref in task.reads:
            w = self._last_writer.get(ref)
            if w is not None:
                deps.add(w)
            elif ref in self.tile_owner:
                cold.append(ref)
        for ref in task.writes:
            w = self._last_writer.get(ref)
            if w is not None:
                deps.add(w)
            for r in self._readers.get(ref, ()):
                deps.add(r)
        deps.discard(task.tid)
        task.deps = tuple(sorted(deps))
        task.cold_reads = tuple(cold)
        # Update tables after computing deps.
        for ref in task.reads:
            self._readers.setdefault(ref, set()).add(task.tid)
        for ref in task.writes:
            self._last_writer[ref] = task.tid
            self._readers[ref] = set()
        self.tasks.append(task)
        return task

    def register_tile(self, ref: TileRef, nbytes: int,
                      owner: int = -1) -> None:
        """Record a tile's byte size and (optionally) its owning rank."""
        self.tile_bytes[ref] = nbytes
        if owner >= 0:
            self.tile_owner[ref] = owner

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def successors(self) -> List[List[int]]:
        """Adjacency list task -> dependents (recomputed on demand)."""
        succ: List[List[int]] = [[] for _ in self.tasks]
        for t in self.tasks:
            for d in t.deps:
                succ[d].append(t.tid)
        return succ

    def validate_topological(self) -> bool:
        """Program order must already be a topological order."""
        return all(all(d < t.tid for d in t.deps) for t in self.tasks)

    def critical_path_seconds(self, duration) -> float:
        """Length of the critical path under ``duration(task) -> s``.

        A lower bound on any schedule's makespan (ignores comm).
        """
        finish = [0.0] * len(self.tasks)
        for t in self.tasks:
            start = max((finish[d] for d in t.deps), default=0.0)
            finish[t.tid] = start + duration(t)
        return max(finish, default=0.0)

    def total_flops(self) -> float:
        """Sum of task flop counts (executed flops, not the paper model)."""
        return sum(t.flops for t in self.tasks)

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of task kinds (used by tests and the profiler)."""
        out: Dict[str, int] = {}
        for t in self.tasks:
            out[t.kind.value] = out.get(t.kind.value, 0) + 1
        return out

    def edges(self) -> List[Tuple[int, int]]:
        """All (dep, task) edges; test/visualization helper."""
        return [(d, t.tid) for t in self.tasks for d in t.deps]
