"""DAG construction by read/write dependency inference.

Implements exactly the semantics of OpenMP ``task depend`` clauses,
which is how SLATE sequences its tiles:

* read-after-write: a task reading tile t depends on t's last writer;
* write-after-write: a task writing t depends on t's last writer;
* write-after-read: a task writing t depends on every reader of t
  since the last write.

Tasks are added in program order; the builder maintains per-tile
last-writer and reader sets and emits explicit dependency edges so the
scheduler never needs the tile tables again.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .task import Task, TileRef


class GraphValidationError(ValueError):
    """A task graph violates the OpenMP-depend structural invariants."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = problems
        preview = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        super().__init__(f"{len(problems)} graph invariant violation(s): "
                         f"{preview}{more}")


class TaskGraph:
    """An append-only task DAG with dependency inference."""

    def __init__(self) -> None:
        self.tasks: List[Task] = []
        self._last_writer: Dict[TileRef, int] = {}
        self._readers: Dict[TileRef, Set[int]] = {}
        #: bytes of each tile ref seen (for transfer costs).
        self.tile_bytes: Dict[TileRef, int] = {}
        #: owning rank of registered tiles (initial placement).
        self.tile_owner: Dict[TileRef, int] = {}

    def __len__(self) -> int:
        return len(self.tasks)

    def add(self, task: Task) -> Task:
        """Append a task, inferring its dependency edges."""
        deps: Set[int] = set()
        cold = []
        for ref in task.reads:
            w = self._last_writer.get(ref)
            if w is not None:
                deps.add(w)
            elif ref in self.tile_owner:
                cold.append(ref)
        for ref in task.writes:
            w = self._last_writer.get(ref)
            if w is not None:
                deps.add(w)
            for r in self._readers.get(ref, ()):
                deps.add(r)
        deps.discard(task.tid)
        task.deps = tuple(sorted(deps))
        task.cold_reads = tuple(cold)
        # Update tables after computing deps.
        for ref in task.reads:
            self._readers.setdefault(ref, set()).add(task.tid)
        for ref in task.writes:
            self._last_writer[ref] = task.tid
            self._readers[ref] = set()
        self.tasks.append(task)
        return task

    def register_tile(self, ref: TileRef, nbytes: int,
                      owner: int = -1) -> None:
        """Record a tile's byte size and (optionally) its owning rank."""
        self.tile_bytes[ref] = nbytes
        if owner >= 0:
            self.tile_owner[ref] = owner

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def successors(self) -> List[List[int]]:
        """Adjacency list task -> dependents (recomputed on demand)."""
        succ: List[List[int]] = [[] for _ in self.tasks]
        for t in self.tasks:
            for d in t.deps:
                succ[d].append(t.tid)
        return succ

    def validate_topological(self) -> bool:
        """Program order must already be a topological order."""
        return all(all(d < t.tid for d in t.deps) for t in self.tasks)

    def validate(self, end: Optional[int] = None, *,
                 raise_on_error: bool = True) -> List[str]:
        """Check the structural invariants real DAG execution relies on.

        Verified over tasks ``[0, end)`` (default: the whole graph):

        * task ids equal their position (the executor indexes by tid);
        * every dependency edge points backwards (``dep < tid``) to a
          valid task — program order is a topological order, which
          also rules out cycles;
        * explicit cycle detection over the edge set, so graphs whose
          ``deps`` were mutated after :meth:`add` still get a precise
          "cycle" report rather than an executor hang;
        * OpenMP ``task depend`` serialization per tile: a task reading
          a tile depends on its last writer (RAW), a task writing a
          tile depends on its last writer (WAW — hence no two
          concurrent writers per tile) and on every reader since that
          write (WAR).

        Returns the list of problems (empty when valid); raises
        :class:`GraphValidationError` instead when ``raise_on_error``.
        """
        limit = len(self.tasks) if end is None else end
        problems: List[str] = []
        backwards = True
        for idx in range(limit):
            t = self.tasks[idx]
            if t.tid != idx:
                problems.append(f"task at position {idx} has tid {t.tid}")
            for d in t.deps:
                if not (0 <= d < limit):
                    problems.append(
                        f"task {t.tid} depends on out-of-range task {d}")
                    backwards = False
                elif d == t.tid:
                    problems.append(f"task {t.tid} depends on itself")
                    backwards = False
                elif d > t.tid:
                    problems.append(
                        f"forward dependency edge {d} -> {t.tid} "
                        f"(program order is not topological)")
                    backwards = False

        # Kahn's algorithm over the (valid-range) edges.  Redundant
        # when every edge already points backwards; decisive when a
        # mutated graph needs a cycle called out explicitly.
        if not backwards:
            indeg = [0] * limit
            succ: Dict[int, List[int]] = {}
            for idx in range(limit):
                for d in self.tasks[idx].deps:
                    if 0 <= d < limit and d != idx:
                        succ.setdefault(d, []).append(idx)
                        indeg[idx] += 1
            frontier = [i for i in range(limit) if indeg[i] == 0]
            seen = 0
            while frontier:
                seen += 1
                for s in succ.get(frontier.pop(), ()):
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        frontier.append(s)
            if seen < limit:
                problems.append(
                    f"dependency cycle among {limit - seen} task(s)")

        # Replay the per-tile writer/reader tables and require the
        # builder's direct edges (the semantics of OpenMP depend
        # clauses; guarantees no two writers of a tile can overlap).
        last_writer: Dict[TileRef, int] = {}
        readers: Dict[TileRef, Set[int]] = {}
        for idx in range(limit):
            t = self.tasks[idx]
            deps = set(t.deps)
            for ref in t.reads:
                w = last_writer.get(ref)
                if w is not None and w not in deps and w != t.tid:
                    problems.append(
                        f"task {t.tid} reads tile {ref} without depending "
                        f"on its last writer {w}")
            for ref in t.writes:
                w = last_writer.get(ref)
                if w is not None and w not in deps and w != t.tid:
                    problems.append(
                        f"tasks {w} and {t.tid} both write tile {ref} "
                        f"with no ordering edge (concurrent writers)")
                for r in readers.get(ref, ()):
                    if r not in deps and r != t.tid:
                        problems.append(
                            f"task {t.tid} writes tile {ref} without "
                            f"depending on reader {r}")
            for ref in t.reads:
                readers.setdefault(ref, set()).add(t.tid)
            for ref in t.writes:
                last_writer[ref] = t.tid
                readers[ref] = set()

        if problems and raise_on_error:
            raise GraphValidationError(problems)
        return problems

    def check_races(self, footprints=None, *, raise_on_error: bool = True):
        """Happens-before race check (transitive, unlike :meth:`validate`).

        :meth:`validate` demands the builder's *direct* per-tile edges;
        this accepts any graph where conflicting accesses are ordered
        by *some* dependency path, and is therefore the right check for
        mutated/replayed graphs and for footprints *observed* by the
        TileSan sanitizer (``footprints`` maps tid -> (reads, writes);
        pass ``TileSanitizer.footprints()``).  Returns the list of
        :class:`repro.analysis.races.RaceFinding`; raises
        :class:`repro.analysis.races.RaceError` when ``raise_on_error``
        and races were found.
        """
        from ..analysis.races import check_races as _check
        return _check(self, footprints, raise_on_error=raise_on_error)

    def critical_path_seconds(self, duration) -> float:
        """Length of the critical path under ``duration(task) -> s``.

        A lower bound on any schedule's makespan (ignores comm).
        """
        finish = [0.0] * len(self.tasks)
        for t in self.tasks:
            start = max((finish[d] for d in t.deps), default=0.0)
            finish[t.tid] = start + duration(t)
        return max(finish, default=0.0)

    def total_flops(self) -> float:
        """Sum of task flop counts (executed flops, not the paper model)."""
        return sum(t.flops for t in self.tasks)

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of task kinds (used by tests and the profiler)."""
        out: Dict[str, int] = {}
        for t in self.tasks:
            out[t.kind.value] = out.get(t.kind.value, 0) + 1
        return out

    def edges(self) -> List[Tuple[int, int]]:
        """All (dep, task) edges; test/visualization helper."""
        return [(d, t.tid) for t in self.tasks for d in t.deps]
