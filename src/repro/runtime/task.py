"""Task objects: the unit of scheduling.

A task declares the tiles it reads and writes (dependency inference
happens in :mod:`.graph`), its flop count and kind (device placement +
efficiency lookup), the rank that executes it (owner-computes on the
primary output tile), and the program phase it belongs to (panel step;
used by the fork-join model and the lookahead window).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

#: A tile reference: (matrix_id, i, j).  Scalars produced by reductions
#: use matrix_id of the pseudo-matrix the op registered for them.
TileRef = Tuple[int, int, int]


class TaskKind(enum.Enum):
    """Kernel classes with distinct performance characteristics."""

    GEMM = "gemm"          # tile C += A @ B
    HERK = "herk"          # tile C += A @ A^H (one triangle)
    TRSM = "trsm"          # triangular solve against a tile
    TRMM = "trmm"          # triangular multiply
    POTRF = "potrf"        # Cholesky panel kernel
    GEQRT = "geqrt"        # QR panel kernel (tile factor + T)
    TPQRT = "tpqrt"        # QR couple kernel (triangle + tile)
    UNMQR = "unmqr"        # apply Q from one tile's reflectors
    TPMQRT = "tpmqrt"      # apply coupled reflectors to a tile pair
    ADD = "add"            # tile axpy / scaled add
    SCALE = "scale"        # tile scaling
    COPY = "copy"          # tile copy (local or remote)
    SET = "set"            # tile fill (zero / identity)
    NORM = "norm"          # per-tile norm / column-sum partial
    REDUCE = "reduce"      # fan-in combine of partials (allreduce root)
    GEMV = "gemv"          # tile matrix-vector product (norm2est)
    SOLVE_VEC = "solve_vec"  # tile triangular solve on a vector


#: Kernels SLATE offloads to accelerators (trailing-update, BLAS-3).
#: Panel kernels (GEQRT/TPQRT/POTRF) and latency-bound vector work stay
#: on the CPU, matching the library's device routing.
DEVICE_ELIGIBLE = frozenset({
    TaskKind.GEMM, TaskKind.HERK, TaskKind.TRSM, TaskKind.TRMM,
    TaskKind.UNMQR, TaskKind.TPMQRT, TaskKind.ADD, TaskKind.SCALE,
    TaskKind.COPY, TaskKind.SET,
})

#: Factorization panel kernels: latency-bound, CPU-resident in SLATE.
#: A *coarsened* panel task (perf model) is mostly trailing-update work
#: and becomes GPU-eligible with a blended rate.
PANEL_KINDS = frozenset({TaskKind.GEQRT, TaskKind.TPQRT, TaskKind.POTRF})

#: Kernels whose "flops" count element operations (memory bound).
ELEMENTWISE_KINDS = frozenset({
    TaskKind.ADD, TaskKind.SCALE, TaskKind.COPY, TaskKind.SET,
    TaskKind.NORM, TaskKind.REDUCE, TaskKind.GEMV, TaskKind.SOLVE_VEC,
})


@dataclass
class Task:
    """One schedulable kernel invocation.

    ``reads``/``writes`` are tile refs; ``rank`` is the executing MPI
    rank; ``phase`` is the program-order phase counter (panel steps);
    ``flops`` drives the duration model; ``bytes_out`` is the size of
    the written tiles (used for transfer costs to consumers).
    """

    tid: int
    kind: TaskKind
    reads: Tuple[TileRef, ...]
    writes: Tuple[TileRef, ...]
    rank: int
    phase: int
    flops: float = 0.0
    bytes_out: int = 0
    tile_dim: int = 0   # nominal tile edge (efficiency-curve lookup)
    #: Coarsening factor of the perf model (nb_sim / nb_real).  > 1
    #: means this task models a *group* of real-nb kernels; the machine
    #: model blends panel/update rates accordingly.
    coarse: float = 1.0
    #: Index of the enclosing library operation (one gemm/geqrf/...).
    #: The fork-join model barriers between *ops* — each ScaLAPACK
    #: call is internally parallel but calls do not overlap.
    op: int = 0
    label: str = ""
    # Filled by the graph builder:
    deps: Tuple[int, ...] = field(default_factory=tuple)
    #: Reads of tiles never written by any task (initial data).  The
    #: scheduler charges their transfer from the owning rank's host
    #: memory (a GPU consumer pays H2D; a remote consumer pays the
    #: wire), exactly like SLATE fetching a tile on first touch.
    cold_reads: Tuple[TileRef, ...] = field(default_factory=tuple)
    #: Opt-out for the TileSan footprint sanitizer
    #: (``submit(..., sanitize=False)``): the payload's accesses are
    #: neither recorded nor diffed against the declaration.
    sanitize: bool = True

    @property
    def gpu_eligible(self) -> bool:
        """Whether SLATE would route this kernel to an accelerator."""
        return self.kind in DEVICE_ELIGIBLE

    def __repr__(self) -> str:  # compact: graphs hold ~1e5 of these
        return (f"Task({self.tid}, {self.kind.value}, rank={self.rank}, "
                f"phase={self.phase}, flops={self.flops:.3g})")
