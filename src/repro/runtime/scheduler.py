"""Event-driven schedule simulation of a task DAG on a machine model.

Models what the paper's two runtimes do with the same algorithm:

* **task-based (SLATE)** — tasks run as soon as their DAG dependencies
  are satisfied and a core/GPU on their owning rank is free, with an
  optional lookahead window bounding how many program phases ahead the
  execution may run (SLATE's lookahead panels);
* **fork-join (ScaLAPACK/POLAR)** — a barrier after every phase: no
  task of phase p+1 starts before every task of phase <= p completed,
  plus the barrier's own log(P) latency.  This is the bulk-synchronous
  execution the paper identifies as POLAR's scalability bottleneck.

Transfers: consumer-driven.  When a task reads a tile last written on
another rank (or another device), the transfer is scheduled on the
α-β link model with per-rank send/receive/staging serialization, and a
broadcast cache ensures each tile version crosses each link once per
destination (SLATE's tileBcast).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..comm.counters import CommCounters
from ..comm.network import TransferPath
from ..obs.timeline import (
    STALL_DEPENDENCY,
    STALL_GATE,
    STALL_LINK,
    BarrierEvent,
    StallEvent,
    TaskEvent,
    TransferEvent,
)
from .graph import TaskGraph
from .task import PANEL_KINDS, Task

if TYPE_CHECKING:  # machines imports runtime.task; avoid the cycle
    from ..machines.machine import MachineModel
    from ..obs.timeline import TraceSink


@dataclass(frozen=True)
class RunConfig:
    """One simulated run configuration."""

    machine: "MachineModel"
    nodes: int
    ranks_per_node: int
    use_gpu: bool
    #: Lookahead window in gate units; ``None`` = unbounded (pure DAG
    #: order), ``0`` = bulk-synchronous fork-join.
    lookahead: Optional[int] = None
    #: Charge an explicit barrier each time the gate advances.
    barrier_per_phase: bool = False
    #: Gate unit for the lookahead window: "phase" (panel steps —
    #: SLATE's lookahead semantics) or "op" (whole library calls —
    #: the ScaLAPACK fork-join semantics: each pdgeqrf/pdgemm is
    #: internally parallel but calls never overlap).
    barrier_granularity: str = "phase"

    @property
    def total_ranks(self) -> int:
        return self.machine.ranks(self.nodes, self.ranks_per_node)


@dataclass
class ScheduleResult:
    """Outcome of a simulated schedule."""

    makespan: float
    total_flops: float
    task_count: int
    comm: CommCounters
    per_kind_busy: Dict[str, float]
    per_rank_busy: List[float]
    critical_path: float
    config: RunConfig
    start_times: Optional[List[float]] = None
    finish_times: Optional[List[float]] = None
    kinds: Optional[List[str]] = None
    ranks: Optional[List[int]] = None
    #: Execution slots each rank exposed (cores + GPUs, or the two
    #: aggregated gang slots); normalizes busy time to true utilization.
    slots_per_rank: int = 1
    #: Scheduler-attributed stall seconds by cause (summed over slots).
    stall_seconds: Optional[Dict[str, float]] = None

    @property
    def gflops(self) -> float:
        """Achieved Gflop/s over the executed task flops."""
        return self.total_flops / self.makespan / 1e9 if self.makespan else 0.0

    def tflops(self, model_flops: Optional[float] = None) -> float:
        """Tflop/s the paper's way: *useful* (model) flops over time."""
        fl = self.total_flops if model_flops is None else model_flops
        return fl / self.makespan / 1e12 if self.makespan else 0.0


class _Pool:
    """Execution slots of one (rank, device-class) pair."""

    __slots__ = ("free",)

    def __init__(self, slots: int) -> None:
        # Heap of (slot-free time, slot index); the index identifies
        # the core/GPU for timeline capture and breaks ties
        # deterministically without changing any completion time.
        self.free: List[Tuple[float, int]] = [(0.0, i) for i in range(slots)]
        heapq.heapify(self.free)


def _duration(task: Task, cfg: RunConfig, on_gpu: bool,
              host_cores: int = 1, gang: int = 1) -> float:
    return cfg.machine.task_duration(task.kind, task.flops,
                                     task.tile_dim, task.coarse, on_gpu,
                                     host_cores=host_cores, gang=gang)


def simulate(graph: TaskGraph, cfg: RunConfig, *,
             keep_trace: bool = False,
             sink: Optional["TraceSink"] = None) -> ScheduleResult:
    """Simulate the DAG on the machine; returns makespan and breakdowns.

    Task ranks in the graph must be < cfg.total_ranks.

    ``sink`` (a :class:`repro.obs.timeline.TraceSink`) receives a
    structured event for every task execution, tile transfer, barrier,
    and lookahead-gate stall.  Every emit site is guarded, so a run
    with ``sink=None`` records nothing and pays nothing.
    """
    tasks = graph.tasks
    n_tasks = len(tasks)
    ranks = cfg.total_ranks
    res = cfg.machine.rank_resources(cfg.ranks_per_node, use_gpu=cfg.use_gpu)
    net = cfg.machine.network
    rpn = cfg.ranks_per_node

    if any(t.rank >= ranks for t in tasks):
        raise ValueError(
            f"graph contains ranks >= {ranks}; build the graph on a grid "
            f"matching the run configuration")

    # Device routing: GPU-eligible kernels go to the GPU pool when the
    # run uses GPUs; everything else runs on host cores.  Coarsened
    # panel tasks are mostly trailing-update work and route to the GPU
    # with a blended rate (see MachineModel.task_duration).
    on_gpu = [cfg.use_gpu and res.gpus > 0
              and (t.gpu_eligible
                   or (t.coarse > 1.01 and t.kind in PANEL_KINDS))
              for t in tasks]

    # Gang scheduling for coarsened graphs: a coarse task models many
    # real-nb kernels, which fine-grained execution would spread over
    # all of a rank's devices.  Each rank then exposes one aggregated
    # slot per device class whose rate scales with the device count.
    ganged = any(t.coarse > 1.01 for t in tasks)
    cpu_gang = res.cores if ganged else 1
    gpu_gang = max(res.gpus, 1) if ganged else 1
    cpu_pools = [_Pool(1 if ganged else res.cores) for _ in range(ranks)]
    gpu_pools = ([_Pool(1 if ganged else res.gpus) for _ in range(ranks)]
                 if cfg.use_gpu and res.gpus else None)

    succ = graph.successors()
    indeg = [len(t.deps) for t in tasks]

    finish = [0.0] * n_tasks
    start = [0.0] * n_tasks if keep_trace else None
    done = [False] * n_tasks

    # Window bookkeeping over the configured gate unit.
    if cfg.barrier_granularity == "op":
        gate = [t.op for t in tasks]
    elif cfg.barrier_granularity == "phase":
        gate = [t.phase for t in tasks]
    else:
        raise ValueError(
            f"barrier_granularity must be 'phase' or 'op', got "
            f"{cfg.barrier_granularity!r}")
    max_phase = max(gate, default=0)
    phase_remaining = [0] * (max_phase + 1)
    for g in gate:
        phase_remaining[g] += 1
    completed_prefix = 0  # all tasks with phase < completed_prefix done
    while (completed_prefix <= max_phase
           and phase_remaining[completed_prefix] == 0):
        completed_prefix += 1
    parked: Dict[int, List[int]] = {}
    barrier_floor = 0.0

    # Link serialization state.
    send_free = [0.0] * ranks
    recv_free = [0.0] * ranks
    stage_free = [0.0] * ranks  # CPU<->GPU staging link per rank
    # Broadcast state: per produced tile version, the ranks that hold a
    # copy and when it arrived.  A rank holding a copy can relay it
    # onward, so repeated consumption forms a broadcast *tree* (SLATE's
    # tileBcast / MPI tree bcast) rather than serializing the
    # producer's injection link O(consumers) times.
    copies: Dict[int, Dict[int, float]] = {}
    # (producer_tid, dst_rank, dst_on_gpu) -> arrival on device class.
    xfer_cache: Dict[Tuple[int, int, bool], float] = {}
    # Same machinery for *initial* tiles (no producer task): they start
    # in host memory on their owning rank at t=0.
    cold_copies: Dict[Tuple[int, int, int], Dict[int, float]] = {}
    cold_cache: Dict[Tuple[Tuple[int, int, int], int, bool], float] = {}

    comm = CommCounters()
    per_kind_busy: Dict[str, float] = {}
    per_rank_busy = [0.0] * ranks

    def window_ok(t: Task) -> bool:
        if cfg.lookahead is None:
            return True
        return gate[t.tid] <= completed_prefix + cfg.lookahead

    def transfer_in(dep: Task, t: Task, t_gpu: bool) -> float:
        """Arrival time of dep's output at t's rank/device."""
        d_gpu = on_gpu[dep.tid]
        src, dst = dep.rank, t.rank
        if src == dst and d_gpu == t_gpu:
            return finish[dep.tid]
        nbytes = 0
        wr = set(dep.writes)
        for ref in t.reads:
            if ref in wr:
                nbytes += graph.tile_bytes.get(ref, 0)
        if nbytes == 0:
            # Pure ordering edge (WAR) — no data moves.
            return finish[dep.tid]
        key = (dep.tid, dst, t_gpu)
        cached = xfer_cache.get(key)
        if cached is not None:
            return cached
        holders = copies.setdefault(dep.tid, {src: finish[dep.tid]})
        if dst in holders:
            # A copy already lives on this rank (relayed earlier or the
            # producer itself); only cross-device staging may remain.
            arrival = holders[dst]
            if (dst == src and d_gpu != t_gpu) or (dst != src and t_gpu
                                                   and not net.nic_on_gpu):
                path = TransferPath.H2D if t_gpu else TransferPath.D2H
                dur = net.transfer_time(nbytes, path)
                beg = max(arrival, stage_free[dst])
                stage_free[dst] = beg + dur
                comm.record(path, nbytes)
                if sink is not None:
                    sink.on_transfer(TransferEvent(
                        src=dst, dst=dst, nbytes=nbytes, leg=path.value,
                        start=beg, end=beg + dur))
                arrival = beg + dur
            elif dst == src:
                arrival = holders[dst]
            xfer_cache[key] = arrival
            return arrival
        # Pick the relay source whose copy + free link starts earliest.
        best_src, best_beg = src, max(holders[src], send_free[src],
                                      recv_free[dst])
        for r, avail in holders.items():
            beg = max(avail, send_free[r], recv_free[dst])
            if beg < best_beg:
                best_src, best_beg = r, beg
        same_node = (cfg.machine.node_of_rank(best_src, rpn)
                     == cfg.machine.node_of_rank(dst, rpn))
        src_gpu = d_gpu if best_src == src else t_gpu
        dur = net.remote_gpu_transfer_time(
            nbytes, same_node, src_on_gpu=src_gpu, dst_on_gpu=t_gpu)
        send_free[best_src] = best_beg + dur
        recv_free[dst] = best_beg + dur
        path = (TransferPath.INTRA_NODE if same_node
                else TransferPath.INTER_NODE)
        comm.record(path, nbytes)
        if sink is not None:
            sink.on_transfer(TransferEvent(
                src=best_src, dst=dst, nbytes=nbytes, leg=path.value,
                start=best_beg, end=best_beg + dur))
        if not same_node and not net.nic_on_gpu:
            if src_gpu:
                comm.record(TransferPath.D2H, nbytes)
            if t_gpu:
                comm.record(TransferPath.H2D, nbytes)
        arrival = best_beg + dur
        holders[dst] = arrival
        xfer_cache[key] = arrival
        return arrival

    def cold_transfer(ref, t: Task, t_gpu: bool) -> float:
        """Arrival of an initial tile at t's rank/device (owner-hosted)."""
        src = graph.tile_owner[ref]
        dst = t.rank
        if src == dst and not t_gpu:
            return 0.0
        key = (ref, dst, t_gpu)
        cached = cold_cache.get(key)
        if cached is not None:
            return cached
        nbytes = graph.tile_bytes.get(ref, 0)
        holders = cold_copies.setdefault(ref, {src: 0.0})
        if dst in holders:
            arrival = holders[dst]
            if t_gpu and (dst == src or not net.nic_on_gpu):
                dur = net.transfer_time(nbytes, TransferPath.H2D)
                beg = max(arrival, stage_free[dst])
                stage_free[dst] = beg + dur
                comm.record(TransferPath.H2D, nbytes)
                if sink is not None:
                    sink.on_transfer(TransferEvent(
                        src=dst, dst=dst, nbytes=nbytes,
                        leg=TransferPath.H2D.value,
                        start=beg, end=beg + dur))
                arrival = beg + dur
            cold_cache[key] = arrival
            return arrival
        best_src, best_beg = src, max(holders[src], send_free[src],
                                      recv_free[dst])
        for r, avail in holders.items():
            beg = max(avail, send_free[r], recv_free[dst])
            if beg < best_beg:
                best_src, best_beg = r, beg
        same_node = (cfg.machine.node_of_rank(best_src, rpn)
                     == cfg.machine.node_of_rank(dst, rpn))
        dur = net.remote_gpu_transfer_time(
            nbytes, same_node, src_on_gpu=False, dst_on_gpu=t_gpu)
        send_free[best_src] = best_beg + dur
        recv_free[dst] = best_beg + dur
        path = (TransferPath.INTRA_NODE if same_node
                else TransferPath.INTER_NODE)
        comm.record(path, nbytes)
        if sink is not None:
            sink.on_transfer(TransferEvent(
                src=best_src, dst=dst, nbytes=nbytes, leg=path.value,
                start=best_beg, end=best_beg + dur))
        if not same_node and t_gpu and not net.nic_on_gpu:
            comm.record(TransferPath.H2D, nbytes)
        arrival = best_beg + dur
        holders[dst] = arrival
        cold_cache[key] = arrival
        return arrival

    # Event queue of task completions.
    events: List[Tuple[float, int]] = []

    # Stall accounting (scheduler-attributed idle time, by cause).
    stall_acc = {STALL_DEPENDENCY: 0.0, STALL_LINK: 0.0, STALL_GATE: 0.0}
    park_time: Dict[int, float] = {}

    def dispatch(tid: int) -> None:
        """Assign a ready-and-eligible task to a slot; create its event."""
        t = tasks[tid]
        t_gpu = on_gpu[tid]
        pool = (gpu_pools[t.rank] if t_gpu else cpu_pools[t.rank])  # type: ignore[index]
        dep_ready = barrier_floor  # producers done (no transfer cost)
        data_ready = barrier_floor  # producers done AND data arrived
        for d in t.deps:
            if finish[d] > dep_ready:
                dep_ready = finish[d]
            arr = transfer_in(tasks[d], t, t_gpu)
            if arr > data_ready:
                data_ready = arr
        for ref in t.cold_reads:
            arr = cold_transfer(ref, t, t_gpu)
            if arr > data_ready:
                data_ready = arr
        slot_free, slot_idx = heapq.heappop(pool.free)
        beg = max(data_ready, slot_free)
        if beg > slot_free:
            # The slot sat idle: time past the producers' completion
            # was spent on the wire (link busy / transfer latency), the
            # rest waiting on the dependencies themselves.
            idle = beg - slot_free
            link = data_ready - dep_ready
            if link > idle:
                link = idle
            stall_acc[STALL_LINK] += link
            stall_acc[STALL_DEPENDENCY] += idle - link
        dur = _duration(t, cfg, t_gpu, res.cores,
                        gpu_gang if t_gpu else cpu_gang)
        end = beg + dur
        heapq.heappush(pool.free, (end, slot_idx))
        finish[tid] = end
        if start is not None:
            start[tid] = beg
        per_kind_busy[t.kind.value] = per_kind_busy.get(t.kind.value, 0.0) + dur
        per_rank_busy[t.rank] += dur
        if sink is not None:
            sink.on_task(TaskEvent(
                tid=tid, kind=t.kind.value, rank=t.rank,
                slot=f"gpu{slot_idx}" if t_gpu else f"cpu{slot_idx}",
                phase=t.phase, flops=t.flops, start=beg, end=end,
                duration=dur, label=t.label))
        heapq.heappush(events, (end, tid))

    def make_eligible(tid: int, now: float = 0.0) -> None:
        t = tasks[tid]
        if window_ok(t):
            dispatch(tid)
        else:
            parked.setdefault(gate[tid], []).append(tid)
            park_time[tid] = now

    # Seed: all zero-indegree tasks.
    for t in tasks:
        if indeg[t.tid] == 0:
            make_eligible(t.tid)

    makespan = 0.0
    completed = 0
    while events:
        now, tid = heapq.heappop(events)
        if done[tid]:
            continue
        done[tid] = True
        completed += 1
        makespan = max(makespan, now)
        t = tasks[tid]
        phase_remaining[gate[tid]] -= 1
        # Advance the phase window; release parked tasks.
        while (completed_prefix <= max_phase
               and phase_remaining[completed_prefix] == 0):
            if cfg.barrier_per_phase:
                from ..comm.collectives import barrier_time
                barrier_floor = max(barrier_floor,
                                    now + barrier_time(net, ranks))
                if sink is not None:
                    sink.on_barrier(BarrierEvent(
                        time=now, until=barrier_floor,
                        phase=completed_prefix))
            completed_prefix += 1
            if cfg.lookahead is not None:
                release_upto = completed_prefix + cfg.lookahead
                for ph in list(parked.keys()):
                    if ph <= release_upto:
                        for ptid in parked.pop(ph):
                            gated_since = park_time.pop(ptid, now)
                            stall_acc[STALL_GATE] += now - gated_since
                            if sink is not None:
                                sink.on_stall(StallEvent(
                                    tid=ptid, cause=STALL_GATE,
                                    start=gated_since, end=now))
                            dispatch(ptid)
        for s in succ[tid]:
            indeg[s] -= 1
            if indeg[s] == 0:
                make_eligible(s, now)

    if completed != n_tasks:
        raise RuntimeError(
            f"schedule deadlock: {completed}/{n_tasks} tasks completed "
            f"(cyclic graph or window bug)")

    crit = graph.critical_path_seconds(
        lambda t: _duration(t, cfg, on_gpu[t.tid], res.cores,
                            gpu_gang if on_gpu[t.tid] else cpu_gang))

    slots_per_rank = ((1 if ganged else res.cores)
                      + ((1 if ganged else res.gpus) if gpu_pools else 0))

    # Publish aggregate run metrics to the process-wide registry (one
    # O(1) batch at the end; the hot loop stays uninstrumented).
    from ..obs.metrics import get_registry
    reg = get_registry()
    reg.counter("scheduler.simulations").inc()
    reg.counter("scheduler.tasks_executed").inc(n_tasks)
    for cause, sec in stall_acc.items():
        reg.counter(f"scheduler.stall_seconds.{cause}").inc(sec)
    reg.gauge("scheduler.makespan_seconds").set(makespan)
    comm.publish(reg)
    if sink is not None:
        hist = reg.histogram("scheduler.task_seconds")
        for ev in getattr(sink, "tasks", ()):
            hist.observe(ev.duration)

    return ScheduleResult(
        makespan=makespan,
        total_flops=graph.total_flops(),
        task_count=n_tasks,
        comm=comm,
        per_kind_busy=per_kind_busy,
        per_rank_busy=per_rank_busy,
        critical_path=crit,
        config=cfg,
        start_times=start,
        finish_times=list(finish) if keep_trace else None,
        kinds=[t.kind.value for t in tasks] if keep_trace else None,
        ranks=[t.rank for t in tasks] if keep_trace else None,
        slots_per_rank=slots_per_rank,
        stall_seconds=dict(stall_acc),
    )


def forkjoin_config(machine: "MachineModel", nodes: int, ranks_per_node: int,
                    *, use_gpu: bool = False,
                    granularity: str = "op") -> RunConfig:
    """The ScaLAPACK/POLAR execution model: fork-join over library
    calls (each call internally parallel, calls never overlap), CPU
    ranks.  ``granularity="phase"`` gives the stricter per-panel BSP
    model (the A4 ablation's extreme point).
    """
    return RunConfig(machine=machine, nodes=nodes,
                     ranks_per_node=ranks_per_node, use_gpu=use_gpu,
                     lookahead=0, barrier_per_phase=True,
                     barrier_granularity=granularity)


def taskbased_config(machine: "MachineModel", nodes: int, ranks_per_node: int,
                     *, use_gpu: bool, lookahead: Optional[int] = None
                     ) -> RunConfig:
    """The SLATE execution model: dependency-driven, optional lookahead."""
    return RunConfig(machine=machine, nodes=nodes,
                     ranks_per_node=ranks_per_node, use_gpu=use_gpu,
                     lookahead=lookahead, barrier_per_phase=False)
