"""Event-driven schedule simulation of a task DAG on a machine model.

Models what the paper's two runtimes do with the same algorithm:

* **task-based (SLATE)** — tasks run as soon as their DAG dependencies
  are satisfied and a core/GPU on their owning rank is free, with an
  optional lookahead window bounding how many program phases ahead the
  execution may run (SLATE's lookahead panels);
* **fork-join (ScaLAPACK/POLAR)** — a barrier after every phase: no
  task of phase p+1 starts before every task of phase <= p completed,
  plus the barrier's own log(P) latency.  This is the bulk-synchronous
  execution the paper identifies as POLAR's scalability bottleneck.

Transfers: consumer-driven.  When a task reads a tile last written on
another rank (or another device), the transfer is scheduled on the
α-β link model with per-rank send/receive/staging serialization, and a
broadcast cache ensures each tile version crosses each link once per
destination (SLATE's tileBcast).

Resilience: an optional :class:`repro.resilience.faults.FaultPlan`
injects rank crashes, transient kernel failures, link degradation, and
straggler slots into the run.  Recovery is dask/Spark-style: transient
failures retry with exponential backoff, a crash invalidates the
rank's resident tiles and the scheduler re-executes the minimal
lineage-replay subgraph on surviving ranks, and straggler-inflated
tasks are speculatively duplicated (first finisher wins).  Every
fault consult site is guarded by ``faults is not None``, so a
fault-free run is bit-identical to the pre-resilience scheduler.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..comm.counters import CommCounters
from ..comm.network import TransferPath
from ..obs.timeline import (
    FAULT_CRASH,
    FAULT_REPLAY,
    FAULT_SPECULATE,
    FAULT_TRANSIENT,
    STALL_DEPENDENCY,
    STALL_GATE,
    STALL_LINK,
    BarrierEvent,
    FaultEvent,
    StallEvent,
    TaskEvent,
    TransferEvent,
)
from ..resilience.faults import FaultPlan, RecoveryStats
from ..resilience.recovery import ResilienceState, lineage_replay_set
from .graph import TaskGraph
from .task import PANEL_KINDS, Task

if TYPE_CHECKING:  # machines imports runtime.task; avoid the cycle
    from ..machines.machine import MachineModel
    from ..obs.timeline import TraceSink


@dataclass(frozen=True)
class RunConfig:
    """One simulated run configuration."""

    machine: "MachineModel"
    nodes: int
    ranks_per_node: int
    use_gpu: bool
    #: Lookahead window in gate units; ``None`` = unbounded (pure DAG
    #: order), ``0`` = bulk-synchronous fork-join.
    lookahead: Optional[int] = None
    #: Charge an explicit barrier each time the gate advances.
    barrier_per_phase: bool = False
    #: Gate unit for the lookahead window: "phase" (panel steps —
    #: SLATE's lookahead semantics) or "op" (whole library calls —
    #: the ScaLAPACK fork-join semantics: each pdgeqrf/pdgemm is
    #: internally parallel but calls never overlap).
    barrier_granularity: str = "phase"

    @property
    def total_ranks(self) -> int:
        return self.machine.ranks(self.nodes, self.ranks_per_node)


@dataclass
class ScheduleResult:
    """Outcome of a simulated schedule."""

    makespan: float
    total_flops: float
    task_count: int
    comm: CommCounters
    per_kind_busy: Dict[str, float]
    per_rank_busy: List[float]
    critical_path: float
    config: RunConfig
    start_times: Optional[List[float]] = None
    finish_times: Optional[List[float]] = None
    kinds: Optional[List[str]] = None
    ranks: Optional[List[int]] = None
    #: Execution slots each rank exposed (cores + GPUs, or the two
    #: aggregated gang slots); normalizes busy time to true utilization.
    slots_per_rank: int = 1
    #: Scheduler-attributed stall seconds by cause (summed over slots).
    stall_seconds: Optional[Dict[str, float]] = None
    #: Fault/recovery accounting of the run (None for fault-free runs).
    recovery: Optional[RecoveryStats] = None

    @property
    def gflops(self) -> float:
        """Achieved Gflop/s over the executed task flops."""
        return self.total_flops / self.makespan / 1e9 if self.makespan else 0.0

    def tflops(self, model_flops: Optional[float] = None) -> float:
        """Tflop/s the paper's way: *useful* (model) flops over time."""
        fl = self.total_flops if model_flops is None else model_flops
        return fl / self.makespan / 1e12 if self.makespan else 0.0


class _Pool:
    """Execution slots of one (rank, device-class) pair."""

    __slots__ = ("free",)

    def __init__(self, slots: int) -> None:
        # Heap of (slot-free time, slot index); the index identifies
        # the core/GPU for timeline capture and breaks ties
        # deterministically without changing any completion time.
        self.free: List[Tuple[float, int]] = [(0.0, i) for i in range(slots)]
        heapq.heapify(self.free)


def _duration(task: Task, cfg: RunConfig, on_gpu: bool,
              host_cores: int = 1, gang: int = 1) -> float:
    return cfg.machine.task_duration(task.kind, task.flops,
                                     task.tile_dim, task.coarse, on_gpu,
                                     host_cores=host_cores, gang=gang)


#: Sentinel tid for rank-crash markers in the event queue.  Markers
#: sort before same-instant task completions (tid -1 < any real tid),
#: so a task finishing exactly at the crash instant counts as killed.
_CRASH_TID = -1


def simulate(graph: TaskGraph, cfg: RunConfig, *,
             keep_trace: bool = False,
             sink: Optional["TraceSink"] = None,
             faults: Optional[FaultPlan] = None) -> ScheduleResult:
    """Simulate the DAG on the machine; returns makespan and breakdowns.

    Task ranks in the graph must be < cfg.total_ranks.

    ``sink`` (a :class:`repro.obs.timeline.TraceSink`) receives a
    structured event for every task execution, tile transfer, barrier,
    and lookahead-gate stall.  Every emit site is guarded, so a run
    with ``sink=None`` records nothing and pays nothing.

    ``faults`` (a :class:`repro.resilience.faults.FaultPlan`) injects
    rank crashes, transient kernel failures, link degradation, and
    stragglers; the scheduler recovers via retry, lineage replay, and
    speculation, charging all re-execution and re-communication to the
    makespan.  ``ScheduleResult.recovery`` then reports what recovery
    cost.  With ``faults=None`` the schedule is bit-identical to the
    fault-unaware scheduler.
    """
    tasks = graph.tasks
    n_tasks = len(tasks)
    ranks = cfg.total_ranks
    res = cfg.machine.rank_resources(cfg.ranks_per_node, use_gpu=cfg.use_gpu)
    net = cfg.machine.network
    rpn = cfg.ranks_per_node

    if any(t.rank >= ranks for t in tasks):
        raise ValueError(
            f"graph contains ranks >= {ranks}; build the graph on a grid "
            f"matching the run configuration")

    fstate = (ResilienceState(faults, n_tasks, ranks, net)
              if faults is not None else None)

    # Device routing: GPU-eligible kernels go to the GPU pool when the
    # run uses GPUs; everything else runs on host cores.  Coarsened
    # panel tasks are mostly trailing-update work and route to the GPU
    # with a blended rate (see MachineModel.task_duration).
    on_gpu = [cfg.use_gpu and res.gpus > 0
              and (t.gpu_eligible
                   or (t.coarse > 1.01 and t.kind in PANEL_KINDS))
              for t in tasks]

    # Gang scheduling for coarsened graphs: a coarse task models many
    # real-nb kernels, which fine-grained execution would spread over
    # all of a rank's devices.  Each rank then exposes one aggregated
    # slot per device class whose rate scales with the device count.
    ganged = any(t.coarse > 1.01 for t in tasks)
    cpu_gang = res.cores if ganged else 1
    gpu_gang = max(res.gpus, 1) if ganged else 1
    cpu_pools = [_Pool(1 if ganged else res.cores) for _ in range(ranks)]
    gpu_pools = ([_Pool(1 if ganged else res.gpus) for _ in range(ranks)]
                 if cfg.use_gpu and res.gpus else None)

    succ = graph.successors()
    indeg = [len(t.deps) for t in tasks]

    finish = [0.0] * n_tasks
    start = [0.0] * n_tasks if keep_trace else None
    done = [False] * n_tasks
    dispatched = [False] * n_tasks
    #: Executing/last-execution rank per task; diverges from t.rank
    #: only when recovery remaps work off dead ranks.
    rank_of = [t.rank for t in tasks]
    #: Fault path only: task events buffered at dispatch, emitted at
    #: completion (so revoked executions never reach the trace).
    pending_ev: Dict[int, TaskEvent] = {}
    #: Fault path only: busy/re-execution accounting buffered the same
    #: way — (kind, span, rank, rank_busy, backup_rank, backup_busy,
    #: reexec_seconds) applied when the execution completes, dropped
    #: when a crash revokes it (utilization must only count work that
    #: ran to completion, like the trace).
    pending_busy: Dict[int, Tuple[str, float, int, float,
                                  Optional[int], float, float]] = {}

    # Window bookkeeping over the configured gate unit.
    if cfg.barrier_granularity == "op":
        gate = [t.op for t in tasks]
    elif cfg.barrier_granularity == "phase":
        gate = [t.phase for t in tasks]
    else:
        raise ValueError(
            f"barrier_granularity must be 'phase' or 'op', got "
            f"{cfg.barrier_granularity!r}")
    max_phase = max(gate, default=0)
    phase_remaining = [0] * (max_phase + 1)
    for g in gate:
        phase_remaining[g] += 1
    completed_prefix = 0  # all tasks with phase < completed_prefix done
    while (completed_prefix <= max_phase
           and phase_remaining[completed_prefix] == 0):
        completed_prefix += 1
    parked: Dict[int, List[int]] = {}
    barrier_floor = 0.0

    # Link serialization state.
    send_free = [0.0] * ranks
    recv_free = [0.0] * ranks
    stage_free = [0.0] * ranks  # CPU<->GPU staging link per rank
    # Broadcast state: per produced tile version, the ranks that hold a
    # copy and when it arrived.  A rank holding a copy can relay it
    # onward, so repeated consumption forms a broadcast *tree* (SLATE's
    # tileBcast / MPI tree bcast) rather than serializing the
    # producer's injection link O(consumers) times.
    copies: Dict[int, Dict[int, float]] = {}
    # (producer_tid, dst_rank, dst_on_gpu) -> arrival on device class.
    xfer_cache: Dict[Tuple[int, int, bool], float] = {}
    # Same machinery for *initial* tiles (no producer task): they start
    # in host memory on their owning rank at t=0.
    cold_copies: Dict[Tuple[int, int, int], Dict[int, float]] = {}
    cold_cache: Dict[Tuple[Tuple[int, int, int], int, bool], float] = {}

    comm = CommCounters()
    per_kind_busy: Dict[str, float] = {}
    per_rank_busy = [0.0] * ranks

    def window_ok(t: Task) -> bool:
        if cfg.lookahead is None:
            return True
        return gate[t.tid] <= completed_prefix + cfg.lookahead

    def _best_holder(holders: Dict[int, float], dst: int
                     ) -> Tuple[int, float]:
        """Relay source whose copy + free link starts earliest.

        Iterates holders in insertion order (producer first), keeping
        the first strict minimum — the same winner the pre-resilience
        scheduler picked, without assuming the producer's copy still
        exists (a crash may have pruned it).
        """
        best_src = -1
        best_beg = float("inf")
        for r, avail in holders.items():
            beg = max(avail, send_free[r], recv_free[dst])
            if beg < best_beg:
                best_src, best_beg = r, beg
        if best_src < 0:
            raise RuntimeError(
                "transfer requested for a tile with no surviving copy; "
                "lineage replay missed a producer (recovery bug)")
        return best_src, best_beg

    def transfer_in(dep: Task, t: Task, t_gpu: bool) -> float:
        """Arrival time of dep's output at t's rank/device."""
        d_gpu = on_gpu[dep.tid]
        src, dst = rank_of[dep.tid], rank_of[t.tid]
        if src == dst and d_gpu == t_gpu:
            return finish[dep.tid]
        nbytes = 0
        wr = set(dep.writes)
        for ref in t.reads:
            if ref in wr:
                nbytes += graph.tile_bytes.get(ref, 0)
        if nbytes == 0:
            # Pure ordering edge (WAR) — no data moves.
            return finish[dep.tid]
        key = (dep.tid, dst, t_gpu)
        cached = xfer_cache.get(key)
        if cached is not None:
            return cached
        holders = copies.setdefault(dep.tid, {src: finish[dep.tid]})
        if dst in holders:
            # A copy already lives on this rank (relayed earlier or the
            # producer itself); only cross-device staging may remain.
            arrival = holders[dst]
            if (dst == src and d_gpu != t_gpu) or (dst != src and t_gpu
                                                   and not net.nic_on_gpu):
                path = TransferPath.H2D if t_gpu else TransferPath.D2H
                dur = net.transfer_time(nbytes, path)
                beg = max(arrival, stage_free[dst])
                stage_free[dst] = beg + dur
                comm.record(path, nbytes)
                if sink is not None:
                    sink.on_transfer(TransferEvent(
                        src=dst, dst=dst, nbytes=nbytes, leg=path.value,
                        start=beg, end=beg + dur))
                arrival = beg + dur
            elif dst == src:
                arrival = holders[dst]
            xfer_cache[key] = arrival
            return arrival
        best_src, best_beg = _best_holder(holders, dst)
        same_node = (cfg.machine.node_of_rank(best_src, rpn)
                     == cfg.machine.node_of_rank(dst, rpn))
        src_gpu = d_gpu if best_src == src else t_gpu
        dur = net.remote_gpu_transfer_time(
            nbytes, same_node, src_on_gpu=src_gpu, dst_on_gpu=t_gpu)
        if fstate is not None:
            dur = fstate.degrade_transfer(best_src, dst, best_beg,
                                          nbytes, same_node, dur)
        send_free[best_src] = best_beg + dur
        recv_free[dst] = best_beg + dur
        path = (TransferPath.INTRA_NODE if same_node
                else TransferPath.INTER_NODE)
        comm.record(path, nbytes)
        if sink is not None:
            sink.on_transfer(TransferEvent(
                src=best_src, dst=dst, nbytes=nbytes, leg=path.value,
                start=best_beg, end=best_beg + dur))
        if not same_node and not net.nic_on_gpu:
            if src_gpu:
                comm.record(TransferPath.D2H, nbytes)
            if t_gpu:
                comm.record(TransferPath.H2D, nbytes)
        arrival = best_beg + dur
        holders[dst] = arrival
        xfer_cache[key] = arrival
        return arrival

    def cold_transfer(ref, t: Task, t_gpu: bool) -> float:
        """Arrival of an initial tile at t's rank/device (owner-hosted)."""
        src = graph.tile_owner[ref]
        avail0 = 0.0
        if fstate is not None and src in fstate.dead:
            # The owner died: initial data is durable (regenerable /
            # on the parallel filesystem) and is re-hosted by the
            # replacement rank, available once the crash is detected.
            src = fstate.remap_rank(src)
            avail0 = fstate.recovery_floor
        dst = rank_of[t.tid]
        if src == dst and not t_gpu:
            return avail0
        key = (ref, dst, t_gpu)
        cached = cold_cache.get(key)
        if cached is not None:
            return cached
        nbytes = graph.tile_bytes.get(ref, 0)
        holders = cold_copies.setdefault(ref, {src: avail0})
        if fstate is not None and not holders:
            holders[src] = avail0  # every pre-crash copy was pruned
        if dst in holders:
            arrival = holders[dst]
            if t_gpu and (dst == src or not net.nic_on_gpu):
                dur = net.transfer_time(nbytes, TransferPath.H2D)
                beg = max(arrival, stage_free[dst])
                stage_free[dst] = beg + dur
                comm.record(TransferPath.H2D, nbytes)
                if sink is not None:
                    sink.on_transfer(TransferEvent(
                        src=dst, dst=dst, nbytes=nbytes,
                        leg=TransferPath.H2D.value,
                        start=beg, end=beg + dur))
                arrival = beg + dur
            cold_cache[key] = arrival
            return arrival
        best_src, best_beg = _best_holder(holders, dst)
        same_node = (cfg.machine.node_of_rank(best_src, rpn)
                     == cfg.machine.node_of_rank(dst, rpn))
        dur = net.remote_gpu_transfer_time(
            nbytes, same_node, src_on_gpu=False, dst_on_gpu=t_gpu)
        if fstate is not None:
            dur = fstate.degrade_transfer(best_src, dst, best_beg,
                                          nbytes, same_node, dur)
        send_free[best_src] = best_beg + dur
        recv_free[dst] = best_beg + dur
        path = (TransferPath.INTRA_NODE if same_node
                else TransferPath.INTER_NODE)
        comm.record(path, nbytes)
        if sink is not None:
            sink.on_transfer(TransferEvent(
                src=best_src, dst=dst, nbytes=nbytes, leg=path.value,
                start=best_beg, end=best_beg + dur))
        if not same_node and t_gpu and not net.nic_on_gpu:
            comm.record(TransferPath.H2D, nbytes)
        arrival = best_beg + dur
        holders[dst] = arrival
        cold_cache[key] = arrival
        return arrival

    # Event queue of task completions: (time, tid, attempt-epoch).
    # Crash markers use tid=_CRASH_TID with the crash index as epoch.
    events: List[Tuple[float, int, int]] = []

    # Stall accounting (scheduler-attributed idle time, by cause).
    stall_acc = {STALL_DEPENDENCY: 0.0, STALL_LINK: 0.0, STALL_GATE: 0.0}
    park_time: Dict[int, float] = {}

    def _pick_backup(rank: int, want_gpu: bool) -> Optional[int]:
        """Least-loaded surviving rank (earliest free slot) != rank."""
        best, best_free = None, float("inf")
        for r in fstate.survivors():  # type: ignore[union-attr]
            if r == rank:
                continue
            pool = gpu_pools[r] if want_gpu else cpu_pools[r]  # type: ignore[index]
            free_at = pool.free[0][0]
            if free_at < best_free:
                best, best_free = r, free_at
        return best

    def dispatch(tid: int, floor: float = 0.0) -> None:
        """Assign a ready-and-eligible task to a slot; create its event."""
        t = tasks[tid]
        t_gpu = on_gpu[tid]
        rank = rank_of[tid]
        pool = (gpu_pools[rank] if t_gpu else cpu_pools[rank])  # type: ignore[index]
        base = barrier_floor if fstate is None else max(barrier_floor, floor)
        dep_ready = base   # producers done (no transfer cost)
        data_ready = base  # producers done AND data arrived
        for d in t.deps:
            if finish[d] > dep_ready:
                dep_ready = finish[d]
            arr = transfer_in(tasks[d], t, t_gpu)
            if arr > data_ready:
                data_ready = arr
        for ref in t.cold_reads:
            arr = cold_transfer(ref, t, t_gpu)
            if arr > data_ready:
                data_ready = arr
        slot_free, slot_idx = heapq.heappop(pool.free)
        beg = max(data_ready, slot_free)
        if beg > slot_free:
            # The slot sat idle: time past the producers' completion
            # was spent on the wire (link busy / transfer latency), the
            # rest waiting on the dependencies themselves.
            idle = beg - slot_free
            link = data_ready - dep_ready
            if link > idle:
                link = idle
            stall_acc[STALL_LINK] += link
            stall_acc[STALL_DEPENDENCY] += idle - link
        dur = _duration(t, cfg, t_gpu, res.cores,
                        gpu_gang if t_gpu else cpu_gang)
        dispatched[tid] = True

        if fstate is None:
            end = beg + dur
            heapq.heappush(pool.free, (end, slot_idx))
            finish[tid] = end
            if start is not None:
                start[tid] = beg
            per_kind_busy[t.kind.value] = (
                per_kind_busy.get(t.kind.value, 0.0) + dur)
            per_rank_busy[rank] += dur
            if sink is not None:
                sink.on_task(TaskEvent(
                    tid=tid, kind=t.kind.value, rank=rank,
                    slot=f"gpu{slot_idx}" if t_gpu else f"cpu{slot_idx}",
                    phase=t.phase, flops=t.flops, start=beg, end=end,
                    duration=dur, label=t.label))
            heapq.heappush(events, (end, tid, 0))
            return

        # ---- fault-aware execution path ------------------------------
        nominal = dur
        sf = fstate.straggler_factor(rank, beg)
        if sf != 1.0:
            dur = dur * sf
        fails, extra = fstate.transient_schedule(tid, t.kind.value, dur)
        end = beg + extra + dur
        if fails and sink is not None:
            sink.on_fault(FaultEvent(
                kind=FAULT_TRANSIENT, time=beg, rank=rank, tid=tid,
                detail=f"{fails} failed attempt(s), retried with backoff"))

        # Straggler mitigation: speculative duplicate, first finisher
        # wins, the loser is cancelled at the winner's finish time.
        finish_t = end
        winner, win_beg = rank, beg
        backup_rank: Optional[int] = None
        dup_busy = 0.0
        if fstate.should_speculate(nominal, end - beg):
            backup = _pick_backup(rank, t_gpu)
            detect = fstate.speculation_detect_time(beg, nominal)
            if backup is not None and detect < end:
                nbytes_in = sum(graph.tile_bytes.get(ref, 0)
                                for ref in t.reads)
                refetch = (net.transfer_time(nbytes_in,
                                             TransferPath.INTER_NODE)
                           if nbytes_in else 0.0)
                bpool = (gpu_pools[backup] if t_gpu  # type: ignore[index]
                         else cpu_pools[backup])
                bfree, bidx = heapq.heappop(bpool.free)
                dup_beg = max(detect + refetch, bfree)
                if dup_beg >= end:
                    # Useless duplicate: it could not start before the
                    # original finishes.  Launch nothing and leave the
                    # backup slot untouched — pushing `end` here would
                    # move a busy slot's free time *backwards* and let
                    # later tasks overlap time the slot was occupied.
                    heapq.heappush(bpool.free, (bfree, bidx))
                else:
                    dup_dur = nominal * fstate.straggler_factor(backup,
                                                                dup_beg)
                    dup_end = dup_beg + dup_dur
                    if dup_end < end:
                        finish_t, winner, win_beg = dup_end, backup, dup_beg
                        fstate.stats.speculation_wins += 1
                    if nbytes_in:
                        comm.record(TransferPath.INTER_NODE, nbytes_in)
                        fstate.stats.recovery_bytes += nbytes_in
                        if sink is not None:
                            sink.on_transfer(TransferEvent(
                                src=rank, dst=backup, nbytes=nbytes_in,
                                leg=TransferPath.INTER_NODE.value,
                                start=detect, end=detect + refetch))
                    heapq.heappush(bpool.free, (max(finish_t, bfree), bidx))
                    backup_rank = backup
                    dup_busy = max(finish_t - dup_beg, 0.0)
                    fstate.stats.speculative_duplicates += 1
                    if sink is not None:
                        sink.on_fault(FaultEvent(
                            kind=FAULT_SPECULATE, time=detect, rank=backup,
                            tid=tid,
                            detail=(f"duplicate of r{rank} task; "
                                    f"{'duplicate' if winner == backup else 'original'}"
                                    f" won at {finish_t:.6g}s")))

        heapq.heappush(pool.free, (finish_t, slot_idx))
        finish[tid] = finish_t
        rank_of[tid] = winner
        if start is not None:
            start[tid] = win_beg
        span = finish_t - win_beg
        # A post-revocation re-execution (crash replay / re-run), plus
        # whatever the speculative duplicate burned, is recovery cost.
        reexec = dup_busy + (span if fstate.attempt[tid] > 0 else 0.0)
        rank_busy = max(finish_t - beg, 0.0) if winner == rank \
            else max(min(end, finish_t) - beg, 0.0)
        pending_busy[tid] = (t.kind.value, span, rank, rank_busy,
                             backup_rank, dup_busy, reexec)
        if sink is not None:
            # Buffered, not emitted: a crash can revoke this execution
            # before it completes, and the trace must only show work
            # that actually ran to completion.  The event loop emits it
            # when the matching-epoch completion pops.
            pending_ev[tid] = TaskEvent(
                tid=tid, kind=t.kind.value, rank=winner,
                slot=f"gpu{slot_idx}" if t_gpu else f"cpu{slot_idx}",
                phase=t.phase, flops=t.flops, start=win_beg, end=finish_t,
                duration=span, label=t.label)
        heapq.heappush(events, (finish_t, tid, fstate.attempt[tid]))

    def make_eligible(tid: int, now: float = 0.0, floor: float = 0.0) -> None:
        t = tasks[tid]
        if window_ok(t):
            dispatch(tid, floor)
        elif tid not in park_time:
            # The membership guard matters only under crash recovery: a
            # replayed producer's completion re-arms a consumer that
            # may still be sitting in `parked`, and appending it again
            # would dispatch it twice when the window opens.
            parked.setdefault(gate[tid], []).append(tid)
            park_time[tid] = now

    # ------------------------------------------------------------------
    # Crash recovery (lineage replay); only reachable with a fault plan.
    # ------------------------------------------------------------------

    def _purge_task_output(tid: int) -> None:
        copies.pop(tid, None)
        pending_ev.pop(tid, None)
        pending_busy.pop(tid, None)
        for key in [k for k in xfer_cache if k[0] == tid]:
            del xfer_cache[key]

    def on_crash(dead_rank: int, now: float) -> None:
        nonlocal completed
        assert fstate is not None
        fstate.mark_dead(dead_rank, now)

        # In-flight work on the dead rank is void: bump the attempt
        # epoch (queued completion events turn stale) and un-dispatch.
        revoked = 0
        for tid in range(n_tasks):
            if (dispatched[tid] and not done[tid]
                    and rank_of[tid] == dead_rank):
                dispatched[tid] = False
                fstate.attempt[tid] += 1
                finish[tid] = 0.0
                _purge_task_output(tid)
                revoked += 1
        fstate.stats.revoked_inflight += revoked

        # Tiles whose only copy lived on the dead rank are lost.
        lost = set()
        for tid in range(n_tasks):
            if done[tid] and rank_of[tid] == dead_rank:
                holders = copies.get(tid)
                if not holders or all(r in fstate.dead for r in holders):
                    lost.add(tid)
        for holders in copies.values():
            holders.pop(dead_rank, None)
        for holders in cold_copies.values():
            holders.pop(dead_rank, None)
        fstate.stats.lost_tiles += sum(len(tasks[tid].writes)
                                       for tid in lost)

        # Minimal replay subgraph: lost producers the remaining program
        # still needs, transitively (last-writer lineage walk).
        replay = lineage_replay_set(tasks, done, lost)
        for tid in sorted(replay):
            done[tid] = False
            completed -= 1
            phase_remaining[gate[tid]] += 1
            dispatched[tid] = False
            fstate.attempt[tid] += 1
            finish[tid] = 0.0
            _purge_task_output(tid)
            if sink is not None:
                sink.on_fault(FaultEvent(
                    kind=FAULT_REPLAY, time=now, rank=rank_of[tid],
                    tid=tid, detail="lost output; lineage replay"))
        fstate.stats.replayed_tasks += len(replay)

        # Move every pending task off dead ranks (deterministic remap).
        for tid in range(n_tasks):
            if not done[tid] and rank_of[tid] in fstate.dead:
                rank_of[tid] = fstate.remap_rank(rank_of[tid])

        # Re-derive readiness for everything that still has to run.
        for tid in range(n_tasks):
            if not done[tid] and not dispatched[tid]:
                indeg[tid] = sum(1 for d in tasks[tid].deps if not done[d])
        floor = fstate.recovery_floor
        for tid in range(n_tasks):
            if (not done[tid] and not dispatched[tid]
                    and tid not in park_time and indeg[tid] == 0):
                make_eligible(tid, now, floor)

        if sink is not None:
            sink.on_fault(FaultEvent(
                kind=FAULT_CRASH, time=now, rank=dead_rank, tid=-1,
                detail=(f"{revoked} in-flight revoked, "
                        f"{len(replay)} task(s) replayed, "
                        f"{len(lost)} output(s) lost")))

    # Seed: all zero-indegree tasks, then the plan's crash markers.
    for t in tasks:
        if indeg[t.tid] == 0:
            make_eligible(t.tid)
    if fstate is not None:
        for i, c in enumerate(fstate.plan.crashes):
            heapq.heappush(events, (c.time, _CRASH_TID, i))

    makespan = 0.0
    completed = 0
    while events:
        now, tid, epoch = heapq.heappop(events)
        if tid == _CRASH_TID:
            on_crash(fstate.plan.crashes[epoch].rank, now)  # type: ignore[union-attr]
            continue
        if done[tid]:
            continue
        if fstate is not None and epoch != fstate.attempt[tid]:
            continue  # stale completion of a revoked execution
        done[tid] = True
        if fstate is not None:
            pb = pending_busy.pop(tid, None)
            if pb is not None:
                kindv, span, prank, rank_busy, brank, dup_busy, reexec = pb
                per_kind_busy[kindv] = per_kind_busy.get(kindv, 0.0) + span
                per_rank_busy[prank] += rank_busy
                if brank is not None:
                    per_rank_busy[brank] += dup_busy
                if reexec:
                    fstate.stats.reexecution_seconds += reexec
            if sink is not None:
                pev = pending_ev.pop(tid, None)
                if pev is not None:
                    sink.on_task(pev)
        completed += 1
        makespan = max(makespan, now)
        t = tasks[tid]
        phase_remaining[gate[tid]] -= 1
        # Advance the phase window; release parked tasks.
        while (completed_prefix <= max_phase
               and phase_remaining[completed_prefix] == 0):
            if cfg.barrier_per_phase:
                from ..comm.collectives import barrier_time
                barrier_floor = max(barrier_floor,
                                    now + barrier_time(net, ranks))
                if sink is not None:
                    sink.on_barrier(BarrierEvent(
                        time=now, until=barrier_floor,
                        phase=completed_prefix))
            completed_prefix += 1
            if cfg.lookahead is not None:
                release_upto = completed_prefix + cfg.lookahead
                for ph in list(parked.keys()):
                    if ph <= release_upto:
                        for ptid in parked.pop(ph):
                            if done[ptid] or dispatched[ptid]:
                                # Stale entry: crash recovery already
                                # re-armed and dispatched this task.
                                park_time.pop(ptid, None)
                                continue
                            gated_since = park_time.pop(ptid, now)
                            stall_acc[STALL_GATE] += now - gated_since
                            if sink is not None:
                                sink.on_stall(StallEvent(
                                    tid=ptid, cause=STALL_GATE,
                                    start=gated_since, end=now))
                            if fstate is not None and indeg[ptid] > 0:
                                # A crash revoked one of its producers
                                # while parked; it re-arms when the
                                # replayed producer completes.
                                continue
                            dispatch(ptid)
        for s in succ[tid]:
            if fstate is not None and (done[s] or dispatched[s]):
                continue  # already ran against the pre-crash data
            indeg[s] -= 1
            if indeg[s] == 0:
                make_eligible(s, now)

    if completed != n_tasks:
        raise RuntimeError(
            f"schedule deadlock: {completed}/{n_tasks} tasks completed "
            f"(cyclic graph or window bug)")

    crit = graph.critical_path_seconds(
        lambda t: _duration(t, cfg, on_gpu[t.tid], res.cores,
                            gpu_gang if on_gpu[t.tid] else cpu_gang))

    slots_per_rank = ((1 if ganged else res.cores)
                      + ((1 if ganged else res.gpus) if gpu_pools else 0))

    # Publish aggregate run metrics to the process-wide registry (one
    # O(1) batch at the end; the hot loop stays uninstrumented).
    from ..obs.metrics import get_registry
    reg = get_registry()
    reg.counter("scheduler.simulations").inc()
    reg.counter("scheduler.tasks_executed").inc(n_tasks)
    for cause, sec in stall_acc.items():
        reg.counter(f"scheduler.stall_seconds.{cause}").inc(sec)
    reg.gauge("scheduler.makespan_seconds").set(makespan)
    comm.publish(reg)
    if fstate is not None:
        fstate.stats.publish(reg)
    if sink is not None:
        hist = reg.histogram("scheduler.task_seconds")
        for ev in getattr(sink, "tasks", ()):
            hist.observe(ev.duration)

    return ScheduleResult(
        makespan=makespan,
        total_flops=graph.total_flops(),
        task_count=n_tasks,
        comm=comm,
        per_kind_busy=per_kind_busy,
        per_rank_busy=per_rank_busy,
        critical_path=crit,
        config=cfg,
        start_times=start,
        finish_times=list(finish) if keep_trace else None,
        kinds=[t.kind.value for t in tasks] if keep_trace else None,
        ranks=list(rank_of) if keep_trace else None,
        slots_per_rank=slots_per_rank,
        stall_seconds=dict(stall_acc),
        recovery=fstate.stats if fstate is not None else None,
    )


def forkjoin_config(machine: "MachineModel", nodes: int, ranks_per_node: int,
                    *, use_gpu: bool = False,
                    granularity: str = "op") -> RunConfig:
    """The ScaLAPACK/POLAR execution model: fork-join over library
    calls (each call internally parallel, calls never overlap), CPU
    ranks.  ``granularity="phase"`` gives the stricter per-panel BSP
    model (the A4 ablation's extreme point).
    """
    return RunConfig(machine=machine, nodes=nodes,
                     ranks_per_node=ranks_per_node, use_gpu=use_gpu,
                     lookahead=0, barrier_per_phase=True,
                     barrier_granularity=granularity)


def taskbased_config(machine: "MachineModel", nodes: int, ranks_per_node: int,
                     *, use_gpu: bool, lookahead: Optional[int] = None
                     ) -> RunConfig:
    """The SLATE execution model: dependency-driven, optional lookahead."""
    return RunConfig(machine=machine, nodes=nodes,
                     ranks_per_node=ranks_per_node, use_gpu=use_gpu,
                     lookahead=lookahead, barrier_per_phase=False)
