"""Dynamic, event-driven task scheduling for the processes backend.

The model is dask-style central scheduling: the parent holds the
recorded :class:`~repro.runtime.graph.TaskGraph` for one execution
window and hands *ready* tasks (dependency count reached zero) to
workers as completions stream back.  Three policies live here:

* **Dependency counting** — each task carries the number of
  unfinished in-window predecessors; a completion decrements its
  successors and readiness is O(out-degree), never a graph rescan.
* **Locality-aware placement** — each worker tracks the set of tile
  refs it has touched this window ("resident": warm in its cache).
  A newly-ready task goes to the alive worker whose resident set
  overlaps its reads most, with queue length as a penalty and the
  lowest tid as the final tie-break (keeps replay deterministic).
* **Steal-on-idle** — placement is a plan, not a commitment.  A
  worker that drains its own queue steals from the *back* of the
  longest queue (the victim's least-local work), so load imbalance
  from skewed tile costs self-corrects.

The scheduler is pure bookkeeping — it never touches comms, processes
or tiles — which is what makes it unit-testable in isolation and
reusable when a worker dies: :meth:`remove_worker` returns everything
the dead worker held so the executor can snapshot-restore and replay
onto survivors (PR 5 recovery loop).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..task import Task, TileRef

__all__ = ["WorkerState", "DynamicScheduler"]


class WorkerState:
    """Scheduler-side view of one worker process."""

    __slots__ = ("wid", "queue", "inflight", "resident", "alive",
                 "suspected", "tasks_done", "steals")

    def __init__(self, wid: int):
        self.wid = wid
        #: Planned (assigned but not yet dispatched) tids, FIFO.
        self.queue: Deque[int] = deque()
        #: Dispatched, completion pending.
        self.inflight: Set[int] = set()
        #: Tile refs this worker has read or written this window.
        self.resident: Set[TileRef] = set()
        self.alive = True
        #: Failure-detector suspicion (phi over the suspect threshold):
        #: the worker still runs what it holds, but placement avoids it
        #: until its heartbeats recover — losing a task to a truly hung
        #: worker costs a full replay, so new work goes elsewhere first.
        self.suspected = False
        self.tasks_done = 0
        self.steals = 0

    @property
    def load(self) -> int:
        return len(self.queue) + len(self.inflight)


class DynamicScheduler:
    """Ready-set bookkeeping for one ``[start, end)`` window.

    ``worker_ok`` marks tasks eligible for worker processes; the rest
    ("driver tasks": scalar reductions and other tasks touching
    driver-local state) surface through :meth:`next_driver` and run
    inline in the parent.
    """

    def __init__(self, tasks: Sequence[Task], start: int, end: int,
                 worker_ok: Dict[int, bool],
                 pipeline_depth: int = 2):
        self.start = start
        self.end = end
        self.pipeline = max(1, pipeline_depth)
        self.workers: Dict[int, WorkerState] = {}
        self._worker_ok = worker_ok
        #: tid -> number of unfinished in-window dependencies.
        self.indeg: Dict[int, int] = {}
        #: tid -> in-window successors.
        self.succ: Dict[int, List[int]] = {}
        self.done: Set[int] = set()
        self._driver_ready: List[int] = []
        self._pool: List[int] = []          # ready, unassigned (heap)
        self._reads: Dict[int, Tuple[TileRef, ...]] = {}
        for t in tasks[start:end]:
            deps = [d for d in t.deps if start <= d < end]
            self.indeg[t.tid] = len(deps)
            for d in deps:
                self.succ.setdefault(d, []).append(t.tid)
            self._reads[t.tid] = tuple(t.reads) + tuple(t.writes)
            if not deps:
                self._make_ready(t.tid)

    # -- workers ---------------------------------------------------------

    def add_worker(self, wid: int) -> WorkerState:
        ws = WorkerState(wid)
        self.workers[wid] = ws
        return ws

    def remove_worker(self, wid: int) -> Tuple[List[int], List[int]]:
        """Mark ``wid`` dead; returns ``(queued, inflight)`` — the tids
        it held — for the executor to requeue or fail."""
        ws = self.workers.get(wid)
        if ws is None or not ws.alive:
            return [], []
        ws.alive = False
        queued = list(ws.queue)
        inflight = sorted(ws.inflight)
        ws.queue.clear()
        ws.inflight.clear()
        return queued, inflight

    def mark_suspect(self, wid: int, suspected: bool = True) -> None:
        """Flag/unflag ``wid`` as suspected hung (heartbeat phi over
        threshold).  Placement-only: queued and in-flight work stays
        put — the kill decision belongs to the executor."""
        ws = self.workers.get(wid)
        if ws is not None:
            ws.suspected = suspected

    def alive_workers(self) -> List[WorkerState]:
        return [w for w in self.workers.values() if w.alive]

    # -- readiness -------------------------------------------------------

    def _make_ready(self, tid: int) -> None:
        if self._worker_ok.get(tid, False):
            heapq.heappush(self._pool, tid)
        else:
            heapq.heappush(self._driver_ready, tid)

    def requeue(self, tids: Iterable[int]) -> None:
        """Put previously-assigned (e.g. revoked) tasks back in the
        ready pool."""
        for tid in tids:
            self._make_ready(tid)

    def next_driver(self) -> Optional[int]:
        if self._driver_ready:
            return heapq.heappop(self._driver_ready)
        return None

    def on_done(self, tid: int, wid: Optional[int] = None) -> List[int]:
        """Record completion; returns the tids that just became ready."""
        self.done.add(tid)
        if wid is not None:
            ws = self.workers.get(wid)
            if ws is not None:
                ws.inflight.discard(tid)
                ws.tasks_done += 1
                ws.resident.update(self._reads.get(tid, ()))
        newly = []
        for s in self.succ.get(tid, ()):
            self.indeg[s] -= 1
            if self.indeg[s] == 0:
                self._make_ready(s)
                newly.append(s)
        return newly

    @property
    def pending(self) -> int:
        """Tasks in the window not yet completed."""
        return (self.end - self.start) - len(self.done)

    # -- placement -------------------------------------------------------

    def _score(self, ws: WorkerState, tid: int) -> Tuple[int, int, int]:
        reads = self._reads.get(tid, ())
        hits = sum(1 for r in reads if r in ws.resident)
        # Healthy workers first, then higher locality, lighter load.
        return (1 if ws.suspected else 0, -hits, ws.load)

    def assign_ready(self) -> None:
        """Drain the ready pool into per-worker queues (locality-aware,
        lowest tid first)."""
        alive = self.alive_workers()
        if not alive:
            return
        while self._pool:
            tid = heapq.heappop(self._pool)
            ws = min(alive, key=lambda w: self._score(w, tid) + (w.wid,))
            ws.queue.append(tid)

    def next_for(self, wid: int) -> Optional[int]:
        """Next tid for ``wid`` to execute, stealing if its own queue
        is empty.  Caller dispatches it; the tid moves to in-flight."""
        ws = self.workers.get(wid)
        if ws is None or not ws.alive:
            return None
        if ws.suspected:
            # No new dispatches to a suspected-hung worker: anything it
            # holds will be replayed wholesale if the suspicion proves
            # out, so don't grow the loss.
            return None
        if len(ws.inflight) >= self.pipeline:
            return None
        self.assign_ready()
        if ws.queue:
            tid = ws.queue.popleft()
        else:
            victim = max(
                (w for w in self.alive_workers()
                 if w.wid != wid and w.queue),
                key=lambda w: len(w.queue), default=None)
            if victim is None:
                return None
            tid = victim.queue.pop()        # least-local end
            ws.steals += 1
        ws.inflight.add(tid)
        return tid

    def stats(self) -> Dict[str, int]:
        return {
            "steals": sum(w.steals for w in self.workers.values()),
            "workers": len(self.workers),
        }
