"""Multi-process distributed runtime.

Three layers, each usable on its own:

* :mod:`~repro.runtime.distributed.comm` — pluggable point-to-point
  messaging (``inproc://`` queue pairs and ``tcp://`` sockets behind
  one ``Comm``/``Listener``/``connect`` interface, length-prefixed
  codec-tagged frames, byte counters).
* :mod:`~repro.runtime.distributed.shm` — :class:`SharedTileStore`,
  refcounted ``multiprocessing.shared_memory`` segments that back
  ``DistMatrix`` tiles for zero-copy worker access.
* :mod:`~repro.runtime.distributed.scheduling` /
  :mod:`~repro.runtime.distributed.executor` — the dask-style central
  scheduler and the :class:`ProcessExecutor` that drives forked
  workers through it (``tiled_qdwh(backend="processes")``).

See ``docs/distributed_runtime.md`` for the architecture.
"""

from .comm import (AddressInUseError, Comm, CommClosedError, CommError,
                   CommTimeoutError, Listener, connect, listen,
                   register_transport)
from .executor import ProcessExecutor, SideStore, WorkerCrashError
from .scheduling import DynamicScheduler, WorkerState
from .shm import SharedTileStore, scan_segments

__all__ = [
    "AddressInUseError",
    "Comm",
    "CommClosedError",
    "CommError",
    "CommTimeoutError",
    "DynamicScheduler",
    "Listener",
    "ProcessExecutor",
    "SharedTileStore",
    "SideStore",
    "WorkerCrashError",
    "WorkerState",
    "connect",
    "listen",
    "register_transport",
    "scan_segments",
]
