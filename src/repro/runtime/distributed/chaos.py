"""ChaosComm: seeded, deterministic network fault injection.

Registers ``chaos+tcp://`` / ``chaos+inproc://`` transports that wrap
the real ones and perturb frames on their way *out* of each endpoint,
driven by the :class:`~repro.resilience.net.NetFaultPlan` installed in
the process (:func:`install_net_plan`).  The executor simply listens
on ``chaos+tcp://`` instead of ``tcp://`` when a net plan is active;
workers inherit the scheme through the listener's resolved address,
so both directions of every driver↔worker link are covered without
either side knowing about the other.

Injection points (all send-side, per endpoint):

* **drop** — the frame is silently discarded;
* **duplicate** — the frame is written twice (sequence numbers at the
  reliable layer discard the copy);
* **delay** — a bounded, seeded sleep before the write;
* **corrupt** — one payload byte is XOR-flipped (driver-side only so
  the plan's ``max_events`` is a per-run bound; never the header, so
  the stream stays framed and the CRC32 trailer takes the blame);
* **stall / partition** — window-scheduled 100% drops, one-way
  (:class:`LinkStall`) or both ways (:class:`NetPartition`);
* **cut** — the connection is severed after a fixed frame count
  (worker-side, so the frame index is unambiguous).

Determinism: every probabilistic decision draws from
``plan.frame_rng(salt, index)`` where ``salt`` encodes (side, wid)
and ``index`` is the frame's position on its connection — the same
plan perturbs the same frames identically on every run.  The first
frame of each connection is always exempt: that is the plain
``hello``/``resync`` handshake, which has no retransmission layer
under it yet.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ...comm.counters import CommCounters
from ...comm.network import TransferPath
from ...resilience.net import NetFaultPlan
from .comm import (_HEADER, Comm, CommClosedError, Listener, connect,
                   listen, register_transport)

__all__ = [
    "ChaosComm",
    "ChaosListener",
    "install_net_plan",
    "clear_net_plan",
    "active_net_plan",
    "set_local_wid",
    "assign_peer",
    "chaos_stats",
]

#: Fault kinds reported through the ``on_fault`` callback.
KIND_DROP = "drop"
KIND_CORRUPT = "corrupt"
KIND_PARTITION = "partition"
KIND_DELAY = "delay"
KIND_DUPLICATE = "duplicate"
KIND_CUT = "cut"


class _ChaosState:
    """Per-process injection state (inherited over fork)."""

    def __init__(self) -> None:
        self.plan: Optional[NetFaultPlan] = None
        self.epoch = 0.0
        self.wid = -1           # local wid (worker side); -1 on the driver
        self.lane = -1          # local worker slot (worker side)
        self.worker_side = False
        self.on_fault: Optional[Callable[[str, int, str], None]] = None
        self.lock = threading.Lock()
        self.cut_done: set = set()
        #: Driver-side frame count per worker *lane* for cut
        #: scheduling.  Kept in the driver process (which survives the
        #: per-window worker forks) so a cut threshold accumulates
        #: across every connection a slot ever makes instead of
        #: resetting with each fresh window.
        self.frames_by_lane: Dict[int, int] = {}
        self.drop_events: Dict[int, int] = {}
        self.corrupt_events: Dict[int, int] = {}
        self.stats: Dict[str, int] = {}

    def count(self, kind: str) -> None:
        with self.lock:
            self.stats[kind] = self.stats.get(kind, 0) + 1


_STATE = _ChaosState()


def install_net_plan(plan: NetFaultPlan, epoch: Optional[float] = None,
                     on_fault: Optional[Callable[[str, int, str],
                                                 None]] = None) -> None:
    """Arm the process (and every future fork) with ``plan``.

    ``epoch`` anchors the plan's time windows (defaults to now);
    ``on_fault(kind, wid, detail)`` — driver-side observability hook,
    called from whichever thread performed the send."""
    global _STATE
    _STATE = _ChaosState()
    _STATE.plan = plan
    _STATE.epoch = time.monotonic() if epoch is None else epoch
    _STATE.on_fault = on_fault


def clear_net_plan() -> None:
    global _STATE
    _STATE = _ChaosState()


def active_net_plan() -> Optional[NetFaultPlan]:
    return _STATE.plan


def set_local_wid(wid: int, lane: int = -1) -> None:
    """Mark this process as worker ``wid`` in slot ``lane`` (call
    before connecting).  Plans target the *lane* — the stable worker
    slot 0..workers-1 — because wids are unique per fork and therefore
    never repeat across execution windows."""
    _STATE.wid = wid
    _STATE.lane = lane
    _STATE.worker_side = True
    _STATE.on_fault = None  # events are driver-side observability


def assign_peer(comm: Any, wid: int, lane: int = -1) -> None:
    """Tell the driver-side chaos wrapper which worker sits behind
    ``comm`` (walks wrapper chains, e.g. ReliableComm → ChaosComm)."""
    seen = 0
    while comm is not None and seen < 8:
        if isinstance(comm, ChaosComm):
            comm.peer_wid = wid
            comm.peer_lane = lane
            return
        comm = getattr(comm, "inner", None)
        seen += 1


def chaos_stats() -> Dict[str, int]:
    """This process's injection counts (driver-side: the whole story
    for corrupts; drops/delays also fire inside workers)."""
    with _STATE.lock:
        return dict(_STATE.stats)


class ChaosComm(Comm):
    """A :class:`Comm` that perturbs its own sends per the installed
    :class:`NetFaultPlan` and delegates the wire to ``inner``."""

    def __init__(self, inner: Comm,
                 counters: Optional[CommCounters] = None,
                 path: TransferPath = TransferPath.INTRA_NODE):
        super().__init__(_rewrite(inner.local_address),
                         _rewrite(inner.peer_address), counters, path)
        self.inner = inner
        self.peer_wid = -1          # driver side: set via assign_peer
        self.peer_lane = -1         # driver side: set via assign_peer
        self._idx = 0               # frames sent on this connection
        self._nframes = 0           # sent + received (cut counting)
        self._window_announced: set = set()

    # -- identity ------------------------------------------------------
    @property
    def _wid(self) -> int:
        """The worker id of this link (whichever side we are)."""
        return _STATE.wid if _STATE.worker_side else self.peer_wid

    @property
    def _lane(self) -> int:
        """The worker slot of this link — what plans target, because
        wids never repeat across execution-window forks."""
        return _STATE.lane if _STATE.worker_side else self.peer_lane

    def _salt(self) -> int:
        return (self._wid + 7) * 10_007 + (1 if _STATE.worker_side else 0)

    def _emit(self, kind: str, detail: str) -> None:
        _STATE.count(kind)
        cb = _STATE.on_fault
        if cb is not None:
            cb(kind, self._wid, detail)

    # -- injection pipeline --------------------------------------------
    def _cut_fires(self) -> bool:
        st = _STATE
        if st.plan is None or st.worker_side:
            return False
        lane = self.peer_lane
        if lane < 0:
            return False
        with st.lock:
            n = st.frames_by_lane.get(lane, 0) + 1
            st.frames_by_lane[lane] = n
            for c in st.plan.cuts:
                if c.wid != lane or c.wid in st.cut_done:
                    continue
                if n >= c.after_frames:
                    st.cut_done.add(c.wid)
                    self._nframes = n
                    return True
        return False

    def _window_drop(self, now: float) -> Optional[str]:
        """A stall/partition window covering this send, or None."""
        st = _STATE
        plan = st.plan
        assert plan is not None
        lane = self._lane
        for i, p in enumerate(plan.partitions):
            if lane in p.wids and p.start <= now < p.end:
                return f"partition[{i}] lane {lane} " \
                       f"[{p.start:g}, {p.end:g})"
        me_sending = "w2d" if st.worker_side else "d2w"
        for i, s in enumerate(plan.stalls):
            if (s.wid == lane and s.direction == me_sending
                    and s.start <= now < s.end):
                return f"stall[{i}] {s.direction} lane {lane} " \
                       f"[{s.start:g}, {s.end:g})"
        return None

    def _send_frame(self, frame: bytes) -> None:
        st = _STATE
        plan = st.plan
        idx = self._idx
        self._idx += 1
        if plan is None:
            self.inner._send_frame(frame)
            return
        if self._cut_fires():
            self._emit(KIND_CUT, f"cut after {self._nframes} frames")
            self.inner._close_transport()
            raise CommClosedError(
                f"chaos: connection to {self.peer_address} cut")
        if idx == 0:  # handshake frame: always exempt
            self.inner._send_frame(frame)
            return
        now = time.monotonic() - st.epoch
        window = self._window_drop(now)
        if window is not None:
            if window not in self._window_announced:
                self._window_announced.add(window)
                self._emit(KIND_PARTITION, window)
            st.count(KIND_DROP)
            return  # dropped
        rng = plan.frame_rng(self._salt(), idx)
        for i, d in enumerate(plan.drops):
            if d.probability <= 0.0 or rng.random() >= d.probability:
                continue
            with st.lock:
                fired = st.drop_events.get(i, 0)
                if d.max_events is not None and fired >= d.max_events:
                    continue
                st.drop_events[i] = fired + 1
            self._emit(KIND_DROP, f"frame {idx} dropped "
                                  f"({len(frame)} bytes)")
            return
        if not st.worker_side:  # corrupt: driver-side only
            for i, c in enumerate(plan.corrupts):
                if (c.probability <= 0.0
                        or rng.random() >= c.probability
                        or len(frame) <= _HEADER.size):
                    continue
                with st.lock:
                    fired = st.corrupt_events.get(i, 0)
                    if fired >= c.max_events:
                        continue
                    st.corrupt_events[i] = fired + 1
                pos = rng.randrange(_HEADER.size, len(frame))
                flip = rng.randrange(1, 256)
                frame = frame[:pos] + bytes([frame[pos] ^ flip]) \
                    + frame[pos + 1:]
                self._emit(KIND_CORRUPT,
                           f"frame {idx} byte {pos} ^= {flip:#04x}")
                break
        for d in plan.delays:
            if d.probability <= 0.0 or rng.random() >= d.probability:
                continue
            pause = rng.uniform(d.min_seconds, d.seconds)
            self._emit(KIND_DELAY, f"frame {idx} delayed "
                                   f"{pause * 1e3:.1f}ms")
            time.sleep(pause)
            break
        dup = any(d.probability > 0.0 and rng.random() < d.probability
                  for d in plan.duplicates)
        self.inner._send_frame(frame)
        if dup:
            self._emit(KIND_DUPLICATE, f"frame {idx} duplicated")
            self.inner._send_frame(frame)

    def _recv_frame(self, timeout: Optional[float]) -> Tuple[int, bytes]:
        if self._cut_fires():
            self._emit(KIND_CUT, f"cut after {self._nframes} frames")
            self.inner._close_transport()
            raise CommClosedError(
                f"chaos: connection to {self.peer_address} cut")
        return self.inner._recv_frame(timeout)

    def _close_transport(self) -> None:
        self.inner._close_transport()

    def fileno(self) -> int:
        return self.inner.fileno()


class ChaosListener(Listener):
    def __init__(self, inner: Listener):
        self.inner = inner
        self.address = _rewrite(inner.address)

    @property
    def _closed(self) -> bool:
        return bool(getattr(self.inner, "_closed", False))

    def accept(self, timeout: Optional[float] = None) -> Comm:
        return ChaosComm(self.inner.accept(timeout=timeout),
                         counters=self._counters, path=self._path)

    def close(self) -> None:
        self.inner.close()

    # set by _chaos_listen
    _counters: Optional[CommCounters] = None
    _path: TransferPath = TransferPath.INTRA_NODE


def _rewrite(address: str) -> str:
    """``tcp://host:port`` → ``chaos+tcp://host:port`` (idempotent)."""
    if "://" not in address or address.startswith("chaos+"):
        return address
    return "chaos+" + address


def _make_transport(base: str) -> None:
    def chaos_listen(rest: str, counters: Optional[CommCounters],
                     path: TransferPath) -> Listener:
        lst = ChaosListener(listen(f"{base}://{rest}"))
        lst._counters = counters
        lst._path = path
        return lst

    def chaos_connect(rest: str, timeout: float,
                      counters: Optional[CommCounters],
                      path: TransferPath) -> Comm:
        inner = connect(f"{base}://{rest}", timeout=timeout)
        return ChaosComm(inner, counters=counters, path=path)

    register_transport(f"chaos+{base}", chaos_listen, chaos_connect)


_make_transport("tcp")
_make_transport("inproc")
