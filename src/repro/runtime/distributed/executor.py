"""Multi-process executor: central scheduler + forked worker pool.

``ProcessExecutor`` replays recorded task windows on real OS
processes, sidestepping the GIL that bounds the threaded backend on
dispatch-heavy, small-tile graphs.  The execution model:

* **Fork per window.**  Payload closures capture driver objects and
  cannot be pickled, so nothing is shipped: workers are forked at the
  start of each execution window and inherit the graph, the payload
  table and every shared-memory tile mapping copy-on-write.  Dispatch
  messages carry a tid, an attempt number and (rarely) a few side-store
  entries — a few hundred bytes per task.
* **Shared-memory tiles.**  Before forking, the parent pins every tile
  in the window's declared footprints into a :class:`SharedTileStore`
  segment; worker writes land directly in the parent's mapping
  (zero-copy), so there is no gather step and no result payload.
* **Central dynamic scheduling.**  A :class:`DynamicScheduler` tracks
  dependency counts and hands ready tasks to workers event-driven,
  with locality-aware placement and steal-on-idle
  (see :mod:`.scheduling`).
* **Driver tasks.**  Tasks whose footprint touches driver-local state
  (scalar reduction boxes, gather buffers) run inline in the parent —
  the same split SLATE uses to keep latency-bound scalar work off the
  accelerator path.  Everything tile-to-tile goes to workers.
* **Crash recovery.**  A worker death (SIGKILL, injected
  ``RankCrash``, or a task-timeout kill) is detected as comm EOF; the
  parent restores pre-dispatch snapshots of the victim's in-flight
  write tiles and replays them onto survivors — the PR 5 lineage
  recovery loop, driven by the same :class:`RecoveryPolicy` /
  :class:`RecoveryStats` machinery as the threaded backend.  The
  shared-memory registry lives only in the parent, so no worker death
  can leak or tear down a segment.

The public surface mirrors :class:`ParallelExecutor` exactly
(``run``/``close``/``abandon_window``/``stats``/``inflight_attempts``)
so ``Runtime.sync`` drives either backend unchanged.
"""

from __future__ import annotations

import contextlib
import heapq
import multiprocessing
import os
import queue
import signal
import threading
import time
from time import perf_counter
from typing import (Any, Callable, Dict, Iterable, List, NamedTuple,
                    Optional, Set, Tuple)

from ..graph import TaskGraph
from ..parallel import (ExecutionStats, _peak_rss_bytes, default_workers)
from ..task import Task, TaskKind, TileRef
from .chaos import assign_peer, clear_net_plan, install_net_plan
from .comm import (Comm, CommError, CommTimeoutError, Listener, listen)
from .events import (EV_CLOSE, EV_COMPLETE, EV_DEATH, EV_DISPATCH,
                     EV_DRIVER, EV_FAIL, EV_REPLAY, EV_SPAWN)
from .reliable import ReliableComm
from .scheduling import DynamicScheduler
from .shm import SharedTileStore
from .worker import (SideEntry, retryable_exception, worker_main, _run_one)
from ...comm.counters import CommCounters
from ...resilience.net import PhiAccrualDetector

__all__ = ["ProcessExecutor", "SideStore", "WorkerCrashError"]


class SideStore(NamedTuple):
    """Driver-held dict state addressed through pseudo-tile refs."""

    mapping: dict
    key_of: Callable[[TileRef], object]


class WorkerCrashError(RuntimeError):
    """A worker process died and recovery was off (or exhausted)."""


class _Worker:
    """Parent-side handle of one forked worker process."""

    __slots__ = ("wid", "lane", "proc", "comm", "pid", "clock_offset",
                 "reader", "shipped", "kill_reason")

    def __init__(self, wid: int, proc: multiprocessing.process.BaseProcess,
                 comm: Comm, pid: int,
                 clock_offset: float, lane: int = 0):
        self.wid = wid
        #: Stable timeline slot (0..workers-1).  wids grow monotonically
        #: across windows/respawns; lanes are what occupancy reports
        #: and Chrome traces group by.
        self.lane = lane
        self.proc = proc
        self.comm = comm
        self.pid = pid
        self.clock_offset = clock_offset
        self.reader: Optional[threading.Thread] = None
        #: Side-entry refs already shipped to this worker (dedup).
        self.shipped: Set[TileRef] = set()
        #: Set when the parent killed it on purpose (timeout/injected).
        self.kill_reason: Optional[str] = None


class ProcessExecutor:
    """Replay a recorded task graph on forked worker processes."""

    def __init__(self, rt: Any, *, workers: Optional[int] = None,
                 sink: Any = None, validate: bool = True,
                 recovery: Any = None, injector: Any = None,
                 tiles: Any = None,
                 pipeline_depth: int = 2) -> None:
        self.rt = rt
        self.graph: TaskGraph = rt.graph
        self.fns: Dict[int, Callable[[], None]] = rt._pending_fns
        self.workers = max(1, int(workers) if workers
                           else default_workers())
        self.sink = sink
        self.validate = validate
        self.sanitizer = rt.sanitizer
        if injector is not None and not injector.active:
            injector = None
        if recovery is None and injector is not None:
            from ...resilience.live import RecoveryPolicy
            recovery = RecoveryPolicy(
                scrub_writes=bool(injector.plan.corruptions))
        self.recovery_policy = recovery
        self.injector = injector
        self.tiles = tiles
        self._recover = recovery is not None
        if self._recover and tiles is None:
            from ...resilience.live import TileAccessor
            self.tiles = tiles = TileAccessor(rt._matrices)
        self.stats = ExecutionStats(workers=self.workers)
        self.comm_counters = CommCounters()
        self.store = SharedTileStore()
        #: DistSan event recorder, attached by the owner as
        #: ``rt.dist_recorder`` before the first sync.  Strictly
        #: opt-in: with no recorder every hook site is a None check.
        self.recorder = getattr(rt, "dist_recorder", None)
        if self.recorder is not None:
            self.store.observer = self.recorder.store_observer()
        if validate:
            self.graph.validate()
        #: Injected crashes (live): fired once each, by time since the
        #: executor epoch, against ``rank % nworkers``.  Read from the
        #: runtime's plan directly — a crash-only plan has no live
        #: in-payload faults, so its injector reports inactive.
        plan = rt.fault_plan
        self._crashes = sorted(plan.crashes, key=lambda c: c.time) \
            if plan is not None else []
        if self._crashes and not self._recover:
            from ...resilience.live import RecoveryPolicy
            self.recovery_policy = RecoveryPolicy()
            self._recover = True
            if self.tiles is None:
                from ...resilience.live import TileAccessor
                self.tiles = TileAccessor(rt._matrices)
        self._crash_idx = 0
        #: Live network faults (ChaosComm): active when the plan has a
        #: non-empty ``net`` component.  Network chaos REQUIRES the
        #: reliable layer with heartbeats — a dropped tail frame is only
        #: recovered by heartbeat-driven retransmission sweeps — so a
        #: net plan without a policy forces the default RecoveryPolicy.
        net = plan.net if plan is not None else None
        self._net_plan = net if net is not None and not net.empty else None
        if self._net_plan is not None and not self._recover:
            from ...resilience.live import RecoveryPolicy
            self.recovery_policy = RecoveryPolicy()
            self._recover = True
            if self.tiles is None:
                from ...resilience.live import TileAccessor
                self.tiles = TileAccessor(rt._matrices)
        pol = self.recovery_policy
        #: Reliable (seq/ack/CRC/heartbeat) comm wrapping: on whenever
        #: heartbeats are configured; off for plain runs so the
        #: fault-free wire stays byte-identical to previous releases.
        self._reliable = self._net_plan is not None or (
            pol is not None and pol.heartbeat_interval is not None)
        self._chaos_installed = False
        #: (comm, hello, recorder-key, recv-time) of handshakes the
        #: acceptor thread has fielded but no spawn has claimed yet.
        self._hello_q: "queue.Queue[Tuple[Comm, Dict[str, Any], str, float]]" \
            = queue.Queue()
        self._acceptor: Optional[threading.Thread] = None
        self._accept_seq = 0
        #: Per-worker phi-accrual failure detectors (reliable mode) and
        #: when each worker was adopted (suspicion grace anchor).
        self._hb: Dict[int, PhiAccrualDetector] = {}
        self._hb_since: Dict[int, float] = {}
        self._suspected: Set[int] = set()
        #: Global side-entry registry: ref -> produced value.  Lives in
        #: the parent, so it survives any worker death (replay re-ships
        #: whatever a successor needs).
        self._entries: Dict[TileRef, object] = {}
        self._done: Dict[int, bool] = {}
        self._floor = 0
        self._prep_cursor = 0
        self._window_tids: Set[int] = set()
        self._epoch: Optional[float] = None
        self._inflight = 0
        self._pipeline = pipeline_depth
        self._counters: Dict[TaskKind, object] = {}
        self._listener: Optional[Listener] = None
        self._pool: Dict[int, _Worker] = {}
        self._next_wid = 0
        self._events: "queue.Queue[Tuple[str, int, object]]" = queue.Queue()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def inflight_attempts(self) -> int:
        """Dispatched-but-unreported attempts; zero after every
        completed :meth:`run` — the no-leak invariant."""
        return self._inflight

    def close(self) -> None:
        """Tear everything down: workers, comms, listener, and every
        shared-memory segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._shutdown_pool(force=True)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
            self._acceptor = None
        if self._chaos_installed:
            clear_net_plan()
            self._chaos_installed = False
        self.store.close()
        if self.recorder is not None:
            self.recorder.leaked = self.store.leaked_segments()
            self.recorder.record(EV_CLOSE)
        from ...obs.metrics import get_registry
        self.comm_counters.publish(get_registry(), prefix="dist.comm")

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Window preparation
    # ------------------------------------------------------------------

    def _worker_ok(self, t: Task) -> bool:
        """True when every ref the task touches is process-shared:
        a registered DistMatrix tile (shared memory) or a registered
        side store (shipped by value).  Anything else — scalar boxes,
        gather buffers — pins the task to the driver."""
        if self.fns.get(t.tid) is None:
            return False
        for ref in tuple(t.reads) + tuple(t.writes):
            if ref[0] in self.rt._side_stores:
                continue
            if self.rt._matrices.get(ref[0]) is not None:
                continue
            return False
        return True

    def _materialize(self, start: int, end: int) -> None:
        """Pin every matrix tile in the window's declared footprints
        into shared memory (idempotent; migrates driver-replaced
        tiles)."""
        tasks = self.graph.tasks
        for tid in range(start, end):
            t = tasks[tid]
            for ref in tuple(t.reads) + tuple(t.writes):
                mat = self.rt._matrices.get(ref[0])
                if mat is None:
                    continue
                _, i, j = ref
                self.store.pin_tile(
                    mat, i, j, (mat.tile_rows(i), mat.tile_cols(j)),
                    mat.dtype)

    def _account_external(self, upto: int) -> None:
        for tid in range(self._floor, upto):
            self._done[tid] = True
        self._floor = max(self._floor, upto)

    def abandon_window(self) -> None:
        """Fold the failed window's unexecuted tasks into the done
        table (payloads discarded) so algorithm-level recovery can
        resubmit fresh work — mirrors
        :meth:`ParallelExecutor.abandon_window`."""
        if self._inflight:
            raise RuntimeError(
                f"abandon_window with {self._inflight} attempt(s) still "
                "in flight; the failed run() must drain first")
        for tid in self._window_tids:
            self._done[tid] = True
            self.fns.pop(tid, None)
        self._window_tids = set()

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def _net_seed(self) -> int:
        plan = self.rt.fault_plan
        return int(plan.seed) if plan is not None else 0

    def _net_deadline(self) -> float:
        pol = self.recovery_policy
        return float(pol.net_deadline) if pol is not None else 2.0

    def _ensure_listener(self) -> Listener:
        lst = self._listener
        if lst is not None and not getattr(lst, "_closed", False):
            return lst
        scheme = ("chaos+tcp" if self._net_plan is not None else "tcp")
        # In reliable mode the per-frame byte accounting moves up to
        # the ReliableComm wrapper (which counts each application
        # message exactly once); raw comms must not double-count.
        self._listener = lst = listen(
            f"{scheme}://127.0.0.1:0",
            counters=None if self._reliable else self.comm_counters)
        self._acceptor = threading.Thread(
            target=self._acceptor_loop, args=(lst,), daemon=True,
            name="repro-dist-accept")
        self._acceptor.start()
        return lst

    def _acceptor_loop(self, lst: Listener) -> None:
        """Owns ``accept`` for the listener's whole life: fields worker
        hellos (handed to the spawn paths through ``_hello_q``) and
        reconnect ``resync`` handshakes (spliced into the existing
        :class:`ReliableComm` via :meth:`ReliableComm.attach`)."""
        while True:
            try:
                comm = lst.accept(timeout=None)
            except CommError:
                return  # listener closed
            if self._reliable:
                comm.crc_frames = True
            key = ""
            if self.recorder is not None:
                key = f"pending{self._accept_seq}"
                self._accept_seq += 1
                comm.observer = self.recorder.frame_observer(key)
            try:
                msg = comm.recv(timeout=10.0)
            except CommError:
                comm.close()
                continue
            t_recv = perf_counter()
            if not isinstance(msg, dict):
                comm.close()
                continue
            op = msg.get("op")
            if op == "hello":
                self._hello_q.put((comm, msg, key, t_recv))
            elif op == "resync":
                # The resync/resync-ack handshake is recorded on the
                # pending connection (the protocol checker knows its
                # shape); after the splice the connection reports
                # under the worker's key (attach marks a "reopen").
                self._handle_resync(comm, msg)
            else:
                comm.close()

    def _handle_resync(self, comm: Comm, msg: Dict[str, Any]) -> None:
        w = self._pool.get(int(msg.get("wid", -1)))
        rc = w.comm if w is not None else None
        if not isinstance(rc, ReliableComm):
            comm.close()
            return
        try:
            comm.send({"op": "resync-ack", "rx": rc.rx})
        except CommError:
            comm.close()
            return
        # Handshake recorded; from here the connection reports under
        # the worker's key via the ReliableComm observer.
        comm.observer = None
        rc.attach(comm, int(msg.get("rx", 0)))

    def _next_hello(self, deadline: float) -> Tuple[Comm, Dict[str, Any],
                                                    str, float]:
        try:
            return self._hello_q.get(
                timeout=max(0.001, deadline - time.monotonic()))
        except queue.Empty:
            raise CommTimeoutError(
                "timed out waiting for a worker hello") from None

    def _adopt(self, proc: multiprocessing.process.BaseProcess,
               comm: Comm, hello: Dict[str, Any], key: str,
               t_recv: float, lane: int) -> _Worker:
        """Register a freshly-handshaken worker: reliable wrapping,
        failure detector, chaos peer tagging, reader thread."""
        wid = int(hello["wid"])
        if self.recorder is not None:
            comm.observer = self.recorder.frame_observer(f"w{wid}")
            self.recorder.rename_connection(key, f"w{wid}")
            self.recorder.record(EV_SPAWN, wid=wid)
        if self._reliable:
            observer = comm.observer
            comm.observer = None
            rc = ReliableComm(
                comm, role="driver", wid=wid,
                deadline=self._net_deadline(), seed=self._net_seed(),
                counters=self.comm_counters, on_net=self._net_event)
            rc.observer = observer
            comm = rc
        if self._net_plan is not None:
            assign_peer(comm, wid, lane)
        w = _Worker(wid, proc, comm, int(hello["pid"]),
                    t_recv - float(hello["clock"]), lane=lane)
        self._pool[wid] = w
        pol = self.recovery_policy
        if self._reliable and pol is not None \
                and pol.heartbeat_interval is not None:
            det = PhiAccrualDetector(pol.heartbeat_interval)
            det.beat(t_recv)  # the hello counts as the first sign of life
            self._hb[wid] = det
            self._hb_since[wid] = t_recv
        w.reader = threading.Thread(
            target=self._reader, args=(w,), daemon=True,
            name=f"repro-dist-r{wid}")
        w.reader.start()
        return w

    def _fork_one(self, ctx: Any, wid: int, lane: int, address: str,
                  start: int, end: int, scrub: bool,
                  close_fds: List[int]) -> multiprocessing.process.BaseProcess:
        proc = ctx.Process(
            target=_worker_entry,
            args=(wid, lane, address, self.rt, start, end, self.injector,
                  scrub, close_fds, self.recovery_policy,
                  self._reliable, self._net_seed()),
            daemon=True, name=f"repro-dist-w{wid}")
        proc.start()
        return proc

    def _spawn_worker(self, start: int, end: int) -> _Worker:
        lst = self._ensure_listener()
        wid = self._next_wid
        self._next_wid += 1
        scrub = bool(self.recovery_policy is not None
                     and self.recovery_policy.scrub_writes)
        # fds of live worker comms: a child forked now would inherit
        # them and keep a dead sibling's socket half-open, masking its
        # EOF — the worker closes them before connecting.
        close_fds = [w.comm.fileno() for w in self._pool.values()
                     if not w.comm.closed]
        # Reuse the lowest free lane — stable slots are what chaos
        # plans and trace rows target, so they must be decided before
        # the fork (the worker salts its injections with its lane).
        used = {w.lane for w in self._pool.values()
                if w.proc.is_alive() and w.kill_reason is None}
        lane = next(i for i in range(len(self._pool) + 1)
                    if i not in used)
        ctx = multiprocessing.get_context("fork")
        proc = self._fork_one(ctx, wid, lane, lst.address, start, end,
                              scrub, close_fds)
        comm, hello, key, t_recv = self._next_hello(
            time.monotonic() + 15.0)
        if hello.get("wid") != wid:
            comm.close()
            raise CommError(f"bad hello from worker {wid}: {hello!r}")
        return self._adopt(proc, comm, hello, key, t_recv, lane)

    def _spawn_pool(self, n: int, start: int, end: int) -> None:
        lst = self._ensure_listener()
        # Fork all children before adopting any connection: an adopted
        # comm fd must never leak into a later fork (an inheriting
        # sibling would mask the owner's death-EOF).
        wids: List[int] = []
        scrub = bool(self.recovery_policy is not None
                     and self.recovery_policy.scrub_writes)
        ctx = multiprocessing.get_context("fork")
        by_wid: Dict[int, multiprocessing.process.BaseProcess] = {}
        for lane in range(n):
            wid = self._next_wid
            self._next_wid += 1
            by_wid[wid] = self._fork_one(ctx, wid, lane, lst.address,
                                         start, end, scrub, [])
            wids.append(wid)
        deadline = time.monotonic() + 15.0
        for _ in range(n):
            comm, hello, key, t_recv = self._next_hello(deadline)
            wid = int(hello.get("wid", -1))
            if wid not in by_wid:
                comm.close()
                raise CommError(f"bad worker hello: {hello!r}")
            self._adopt(by_wid[wid], comm, hello, key, t_recv,
                        lane=wids.index(wid))

    def _reader(self, w: _Worker) -> None:
        """Per-worker reader thread: streams replies into the event
        queue; heartbeats feed the failure detector; EOF (any cause)
        becomes a death event."""
        while True:
            try:
                msg = w.comm.recv(timeout=None)
            except CommError:
                self._events.put(("eof", w.wid, None))
                return
            if isinstance(msg, dict) and msg.get("op") == "hb":
                det = self._hb.get(w.wid)
                if det is not None:
                    det.beat(perf_counter())
                continue
            self._events.put(("msg", w.wid, msg))

    def _net_event(self, kind: str, detail: str) -> None:
        """Driver-side ReliableComm observability → recovery stats."""
        rec = self.stats.recovery
        if kind == "retransmit":
            rec.net_retransmits += 1
        elif kind == "reconnect":
            rec.net_reconnects += 1
        elif kind == "corrupt":
            rec.net_corrupt_frames += 1

    def _chaos_fault(self, kind: str, wid: int, detail: str) -> None:
        """Driver-side ChaosComm injection hook → stats + trace lane."""
        from ...obs.timeline import (FAULT_NET_CORRUPT, FAULT_NET_DROP,
                                     FAULT_NET_PARTITION, FaultEvent)
        rec = self.stats.recovery
        fkind = None
        if kind == "drop":
            rec.net_drops += 1
            fkind = FAULT_NET_DROP
        elif kind == "corrupt":
            rec.net_corrupt_frames += 1
            fkind = FAULT_NET_CORRUPT
        elif kind == "partition":
            fkind = FAULT_NET_PARTITION
        if fkind is None or self.sink is None or self._epoch is None:
            return
        self.sink.on_fault(FaultEvent(
            kind=fkind, time=perf_counter() - self._epoch, rank=wid,
            tid=-1, detail=detail))

    def _check_heartbeats(self, sched: DynamicScheduler, now: float,
                          fault_event: Callable[..., None]) -> None:
        """Phi-accrual failure detection over worker heartbeats.

        Above ``phi_suspect`` the scheduler stops placing new work on
        the worker (it keeps what it holds); above ``phi_dead`` the
        driver kills it outright, so a hung worker's tasks are replayed
        onto survivors well before ``task_timeout`` would fire."""
        from ...obs.timeline import FAULT_HEARTBEAT_SUSPECT
        pol = self.recovery_policy
        assert pol is not None
        rec = self.stats.recovery
        for wid, w in list(self._pool.items()):
            if w.kill_reason is not None:
                continue
            det = self._hb.get(wid)
            if det is None or now - self._hb_since.get(wid, now) \
                    < pol.heartbeat_grace:
                continue
            phi = det.phi(now)
            if phi >= pol.phi_dead:
                if wid not in self._suspected:
                    self._suspected.add(wid)
                    rec.heartbeat_suspects += 1
                w.kill_reason = (f"heartbeat silence: phi {phi:.1f} >= "
                                 f"{pol.phi_dead:g}")
                fault_event(FAULT_HEARTBEAT_SUSPECT, -1, w.kill_reason,
                            rank=wid)
                os.kill(w.pid, signal.SIGKILL)
                self._mark_dead(w)
            elif phi >= pol.phi_suspect:
                if wid not in self._suspected:
                    self._suspected.add(wid)
                    rec.heartbeat_suspects += 1
                    sched.mark_suspect(wid, True)
                    fault_event(FAULT_HEARTBEAT_SUSPECT, -1,
                                f"phi {phi:.1f} >= {pol.phi_suspect:g}; "
                                f"placement avoiding worker {wid}",
                                rank=wid)
            elif wid in self._suspected:
                # Heartbeats recovered (e.g. a transient stall, not a
                # hang): lift the placement penalty.
                self._suspected.discard(wid)
                sched.mark_suspect(wid, False)

    @staticmethod
    def _mark_dead(w: _Worker) -> None:
        """Short-circuit the reliable layer's reconnect wait when the
        driver knows the worker is gone (deliberate kill or observed
        process exit)."""
        if isinstance(w.comm, ReliableComm):
            w.comm.mark_dead()

    def _shutdown_pool(self, force: bool = False) -> None:
        for w in list(self._pool.values()):
            if not w.comm.closed:
                with contextlib.suppress(CommError):
                    w.comm.send({"op": "shutdown"})
        deadline = time.monotonic() + (0.1 if force else 5.0)
        for w in list(self._pool.values()):
            w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=5.0)
            w.comm.close()
            if w.reader is not None:
                w.reader.join(timeout=5.0)
            if isinstance(w.comm, ReliableComm):
                self.stats.comm_retrans_messages += w.comm.retrans_messages
                self.stats.comm_retrans_bytes += w.comm.retrans_bytes
        self._pool.clear()
        self._hb.clear()
        self._hb_since.clear()
        self._suspected.clear()
        # Drain stale events from dead readers.
        while True:
            try:
                self._events.get_nowait()
            except queue.Empty:
                break

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, start: int = 0, end: Optional[int] = None) -> float:
        """Execute tasks ``[start, end)``; returns the window's wall
        seconds.  Dependencies before ``start`` are satisfied."""
        tasks = self.graph.tasks
        if end is None:
            end = len(tasks)
        if self.validate:
            self.graph.validate(end)
        if start > self._floor:
            self._account_external(start)
        if end <= start:
            return 0.0
        self._floor = end
        self._window_tids = set(range(start, end))

        worker_ok = {t.tid: self._worker_ok(t)
                     for t in tasks[start:end]}
        self._materialize(start, end)

        n_workers = min(self.workers,
                        max(1, sum(1 for v in worker_ok.values() if v)))
        need_pool = any(worker_ok.values())

        t_wall0 = perf_counter()
        if self._epoch is None:
            self._epoch = t_wall0
        if self._net_plan is not None and not self._chaos_installed:
            # Arm before forking: workers inherit the plan (and the
            # epoch anchoring its stall/partition windows) through
            # fork; corruption events fire driver-side only, so the
            # callback needs no cross-process plumbing.
            install_net_plan(self._net_plan, epoch=self._epoch,
                             on_fault=self._chaos_fault)
            self._chaos_installed = True

        sched = DynamicScheduler(tasks, start, end, worker_ok,
                                 pipeline_depth=self._pipeline)
        if need_pool:
            self._spawn_pool(n_workers, start, end)
            for wid in self._pool:
                sched.add_worker(wid)

        failure: Optional[BaseException] = None
        try:
            failure = self._drive(sched, start, end)
        finally:
            self._shutdown_pool(force=failure is not None)
            self._window_tids = set() if failure is None \
                else self._window_tids
            for tid in list(self._done):
                self._window_tids.discard(tid)

        wall = perf_counter() - t_wall0
        self.stats.wall_seconds += wall
        self.stats.windows += 1
        self.stats.peak_rss_bytes = max(self.stats.peak_rss_bytes,
                                        _peak_rss_bytes())
        self.stats.comm_messages = self.comm_counters.total_messages
        self.stats.comm_bytes = self.comm_counters.total_bytes
        if failure is not None:
            raise failure
        return wall

    # -- dispatch loop -------------------------------------------------

    def _drive(self, sched: DynamicScheduler, start: int,
               end: int) -> Optional[BaseException]:
        tasks = self.graph.tasks
        pol = self.recovery_policy
        rec = self.stats.recovery
        poll = pol.poll_interval if pol is not None else 0.05
        snapshots: Dict[int, object] = {}
        retries: Dict[int, int] = {}
        attempts: Dict[int, int] = {}
        dispatch_t: Dict[int, float] = {}
        #: (due, tid) retry backoff heap.
        retry_at: List[Tuple[float, int]] = []
        failure: Optional[BaseException] = None
        crash_budget = 2 * self.workers + 2

        def fault_event(kind: str, tid: int, detail: str,
                        rank: int = 0) -> None:
            if self.sink is None:
                return
            from ...obs.timeline import FaultEvent
            self.sink.on_fault(FaultEvent(
                kind=kind, time=perf_counter() - self._epoch, rank=rank,
                tid=tid, detail=detail))

        def snapshot_for(tid: int) -> None:
            if (self._recover and self.tiles is not None
                    and pol.max_retries > 0 and tid not in snapshots):
                snapshots[tid] = self.tiles.snapshot(
                    tasks[tid].writes)

        def ship_side(w: _Worker, t: Task) -> List[SideEntry]:
            out: List[SideEntry] = []
            for ref in tuple(t.reads) + tuple(t.writes):
                store = self.rt._side_stores.get(ref[0])
                if store is None or ref in w.shipped:
                    continue
                if ref in self._entries:
                    out.append((ref[0], store.key_of(ref),
                                self._entries[ref]))
                    w.shipped.add(ref)
            return out

        def dispatch(wid: int, tid: int) -> bool:
            w = self._pool.get(wid)
            if w is None or w.comm.closed:
                return False
            t = tasks[tid]
            snapshot_for(tid)
            a = attempts.get(tid, 0)
            attempts[tid] = a + 1
            try:
                w.comm.send({"op": "task", "tid": tid, "attempt": a,
                             "side": ship_side(w, t)})
            except CommError:
                # Death will surface as EOF; the scheduler keeps the
                # tid in the dead worker's inflight set until then.
                return False
            self._inflight += 1
            dispatch_t[tid] = perf_counter()
            if self.recorder is not None:
                self.recorder.record(EV_DISPATCH, tid=tid, wid=wid,
                                     attempt=a)
            return True

        completed = [0]

        def complete(tid: int, wid: Optional[int], t0: float, t1: float,
                     cpu: float, slot: str, counted: bool,
                     side: List[SideEntry]) -> None:
            t = tasks[tid]
            self._done[tid] = True
            completed[0] += 1
            sched.on_done(tid, wid)
            snapshots.pop(tid, None)
            self.fns.pop(tid, None)
            for mat_id, key, value in side or ():
                store = self.rt._side_stores.get(mat_id)
                if store is not None and key not in store.mapping:
                    store.mapping[key] = value
            for ref in t.writes:
                if ref[0] in self.rt._side_stores \
                        and ref not in self._entries:
                    store = self.rt._side_stores[ref[0]]
                    key = store.key_of(ref)
                    if key in store.mapping:
                        self._entries[ref] = store.mapping[key]
            dur = t1 - t0
            self.stats.tasks_run += 1
            self.stats.busy_seconds += dur
            kind = t.kind.value
            self.stats.per_kind_seconds[kind] = (
                self.stats.per_kind_seconds.get(kind, 0.0) + dur)
            if cpu > 0.0:
                self.stats.cpu_seconds += cpu
                self.stats.per_kind_cpu_seconds[kind] = (
                    self.stats.per_kind_cpu_seconds.get(kind, 0.0) + cpu)
            if counted:
                self._count(t.kind)
            if self.sink is not None:
                from ...obs.timeline import TaskEvent
                self.sink.on_task(TaskEvent(
                    tid=t.tid, kind=kind, rank=t.rank, slot=slot,
                    phase=t.phase, flops=t.flops, start=t0, end=t1,
                    duration=dur, label=t.label, measured=True,
                    cpu=cpu))

        def apply_events(tid: int,
                         events: Optional[Iterable[Tuple[str, str]]],
                         rank: int) -> None:
            from ...obs.timeline import FAULT_CORRUPTION, FAULT_STALL
            for kind, detail in events or ():
                if kind == "stall":
                    rec.injected_stalls += 1
                    fault_event(FAULT_STALL, tid, detail, rank)
                elif kind == "corruption":
                    rec.corrupted_tiles += 1
                    fault_event(FAULT_CORRUPTION, tid, detail, rank)

        def fail(tid: int, exc: BaseException, retryable: bool,
                 lost_s: float) -> Optional[BaseException]:
            """Common failure path; returns the fatal exception, or
            None when the task was scheduled for retry."""
            from ...obs.timeline import FAULT_RETRY, FAULT_TRANSIENT
            from ...resilience.live import InjectedTransientError
            rec.reexecution_seconds += max(0.0, lost_s)
            if isinstance(exc, InjectedTransientError):
                rec.transient_failures += 1
                fault_event(FAULT_TRANSIENT, tid, str(exc),
                            tasks[tid].rank)
            if (self._recover and retryable
                    and retries.get(tid, 0) < pol.max_retries):
                retries[tid] = retries.get(tid, 0) + 1
                rec.retried_tasks += 1
                snap = snapshots.get(tid)
                if snap is not None:
                    self.tiles.restore(snap)
                due = perf_counter() + pol.backoff_seconds(
                    self._plan_seed(), tid, retries[tid])
                heapq.heappush(retry_at, (due, tid))
                fault_event(FAULT_RETRY, tid,
                            f"retry {retries[tid]}/{pol.max_retries} "
                            f"after {type(exc).__name__}",
                            tasks[tid].rank)
                return None
            return exc

        def on_worker_death(wid: int) -> Optional[BaseException]:
            from ...obs.timeline import FAULT_CRASH, FAULT_REPLAY
            w = self._pool.get(wid)
            queued, inflight = sched.remove_worker(wid)
            # Only attempts that actually went over the wire count as
            # revoked (a dispatch that failed at send never raised
            # the in-flight counter).
            for tid in inflight:
                if dispatch_t.pop(tid, None) is not None:
                    self._inflight -= 1
            reason = w.kill_reason if w is not None else None
            if self.recorder is not None:
                self.recorder.record(EV_DEATH, wid=wid,
                                     detail=reason or "eof")
            if w is not None:
                w.comm.close()
                w.proc.join(timeout=5.0)
            self._hb.pop(wid, None)
            self._hb_since.pop(wid, None)
            if wid in self._suspected:
                self._suspected.discard(wid)
                sched.mark_suspect(wid, False)
            if not queued and not inflight and reason is None \
                    and sched.pending == 0:
                return None  # clean exit race at window end
            rec.crashes += 1
            rec.dead_ranks = tuple(rec.dead_ranks) + (wid,)
            rec.revoked_inflight += len(inflight)
            fault_event(FAULT_CRASH, -1,
                        f"worker {wid} died "
                        f"({reason or 'unexpectedly'}); "
                        f"{len(inflight)} in-flight, "
                        f"{len(queued)} queued", rank=wid)
            if not self._recover:
                return WorkerCrashError(
                    f"worker process {wid} died "
                    f"({reason or 'unexpectedly'}) with "
                    f"{len(inflight)} task(s) in flight and no "
                    "recovery policy configured")
            if rec.crashes > crash_budget:
                return WorkerCrashError(
                    f"giving up after {rec.crashes} worker crashes "
                    f"(budget {crash_budget})")
            for tid in inflight:
                snap = snapshots.get(tid)
                if snap is not None:
                    self.tiles.restore(snap)
                rec.replayed_tasks += 1
                fault_event(FAULT_REPLAY, tid,
                            f"replaying task {tid} lost to worker "
                            f"{wid}", rank=wid)
            if self.recorder is not None:
                for tid in queued + inflight:
                    self.recorder.record(EV_REPLAY, tid=tid, wid=wid)
            sched.requeue(queued + inflight)
            if not sched.alive_workers() and sched.pending > 0:
                nw = self._spawn_worker(start, end)
                sched.add_worker(nw.wid)
            return None

        def fire_crashes_and_timeouts() -> None:
            now = perf_counter()
            while (self._crash_idx < len(self._crashes)
                   and now - self._epoch
                   >= self._crashes[self._crash_idx].time):
                c = self._crashes[self._crash_idx]
                self._crash_idx += 1
                alive = [w for w in self._pool.values()
                         if w.proc.is_alive()
                         and w.kill_reason is None]
                if not alive:
                    continue
                victim = alive[c.rank % len(alive)]
                victim.kill_reason = f"injected crash (rank {c.rank})"
                os.kill(victim.pid, signal.SIGKILL)
                self._mark_dead(victim)
            # Liveness poll: a worker that exited without the driver
            # killing it must not leave its reliable link waiting out
            # the reconnect deadline — no process, no reconnect.
            for w in self._pool.values():
                if w.kill_reason is None and not w.proc.is_alive():
                    self._mark_dead(w)
            if pol is not None and pol.heartbeat_interval is not None \
                    and self._hb:
                self._check_heartbeats(sched, now, fault_event)
            if pol is not None and pol.task_timeout is not None:
                for wid, w in list(self._pool.items()):
                    if w.kill_reason is not None:
                        continue
                    ws = sched.workers.get(wid)
                    if ws is None or not ws.alive:
                        continue
                    for tid in list(ws.inflight):
                        t0 = dispatch_t.get(tid)
                        if t0 is not None \
                                and now - t0 > pol.task_timeout:
                            from ...obs.timeline import FAULT_TIMEOUT
                            rec.timeouts += 1
                            w.kill_reason = (
                                f"task {tid} exceeded "
                                f"{pol.task_timeout}s timeout")
                            fault_event(FAULT_TIMEOUT, tid,
                                        w.kill_reason, rank=wid)
                            os.kill(w.pid, signal.SIGKILL)
                            self._mark_dead(w)
                            break

        n_window = end - start
        stall_guard = 0

        while True:
            if failure is None and completed[0] >= n_window:
                break
            if failure is not None and self._inflight == 0:
                break

            progressed = False
            if failure is None:
                now = perf_counter()
                while retry_at and retry_at[0][0] <= now:
                    _, tid = heapq.heappop(retry_at)
                    sched.requeue([tid])
                    progressed = True
                fire_crashes_and_timeouts()
                for wid in list(self._pool):
                    while True:
                        tid = sched.next_for(wid)
                        if tid is None:
                            break
                        if dispatch(wid, tid):
                            progressed = True
                dtid = sched.next_driver()
                if dtid is not None:
                    self._inflight += 1
                    scrub = bool(pol is not None and pol.scrub_writes)
                    a = attempts.get(dtid, 0)
                    attempts[dtid] = a + 1
                    snapshot_for(dtid)
                    t_epoch = self._epoch
                    w0 = perf_counter()
                    reply = _run_one(
                        self.rt, self.graph, self.fns, self.injector,
                        self.tiles, self.sanitizer, scrub, dtid, a, [])
                    self._inflight -= 1
                    apply_events(dtid, reply.get("events"),
                                 tasks[dtid].rank)
                    if self.recorder is not None:
                        self.recorder.record(
                            EV_DRIVER if reply["op"] == "done" else EV_FAIL,
                            tid=dtid, attempt=a)
                    if reply["op"] == "done":
                        complete(dtid, None, reply["t0"] - t_epoch,
                                 reply["t1"] - t_epoch, reply["cpu"],
                                 "drv", reply["counted"],
                                 reply.get("side") or [])
                    else:
                        failure = fail(dtid, reply["exc"],
                                       reply["retryable"],
                                       perf_counter() - w0)
                    progressed = True

            drained = False
            while True:
                try:
                    kind_, wid, payload = self._events.get(
                        block=not (progressed or drained),
                        timeout=None if progressed or drained
                        else self._wait_budget(retry_at, poll))
                except queue.Empty:
                    if (failure is None and not progressed
                            and self._inflight == 0 and not retry_at):
                        # Nothing out, nothing due, nothing dispatched
                        # this pass: the bookkeeping wedged — fail
                        # loudly instead of spinning forever.
                        stall_guard += 1
                        if stall_guard > 200:
                            return RuntimeError(
                                "process executor stalled with "
                                f"{n_window - completed[0]} task(s) "
                                "unfinished and none ready — "
                                "dependency bookkeeping bug")
                    else:
                        stall_guard = 0
                    break
                drained = True
                stall_guard = 0
                if kind_ == "eof":
                    err = on_worker_death(wid)
                    if err is not None and failure is None:
                        failure = err
                    continue
                msg = payload
                op = msg.get("op")
                tid = msg.get("tid")
                if op not in ("done", "fail") or tid is None:
                    continue
                if self._done.get(tid) or tid not in dispatch_t:
                    continue  # stale reply (revoked or duplicated)
                w = self._pool.get(wid)
                if w is None:
                    continue
                self._inflight -= 1
                del dispatch_t[tid]
                apply_events(tid, msg.get("events"), tasks[tid].rank)
                if self.recorder is not None:
                    self.recorder.record(
                        EV_COMPLETE if op == "done" else EV_FAIL,
                        tid=tid, wid=wid,
                        attempt=int(msg.get("attempt", 0)))
                if op == "done":
                    off = w.clock_offset - self._epoch
                    complete(tid, wid, msg["t0"] + off,
                             msg["t1"] + off, msg["cpu"], f"w{w.lane}",
                             msg.get("counted", True),
                             msg.get("side") or [])
                else:
                    sched.workers[wid].inflight.discard(tid)
                    err = fail(tid, msg["exc"],
                               bool(msg.get("retryable")),
                               msg["t1"] - msg["t0"])
                    if err is not None and failure is None:
                        failure = err
                if not self._events.qsize():
                    break
        return failure

    # -- helpers -------------------------------------------------------

    def _wait_budget(self, retry_at: List[Tuple[float, int]],
                     poll: float) -> float:
        budget = poll
        now = perf_counter()
        if retry_at:
            budget = min(budget, max(0.001, retry_at[0][0] - now))
        if self._crash_idx < len(self._crashes) and self._epoch:
            due = self._crashes[self._crash_idx].time \
                - (now - self._epoch)
            budget = min(budget, max(0.001, due))
        return max(0.001, budget)

    def _plan_seed(self) -> int:
        return self.injector.plan.seed if self.injector is not None else 0

    def _count(self, kind: TaskKind) -> None:
        counter = self._counters.get(kind)
        if counter is None:
            from ...obs.metrics import get_registry
            counter = get_registry().counter(
                f"kernel.invocations.{kind.value}")
            self._counters[kind] = counter
        counter.inc()


def _worker_entry(wid: int, lane: int, address: str, rt: Any, start: int,
                  end: int, injector: Any, scrub: bool,
                  close_fds: List[int], policy: Any, reliable: bool,
                  net_seed: int) -> None:
    """Child-process bootstrap: drop inherited sibling fds, then run
    the worker loop (never returns)."""
    for fd in close_fds:
        with contextlib.suppress(OSError):
            os.close(fd)
    worker_main(wid, address, rt, start, end, injector=injector,
                scrub_writes=scrub, policy=policy, reliable=reliable,
                net_seed=net_seed, lane=lane)
