"""ReliableComm: sequence numbers, retransmission, CRC verification,
heartbeats, and reconnect-and-resync over any :class:`Comm`.

Sits between the executor/worker protocol and the raw transport
(possibly a ChaosComm).  Every application message rides in a small
CRC32-protected envelope::

    {"s": seq, "a": rx, "m": msg}     data (seq starts at 1)
    {"h": clock, "a": rx}             heartbeat (worker → driver)
    {"a": rx}                         ack-only (driver's hb reply)
    {"n": next, "a": rx}              nack: retransmit from ``next``

``rx`` is the highest in-order sequence number the sender has
delivered; acks piggyback on everything.  Out-of-order frames nack
the gap, duplicates are discarded by ``seq``, corrupt frames
(:class:`FrameCorruptError`) are nacked and re-requested — the wire
may drop, duplicate, delay, or damage any frame and the app-level
stream stays exactly-once in-order.

Connection loss is survivable: un-acked envelopes are buffered, and a
bounded reconnect-and-resync handshake (plain ``resync`` /
``resync-ack`` frames carrying each side's ``rx``) re-establishes the
stream and retransmits only what the peer missed.  The worker dials
(:class:`BackoffSchedule`-paced, wall-clock-deadlined); the driver
waits for the executor's acceptor to :meth:`attach` the new
connection.  ``mark_dead`` short-circuits the wait when the driver
*caused* the death (SIGKILL on timeout/suspicion/injected crash) so
deliberate kills surface instantly instead of burning the deadline.

Accounting is **application-level**: ``sent_*``/``received_*`` and
the :class:`CommCounters` feed count each logical message exactly
once, however many times its frame crossed the wire; wire-level
retransmission cost is reported separately (``retrans_messages`` /
``retrans_bytes`` → ``ExecutionStats.comm_retrans_*``).
"""

from __future__ import annotations

import contextlib
import threading
import time
from time import perf_counter
from typing import Callable, Dict, Optional, Tuple

from ...comm.counters import CommCounters
from ...comm.network import TransferPath
from ...resilience.net import BackoffSchedule
from .comm import (_HEADER, Comm, CommClosedError, CommError,
                   CommTimeoutError, DEFAULT_TIMEOUT, FrameCorruptError,
                   connect, decode_frame, encode_frame, verify_crc)

__all__ = ["ReliableComm"]

#: Minimum spacing between unsolicited retransmission sweeps.
_RETRANS_INTERVAL = 0.05


class ReliableComm(Comm):
    """Reliable, resumable message channel over an inner transport."""

    def __init__(self, inner: Comm, *, role: str, wid: int = -1,
                 address: str = "",
                 deadline: float = 2.0,
                 backoff: Optional[BackoffSchedule] = None,
                 seed: int = 0,
                 counters: Optional[CommCounters] = None,
                 path: TransferPath = TransferPath.INTRA_NODE,
                 on_net: Optional[Callable[[str, str], None]] = None):
        if role not in ("driver", "worker"):
            raise ValueError(f"role must be driver|worker, got {role!r}")
        super().__init__(inner.local_address, inner.peer_address,
                         counters, path)
        self.inner = inner
        self.role = role
        self.wid = wid
        self.reconnect_address = address
        self.deadline = deadline
        self.backoff = backoff if backoff is not None \
            else BackoffSchedule(deadline=deadline)
        self.seed = seed
        #: ``on_net(kind, detail)`` — driver-side observability hook
        #: ("corrupt", "retransmit", "reconnect").
        self.on_net = on_net
        self._tx = 0                     # last sequence number sent
        self._rx = 0                     # last in-order seq delivered
        self._unacked: Dict[int, object] = {}
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._broken = False
        self._break_time = 0.0
        self._dead = False
        self._last_retrans = 0.0
        self.retrans_messages = 0
        self.retrans_bytes = 0
        self.dup_frames = 0
        self.corrupt_frames = 0
        self.reconnects = 0

    # -- helpers -------------------------------------------------------
    def fileno(self) -> int:
        return self.inner.fileno()

    @property
    def rx(self) -> int:
        """Highest in-order sequence number delivered so far."""
        with self._lock:
            return self._rx

    def _emit(self, kind: str, detail: str) -> None:
        cb = self.on_net
        if cb is not None:
            cb(kind, detail)

    def _put_locked(self, frame: bytes) -> bool:
        """Write a frame on the current inner; marks the link broken
        (frames stay buffered in ``_unacked``) on failure."""
        if self._broken:
            return False
        try:
            self.inner._send_frame(frame)
            return True
        except CommError:
            self._on_break_locked(self.inner)
            return False

    def _on_break_locked(self, inner: Comm) -> None:
        if self.inner is inner and not self._broken:
            self._broken = True
            self._break_time = time.monotonic()
            with contextlib.suppress(Exception):
                inner._close_transport()
            self._cond.notify_all()

    def _send_control_locked(self, env: Dict[str, object]) -> None:
        """Fire-and-forget control frame (never buffered: controls are
        regenerated by the next heartbeat round anyway)."""
        self._put_locked(encode_frame(env, crc=True))

    def _drop_acked_locked(self, ack: int) -> None:
        for seq in [s for s in self._unacked if s <= ack]:
            del self._unacked[seq]

    def _retransmit_locked(self, start: int) -> None:
        self._last_retrans = time.monotonic()
        for seq in sorted(self._unacked):
            if seq < start:
                continue
            env = {"s": seq, "a": self._rx, "m": self._unacked[seq]}
            frame = encode_frame(env, crc=True)
            if not self._put_locked(frame):
                return
            self.retrans_messages += 1
            self.retrans_bytes += len(frame)
        if start <= self._tx:
            self._emit("retransmit", f"replayed from seq {start} "
                                     f"(tx {self._tx})")

    def _maybe_retransmit_locked(self) -> None:
        """Rate-limited sweep of still-unacked envelopes (called when
        an ack proves the peer is alive but behind)."""
        if not self._unacked or self._broken:
            return
        now = time.monotonic()
        if now - self._last_retrans < _RETRANS_INTERVAL:
            return
        self._retransmit_locked(min(self._unacked))

    # -- public API ----------------------------------------------------
    def send(self, msg: object) -> int:
        """Queue + transmit one message; survives a broken link (the
        envelope is retransmitted after resync)."""
        if self._closed:
            raise CommClosedError(f"send on closed comm to "
                                  f"{self.peer_address}")
        with self._lock:
            if self._dead:
                raise CommClosedError(
                    f"peer {self.peer_address} is dead")
            self._tx += 1
            env = {"s": self._tx, "a": self._rx, "m": msg}
            self._unacked[self._tx] = msg
            frame = encode_frame(env, crc=True)
            if self.observer is not None:
                length, codec = _HEADER.unpack(frame[:_HEADER.size])
                self.observer("send", msg, len(frame), codec, length)
            self._put_locked(frame)
        self.sent_messages += 1
        self.sent_bytes += len(frame)
        if self.counters is not None:
            self.counters.record(self.path, len(frame))
        return len(frame)

    def send_heartbeat(self) -> None:
        """Worker-side liveness beacon; piggybacks our ``rx`` so the
        driver can re-send anything we missed."""
        if self._closed:
            raise CommClosedError("heartbeat on closed comm")
        with self._lock:
            if self._dead:
                raise CommClosedError("heartbeat on dead comm")
            self._send_control_locked({"h": perf_counter(),
                                       "a": self._rx})

    def recv(self, timeout: Optional[float] = DEFAULT_TIMEOUT) -> object:
        """Next in-order message (heartbeats included, as ``{"op":
        "hb", ...}`` dicts).  Handles nack/ack/duplicate/corrupt
        frames and broken links internally."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while True:
            if self._closed:
                raise CommClosedError(f"recv on closed comm to "
                                      f"{self.peer_address}")
            reconnect = False
            with self._lock:
                if self._dead:
                    raise CommClosedError(
                        f"peer {self.peer_address} is dead")
                if self._broken:
                    if self.role == "worker":
                        reconnect = True
                    else:
                        budget = (self._break_time + self.deadline
                                  - time.monotonic())
                        if budget <= 0:
                            self._dead = True
                            raise CommClosedError(
                                f"peer {self.peer_address} never "
                                f"reconnected within {self.deadline}s")
                        if deadline is not None:
                            budget = min(budget,
                                         deadline - time.monotonic())
                            if budget <= 0:
                                raise CommTimeoutError(
                                    f"recv from {self.peer_address} "
                                    f"timed out (link down)")
                        self._cond.wait(budget)
                        continue
                inner = self.inner
            if reconnect:
                self._reconnect()
                continue
            slice_t: Optional[float] = None
            if deadline is not None:
                slice_t = deadline - time.monotonic()
                if slice_t <= 0:
                    raise CommTimeoutError(
                        f"recv from {self.peer_address} timed out")
            try:
                codec, payload = inner._recv_frame(slice_t)
            except CommTimeoutError:
                if deadline is not None \
                        and time.monotonic() >= deadline:
                    raise
                continue
            except CommError:
                with self._lock:
                    self._on_break_locked(inner)
                continue
            nbytes = _HEADER.size + len(payload)
            try:
                bare_codec, body = verify_crc(codec, payload)
                env = decode_frame(bare_codec, body)
            except FrameCorruptError as e:
                self.corrupt_frames += 1
                self._emit("corrupt", str(e))
                with self._lock:
                    self._send_control_locked({"n": self._rx + 1,
                                               "a": self._rx})
                continue
            except CommError:
                continue  # undecodable stray frame
            if not isinstance(env, dict):
                continue
            ack = env.get("a")
            with self._lock:
                if ack is not None:
                    self._drop_acked_locked(int(ack))
                if "n" in env:
                    self._retransmit_locked(int(env["n"]))
                    continue
                if "h" in env:
                    # Heartbeat: ack it (the worker prunes + resends
                    # off our rx) and deliver it upward so the driver
                    # can feed its failure detector.
                    self._send_control_locked({"a": self._rx})
                    self._maybe_retransmit_locked()
                    msg: object = {"op": "hb", "clock": env["h"]}
                elif "s" in env:
                    seq = int(env["s"])
                    if seq <= self._rx:
                        self.dup_frames += 1
                        continue
                    if seq > self._rx + 1:
                        self._send_control_locked({"n": self._rx + 1,
                                                   "a": self._rx})
                        continue
                    self._rx = seq
                    msg = env["m"]
                else:
                    # Ack-only: the peer is alive but may be missing
                    # frames it has not nacked yet (its nack may have
                    # been dropped) — sweep, rate-limited.
                    self._maybe_retransmit_locked()
                    continue
            self.received_messages += 1
            self.received_bytes += nbytes
            if self.counters is not None:
                self.counters.record(self.path, nbytes)
            if self.observer is not None:
                self.observer("recv", msg, nbytes, codec, len(payload))
            return msg

    # -- reconnection --------------------------------------------------
    def attach(self, inner: Comm, peer_rx: int) -> bool:
        """Driver side: splice in a freshly-accepted resync connection
        (the acceptor already answered the plain ``resync`` with our
        ``resync-ack``)."""
        with self._lock:
            if self._closed or self._dead:
                with contextlib.suppress(Exception):
                    inner.close()
                return False
            old = self.inner
            if old is not inner:
                with contextlib.suppress(Exception):
                    old._close_transport()
            self.inner = inner
            self._broken = False
            self.reconnects += 1
            self._drop_acked_locked(peer_rx)
            self._retransmit_locked(peer_rx + 1)
            self._cond.notify_all()
        if self.observer is not None:
            self.observer("reopen", None, 0, -1, -1)
        self._emit("reconnect", f"worker {self.wid} resynced at "
                                f"rx {peer_rx}")
        return True

    def _reconnect(self) -> None:
        """Worker side: dial the driver back, resync, retransmit."""
        delays = self.backoff.delays(self.seed, key=self.wid)
        attempt = 0
        while True:
            with self._lock:
                if self._closed or self._dead:
                    raise CommClosedError("closed during reconnect")
                start = self._break_time
            if time.monotonic() - start > self.deadline:
                with self._lock:
                    self._dead = True
                raise CommClosedError(
                    f"reconnect budget ({self.deadline}s) exhausted")
            inner: Optional[Comm] = None
            try:
                inner = connect(self.reconnect_address,
                                timeout=min(1.0, self.deadline))
                inner.crc_frames = True
                inner.send({"op": "resync", "wid": self.wid,
                            "rx": self._rx})
                ack = inner.recv(timeout=min(1.0, self.deadline))
                if not (isinstance(ack, dict)
                        and ack.get("op") == "resync-ack"):
                    raise CommClosedError(
                        f"bad resync ack: {ack!r}")
            except CommError:
                if inner is not None:
                    with contextlib.suppress(Exception):
                        inner.close()
                if attempt < len(delays):
                    time.sleep(delays[attempt])
                    attempt += 1
                    continue
                with self._lock:
                    self._dead = True
                raise CommClosedError(
                    f"reconnect to {self.reconnect_address} failed "
                    f"after {attempt + 1} attempts") from None
            with self._lock:
                self.inner = inner
                self._broken = False
                self.reconnects += 1
                peer_rx = int(ack.get("rx", 0))  # type: ignore[union-attr]
                self._drop_acked_locked(peer_rx)
                self._retransmit_locked(peer_rx + 1)
            if self.observer is not None:
                self.observer("reopen", None, 0, -1, -1)
            return

    # -- teardown ------------------------------------------------------
    def mark_dead(self) -> None:
        """Declare the peer dead *now* (the driver killed it on
        purpose): recv stops waiting for a reconnect immediately."""
        with self._lock:
            if self._dead:
                return
            self._dead = True
            with contextlib.suppress(Exception):
                self.inner._close_transport()
            self._cond.notify_all()

    def close(self) -> None:
        if self._closed:
            return
        with self._lock:
            if self._closed:
                return
            self._closed = True
            with contextlib.suppress(Exception):
                self.inner._close_transport()
            self._cond.notify_all()
        if self.observer is not None:
            self.observer("close", None, 0, -1, -1)

    def _close_transport(self) -> None:  # pragma: no cover - close()
        self.inner._close_transport()    # is fully overridden above

    def _send_frame(self, frame: bytes) -> None:  # pragma: no cover
        raise NotImplementedError("ReliableComm frames its own sends")

    def _recv_frame(self, timeout: Optional[float]  # pragma: no cover
                    ) -> Tuple[int, bytes]:
        raise NotImplementedError("ReliableComm frames its own recvs")
