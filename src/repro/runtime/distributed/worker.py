"""Worker-process side of the distributed runtime.

Workers are **forked per execution window**.  Task payloads recorded
by the deferred runtime are closures over driver objects (tile
payloads, ``QRFactors``, scalar boxes) and are not picklable, so
instead of shipping code we ship *nothing*: the fork inherits the task
graph, the payload table, and every shared-memory tile mapping
copy-on-write, and the parent then streams tiny ``task`` messages
(tid + attempt + any side entries) over the comm layer.  Matrix tiles
are shared memory, so payload writes land directly in the parent's
(and every sibling's) view — zero-copy by construction.

What executes here mirrors the threaded executor's recovering worker
(`ParallelExecutor._execute_r`) minus cross-thread claims, which do
not exist across processes: injected stalls sleep, injected transients
raise, payloads run inside a sanitizer frame when the task asks for
one, injected corruption and non-finite scrubbing act on the local
(shared) tiles.  Snapshots are *not* taken here — the parent snapshots
write tiles before dispatching so a SIGKILL at any instant leaves it
able to restore and replay (lineage recovery, PR 5).

The worker never touches the shared-memory registry, never spawns
threads, and exits through ``os._exit`` so a teardown cannot corrupt
parent-owned resources (atexit handlers, shm unlinking and the
multiprocessing resource tracker all belong to the parent).
"""

from __future__ import annotations

import contextlib
import os
import pickle
import threading
import time
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .chaos import active_net_plan, set_local_wid
from .comm import Comm, CommClosedError, CommError, connect
from .reliable import ReliableComm

__all__ = ["worker_main", "retryable_exception", "SideEntry"]

#: ``(mat_id, key, value)`` — one side-store entry in flight.
SideEntry = Tuple[int, object, object]


def retryable_exception(exc: BaseException) -> bool:
    """Same classification as ``ParallelExecutor._retryable`` —
    evaluated worker-side so the verdict survives exceptions that do
    not pickle faithfully."""
    from ..parallel import OrderingViolationError
    from ...resilience.live import (InjectedTransientError,
                                    TileCorruptionDetected)
    if isinstance(exc, (InjectedTransientError, TileCorruptionDetected)):
        return True
    if not isinstance(exc, Exception):
        return False
    if isinstance(exc, (OrderingViolationError, np.linalg.LinAlgError)):
        return False
    if isinstance(exc, CommError):
        return exc.retryable
    if type(exc).__module__.startswith("repro.analysis"):
        return False
    return True


def _portable_exc(exc: BaseException) -> BaseException:
    """Return ``exc`` if it pickles cleanly, else a plain stand-in
    (the ``retryable`` verdict travels separately)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _install_side_entries(rt: Any, entries: List[SideEntry]) -> None:
    for mat_id, key, value in entries or ():
        store = rt._side_stores.get(mat_id)
        if store is not None:
            store.mapping[key] = value


def _collect_side_writes(rt: Any, task: Any) -> List[SideEntry]:
    out: List[SideEntry] = []
    for ref in task.writes:
        store = rt._side_stores.get(ref[0])
        if store is None:
            continue
        key = store.key_of(ref)
        if key in store.mapping:
            out.append((ref[0], key, store.mapping[key]))
    return out


def _run_one(rt: Any, graph: Any, fns: Dict[int, Any], injector: Any,
             tiles: Any, sanitizer: Any, scrub_writes: bool,
             tid: int, attempt: int,
             side: List[SideEntry]) -> Dict[str, Any]:
    """Execute one task; returns the reply message (``done``/``fail``)."""
    t = graph.tasks[tid]
    events: List[Tuple[str, str]] = []
    t0 = t1 = cpu = 0.0
    try:
        _install_side_entries(rt, side)
        if injector is not None:
            stall = injector.stall_seconds(tid, t.kind.value, attempt)
            if stall > 0.0:
                events.append(("stall",
                               f"injected stall {stall * 1e3:.0f}ms "
                               f"(attempt {attempt})"))
                time.sleep(stall)
        if (injector is not None
                and injector.transient_fires(tid, attempt)):
            from ...resilience.live import InjectedTransientError
            raise InjectedTransientError(
                f"injected transient on task {tid} attempt {attempt}")
        fn = fns.get(tid)
        t0 = perf_counter()
        if fn is not None:
            c0 = time.thread_time()
            if sanitizer is not None and t.sanitize:
                with sanitizer.task_scope(t):
                    fn()
            else:
                fn()
            cpu = time.thread_time() - c0
            injected_corruption = False
            if injector is not None and tiles is not None:
                corr = injector.corruption_for(
                    tid, t.kind.value, attempt, len(t.writes))
                if corr is not None:
                    ref = t.writes[corr[0]]
                    if tiles.corrupt(ref, corr[1]):
                        injected_corruption = True
                        events.append((
                            "corruption",
                            f"injected {corr[1]} into tile {ref}"))
            if scrub_writes and tiles is not None:
                bad = tiles.nonfinite(t.writes)
                if bad:
                    if not injected_corruption:
                        events.append((
                            "corruption",
                            f"non-finite output tiles {bad}"))
                    from ...resilience.live import TileCorruptionDetected
                    raise TileCorruptionDetected(
                        f"task {tid} produced non-finite tiles {bad}")
        t1 = perf_counter()
    except BaseException as exc:
        return {"op": "fail", "tid": tid, "attempt": attempt,
                "t0": t0 or perf_counter(), "t1": perf_counter(),
                "cpu": cpu, "events": events,
                "retryable": retryable_exception(exc),
                "exc": _portable_exc(exc)}
    return {"op": "done", "tid": tid, "attempt": attempt,
            "t0": t0, "t1": t1, "cpu": cpu, "events": events,
            "counted": fns.get(tid) is not None,
            "side": _collect_side_writes(rt, t)}


def _heartbeat_loop(rc: ReliableComm, interval: float,
                    stop: threading.Event) -> None:
    """Worker-side liveness beacon.  A beat that cannot be written is
    not an error here — the reliable layer marks the link broken and
    the main loop's next recv drives the reconnect."""
    while not stop.wait(interval):
        try:
            rc.send_heartbeat()
        except CommError:
            return


def worker_main(wid: int, address: str, rt: Any, start: int, end: int,
                injector: Any = None, scrub_writes: bool = False,
                policy: Any = None, reliable: bool = False,
                net_seed: int = 0, lane: int = -1) -> None:
    """Entry point of a forked worker.  Never returns — exits the
    process via ``os._exit``."""
    code = 0
    comm: Optional[Comm] = None
    hb_stop = threading.Event()
    try:
        # Inherited driver state must not re-enter the deferred
        # machinery: accessing a tile or scalar box inside a payload
        # would otherwise try to sync the runtime recursively.
        rt._in_execution = True
        rt._worker_mode = True
        graph = rt.graph
        fns = rt._pending_fns
        sanitizer = rt.sanitizer
        tiles = None
        if injector is not None or scrub_writes:
            from ...resilience.live import TileAccessor
            tiles = TileAccessor(rt._matrices)
        if active_net_plan() is not None:
            # Inherited over fork from the driver's install_net_plan;
            # tag this process so our ChaosComms salt frame decisions
            # with (worker side, wid) and match lane-targeted faults.
            set_local_wid(wid, lane)
        comm = connect(address, timeout=10.0)
        if reliable:
            comm.crc_frames = True
        # The hello travels on the raw transport: the driver's acceptor
        # routes on it before any reliable wrapping exists.
        comm.send({"op": "hello", "wid": wid, "pid": os.getpid(),
                   "clock": perf_counter()})
        if reliable:
            comm = ReliableComm(
                comm, role="worker", wid=wid, address=address,
                deadline=(policy.net_deadline if policy is not None
                          else 2.0),
                seed=net_seed)
            interval = getattr(policy, "heartbeat_interval", None)
            if interval is not None:
                threading.Thread(
                    target=_heartbeat_loop, args=(comm, interval, hb_stop),
                    daemon=True, name=f"repro-dist-hb{wid}").start()
        while True:
            msg = comm.recv(timeout=None)
            op = msg.get("op")
            if op == "shutdown":
                break
            if op != "task":
                continue
            reply = _run_one(rt, graph, fns, injector, tiles, sanitizer,
                             scrub_writes, msg["tid"], msg["attempt"],
                             msg.get("side") or [])
            comm.send(reply)
    except (CommClosedError, KeyboardInterrupt):
        code = 0  # parent went away / interrupted: silent exit
    except BaseException:
        code = 1
    finally:
        hb_stop.set()
        if comm is not None:
            with contextlib.suppress(Exception):
                comm.close()
        # Release this fork's inherited shared-memory mappings (views
        # and mmaps only — segments, refcounts and unlinking stay with
        # the parent) so a worker exit never pins a dead mapping.
        store = getattr(getattr(rt, "_executor", None), "store", None)
        if store is not None:
            with contextlib.suppress(Exception):
                store.release_inherited()
        # Skip interpreter teardown entirely: the fork inherited
        # atexit hooks, shm objects and executor state that belong to
        # the parent.
        os._exit(code)
