"""Pluggable point-to-point comm layer for the distributed runtime.

The abstraction is deliberately small — three nouns and two verbs:

* :class:`Comm` — a connected, message-oriented, bidirectional channel.
* :class:`Listener` — a bound endpoint that :meth:`~Listener.accept`\\ s
  incoming connections as :class:`Comm` objects.
* :func:`connect` / :func:`listen` — scheme-dispatched constructors.
  The scheme prefix of the address (``inproc://`` or ``tcp://``) picks
  the transport; everything above this module is transport-agnostic.

Messages are arbitrary picklable Python objects.  On the wire each
message is one *frame*::

    8 bytes   payload length, big-endian unsigned
    1 byte    codec tag (``CODEC_PICKLE`` or ``CODEC_MSGPACK``,
              optionally OR'd with ``FLAG_CRC``)
    n bytes   payload

With ``FLAG_CRC`` set (``encode_frame(msg, crc=True)`` or a comm's
``crc_frames``) the last four payload bytes are a big-endian CRC32 of
the rest, *inside* the declared length — transports and anything that
reasons about frame sizes are oblivious to the trailer.  A mismatch
raises :class:`FrameCorruptError` (retryable) without desynchronising
the stream: the frame was read in full, only its bytes are bad, so
the reliable layer can simply ask for it again.

msgpack is used opportunistically when (a) the package is importable
and (b) the message is plain data (dict/list/str/int/float/bytes/None);
otherwise frames fall back to pickle.  The container image this repo
targets does not ship msgpack — the tag byte keeps the wire format
stable so environments that *do* have it interoperate.

Every comm counts frames and bytes in both directions; when built with
a :class:`~repro.comm.counters.CommCounters` the same numbers feed the
existing per-path accounting (parent↔worker traffic is intra-node, so
it lands on :data:`TransferPath.INTRA_NODE`).

Failure surface: every error raised by this layer is a
:class:`CommError`.  ``retryable`` distinguishes "peer went away /
timed out" (safe to re-dispatch elsewhere) from programming errors.
A dropped connection raises :class:`CommClosedError` promptly — recv
never hangs past its timeout.
"""

from __future__ import annotations

import contextlib
import pickle
import queue
import socket
import struct
import threading
import zlib
from typing import Callable, Dict, Optional, Tuple

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack  # type: ignore
except Exception:  # pragma: no cover
    msgpack = None

from ...comm.counters import CommCounters
from ...comm.network import TransferPath

__all__ = [
    "Comm",
    "Listener",
    "CommError",
    "CommClosedError",
    "CommTimeoutError",
    "AddressInUseError",
    "FrameCorruptError",
    "connect",
    "listen",
    "register_transport",
    "encode_frame",
    "decode_frame",
    "verify_crc",
    "CODEC_PICKLE",
    "CODEC_MSGPACK",
    "FLAG_CRC",
    "DEFAULT_TIMEOUT",
]

#: Default blocking budget (seconds) for connect/accept/recv.  The
#: comm-layer contract (and its tests) promise that a dead peer turns
#: into an exception well under this.
DEFAULT_TIMEOUT = 5.0

_HEADER = struct.Struct(">QB")  # (payload_len, codec)

CODEC_PICKLE = 0
CODEC_MSGPACK = 1

#: High bit of the codec byte: the payload carries a 4-byte CRC32
#: trailer (counted in the declared length).
FLAG_CRC = 0x80


class CommError(RuntimeError):
    """Base class for all comm-layer failures."""

    #: Whether the operation that raised may be retried (possibly on a
    #: different comm) without risking duplicated side effects here.
    retryable = False


class CommClosedError(CommError):
    """The peer disconnected (EOF, reset, or local close)."""

    retryable = True


class CommTimeoutError(CommError):
    """The operation did not complete within its timeout."""

    retryable = True


class AddressInUseError(CommError):
    """``listen()`` on an address that already has a listener."""

    retryable = False


class FrameCorruptError(CommError):
    """A CRC-protected frame arrived damaged.

    The stream itself is still synchronised (the frame was consumed
    in full), so the right reaction is to discard the frame and ask
    the peer to retransmit — which is exactly what the reliable layer
    does."""

    retryable = True


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def _msgpack_safe(msg: object) -> bool:
    if isinstance(msg, (str, bytes, int, float, bool)) or msg is None:
        return True
    if isinstance(msg, (list, tuple)):
        return all(_msgpack_safe(v) for v in msg)
    if isinstance(msg, dict):
        return all(isinstance(k, str) and _msgpack_safe(v)
                   for k, v in msg.items())
    return False


def encode_frame(msg: object, crc: bool = False) -> bytes:
    """Serialise ``msg`` into one length-prefixed frame.

    With ``crc`` a CRC32 trailer is appended to the payload (and the
    declared length covers it), and ``FLAG_CRC`` is set on the codec
    byte."""
    if msgpack is not None and _msgpack_safe(msg):  # pragma: no cover
        payload = msgpack.packb(msg, use_bin_type=True)
        codec = CODEC_MSGPACK
    else:
        payload = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        codec = CODEC_PICKLE
    if crc:
        payload += struct.pack(">I", zlib.crc32(payload) & 0xFFFFFFFF)
        codec |= FLAG_CRC
    return _HEADER.pack(len(payload), codec) + payload


def verify_crc(codec: int, payload: bytes) -> Tuple[int, bytes]:
    """Strip and check a frame's CRC trailer when ``FLAG_CRC`` is set.

    Returns the bare ``(codec, payload)``; raises
    :class:`FrameCorruptError` on a checksum mismatch or a truncated
    trailer."""
    if not codec & FLAG_CRC:
        return codec, payload
    if len(payload) < 4:
        raise FrameCorruptError(
            f"CRC frame too short for its trailer ({len(payload)} bytes)")
    body, trailer = payload[:-4], payload[-4:]
    expect = struct.unpack(">I", trailer)[0]
    got = zlib.crc32(body) & 0xFFFFFFFF
    if got != expect:
        raise FrameCorruptError(
            f"frame CRC mismatch: computed {got:#010x}, "
            f"trailer {expect:#010x} ({len(body)} payload bytes)")
    return codec & ~FLAG_CRC, body


def decode_frame(codec: int, payload: bytes) -> object:
    """Inverse of :func:`encode_frame` (header already consumed; any
    CRC trailer already stripped via :func:`verify_crc`)."""
    if codec == CODEC_PICKLE:
        return pickle.loads(payload)
    if codec == CODEC_MSGPACK:
        if msgpack is None:
            raise CommError(
                "received a msgpack frame but msgpack is not installed")
        return msgpack.unpackb(payload, raw=False)  # pragma: no cover
    raise CommError(f"unknown frame codec {codec}")


# ---------------------------------------------------------------------------
# Interfaces
# ---------------------------------------------------------------------------

class Comm:
    """A connected message channel.

    Subclasses implement :meth:`_send_frame` / :meth:`_recv_frame`;
    the byte/message accounting and counter feed live here so every
    transport reports identically.
    """

    def __init__(self, local_address: str, peer_address: str,
                 counters: Optional[CommCounters] = None,
                 path: TransferPath = TransferPath.INTRA_NODE):
        self.local_address = local_address
        self.peer_address = peer_address
        self.counters = counters
        self.path = path
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0
        self.received_bytes = 0
        #: Optional frame observer (DistSan protocol recording):
        #: ``observer(direction, msg, nbytes, codec, declared)`` is
        #: called just before each frame is written, after each
        #: successful recv, and once with ``("close", None, 0, -1,
        #: -1)`` when the comm closes.
        self.observer = None
        #: Append a CRC32 trailer to every sent frame (and expect the
        #: peer to verify).  Inbound CRC frames are always verified,
        #: flag or no flag — the codec byte says what each frame has.
        self.crc_frames = False
        self._closed = False

    # -- transport hooks -------------------------------------------------
    def _send_frame(self, frame: bytes) -> None:
        raise NotImplementedError

    def _recv_frame(self, timeout: Optional[float]) -> Tuple[int, bytes]:
        raise NotImplementedError

    def _close_transport(self) -> None:
        raise NotImplementedError

    # -- public API ------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def fileno(self) -> int:
        """OS-level descriptor of the transport, or ``-1`` when the
        transport has none (in-process queues)."""
        return -1

    def send(self, msg: object) -> int:
        """Send one message; returns the frame size in bytes."""
        if self._closed:
            raise CommClosedError(f"send on closed comm to "
                                  f"{self.peer_address}")
        frame = encode_frame(msg, crc=self.crc_frames)
        if self.observer is not None:
            # Record *before* the wire write: the peer's reply is
            # recorded by a reader thread, and observing after the
            # write would let a fast reply appear first in the frame
            # log, inverting the send→recv happens-before edge.
            length, codec = _HEADER.unpack(frame[:_HEADER.size])
            self.observer("send", msg, len(frame), codec, length)
        self._send_frame(frame)
        self.sent_messages += 1
        self.sent_bytes += len(frame)
        if self.counters is not None:
            self.counters.record(self.path, len(frame))
        return len(frame)

    def recv(self, timeout: Optional[float] = DEFAULT_TIMEOUT) -> object:
        """Receive one message; :class:`CommTimeoutError` on timeout,
        :class:`CommClosedError` if the peer is gone."""
        if self._closed:
            raise CommClosedError(f"recv on closed comm to "
                                  f"{self.peer_address}")
        wire_codec, payload = self._recv_frame(timeout)
        nbytes = _HEADER.size + len(payload)
        declared = len(payload)  # on-wire length: CRC trailer included
        self.received_messages += 1
        self.received_bytes += nbytes
        if self.counters is not None:
            self.counters.record(self.path, nbytes)
        codec, payload = verify_crc(wire_codec, payload)
        msg = decode_frame(codec, payload)
        if self.observer is not None:
            self.observer("recv", msg, nbytes, wire_codec, declared)
        return msg

    def close(self) -> None:
        """Idempotent close; the peer's next recv sees EOF."""
        if self._closed:
            return
        self._closed = True
        self._close_transport()
        if self.observer is not None:
            self.observer("close", None, 0, -1, -1)

    def __enter__(self) -> "Comm":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"<{type(self).__name__} {self.local_address} -> "
                f"{self.peer_address} [{state}]>")


class Listener:
    """A bound endpoint producing server-side :class:`Comm` objects."""

    #: The concrete (resolved) address, e.g. ``tcp://127.0.0.1:45123``
    #: after binding port 0.
    address: str

    def accept(self, timeout: Optional[float] = DEFAULT_TIMEOUT) -> Comm:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Listener":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Scheme registry
# ---------------------------------------------------------------------------

_TRANSPORTS: Dict[str, Tuple[Callable, Callable]] = {}


def register_transport(scheme: str, listen_fn: Callable,
                       connect_fn: Callable) -> None:
    """Register a transport under ``scheme`` (without ``://``)."""
    _TRANSPORTS[scheme] = (listen_fn, connect_fn)


def _split(address: str) -> Tuple[str, str]:
    if "://" not in address:
        raise CommError(f"address {address!r} has no scheme "
                        f"(expected e.g. tcp://host:port)")
    scheme, rest = address.split("://", 1)
    if scheme not in _TRANSPORTS:
        raise CommError(f"unknown comm scheme {scheme!r} "
                        f"(registered: {sorted(_TRANSPORTS)})")
    return scheme, rest


def listen(address: str, counters: Optional[CommCounters] = None,
           path: TransferPath = TransferPath.INTRA_NODE) -> Listener:
    """Bind ``address`` and return a :class:`Listener`."""
    scheme, rest = _split(address)
    return _TRANSPORTS[scheme][0](rest, counters, path)


def connect(address: str, timeout: float = DEFAULT_TIMEOUT,
            counters: Optional[CommCounters] = None,
            path: TransferPath = TransferPath.INTRA_NODE) -> Comm:
    """Connect to a listening ``address`` and return a :class:`Comm`."""
    scheme, rest = _split(address)
    return _TRANSPORTS[scheme][1](rest, timeout, counters, path)


# ---------------------------------------------------------------------------
# In-process transport (queue pair)
# ---------------------------------------------------------------------------

_CLOSE = object()          # sentinel frame: peer closed

_inproc_lock = threading.Lock()
_inproc_listeners: Dict[str, "InProcListener"] = {}


class InProcComm(Comm):
    """One end of a queue pair.  Frames are the serialised bytes — the
    wire-format round-trip is real even in-process, so byte counters
    mean the same thing on every transport."""

    def __init__(self, local_address: str, peer_address: str,
                 rx: "queue.SimpleQueue", tx: "queue.SimpleQueue",
                 counters: Optional[CommCounters] = None,
                 path: TransferPath = TransferPath.INTRA_NODE):
        super().__init__(local_address, peer_address, counters, path)
        self._rx = rx
        self._tx = tx
        self._peer_gone = False

    def _send_frame(self, frame: bytes) -> None:
        if self._peer_gone:
            raise CommClosedError(f"peer {self.peer_address} is gone")
        self._tx.put(frame)

    def _recv_frame(self, timeout: Optional[float]) -> Tuple[int, bytes]:
        if self._peer_gone:
            raise CommClosedError(f"peer {self.peer_address} is gone")
        try:
            item = self._rx.get(timeout=timeout)
        except queue.Empty:
            raise CommTimeoutError(
                f"recv from {self.peer_address} timed out after "
                f"{timeout} s") from None
        if item is _CLOSE:
            self._peer_gone = True
            raise CommClosedError(f"peer {self.peer_address} closed "
                                  f"the connection")
        return _HEADER.unpack(item[:_HEADER.size])[1], item[_HEADER.size:]

    def _close_transport(self) -> None:
        with contextlib.suppress(Exception):  # pragma: no cover - in-memory
            self._tx.put(_CLOSE)
        # Wake any thread blocked in our *own* recv as well (TCP gets
        # this for free: closing the fd errors a blocked read).
        with contextlib.suppress(Exception):  # pragma: no cover - in-memory
            self._rx.put(_CLOSE)


class InProcListener(Listener):
    def __init__(self, name: str, counters: Optional[CommCounters],
                 path: TransferPath):
        self.name = name
        self.address = f"inproc://{name}"
        self._counters = counters
        self._path = path
        self._pending: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False

    def accept(self, timeout: Optional[float] = DEFAULT_TIMEOUT) -> Comm:
        if self._closed:
            raise CommClosedError(f"accept on closed listener "
                                  f"{self.address}")
        try:
            item = self._pending.get(timeout=timeout)
        except queue.Empty:
            raise CommTimeoutError(
                f"accept on {self.address} timed out after "
                f"{timeout} s") from None
        if item is _CLOSE or self._closed:
            # close() raced us: re-arm the sentinel for any other
            # blocked accepter and surface the close, never hang.
            self._pending.put(_CLOSE)
            raise CommClosedError(f"listener {self.address} closed "
                                  f"during accept")
        a2b, b2a, client_addr = item
        return InProcComm(self.address, client_addr, rx=a2b, tx=b2a,
                          counters=self._counters, path=self._path)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with _inproc_lock:
            if _inproc_listeners.get(self.name) is self:
                del _inproc_listeners[self.name]
        # Wake threads blocked in accept(); they raise CommClosedError.
        self._pending.put(_CLOSE)


def _inproc_listen(name: str, counters: Optional[CommCounters],
                   path: TransferPath) -> Listener:
    with _inproc_lock:
        if name in _inproc_listeners:
            raise AddressInUseError(f"inproc://{name} already has a "
                                    f"listener")
        lst = InProcListener(name, counters, path)
        _inproc_listeners[name] = lst
        return lst


_inproc_client_seq = [0]


def _inproc_connect(name: str, timeout: float,
                    counters: Optional[CommCounters],
                    path: TransferPath) -> Comm:
    with _inproc_lock:
        lst = _inproc_listeners.get(name)
        _inproc_client_seq[0] += 1
        seq = _inproc_client_seq[0]
    if lst is None or lst._closed:
        raise CommClosedError(f"no listener at inproc://{name}")
    client_addr = f"inproc://{name}#client{seq}"
    a2b: "queue.SimpleQueue" = queue.SimpleQueue()  # client -> server
    b2a: "queue.SimpleQueue" = queue.SimpleQueue()  # server -> client
    lst._pending.put((a2b, b2a, client_addr))
    return InProcComm(client_addr, lst.address, rx=b2a, tx=a2b,
                      counters=counters, path=path)


register_transport("inproc", _inproc_listen, _inproc_connect)


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------

class TCPComm(Comm):
    def __init__(self, sock: socket.socket,
                 counters: Optional[CommCounters] = None,
                 path: TransferPath = TransferPath.INTRA_NODE):
        with contextlib.suppress(OSError):  # pragma: no cover - AF dependent
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        host, port = sock.getsockname()[:2]
        local = f"tcp://{host}:{port}"
        try:
            host, port = sock.getpeername()[:2]
            peer = f"tcp://{host}:{port}"
        except OSError:  # pragma: no cover - already reset
            peer = "tcp://?"
        super().__init__(local, peer, counters, path)
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()

    def _send_frame(self, frame: bytes) -> None:
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except (BrokenPipeError, ConnectionError, OSError) as e:
            self._closed = True
            raise CommClosedError(
                f"send to {self.peer_address} failed: {e}") from e

    def _read_exactly(self, n: int, deadline: Optional[float]) -> bytes:
        chunks = []
        got = 0
        while got < n:
            if deadline is not None:
                import time
                left = deadline - time.monotonic()
                if left <= 0:
                    raise socket.timeout()
                self._sock.settimeout(left)
            else:
                self._sock.settimeout(None)
            chunk = self._sock.recv(min(1 << 20, n - got))
            if not chunk:
                raise CommClosedError(
                    f"peer {self.peer_address} closed the connection"
                    + (" mid-frame" if got else ""))
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def _recv_frame(self, timeout: Optional[float]) -> Tuple[int, bytes]:
        import time
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            with self._recv_lock:
                header = self._read_exactly(_HEADER.size, deadline)
                length, codec = _HEADER.unpack(header)
                payload = self._read_exactly(length, deadline)
        except socket.timeout:
            raise CommTimeoutError(
                f"recv from {self.peer_address} timed out after "
                f"{timeout} s") from None
        except CommError:
            self._closed = True
            raise
        except (ConnectionError, OSError) as e:
            self._closed = True
            raise CommClosedError(
                f"recv from {self.peer_address} failed: {e}") from e
        return codec, payload

    def _close_transport(self) -> None:
        with contextlib.suppress(OSError):
            self._sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):  # pragma: no cover
            self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()


class TCPListener(Listener):
    def __init__(self, host: str, port: int,
                 counters: Optional[CommCounters], path: TransferPath):
        self._counters = counters
        self._path = path
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 0)
        try:
            sock.bind((host, port))
        except OSError as e:
            sock.close()
            raise AddressInUseError(
                f"cannot bind tcp://{host}:{port}: {e}") from e
        sock.listen(128)
        self._sock = sock
        host, port = sock.getsockname()[:2]
        self.address = f"tcp://{host}:{port}"
        self._closed = False

    def accept(self, timeout: Optional[float] = DEFAULT_TIMEOUT) -> Comm:
        if self._closed:
            raise CommClosedError(f"accept on closed listener "
                                  f"{self.address}")
        self._sock.settimeout(timeout)
        try:
            conn, _ = self._sock.accept()
        except socket.timeout:
            raise CommTimeoutError(
                f"accept on {self.address} timed out after "
                f"{timeout} s") from None
        except OSError as e:
            if self._closed:
                raise CommClosedError(
                    f"listener {self.address} closed during "
                    f"accept") from None
            raise CommClosedError(
                f"accept on {self.address} failed: {e}") from e
        if self._closed:  # close() raced the accept
            with contextlib.suppress(OSError):
                conn.close()
            raise CommClosedError(f"listener {self.address} closed "
                                  f"during accept")
        return TCPComm(conn, self._counters, self._path)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # shutdown() before close() pops any thread blocked in
        # accept() out with an OSError (close() alone leaves it
        # hanging until its timeout on some platforms).
        with contextlib.suppress(OSError):
            self._sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):  # pragma: no cover
            self._sock.close()


def _parse_hostport(rest: str) -> Tuple[str, int]:
    if ":" not in rest:
        raise CommError(f"tcp address needs host:port, got {rest!r}")
    host, port_s = rest.rsplit(":", 1)
    try:
        port = int(port_s)
    except ValueError:
        raise CommError(f"bad tcp port in {rest!r}") from None
    return host or "127.0.0.1", port


def _tcp_listen(rest: str, counters: Optional[CommCounters],
                path: TransferPath) -> Listener:
    host, port = _parse_hostport(rest)
    return TCPListener(host, port, counters, path)


def _tcp_connect(rest: str, timeout: float,
                 counters: Optional[CommCounters],
                 path: TransferPath) -> Comm:
    host, port = _parse_hostport(rest)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except socket.timeout:
        raise CommTimeoutError(
            f"connect to tcp://{host}:{port} timed out after "
            f"{timeout} s") from None
    except OSError as e:
        raise CommClosedError(
            f"connect to tcp://{host}:{port} failed: {e}") from e
    sock.settimeout(None)
    return TCPComm(sock, counters, path)


register_transport("tcp", _tcp_listen, _tcp_connect)
