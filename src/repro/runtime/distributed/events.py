"""Recorded event stream of one distributed execution (DistSan input).

The executor, the shared-memory store and the comm layer all accept an
optional observer; when a :class:`DistTraceRecorder` is attached
(``rt.dist_recorder = DistTraceRecorder()`` before the first sync)
every scheduling decision, shm lifecycle step and wire frame is
recorded with a global sequence number.  The recorder is the *input*
to the DistSan checkers in :mod:`repro.analysis.dist`:

* ``events`` — dispatch/completion/driver-run/crash/replay plus shm
  pin/incref/decref/unlink, in driver-observation order.  The
  happens-before checker (:mod:`repro.analysis.dist.hb`) rebuilds the
  cross-process partial order from these.
* ``frames`` — per-connection wire frames (direction, op, codec,
  sizes), fed to the protocol state-machine checker
  (:mod:`repro.analysis.dist.protocol`).
* ``leaked`` — the OS-level ``/dev/shm`` scan taken at executor close,
  ground truth for the refcount audit.

Recording is strictly opt-in and thread-safe (reader threads append
concurrently); with no recorder attached every hook site is a ``None``
check and the runtime is unchanged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["DistEvent", "FrameRecord", "DistTraceRecorder"]

#: Scheduling / shm event kinds recorded by the executor and store.
EV_SPAWN = "spawn"          # worker process forked and handshaken
EV_DISPATCH = "dispatch"    # task message sent to a worker
EV_COMPLETE = "complete"    # done reply accepted from a worker
EV_FAIL = "fail"            # fail reply accepted from a worker
EV_DRIVER = "driver"        # driver-lane task ran inline in the parent
EV_DEATH = "death"          # worker EOF observed
EV_REPLAY = "replay"        # revoked task requeued after a death
EV_PIN = "pin"              # shm segment created for a tile
EV_INCREF = "incref"        # segment refcount raised
EV_DECREF = "decref"        # segment refcount dropped
EV_UNLINK = "unlink"        # segment destroyed (refs reached zero)
EV_EVACUATE = "evacuate"    # tiles copied out of shm at close
EV_CLOSE = "close"          # store/executor closed


@dataclass(frozen=True)
class DistEvent:
    """One recorded scheduling or shm-lifecycle step."""

    seq: int
    kind: str
    tid: int = -1
    wid: int = -1
    attempt: int = 0
    #: Tile ref for pin events, () otherwise.
    ref: Tuple[int, ...] = ()
    segment: str = ""
    #: Segment refcount *after* the event (incref/decref/unlink).
    refs: int = -1
    detail: str = ""


@dataclass(frozen=True)
class FrameRecord:
    """One wire frame (or close) seen on one parent-side comm."""

    direction: str            # "send" | "recv" | "close"
    op: str = ""              # message "op" field ("" for non-dicts)
    tid: int = -1
    attempt: int = -1
    codec: int = -1           # frame codec tag byte
    nbytes: int = 0           # whole frame size (header + payload)
    declared: int = -1        # length-prefix value (payload bytes)
    #: For "fail" replies: the recorded retryable verdict and the
    #: message's exception object (the protocol checker re-classifies).
    retryable: Optional[bool] = None
    exc: object = None


@dataclass
class DistTraceRecorder:
    """Thread-safe collector for one distributed execution."""

    events: List[DistEvent] = field(default_factory=list)
    #: connection key (worker wid as "w{wid}") -> frames in order.
    frames: Dict[str, List[FrameRecord]] = field(default_factory=dict)
    #: /dev/shm segments still present after close (should be empty).
    leaked: List[str] = field(default_factory=list)
    #: shm segment name -> tile ref it backs.
    segment_refs: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0

    # -- scheduling / shm events ----------------------------------------

    def record(self, kind: str, *, tid: int = -1, wid: int = -1,
               attempt: int = 0, ref: Tuple[int, ...] = (),
               segment: str = "", refs: int = -1,
               detail: str = "") -> None:
        with self._lock:
            seq = self._seq
            self._seq += 1
            self.events.append(DistEvent(
                seq=seq, kind=kind, tid=tid, wid=wid, attempt=attempt,
                ref=tuple(ref), segment=segment, refs=refs,
                detail=detail))
            if kind == EV_PIN and segment:
                self.segment_refs[segment] = tuple(ref)

    # -- wire frames -----------------------------------------------------

    def frame_observer(
            self, conn: str,
    ) -> Callable[[str, object, int, int, int], None]:
        """A ``Comm.observer`` callback recording onto connection
        ``conn`` (e.g. ``"w3"`` for the comm to worker 3)."""

        def observe(direction: str, msg: object, nbytes: int,
                    codec: int, declared: int = -1) -> None:
            op = ""
            tid = attempt = -1
            retryable: Optional[bool] = None
            exc: object = None
            if isinstance(msg, dict):
                op = str(msg.get("op", ""))
                tid = int(msg.get("tid", -1))
                attempt = int(msg.get("attempt", -1))
                if op == "fail":
                    r = msg.get("retryable")
                    retryable = r if isinstance(r, bool) else None
                    exc = msg.get("exc")
            rec = FrameRecord(direction=direction, op=op, tid=tid,
                              attempt=attempt, codec=codec,
                              nbytes=nbytes, declared=declared,
                              retryable=retryable, exc=exc)
            with self._lock:
                self.frames.setdefault(conn, []).append(rec)

        return observe

    def rename_connection(self, old: str, new: str) -> None:
        """Move frames recorded under a provisional key (a comm
        accepted before its hello identified the worker) to the
        worker-keyed connection."""
        with self._lock:
            pending = self.frames.pop(old, [])
            self.frames.setdefault(new, [])[:0] = pending

    # -- shm store observer ----------------------------------------------

    def store_observer(self) -> Callable[..., None]:
        """A ``SharedTileStore.observer`` callback."""

        def observe(kind: str, segment: str, refs: int,
                    ref: Tuple[int, ...] = ()) -> None:
            self.record(kind, segment=segment, refs=refs, ref=ref)

        return observe

    # -- queries ----------------------------------------------------------

    def events_of(self, *kinds: str) -> List[DistEvent]:
        return [e for e in self.events if e.kind in kinds]

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        out["frames"] = sum(len(v) for v in self.frames.values())
        return out
