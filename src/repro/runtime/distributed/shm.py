"""Zero-copy shared-memory tile storage for the processes backend.

Tiles that worker processes read or write live in POSIX shared memory
(:mod:`multiprocessing.shared_memory`), one segment per tile, so a
forked worker maps the parent's tile *in place* — dispatching a task
ships only a few hundred bytes of metadata, never matrix data.

Lifecycle rules (all enforced here):

* Segments are created **only in the parent** (the scheduler process).
  Workers inherit the mappings through ``fork`` and never create,
  close, or unlink segments — a SIGKILLed worker therefore cannot leak
  or tear down shared state.  The registry of live segments lives in
  the parent and survives any worker death.
* Every segment is refcounted.  The owning ``DistMatrix`` holds the
  initial reference (dropped via a ``weakref.finalize`` when the
  matrix is collected); :meth:`incref`/:meth:`decref` let snapshots or
  long-lived views pin a segment past that.
* ``close()`` force-unlinks everything still live.  It is idempotent
  and is wired into ``Runtime.close()`` / the executor, so interpreter
  shutdown never warns about leaked ``/dev/shm`` entries.

Segment names are deliberately explicit and prefixed
(``repro{pid}x{nonce}_{seq}``) so tests and the CI ``dist-smoke`` job
can *scan* ``/dev/shm`` for leaks by prefix rather than trusting
internal bookkeeping.
"""

from __future__ import annotations

import contextlib
import os
import secrets
import threading
import weakref
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["SharedTileStore", "scan_segments"]

_SHM_DIR = "/dev/shm"


def scan_segments(prefix: str) -> List[str]:
    """Names of OS-level shared-memory segments carrying ``prefix``.

    Ground truth for leak gating: reads the kernel's view (``/dev/shm``
    on Linux), not this process's bookkeeping.  Returns ``[]`` on
    platforms without a scannable shm filesystem.
    """
    try:
        return sorted(n for n in os.listdir(_SHM_DIR)
                      if n.startswith(prefix))
    except OSError:  # pragma: no cover - non-Linux
        return []


class _Segment:
    __slots__ = ("shm", "array", "refs")

    def __init__(self, shm: shared_memory.SharedMemory,
                 array: np.ndarray, refs: int):
        self.shm = shm
        self.array = array
        self.refs = refs


class SharedTileStore:
    """Parent-side registry of shared-memory tile segments."""

    def __init__(self, prefix: Optional[str] = None):
        if prefix is None:
            prefix = f"repro{os.getpid()}x{secrets.token_hex(3)}"
        self.prefix = prefix
        #: Optional lifecycle observer (DistSan refcount audit):
        #: ``observer(kind, segment_name, refs_after, ref)`` with kind
        #: one of pin/incref/decref/unlink/evacuate/close.
        self.observer = None
        self._lock = threading.Lock()
        self._seq = 0
        self._segments: Dict[str, _Segment] = {}
        #: (mat_id, i, j) -> segment name, so re-pinning a tile that the
        #: driver replaced (``set_tile``) reuses the existing segment.
        self._of_ref: Dict[Tuple[int, int, int], str] = {}
        self._mat_refs: Dict[int, List[str]] = {}
        #: mat_id -> weakref to the matrix, so close() can evacuate
        #: shm-backed tiles into private copies before unlinking
        #: (results must outlive the store; a stale view would be a
        #: use-after-unmap segfault, not an exception).
        self._mats: Dict[int, "weakref.ref"] = {}
        self._closed = False

    # -- allocation ------------------------------------------------------

    def _new_segment(self, shape: Tuple[int, ...],
                     dtype: np.dtype) -> Tuple[str, np.ndarray]:
        nbytes = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedTileStore is closed")
            self._seq += 1
            name = f"{self.prefix}_{self._seq}"
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=nbytes)
        arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        arr.fill(0)
        with self._lock:
            self._segments[name] = _Segment(shm, arr, refs=1)
        return name, arr

    def pin_tile(self, mat: Any, i: int, j: int,
                 shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Ensure tile ``(i, j)`` of ``mat`` is backed by shared memory.

        Idempotent: if the tile already lives in its segment this is a
        no-op; if the driver replaced the backing array (``set_tile``
        copies into a fresh heap array) the data is migrated back into
        the same segment; unmaterialised (``None`` = lazily-zero) tiles
        are materialised as zeros.  Returns the shm-backed array now
        installed in ``mat._tiles``.
        """
        key = (i, j)
        ref = (mat.mat_id, i, j)
        cur = mat._tiles.get(key)
        name = self._of_ref.get(ref)
        seg = self._segments.get(name) if name is not None else None
        if seg is not None and cur is seg.array:
            return cur
        if seg is None:
            first = not self._mat_refs.get(mat.mat_id)
            name, arr = self._new_segment(shape, dtype)
            self._of_ref[ref] = name
            names = self._mat_refs.setdefault(mat.mat_id, [])
            names.append(name)
            self._mats[mat.mat_id] = weakref.ref(mat)
            if self.observer is not None:
                self.observer("pin", name, 1, ref)
            if first:
                # One finalizer per matrix releases every segment the
                # matrix ever owned (the list keeps growing after
                # registration — it is captured by reference).
                weakref.finalize(mat, self._release_many, names)
        else:
            arr = seg.array
            if arr.shape != shape or arr.dtype != np.dtype(dtype):
                # Tile geometry changed (never happens for DistMatrix,
                # but keep the store self-consistent): re-allocate.
                self._decref_name(name)
                return self.pin_tile(mat, i, j, shape, dtype)
        if cur is None:
            arr.fill(0)
        elif cur is not arr:
            arr[...] = cur
        mat._tiles[key] = arr
        return arr

    # -- refcounting -----------------------------------------------------

    def incref(self, name: str) -> None:
        with self._lock:
            seg = self._segments.get(name)
            if seg is None:
                raise KeyError(f"unknown shm segment {name!r}")
            seg.refs += 1
            refs = seg.refs
        if self.observer is not None:
            self.observer("incref", name, refs, ())

    def decref(self, name: str) -> None:
        self._decref_name(name)

    def _decref_name(self, name: str) -> None:
        with self._lock:
            seg = self._segments.get(name)
            if seg is None:
                return
            seg.refs -= 1
            refs = seg.refs
            if refs <= 0:
                del self._segments[name]
        if self.observer is not None:
            self.observer("decref", name, max(refs, 0), ())
        if refs > 0:
            return
        self._destroy(seg)
        if self.observer is not None:
            self.observer("unlink", name, 0, ())

    def _release_many(self, names: List[str]) -> None:
        for name in names:
            self._decref_name(name)

    @staticmethod
    def _destroy(seg: _Segment) -> None:
        seg.array = None  # drop our view before closing the mapping
        # BufferError: someone still holds a numpy view (snapshot, user
        # code).  The mapping stays until those views die; unlink below
        # still removes the /dev/shm entry, so nothing leaks.
        with contextlib.suppress(BufferError):  # pragma: no cover
            seg.shm.close()
        with contextlib.suppress(FileNotFoundError):  # pragma: no cover
            seg.shm.unlink()

    def release_inherited(self) -> None:
        """Worker-side: drop every mapping this *fork* inherited.

        Called on the worker's ``os._exit`` path.  The parent owns the
        segments — refcounts, unlinking and the observer all stay with
        it — but each child holds its own mmap of every segment, and a
        child that exits without closing them leaves the kernel-side
        reference alive until process teardown gets around to it.
        Releases views and mappings only: never unlinks, never touches
        refcounts, never notifies the observer.
        """
        with self._lock:
            segs = list(self._segments.values())
            self._segments.clear()
            self._of_ref.clear()
            self._mat_refs.clear()
            self._mats.clear()
        for seg in segs:
            seg.array = None
            # BufferError: an inherited numpy view is still alive in a
            # payload closure; the mapping dies with the process anyway.
            with contextlib.suppress(BufferError):
                seg.shm.close()

    # -- queries ---------------------------------------------------------

    def refcount(self, name: str) -> int:
        with self._lock:
            seg = self._segments.get(name)
            return 0 if seg is None else seg.refs

    def segment_of(self, ref: Tuple[int, int, int]) -> Optional[str]:
        return self._of_ref.get(ref)

    def live_segments(self) -> List[str]:
        with self._lock:
            return sorted(self._segments)

    def leaked_segments(self) -> List[str]:
        """OS-level segments with our prefix (should be ``[]`` after
        :meth:`close`)."""
        return scan_segments(self.prefix)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- teardown --------------------------------------------------------

    def _evacuate(self) -> None:
        """Replace every live matrix's shm-backed tiles with private
        heap copies.

        Must run before the segments are unlinked: results
        (``DistMatrix`` U/H factors) routinely outlive the runtime, and
        a tile that stayed a view over an unmapped segment would be a
        use-after-free on the next read — a segfault, not an exception.
        """
        with self._lock:
            refs = list(self._of_ref.items())
            mats = dict(self._mats)
            segs = dict(self._segments)
        for (mat_id, i, j), name in refs:
            mat = mats.get(mat_id)
            mat = mat() if mat is not None else None
            seg = segs.get(name)
            if mat is None or seg is None:
                continue
            if mat._tiles.get((i, j)) is seg.array:
                mat._tiles[(i, j)] = np.array(seg.array)

    def close(self) -> None:
        """Unlink every live segment.  Idempotent.

        Tiles still installed in live matrices are copied out first so
        results remain readable after the runtime shuts down.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._evacuate()
        if self.observer is not None:
            self.observer("evacuate", "", -1, ())
        with self._lock:
            named = list(self._segments.items())
            self._segments.clear()
            self._of_ref.clear()
            self._mat_refs.clear()
            self._mats.clear()
        for name, seg in named:
            self._destroy(seg)
            if self.observer is not None:
                self.observer("unlink", name, 0, ())
        if self.observer is not None:
            self.observer("close", "", -1, ())

    def __enter__(self) -> "SharedTileStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
